// Ablation: the paper's "voltage transition overhead is negligible"
// assumption (§3: "the increase of energy consumption is negligible when
// the transition time is small comparing with the task execution time").
//
// The engine can charge a stall time and an energy cost per volt of change;
// this bench sweeps the overhead magnitude and reports the energy increase
// and any deadline damage, quantifying where the assumption holds.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 5;
  util::ArgParser parser("bench_ablation_transition",
                         "voltage-transition overhead sensitivity");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    // Stall time per volt, as a fraction of the shortest period (10 time
    // units): 0 (the paper), 1e-4, 1e-3, 1e-2.
    const double stalls[] = {0.0, 1e-3, 1e-2, 1e-1};

    util::TextTable table({"stall/volt (time units)", "ACS energy ratio",
                           "switches/hyper-period", "misses"});
    util::CsvTable csv({"stall_per_volt", "energy_ratio", "switch_rate",
                        "deadline_misses"});

    std::cout << "Ablation: voltage-transition overhead (6 tasks, ratio "
                 "0.3, " << config.tasksets
              << " sets; energy cost 0.1/volt in all non-zero rows)\n\n";

    // Prepare shared schedules once.
    struct Prepared {
      // The expansion holds a pointer into the task set, so the set needs a
      // stable address for the lifetime of the record.
      std::unique_ptr<model::TaskSet> set;
      std::unique_ptr<fps::FullyPreemptiveSchedule> fps;
      std::unique_ptr<sim::StaticSchedule> acs;
      std::uint64_t seed;
    };
    std::vector<Prepared> prepared;
    stats::Rng stream(config.seed);
    for (std::int64_t i = 0; i < config.tasksets; ++i) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = 6;
      gen.bcec_wcec_ratio = 0.3;
      stats::Rng set_rng = stream.Fork();
      auto set = std::make_unique<model::TaskSet>(
          workload::GenerateRandomTaskSet(gen, cpu, set_rng));
      auto fps = std::make_unique<fps::FullyPreemptiveSchedule>(*set);
      const core::ScheduleResult acs = core::SolveAcs(*fps, cpu);
      prepared.push_back(Prepared{std::move(set), std::move(fps),
                                  std::make_unique<sim::StaticSchedule>(
                                      acs.schedule),
                                  stream.NextU64()});
    }

    double base_energy = 0.0;
    for (double stall : stalls) {
      double energy = 0.0;
      double switches = 0.0;
      std::int64_t misses = 0;
      for (const Prepared& p : prepared) {
        const model::TruncatedNormalWorkload sampler(*p.set, 6.0);
        const sim::GreedyReclaimPolicy policy(cpu);
        stats::Rng rng(p.seed);
        sim::SimOptions options;
        options.hyper_periods = config.hyper_periods;
        if (stall > 0.0) {
          options.transition = model::TransitionOverhead{stall, 0.1};
        }
        const sim::SimResult result = sim::Simulate(
            *p.fps, *p.acs, cpu, policy, sampler, rng, options);
        energy += result.total_energy;
        switches += static_cast<double>(result.voltage_switches) /
                    static_cast<double>(config.hyper_periods);
        misses += result.deadline_misses;
      }
      if (stall == 0.0) {
        base_energy = energy;
      }
      table.AddRow({util::FormatDouble(stall, 4),
                    util::FormatDouble(energy / base_energy, 4) + "x",
                    util::FormatDouble(
                        switches / static_cast<double>(prepared.size()), 1),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(stall, 5)
          .Add(energy / base_energy, 6)
          .Add(switches / static_cast<double>(prepared.size()), 2)
          .Add(misses);
    }
    bench::Emit(table, csv, config.csv);
    std::cout << "\nreading: the paper's assumption holds while the stall "
                 "stays well under the shortest period; large stalls both "
                 "cost energy and endanger deadlines\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
