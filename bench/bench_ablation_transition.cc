// Ablation: the paper's "voltage transition overhead is negligible"
// assumption (§3: "the increase of energy consumption is negligible when
// the transition time is small comparing with the task execution time").
//
// The engine can charge a stall time and an energy cost per volt of change;
// this bench sweeps the overhead magnitude and reports the energy increase
// and any deadline damage, quantifying where the assumption holds.
//
// Each stall value runs as one runner::RunGrid whose `transition` field
// charges the overhead in every cell; the grids share one master seed, so
// every row faces bit-identical task sets and workload realisations and
// the energy ratio isolates the overhead alone.
#include <iostream>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 5;
  config.methods = "acs";
  config.baseline = "acs";
  util::ArgParser parser("bench_ablation_transition",
                         "voltage-transition overhead sensitivity");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    // Stall time per volt, as a fraction of the shortest period (10 time
    // units): 0 (the paper), 1e-3, 1e-2, 1e-1.
    const double stalls[] = {0.0, 1e-3, 1e-2, 1e-1};

    util::TextTable table({"stall/volt (time units)", "ACS energy ratio",
                           "switches/hyper-period", "misses"});
    util::CsvTable csv({"stall_per_volt", "energy_ratio", "switch_rate",
                        "deadline_misses"});

    std::cout << "Ablation: voltage-transition overhead (6 tasks, ratio "
                 "0.3, " << config.tasksets << " sets, "
              << config.ResolvedThreads()
              << " threads; energy cost 0.1/volt in all non-zero rows)\n\n";

    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.3;

    double base_energy = 0.0;
    for (double stall : stalls) {
      // One grid per stall value; the shared config seed keeps the task
      // sets and workload streams identical across rows, and the stall
      // value is baked into the source label so --cell-csv rows from the
      // four grids stay distinguishable.
      runner::ExperimentGrid grid = config.MakeGrid(
          cpu, {runner::RandomSource(
                   "random-6-stall" + util::FormatDouble(stall, 4), gen,
                   config.tasksets)});
      if (stall > 0.0) {
        grid.transition = model::TransitionOverhead{stall, 0.1};
      }
      const runner::GridResult result = bench::RunGridTimed(
          grid, config, "stall-" + util::FormatDouble(stall, 4));
      // The columns are specific to one arm — the baseline (ACS unless
      // overridden) — even when --methods lists several.
      const std::size_t report = grid.BaselineIndex();

      double energy = 0.0;
      double switches_per_hp = 0.0;
      std::int64_t misses = 0;
      std::size_t cells = 0;
      for (const runner::CellResult& cell : result.cells) {
        if (!cell.ok()) {
          continue;
        }
        ++cells;
        const core::MethodOutcome& outcome = cell.outcomes[report];
        energy += outcome.measured_energy;
        switches_per_hp += static_cast<double>(outcome.voltage_switches) /
                           static_cast<double>(config.hyper_periods);
        misses += outcome.deadline_misses;
      }
      ACS_REQUIRE(cells > 0, "every cell of the transition grid failed");
      if (stall == 0.0) {
        base_energy = energy;
      }
      table.AddRow({util::FormatDouble(stall, 4),
                    util::FormatDouble(energy / base_energy, 4) + "x",
                    util::FormatDouble(
                        switches_per_hp / static_cast<double>(cells), 1),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(stall, 5)
          .Add(energy / base_energy, 6)
          .Add(switches_per_hp / static_cast<double>(cells), 2)
          .Add(misses);
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: the paper's assumption holds while the stall "
                 "stays well under the shortest period; large stalls both "
                 "cost energy and endanger deadlines\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
