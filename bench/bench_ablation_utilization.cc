// Ablation: improvement vs worst-case utilisation.
//
// The paper fixes U = 70% at Vmax.  This bench sweeps the utilisation to
// show where ACS's advantage lives: low utilisation leaves slack everywhere
// (both methods reach low voltages), high utilisation leaves no room to
// shift end-times.  The sweep runs as one runner::RunGrid with the
// utilisation as a grid axis.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_utilization",
                         "improvement vs worst-case utilisation");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();

    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.1;
    runner::ExperimentGrid grid = config.MakeGrid(
        cpu, {runner::RandomSource("random-6", gen, config.tasksets)});
    grid.utilizations = {0.3, 0.5, 0.7, 0.8, 0.9};

    util::TextTable table({"utilization", "mean improvement", "stddev",
                           "misses"});
    util::CsvTable csv({"utilization", "improvement_mean",
                        "improvement_stddev", "deadline_misses"});

    std::cout << "Ablation: worst-case utilisation (6 tasks, ratio 0.1, "
              << config.tasksets << " sets/point, " << config.ResolvedThreads()
              << " threads; paper fixes 0.7)\n\n";

    const runner::GridResult result =
        bench::RunGridTimed(grid, config, "utilization-grid");
    const std::size_t baseline = grid.BaselineIndex();
    // Improvement column tracks the first non-baseline method.
    const std::size_t method = bench::FirstNonBaseline(grid);

    for (std::size_t u = 0; u < grid.utilizations.size(); ++u) {
      stats::OnlineStats improvement;
      std::int64_t misses = 0;
      for (const runner::CellResult& cell : result.cells) {
        if (!cell.ok() || cell.coord.util_index != u) {
          continue;
        }
        improvement.Add(cell.ImprovementOver(method, baseline));
        for (const core::MethodOutcome& outcome : cell.outcomes) {
          misses += outcome.deadline_misses;
        }
      }
      const bool has_data = improvement.count() > 0;
      table.AddRow({util::FormatDouble(grid.utilizations[u], 1),
                    has_data ? util::FormatPercent(improvement.mean()) : "n/a",
                    has_data ? util::FormatPercent(improvement.stddev())
                             : "n/a",
                    std::to_string(misses)});
      csv.NewRow()
          .Add(grid.utilizations[u], 2)
          .Add(has_data ? improvement.mean() : 0.0, 6)
          .Add(has_data ? improvement.stddev() : 0.0, 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config);
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
