// Ablation: improvement vs worst-case utilisation.
//
// The paper fixes U = 70% at Vmax.  This bench sweeps the utilisation to
// show where ACS's advantage lives: low utilisation leaves slack everywhere
// (both methods reach low voltages), high utilisation leaves no room to
// shift end-times.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_utilization",
                         "improvement vs worst-case utilisation");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double utilizations[] = {0.3, 0.5, 0.7, 0.8, 0.9};

    util::TextTable table({"utilization", "mean improvement", "stddev",
                           "misses"});
    util::CsvTable csv({"utilization", "improvement_mean",
                        "improvement_stddev", "deadline_misses"});

    std::cout << "Ablation: worst-case utilisation (6 tasks, ratio 0.1, "
              << config.tasksets << " sets/point; paper fixes 0.7)\n\n";

    for (double utilization : utilizations) {
      stats::OnlineStats improvement;
      std::int64_t misses = 0;
      stats::Rng stream(config.seed +
                        static_cast<std::uint64_t>(utilization * 100));
      for (std::int64_t i = 0; i < config.tasksets; ++i) {
        workload::RandomTaskSetOptions gen;
        gen.num_tasks = 6;
        gen.bcec_wcec_ratio = 0.1;
        gen.utilization = utilization;
        stats::Rng set_rng = stream.Fork();
        const model::TaskSet set =
            workload::GenerateRandomTaskSet(gen, cpu, set_rng);
        core::ExperimentOptions options;
        options.hyper_periods = config.hyper_periods;
        options.seed = stream.NextU64();
        const core::ComparisonResult result =
            core::CompareAcsWcs(set, cpu, options);
        improvement.Add(result.Improvement());
        misses += result.acs.deadline_misses + result.wcs.deadline_misses;
      }
      table.AddRow({util::FormatDouble(utilization, 1),
                    util::FormatPercent(improvement.mean()),
                    util::FormatPercent(improvement.stddev()),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(utilization, 2)
          .Add(improvement.mean(), 6)
          .Add(improvement.stddev(), 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config.csv);
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
