// Ablation: baseline strength.
//
// The paper reports up to ~60% improvement of ACS over "WCS".  Our WCS —
// the WCEC-optimal static schedule *plus* full greedy online reclamation —
// is a strong baseline that already sits near the energy floor, capping the
// measurable gap (see EXPERIMENTS.md).  This bench brackets the claim by
// measuring ACS against registry baselines of decreasing strength:
//   1. wcs            WCS + greedy reclamation (our default, strongest)
//   2. wcs-static     WCS offline voltages, no online slack pass-through
//   3. static-vmax    no DVS at all (always Vmax)
// and against the uniform average-utilisation energy floor.  One
// runner::RunGrid evaluates all four methods per cell on identical
// workload realisations.
#include <iostream>

#include "bench_common.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_baseline",
                         "ACS improvement vs baselines of varying strength");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double ratio = 0.1;  // the paper's high-flexibility point
    const int num_tasks = 8;

    workload::RandomTaskSetOptions gen;
    gen.num_tasks = num_tasks;
    gen.bcec_wcec_ratio = ratio;
    runner::ExperimentGrid grid = config.MakeGrid(
        cpu, {runner::RandomSource("random-8", gen, config.tasksets)});
    // The comparison set IS the subject of this ablation: the four arms are
    // fixed and the indices below depend on this order.
    const std::vector<std::string> fixed_methods = {"acs", "wcs", "wcs-static",
                                                    "static-vmax"};
    if (config.methods != bench::SweepConfig{}.methods ||
        config.baseline != bench::SweepConfig{}.baseline) {
      std::cerr << "note: this ablation always evaluates "
                << util::Join(fixed_methods, ",")
                << " with baseline wcs; --methods/--baseline are ignored\n";
    }
    grid.methods = fixed_methods;
    grid.baseline = "wcs";

    const runner::GridResult result =
        bench::RunGridTimed(grid, config, "baseline-grid");

    constexpr std::size_t kAcs = 0;
    stats::OnlineStats vs_wcs_greedy;
    stats::OnlineStats vs_wcs_static;
    stats::OnlineStats vs_vmax;
    stats::OnlineStats headroom;  // ACS energy over the uniform floor

    for (const runner::CellResult& cell : result.cells) {
      if (!cell.ok()) {
        continue;
      }
      vs_wcs_greedy.Add(cell.ImprovementOver(kAcs, 1));
      vs_wcs_static.Add(cell.ImprovementOver(kAcs, 2));
      vs_vmax.Add(cell.ImprovementOver(kAcs, 3));

      // Uniform average-utilisation floor: all average cycles at the
      // voltage that sustains the average load.  The grid materialises the
      // cell's task set deterministically for the post-hoc computation.
      const model::TaskSet set = grid.MaterializeTaskSet(cell.coord);
      const double avg_util = set.AverageUtilization(cpu);
      const double v_floor =
          cpu.ClampVoltage(cpu.VoltageForSpeed(avg_util * cpu.MaxSpeed()));
      double avg_cycles_per_hp = 0.0;
      for (const model::Task& t : set.tasks()) {
        avg_cycles_per_hp += t.acec * static_cast<double>(
                                          set.hyper_period() / t.period);
      }
      const double floor_energy = cpu.Energy(v_floor, avg_cycles_per_hp);
      headroom.Add(cell.outcomes[kAcs].measured_energy / floor_energy);
    }

    if (result.failed_cells > 0) {
      std::cerr << "WARNING: " << result.failed_cells << " of "
                << grid.CellCount() << " cells failed and were skipped\n";
    }
    ACS_REQUIRE(vs_wcs_greedy.count() > 0,
                "every grid cell failed; nothing to report");

    util::TextTable table({"ACS improvement vs", "mean", "min", "max"});
    const auto add = [&table](const char* name, const stats::OnlineStats& s) {
      table.AddRow({name, util::FormatPercent(s.mean()),
                    util::FormatPercent(s.min()),
                    util::FormatPercent(s.max())});
    };
    std::cout << "Ablation: baseline strength (" << num_tasks
              << " tasks, ratio " << ratio << ", " << config.tasksets
              << " sets, " << config.ResolvedThreads() << " threads)\n\n";
    add("WCS + greedy reclamation", vs_wcs_greedy);
    add("WCS static-only (no reclamation)", vs_wcs_static);
    add("no DVS (always Vmax)", vs_vmax);
    std::cout << table.Render();
    std::cout << "\nACS energy over the uniform average-utilisation floor: "
              << util::FormatDouble(headroom.mean(), 3)
              << "x (1.0 = unattainable lower bound)\n";
    std::cout << "reading: the paper's ~60% magnitude is reachable against "
                 "the weaker baselines; against WCS+reclamation the floor "
                 "caps the possible gap\n";

    util::CsvTable csv({"baseline", "improvement_mean", "improvement_min",
                        "improvement_max"});
    csv.NewRow().Add("wcs_greedy").Add(vs_wcs_greedy.mean(), 6)
        .Add(vs_wcs_greedy.min(), 6).Add(vs_wcs_greedy.max(), 6);
    csv.NewRow().Add("wcs_static").Add(vs_wcs_static.mean(), 6)
        .Add(vs_wcs_static.min(), 6).Add(vs_wcs_static.max(), 6);
    csv.NewRow().Add("vmax").Add(vs_vmax.mean(), 6).Add(vs_vmax.min(), 6)
        .Add(vs_vmax.max(), 6);
    if (!config.csv.empty()) {
      csv.WriteFile(config.csv);
    }
    config.WriteBenchJson();
    config.WriteRunArtifacts();
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
