// Ablation: baseline strength.
//
// The paper reports up to ~60% improvement of ACS over "WCS".  Our WCS —
// the WCEC-optimal static schedule *plus* full greedy online reclamation —
// is a strong baseline that already sits near the energy floor, capping the
// measurable gap (see EXPERIMENTS.md).  This bench brackets the claim by
// measuring ACS against three baselines of decreasing strength:
//   1. WCS + greedy reclamation (our default comparison, strongest)
//   2. WCS static-only (offline voltages, no online slack pass-through)
//   3. no DVS at all (always Vmax)
// and against the uniform average-utilisation energy floor.
#include <iostream>

#include "bench_common.h"
#include "core/formulation.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_baseline",
                         "ACS improvement vs baselines of varying strength");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double ratio = 0.1;  // the paper's high-flexibility point
    const int num_tasks = 8;

    stats::OnlineStats vs_wcs_greedy;
    stats::OnlineStats vs_wcs_static;
    stats::OnlineStats vs_vmax;
    stats::OnlineStats headroom;  // ACS energy over the uniform floor

    stats::Rng stream(config.seed);
    for (std::int64_t i = 0; i < config.tasksets; ++i) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = num_tasks;
      gen.bcec_wcec_ratio = ratio;
      stats::Rng set_rng = stream.Fork();
      const model::TaskSet set =
          workload::GenerateRandomTaskSet(gen, cpu, set_rng);
      const fps::FullyPreemptiveSchedule fps(set);

      const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
      const core::ScheduleResult acs = core::SolveSchedule(
          fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);

      const std::uint64_t seed = stream.NextU64();
      const model::TruncatedNormalWorkload sampler(set, 6.0);
      const sim::GreedyReclaimPolicy greedy(cpu);
      const sim::StaticOnlyPolicy static_only(fps, wcs.schedule, cpu);
      const sim::VmaxPolicy vmax(cpu);

      const double e_acs =
          core::SimulateWith(fps, acs.schedule, cpu, greedy, sampler, seed,
                             config.hyper_periods)
              .total_energy;
      const double e_wcs_greedy =
          core::SimulateWith(fps, wcs.schedule, cpu, greedy, sampler, seed,
                             config.hyper_periods)
              .total_energy;
      const double e_wcs_static =
          core::SimulateWith(fps, wcs.schedule, cpu, static_only, sampler,
                             seed, config.hyper_periods)
              .total_energy;
      const double e_vmax =
          core::SimulateWith(fps, wcs.schedule, cpu, vmax, sampler, seed,
                             config.hyper_periods)
              .total_energy;

      vs_wcs_greedy.Add((e_wcs_greedy - e_acs) / e_wcs_greedy);
      vs_wcs_static.Add((e_wcs_static - e_acs) / e_wcs_static);
      vs_vmax.Add((e_vmax - e_acs) / e_vmax);

      // Uniform average-utilisation floor: all average cycles at the
      // voltage that sustains the average load.
      const double avg_util = set.AverageUtilization(cpu);
      const double v_floor =
          cpu.ClampVoltage(cpu.VoltageForSpeed(avg_util * cpu.MaxSpeed()));
      double avg_cycles_per_hp = 0.0;
      for (const model::Task& t : set.tasks()) {
        avg_cycles_per_hp += t.acec * static_cast<double>(
                                          set.hyper_period() / t.period);
      }
      const double floor_energy = cpu.Energy(v_floor, avg_cycles_per_hp) *
                                  static_cast<double>(config.hyper_periods);
      headroom.Add(e_acs / floor_energy);
    }

    util::TextTable table({"ACS improvement vs", "mean", "min", "max"});
    const auto add = [&table](const char* name, const stats::OnlineStats& s) {
      table.AddRow({name, util::FormatPercent(s.mean()),
                    util::FormatPercent(s.min()),
                    util::FormatPercent(s.max())});
    };
    std::cout << "Ablation: baseline strength (" << num_tasks
              << " tasks, ratio " << ratio << ", " << config.tasksets
              << " sets)\n\n";
    add("WCS + greedy reclamation", vs_wcs_greedy);
    add("WCS static-only (no reclamation)", vs_wcs_static);
    add("no DVS (always Vmax)", vs_vmax);
    std::cout << table.Render();
    std::cout << "\nACS energy over the uniform average-utilisation floor: "
              << util::FormatDouble(headroom.mean(), 3)
              << "x (1.0 = unattainable lower bound)\n";
    std::cout << "reading: the paper's ~60% magnitude is reachable against "
                 "the weaker baselines; against WCS+reclamation the floor "
                 "caps the possible gap\n";

    util::CsvTable csv({"baseline", "improvement_mean", "improvement_min",
                        "improvement_max"});
    csv.NewRow().Add("wcs_greedy").Add(vs_wcs_greedy.mean(), 6)
        .Add(vs_wcs_greedy.min(), 6).Add(vs_wcs_greedy.max(), 6);
    csv.NewRow().Add("wcs_static").Add(vs_wcs_static.mean(), 6)
        .Add(vs_wcs_static.min(), 6).Add(vs_wcs_static.max(), 6);
    csv.NewRow().Add("vmax").Add(vs_vmax.mean(), 6).Add(vs_vmax.min(), 6)
        .Add(vs_vmax.max(), 6);
    if (!config.csv.empty()) {
      csv.WriteFile(config.csv);
    }
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
