// Reproduces Figures 3-5: the fully preemptive expansion of a three-task
// system (Figs. 3-4) and the Fig. 5 average-workload case analysis.
// These are structural artefacts — the bench prints the expansion census,
// the total order and the case-analysis table the paper walks through.
#include <iostream>

#include "bench_common.h"
#include "core/case_analysis.h"
#include "fps/expansion.h"
#include "util/error.h"
#include "util/gantt.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace dvs;
  util::ArgParser parser("bench_fig3_fig4_expansion",
                         "Figs. 3-5: fully preemptive expansion census");
  std::string csv_path;
  parser.AddString("csv", &csv_path, "write the census to this CSV file");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    // Fig. 3/4 reconstruction: T1 period 3 (high priority), T2/T3 period 9.
    std::vector<model::Task> tasks;
    for (const auto& [name, period] :
         {std::pair{"T1", 3}, std::pair{"T2", 9}, std::pair{"T3", 9}}) {
      model::Task t;
      t.name = name;
      t.period = period;
      t.wcec = static_cast<double>(period);  // workloads irrelevant here
      t.acec = 0.6 * t.wcec;
      t.bcec = 0.2 * t.wcec;
      tasks.push_back(std::move(t));
    }
    const model::TaskSet set{std::move(tasks)};
    const fps::FullyPreemptiveSchedule fps(set);

    std::cout << "Fig. 3 — task instances in one hyper-period ("
              << set.hyper_period() << " time units)\n";
    util::GanttChart instances(0.0, 9.0, 63);
    for (model::TaskIndex i = 0; i < set.size(); ++i) {
      auto& row = instances.AddRow(set.task(i).name);
      for (std::int64_t k = 0; k < set.InstanceCount(i); ++k) {
        const double p = static_cast<double>(set.task(i).period);
        row.bars.push_back(util::GanttBar{k * p, (k + 1) * p, '#', ""});
      }
    }
    std::cout << instances.Render() << "\n";

    std::cout << "Fig. 4 — fully preemptive expansion (segments cut at every "
                 "higher-priority release)\n";
    util::GanttChart segments(0.0, 9.0, 63);
    for (model::TaskIndex i = 0; i < set.size(); ++i) {
      auto& row = segments.AddRow(set.task(i).name);
      for (const fps::SubInstance& sub : fps.subs()) {
        if (sub.task != i) continue;
        row.bars.push_back(util::GanttBar{
            sub.seg_begin, sub.seg_end, static_cast<char>('0' + sub.k), ""});
      }
    }
    std::cout << segments.Render() << "\n";
    std::cout << "total order: " << fps.DescribeOrder() << "\n\n";

    util::TextTable census({"task", "instances", "sub-instances",
                            "max subs/instance"});
    util::CsvTable csv({"task", "instances", "sub_instances"});
    for (model::TaskIndex i = 0; i < set.size(); ++i) {
      std::int64_t subs = 0;
      int max_k = 0;
      for (const fps::SubInstance& sub : fps.subs()) {
        if (sub.task == i) {
          ++subs;
          max_k = std::max(max_k, sub.k + 1);
        }
      }
      census.AddRow({set.task(i).name,
                     std::to_string(set.InstanceCount(i)),
                     std::to_string(subs), std::to_string(max_k)});
      csv.NewRow().Add(set.task(i).name).Add(set.InstanceCount(i)).Add(
          static_cast<std::int64_t>(subs));
    }
    bench::Emit(census, csv, csv_path);

    // Fig. 5: ACEC 15, WCEC 30 split into three sub-instances of 10.
    std::cout << "\nFig. 5 — average workload assignment "
                 "(ACEC 15, budgets 10/10/10)\n";
    const core::AvgSplit split =
        core::SplitAverageWorkload(15.0, {10.0, 10.0, 10.0});
    util::TextTable fig5({"sub-instance", "worst budget", "avg workload",
                          "case"});
    for (std::size_t k = 0; k < split.avg.size(); ++k) {
      const char* label =
          split.cases[k] == core::AvgCase::kFull
              ? "case 1 (full)"
              : split.cases[k] == core::AvgCase::kPartial
                    ? "case 2 (partial)"
                    : "case 2 (empty)";
      fig5.AddRow({std::to_string(k + 1), "10",
                   util::FormatDouble(split.avg[k], 0), label});
    }
    std::cout << fig5.Render();
    std::cout << "\npaper reference: averages 10 / 5 / 0\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
