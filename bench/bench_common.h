// Shared experiment-harness code for the figure/table reproduction benches.
//
// Every bench binary follows the same pattern: parse scale flags (defaults
// give a minutes-scale run; --paper restores the paper's 100 task sets x
// 1000 hyper-periods), sweep the paper's parameter grid, print the figure's
// series as an aligned table, and drop a CSV twin next to the binary.
//
// Grid sweeps route through runner::RunGrid: --threads fans cells across a
// thread pool (bit-identical to the serial run), and --methods selects any
// comma-separated subset of the core::MethodRegistry by name.
#ifndef ACS_BENCH_BENCH_COMMON_H
#define ACS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/eval_workspace.h"
#include "core/pipeline.h"
#include "dpm/dpm.h"
#include "model/power_model.h"
#include "model/task.h"
#include "runner/csv_sink.h"
#include "runner/experiment_grid.h"
#include "runner/run_grid.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace dvs::core {
class SolveStore;
}  // namespace dvs::core

namespace dvs::obs {
class ConvergenceRecorder;
class MetricsRegistry;
class TraceRecorder;
}  // namespace dvs::obs

namespace dvs::bench {

/// Process-global telemetry owned by a bench run (see src/obs): created and
/// installed by SweepConfig::Finalize() when the telemetry flags ask for
/// it, uninstalled by the destructor.  Observation-only — results and CSVs
/// are byte-identical with any combination enabled.
struct TelemetryState {
  TelemetryState();
  ~TelemetryState();
  TelemetryState(const TelemetryState&) = delete;
  TelemetryState& operator=(const TelemetryState&) = delete;

  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::TraceRecorder> trace;
  std::unique_ptr<obs::ConvergenceRecorder> convergence;
};

/// Machine-readable run record accumulated across a bench's grids and
/// written by --bench-json: one entry per (grid, repeat) with wall-clock
/// timing and per-method energy aggregates.  Repeat 0 runs with whatever
/// workspace state the process has ("cold" on the first grid); repeats > 0
/// re-run the identical grid against the now-warm per-thread workspaces, so
/// the cold/warm delta is the workspace reuse win (--grid-repeats).
struct BenchReport {
  struct MethodSummary {
    std::string name;
    double mean_measured_energy = 0.0;
    double mean_improvement = 0.0;  // vs the grid baseline; 0 for itself
  };
  struct Entry {
    std::string label;
    std::int64_t repeat = 0;
    double wall_ms = 0.0;
    std::size_t cells = 0;
    std::size_t failed_cells = 0;
    std::int64_t threads = 1;
    std::vector<MethodSummary> methods;
  };

  std::vector<Entry> entries;
  double total_wall_ms = 0.0;
};

struct SweepConfig {
  std::int64_t tasksets = 8;        // random sets per grid point (paper: 100)
  std::int64_t hyper_periods = 150; // simulated hyper-periods (paper: 1000)
  std::int64_t seeds = 5;           // workload repetitions for fixed sets
  std::uint64_t seed = 20050307;    // master seed (DATE'05 week, for fun)
  std::int64_t threads = 1;         // worker threads for grid sweeps
  std::string methods = "acs,wcs";  // registry methods, comma-separated
  std::string baseline = "wcs";     // improvement reference method
  /// Execution-time scenario axis (--scenarios), comma-separated
  /// workload::ScenarioRegistry names.  The default keeps every bench on
  /// the paper's i.i.d. truncated normal — and its CSVs byte-identical to
  /// the pre-scenario tree; any other value adds a "scenario" column to
  /// --cell-csv output (see runner::CsvSink).
  std::string scenarios = "iid-normal";
  /// Scenario-conditioned planning knobs (--plan-quantile,
  /// --mixture-samples, --calibration-samples), read only by the
  /// acs-scenario / acs-quantile / acs-mixture arms.
  core::PlanningOptions planning;
  /// Online expected-case dispatch + drift replanning knobs
  /// (--online-dp-bins, --drift-ewma, --drift-threshold), read only by the
  /// acs-online / acs-online-drift arms.
  core::OnlineOptions online;
  /// Sigma-axis warm-start policy of the planning arms (--warm-start):
  /// "off" keeps the pre-warm-start byte-identical solves, "neighbor"
  /// chains each cell's solve along the sigma-axis prefix (continuation —
  /// see runner::ExperimentGrid::warm_start).
  std::string warm_start = "off";
  /// Appends the opt-in solver iteration/evaluation columns to --cell-csv
  /// rows (--csv-solver-stats); the legacy schema is untouched without it.
  bool csv_solver_stats = false;
  /// Leakage-aware DPM layer (--dpm): sleep states across break-even idle
  /// intervals, a critical-speed dispatch floor and cross-hyper-period core
  /// reallocation.  Off keeps every bench byte-identical to the pre-DPM
  /// tree.  Enabling it also adds the DPM ledger columns to --cell-csv.
  bool dpm = false;
  /// Sleep-state preset (--sleep-state): ideal | shallow | deep, resolved
  /// against the bench's idle floor by dpm::ResolveSleepState.
  std::string sleep_state = "deep";
  /// Critical-speed floor request (--critical-speed): 0 derives it from the
  /// model and idle floor, > 0 forces that fraction of top speed, < 0
  /// disables the floor (see dpm::Options::critical_speed).
  double critical_speed = 0.0;
  /// Disables the cross-hyper-period reallocation pass (--dpm-no-realloc);
  /// on by default under --dpm.
  bool dpm_no_realloc = false;
  /// Hyper-periods run on the original partition before the consolidated
  /// one takes over (--realloc-after).
  std::int64_t realloc_after = 1;
  bool paper = false;               // restore the paper's full scale
  std::string csv;                  // optional CSV output path (aggregates)
  std::string cell_csv;             // optional per-cell streaming CSV path
  /// Machine-readable timing/energy summary path (--bench-json); empty
  /// disables the report.
  std::string bench_json;
  /// Telemetry artifacts (src/obs).  --trace-out writes a Chrome
  /// trace_event JSON (chrome://tracing / Perfetto), --convergence-out a
  /// per-iteration solver JSONL, --manifest-out a run manifest; --metrics
  /// collects and prints the aggregated counters even without a manifest.
  std::string trace_out;
  std::string manifest_out;
  std::string convergence_out;
  bool metrics = false;
  /// Persistent cross-run solve cache directory (--cache-dir): Finalize()
  /// opens a core::SolveStore there (creating the directory), every grid
  /// run pre-seeds from and absorbs into it, and WriteRunArtifacts()
  /// writes it back to disk.  Empty disables persistence.  Results and
  /// CSVs are byte-identical with or without a cache.
  std::string cache_dir;
  /// Opens --cache-dir read-only (--cache-read-only): pre-seed without
  /// taking the writer LOCK or writing back — the shared-cache flow for
  /// concurrent shards (see tools/shard_grid).
  bool cache_read_only = false;
  /// Cell handout policy (--cell-scheduling): "family" (cache-affinity
  /// families + stealing, the default) or "cursor" (the legacy handout).
  std::string scheduling = "family";
  /// Times each grid this many times (--grid-repeats): repeat 0 is the
  /// result-bearing run, later repeats re-run the identical grid against
  /// warm workspaces purely for the --bench-json timing trajectory.
  std::int64_t grid_repeats = 1;
  /// Streaming sink RunOpts attaches to every grid run; set by
  /// OpenCellSink (benches can also point it at their own ResultSink).
  runner::ResultSink* sink = nullptr;
  /// Accumulated --bench-json entries (shared so the const sweep helpers
  /// can append).
  std::shared_ptr<BenchReport> report = std::make_shared<BenchReport>();
  /// Per-worker evaluation workspaces, persistent across this config's
  /// grid runs (the warm state --grid-repeats measures).
  std::shared_ptr<std::vector<core::EvalWorkspace>> workspaces =
      std::make_shared<std::vector<core::EvalWorkspace>>();
  /// Bench binary name for the report header; captured by Register().
  std::string program;
  /// Telemetry backing the flags above (shared so const copies of the
  /// config reference one process-global installation).
  std::shared_ptr<TelemetryState> telemetry =
      std::make_shared<TelemetryState>();
  /// The open --cache-dir store (null without the flag); created by
  /// Finalize(), written back by WriteRunArtifacts().
  std::shared_ptr<core::SolveStore> solve_store;

  /// Registers the shared flags on a parser.
  void Register(util::ArgParser& parser);

  /// Applies --paper (tasksets=100, hyper_periods=1000, seeds=20) and
  /// installs the telemetry the flags ask for — call before the first grid
  /// run so every worker thread sees it.
  void Finalize();

  /// Opens the --cell-csv streaming sink (null when the flag is unset) and
  /// points `sink` at it so every subsequent grid run streams one row per
  /// (cell, method).  The caller owns the returned sink and keeps it alive
  /// across its RunGrid calls — discarding it would leave `sink` dangling,
  /// hence nodiscard.
  [[nodiscard]] std::unique_ptr<runner::CsvSink> OpenCellSink();

  /// `methods` split on commas (empty fields dropped).
  std::vector<std::string> MethodList() const;

  /// `scenarios` split on commas (empty fields dropped).
  std::vector<std::string> ScenarioList() const;

  /// True when ScenarioList() is anything but the default {"iid-normal"} —
  /// the trigger for the --cell-csv scenario column.
  bool SweepsScenarios() const;

  /// `warm_start` parsed; throws InvalidArgumentError on unknown text.
  core::WarmStartPolicy WarmStartPolicy() const;

  /// The DPM options the --dpm flags describe, resolved against `idle` (the
  /// bench's per-core floor): sleep preset, critical-speed request,
  /// reallocation knobs.  `enabled` mirrors --dpm, so benches can assign
  /// the result to ExperimentGrid::dpm unconditionally.
  dvs::dpm::Options DpmOptions(const model::IdlePower& idle) const;

  /// `scheduling` parsed; throws InvalidArgumentError on unknown text.
  runner::CellScheduling Scheduling() const;

  /// Worker count after resolving 0 to the hardware thread count.
  std::int64_t ResolvedThreads() const;

  /// Grid seeded and scaled from this config, with the given sources.
  runner::ExperimentGrid MakeGrid(const model::DvsModel& dvs,
                                  std::vector<runner::TaskSetSource> sources,
                                  std::uint64_t grid_label = 0) const;

  runner::RunOptions RunOpts() const;

  /// Writes the accumulated BenchReport to `bench_json` (no-op when the
  /// flag is unset).  Emit() calls this; benches with custom epilogues can
  /// call it directly.
  void WriteBenchJson() const;

  /// Writes the telemetry artifacts the flags configured: the Chrome trace
  /// (--trace-out), the run manifest (--manifest-out), flushes the
  /// convergence JSONL, and prints the aggregated metrics when --metrics is
  /// set.  Emit() calls this after WriteBenchJson; benches with custom
  /// epilogues call it directly.
  void WriteRunArtifacts() const;
};

/// Runs `grid` through runner::RunGrid `config.grid_repeats` times against
/// the config's persistent per-worker workspaces, recording one timed
/// BenchReport entry per repeat under `label`; returns the first repeat's
/// result (bit-identical to a plain RunGrid call).
runner::GridResult RunGridTimed(const runner::ExperimentGrid& grid,
                                const core::MethodRegistry& registry,
                                const SweepConfig& config, std::string label);

/// Same, against the built-in registry.
runner::GridResult RunGridTimed(const runner::ExperimentGrid& grid,
                                const SweepConfig& config, std::string label);

struct SweepPoint {
  stats::OnlineStats improvement;   // first non-baseline method vs baseline
  std::int64_t total_misses = 0;    // across all methods (must stay 0)
  std::int64_t fallbacks = 0;       // scheduler warm-start fallbacks
  std::size_t failed_cells = 0;     // infeasible draws skipped

  /// Per-method aggregates in grid-method order.
  std::vector<std::string> methods;
  std::vector<stats::OnlineStats> method_energy;
  std::vector<stats::OnlineStats> method_improvement;  // vs baseline
};

/// Parses a comma-separated list of strictly positive integers (--cores
/// style flags).  Rejects empty lists, non-numeric entries, trailing junk
/// ("4x") and non-positive values, wrapping every failure in
/// util::InvalidArgumentError naming `flag`.
std::vector<int> ParsePositiveIntList(const std::string& flag,
                                      const std::string& text);

/// Same for strictly positive doubles (--sigmas style flags).
std::vector<double> ParsePositiveDoubleList(const std::string& flag,
                                            const std::string& text);

/// Index of the first grid method that is not the baseline — the method the
/// benches' "improvement" column reports.  Throws InvalidArgumentError when
/// every grid method is the baseline.
std::size_t FirstNonBaseline(const runner::ExperimentGrid& grid);

/// Collapses a grid run into the legacy sweep-point shape.
SweepPoint Collapse(const runner::ExperimentGrid& grid,
                    const runner::GridResult& result);

/// Fig. 6 (left): aggregates `config.tasksets` random task sets with
/// `num_tasks` tasks at the given BCEC/WCEC ratio through runner::RunGrid.
/// The source label carries both sweep coordinates (e.g. "random-6-r0.1")
/// so --cell-csv rows from different grids stay attributable.
SweepPoint RunRandomSweep(int num_tasks, double ratio,
                          const SweepConfig& config,
                          const model::DvsModel& dvs);

/// Fig. 6 (right): aggregates `config.seeds` workload streams on one fixed
/// task set through runner::RunGrid.  `label` names the sweep point in
/// --cell-csv rows (benches running several grids must make it unique,
/// e.g. "cnc-r0.1").
SweepPoint RunFixedSetSweep(const model::TaskSet& set, std::string label,
                            const SweepConfig& config,
                            const model::DvsModel& dvs);

/// Standard epilogue: prints the table, optionally writes the CSV.
void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const std::string& csv_path);

/// Same, plus the --bench-json report when configured.
void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const SweepConfig& config);

}  // namespace dvs::bench

#endif  // ACS_BENCH_BENCH_COMMON_H
