// Shared experiment-harness code for the figure/table reproduction benches.
//
// Every bench binary follows the same pattern: parse scale flags (defaults
// give a minutes-scale run; --paper restores the paper's 100 task sets x
// 1000 hyper-periods), sweep the paper's parameter grid, print the figure's
// series as an aligned table, and drop a CSV twin next to the binary.
#ifndef ACS_BENCH_BENCH_COMMON_H
#define ACS_BENCH_BENCH_COMMON_H

#include <cstdint>
#include <functional>
#include <string>

#include "core/pipeline.h"
#include "model/power_model.h"
#include "model/task.h"
#include "stats/summary.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace dvs::bench {

struct SweepConfig {
  std::int64_t tasksets = 8;        // random sets per grid point (paper: 100)
  std::int64_t hyper_periods = 150; // simulated hyper-periods (paper: 1000)
  std::int64_t seeds = 5;           // workload repetitions for fixed sets
  std::uint64_t seed = 20050307;    // master seed (DATE'05 week, for fun)
  bool paper = false;               // restore the paper's full scale
  std::string csv;                  // optional CSV output path

  /// Registers the shared flags on a parser.
  void Register(util::ArgParser& parser);

  /// Applies --paper: tasksets=100, hyper_periods=1000, seeds=20.
  void Finalize();
};

struct SweepPoint {
  stats::OnlineStats improvement;   // ACS-vs-WCS improvement per repetition
  std::int64_t total_misses = 0;    // across both methods (must stay 0)
  std::int64_t fallbacks = 0;       // scheduler warm-start fallbacks
};

/// Fig. 6 (left): aggregates CompareAcsWcs over `config.tasksets` random
/// task sets with `num_tasks` tasks at the given BCEC/WCEC ratio.
SweepPoint RunRandomSweep(int num_tasks, double ratio,
                          const SweepConfig& config,
                          const model::DvsModel& dvs);

/// Fig. 6 (right): aggregates CompareAcsWcs over `config.seeds` workload
/// streams on one fixed task set.
SweepPoint RunFixedSetSweep(const model::TaskSet& set,
                            const SweepConfig& config,
                            const model::DvsModel& dvs);

/// Standard epilogue: prints the table, optionally writes the CSV.
void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const std::string& csv_path);

}  // namespace dvs::bench

#endif  // ACS_BENCH_BENCH_COMMON_H
