// Leakage-aware DPM sweep: DPM-off vs DPM-on fleet energy, paired.
//
// The DPM layer's headline experiment (Huang et al., leakage-aware DVS):
// draw lightly loaded fleets (default 10% worst-case utilisation per core —
// the regime where the always-on idle floor dominates), then run every cell
// twice from the same master seed: once on the legacy pipeline, once with
// the DPM layer on — sleep states across break-even idle intervals, the
// critical-speed dispatch floor, and the cross-hyper-period reallocation
// that empties under-utilised cores.  Identical seeds mean identical
// task-set draws (and identical partitions for the utilisation-driven
// partitioners), so the off/on delta is the DPM win, not a seed lottery.
//
// Reported per (core count, partitioner): mean fleet power off and on, the
// paired saving, committed sleeps, reallocation migrations, the
// time-weighted powered-core count, and deadline misses (which must stay
// zero: timed sleeps never move a dispatch, and the reallocator preserves
// exact RM admission).
#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dpm/dpm.h"
#include "mp/partitioner.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 4;
  config.hyper_periods = 50;
  std::string cores_flag = "2,4";
  std::string partitioners_flag = "ffd,wfd,energy-greedy";
  double idle_power = 0.5;
  double per_core_utilization = 0.1;

  util::ArgParser parser("bench_dpm_sleep",
                         "leakage-aware DPM vs the always-on idle floor");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("cores", &cores_flag, "comma-separated core counts");
  parser.AddString("partitioners", &partitioners_flag,
                   "comma-separated mp partitioners");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddDouble("per-core-utilization", &per_core_utilization,
                   "worst-case utilisation target per core");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    // The comparison is off-vs-on by construction; --dpm only affects the
    // --cell-csv schema (the on-grid rows carry the DPM ledger columns).
    config.dpm = true;
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const std::vector<int> core_counts =
        bench::ParsePositiveIntList("cores", cores_flag);
    std::vector<std::string> partitioners;
    for (const std::string& name : util::Split(partitioners_flag, ',')) {
      if (!name.empty()) {
        partitioners.push_back(name);
      }
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const model::IdlePower idle{idle_power};
    const dvs::dpm::Options dpm_options = config.DpmOptions(idle);
    // Driver-owned critical-speed floor: one wrapper for the whole run, so
    // solve caches keyed by model identity stay coherent (dpm/dpm.h).
    const dvs::dpm::CriticalSpeedFloor floor(cpu, dpm_options);

    std::cout << "Leakage-aware DPM sweep ("
              << util::FormatPercent(per_core_utilization)
              << " per core, idle floor " << idle_power << "/ms/core, sleep \""
              << config.sleep_state << "\", "
              << (floor.active()
                      ? "speed floor " + util::FormatDouble(floor.speed_floor(), 3)
                      : std::string("no speed floor"))
              << ", " << config.tasksets << " sets/point, "
              << config.ResolvedThreads() << " threads)\n\n";

    util::TextTable table({"cores", "partitioner", "off power", "on power",
                           "saving", "sleeps", "migr", "w-cores", "misses"});
    util::CsvTable csv({"cores", "partitioner", "off_fleet_power",
                        "on_fleet_power", "saving_mean", "saving_stddev",
                        "sleeps", "migrations", "weighted_cores_mean",
                        "deadline_misses", "failed_cells"});

    for (int m : core_counts) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = std::max(6, 3 * m);
      gen.bcec_wcec_ratio = 0.3;
      gen.utilization = per_core_utilization * static_cast<double>(m);
      gen.max_sub_instances = 350;

      const runner::TaskSetSource source = runner::RandomSource(
          "random-m" + std::to_string(m), gen, config.tasksets);

      // Sibling grids from one master seed: identical task-set draws and
      // workload streams, differing only in the DPM layer (and the floored
      // model the on-grid evaluates under).
      runner::ExperimentGrid off_grid = config.MakeGrid(
          cpu, {source}, static_cast<std::uint64_t>(m));
      off_grid.core_counts = {m};
      off_grid.partitioners = partitioners;
      off_grid.idle_power = idle;

      runner::ExperimentGrid on_grid = config.MakeGrid(
          floor.model(), {source}, static_cast<std::uint64_t>(m));
      on_grid.core_counts = {m};
      on_grid.partitioners = partitioners;
      on_grid.idle_power = idle;
      on_grid.dpm = dpm_options;

      const runner::GridResult off = bench::RunGridTimed(
          off_grid, config, "dpm-off-m" + std::to_string(m));
      const runner::GridResult on = bench::RunGridTimed(
          on_grid, config, "dpm-on-m" + std::to_string(m));
      const std::size_t method = bench::FirstNonBaseline(off_grid);

      for (std::size_t p = 0; p < partitioners.size(); ++p) {
        stats::OnlineStats off_power;
        stats::OnlineStats on_power;
        stats::OnlineStats saving;
        stats::OnlineStats weighted;
        std::int64_t sleeps = 0;
        std::int64_t migrations = 0;
        std::int64_t misses = 0;
        std::size_t failed = 0;
        for (std::size_t i = 0; i < off.cells.size(); ++i) {
          const runner::CellResult& a = off.cells[i];
          const runner::CellResult& b = on.cells[i];
          if (a.coord.partitioner_index != p) {
            continue;
          }
          if (!a.ok() || !b.ok()) {
            ++failed;
            continue;
          }
          const core::MethodOutcome& off_out = a.outcomes[method];
          const core::MethodOutcome& on_out = b.outcomes[method];
          off_power.Add(off_out.measured_energy);
          on_power.Add(on_out.measured_energy);
          saving.Add(core::ImprovementRatio(off_out.measured_energy,
                                            on_out.measured_energy));
          weighted.Add(on_out.weighted_cores);
          sleeps += on_out.sleeps;
          migrations += on_out.migrations;
          for (const core::MethodOutcome& outcome : a.outcomes) {
            misses += outcome.deadline_misses;
          }
          for (const core::MethodOutcome& outcome : b.outcomes) {
            misses += outcome.deadline_misses;
          }
        }
        const bool has_data = saving.count() > 0;
        table.AddRow(
            {std::to_string(m), partitioners[p],
             has_data ? util::FormatDouble(off_power.mean(), 3) : "n/a",
             has_data ? util::FormatDouble(on_power.mean(), 3) : "n/a",
             has_data ? util::FormatPercent(saving.mean()) : "n/a",
             std::to_string(sleeps), std::to_string(migrations),
             has_data ? util::FormatDouble(weighted.mean(), 2) : "n/a",
             std::to_string(misses)});
        csv.NewRow()
            .Add(m)
            .Add(partitioners[p])
            .Add(has_data ? off_power.mean() : 0.0, 6)
            .Add(has_data ? on_power.mean() : 0.0, 6)
            .Add(has_data ? saving.mean() : 0.0, 6)
            .Add(has_data ? saving.stddev() : 0.0, 6)
            .Add(sleeps)
            .Add(migrations)
            .Add(has_data ? weighted.mean() : 0.0, 4)
            .Add(misses)
            .Add(failed);
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: at light load the idle floor dominates, so "
                 "sleeping through consolidated idle intervals (and emptying "
                 "cores across hyper-periods) cuts fleet power well below "
                 "the DVS-only pipeline — with zero deadline misses, since "
                 "timed sleeps never move a dispatch\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
