#include "bench_common.h"

#include <iostream>

#include "util/logging.h"
#include "workload/random_taskset.h"

namespace dvs::bench {

void SweepConfig::Register(util::ArgParser& parser) {
  parser.AddInt("tasksets", &tasksets,
                "random task sets per grid point");
  parser.AddInt("hyper-periods", &hyper_periods,
                "simulated hyper-periods per run");
  parser.AddInt("seeds", &seeds, "workload streams for fixed task sets");
  parser.AddInt("seed", reinterpret_cast<std::int64_t*>(&seed),
                "master random seed");
  parser.AddFlag("paper", &paper,
                 "paper scale: 100 task sets, 1000 hyper-periods");
  parser.AddString("csv", &csv, "write results to this CSV file");
}

void SweepConfig::Finalize() {
  if (paper) {
    tasksets = 100;
    hyper_periods = 1000;
    seeds = 20;
  }
}

SweepPoint RunRandomSweep(int num_tasks, double ratio,
                          const SweepConfig& config,
                          const model::DvsModel& dvs) {
  SweepPoint point;
  stats::Rng master(config.seed);
  // Decorrelate grid points: fold the grid coordinates into the stream.
  stats::Rng stream = master.ForkWith(
      static_cast<std::uint64_t>(num_tasks) * 1000003ULL +
      static_cast<std::uint64_t>(ratio * 1e6));

  for (std::int64_t i = 0; i < config.tasksets; ++i) {
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = num_tasks;
    gen.bcec_wcec_ratio = ratio;
    stats::Rng set_rng = stream.Fork();
    const model::TaskSet set =
        workload::GenerateRandomTaskSet(gen, dvs, set_rng);

    core::ExperimentOptions options;
    options.hyper_periods = config.hyper_periods;
    options.seed = stream.NextU64();
    const core::ComparisonResult result =
        core::CompareAcsWcs(set, dvs, options);

    point.improvement.Add(result.Improvement());
    point.total_misses +=
        result.acs.deadline_misses + result.wcs.deadline_misses;
    point.fallbacks += (result.acs.used_fallback ? 1 : 0) +
                       (result.wcs.used_fallback ? 1 : 0);
  }
  return point;
}

SweepPoint RunFixedSetSweep(const model::TaskSet& set,
                            const SweepConfig& config,
                            const model::DvsModel& dvs) {
  SweepPoint point;
  stats::Rng stream(config.seed);
  for (std::int64_t i = 0; i < config.seeds; ++i) {
    core::ExperimentOptions options;
    options.hyper_periods = config.hyper_periods;
    options.seed = stream.NextU64();
    const core::ComparisonResult result =
        core::CompareAcsWcs(set, dvs, options);
    point.improvement.Add(result.Improvement());
    point.total_misses +=
        result.acs.deadline_misses + result.wcs.deadline_misses;
    point.fallbacks += (result.acs.used_fallback ? 1 : 0) +
                       (result.wcs.used_fallback ? 1 : 0);
  }
  return point;
}

void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const std::string& csv_path) {
  std::cout << table.Render() << std::flush;
  if (!csv_path.empty()) {
    csv.WriteFile(csv_path);
    std::cout << "csv written to " << csv_path << "\n";
  }
}

}  // namespace dvs::bench
