#include "bench_common.h"

#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/solve_store.h"
#include "obs/convergence.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/thread_pool.h"
#include "util/error.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/random_taskset.h"

namespace dvs::bench {

TelemetryState::TelemetryState() = default;

TelemetryState::~TelemetryState() {
  // The recorders self-uninstall in their destructors; the metrics registry
  // uses a plain pointer, so clear it before the registry dies.
  if (metrics != nullptr && obs::ActiveMetrics() == metrics.get()) {
    obs::InstallMetrics(nullptr);
  }
}

void SweepConfig::Register(util::ArgParser& parser) {
  program = parser.program();
  parser.AddInt("tasksets", &tasksets,
                "random task sets per grid point");
  parser.AddInt("hyper-periods", &hyper_periods,
                "simulated hyper-periods per run");
  parser.AddInt("seeds", &seeds, "workload streams for fixed task sets");
  parser.AddInt("seed", reinterpret_cast<std::int64_t*>(&seed),
                "master random seed");
  parser.AddInt("threads", &threads,
                "worker threads for grid sweeps (0 = all hardware threads)");
  parser.AddString("methods", &methods,
                   "comma-separated registry methods to evaluate");
  parser.AddString("baseline", &baseline,
                   "registry method the improvement is measured against");
  parser.AddString("scenarios", &scenarios,
                   "comma-separated execution-time scenarios to sweep");
  parser.AddDouble("plan-quantile", &planning.quantile,
                   "per-task planning quantile of the acs-quantile arm");
  parser.AddInt("mixture-samples", &planning.mixture_samples,
                "calibrated sample vectors the acs-mixture objective "
                "averages over");
  parser.AddInt("calibration-samples", &planning.calibration_samples,
                "offline calibration draws per task for the planning arms");
  parser.AddInt("online-dp-bins", &online.dp_bins,
                "cycle bins of the acs-online expected-case dispatch "
                "profile");
  parser.AddDouble("drift-ewma", &online.drift_ewma,
                   "EWMA weight of one hyper-period's realised mean cycles "
                   "(acs-online-drift)");
  parser.AddDouble("drift-threshold", &online.drift_threshold,
                   "relative EWMA-vs-plan drift that triggers a warm-started "
                   "replan (acs-online-drift)");
  parser.AddString("warm-start", &warm_start,
                   "sigma-axis warm-start policy for the planning arms: "
                   "off | neighbor");
  parser.AddFlag("csv-solver-stats", &csv_solver_stats,
                 "append solver iteration/evaluation columns to --cell-csv "
                 "rows");
  parser.AddFlag("dpm", &dpm,
                 "enable the leakage-aware DPM layer (sleep states, "
                 "critical-speed floor, core reallocation)");
  parser.AddString("sleep-state", &sleep_state,
                   "DPM sleep-state preset: ideal | shallow | deep");
  parser.AddDouble("critical-speed", &critical_speed,
                   "critical-speed floor as a fraction of top speed "
                   "(0 = derive from the model, < 0 = no floor)");
  parser.AddFlag("dpm-no-realloc", &dpm_no_realloc,
                 "disable the cross-hyper-period core reallocation pass");
  parser.AddInt("realloc-after", &realloc_after,
                "hyper-periods before the consolidated partition takes over");
  parser.AddFlag("paper", &paper,
                 "paper scale: 100 task sets, 1000 hyper-periods");
  parser.AddString("csv", &csv, "write results to this CSV file");
  parser.AddString("cell-csv", &cell_csv,
                   "stream one row per (cell, method) to this CSV file");
  parser.AddString("bench-json", &bench_json,
                   "write a machine-readable timing/energy summary here");
  parser.AddInt("grid-repeats", &grid_repeats,
                "time each grid this many times (repeats > 0 re-run against "
                "warm per-thread workspaces; results come from repeat 0)");
  parser.AddString("trace-out", &trace_out,
                   "write a Chrome trace_event JSON of the run's phase "
                   "spans here (chrome://tracing, Perfetto)");
  parser.AddString("manifest-out", &manifest_out,
                   "write a run manifest (build, config, aggregated "
                   "metrics) here");
  parser.AddString("convergence-out", &convergence_out,
                   "write per-iteration SPG/ALM solver records (JSONL) "
                   "here");
  parser.AddFlag("metrics", &metrics,
                 "collect and print the aggregated telemetry counters");
  parser.AddString("cache-dir", &cache_dir,
                   "persistent cross-run solve cache directory (created if "
                   "missing; results are byte-identical with or without it)");
  parser.AddFlag("cache-read-only", &cache_read_only,
                 "open --cache-dir read-only: pre-seed solves without "
                 "locking or writing back (shared-cache shard flow)");
  parser.AddString("cell-scheduling", &scheduling,
                   "grid cell handout: family (cache-affinity families + "
                   "stealing) | cursor (legacy one-cell handout)");
}

std::unique_ptr<runner::CsvSink> SweepConfig::OpenCellSink() {
  if (cell_csv.empty()) {
    return nullptr;
  }
  auto cell_sink = std::make_unique<runner::CsvSink>(
      cell_csv, SweepsScenarios(), csv_solver_stats, dpm);
  sink = cell_sink.get();
  return cell_sink;
}

void SweepConfig::Finalize() {
  if (paper) {
    tasksets = 100;
    hyper_periods = 1000;
    seeds = 20;
  }
  // Install the requested telemetry before any worker thread exists (the
  // Logger-style install-before-spawn contract).  A manifest wants the
  // aggregated metrics, so --manifest-out implies the registry.
  if ((metrics || !manifest_out.empty()) && telemetry->metrics == nullptr) {
    telemetry->metrics = std::make_unique<obs::MetricsRegistry>();
    telemetry->metrics->EnsureShards(
        static_cast<std::size_t>(ResolvedThreads()));
    obs::InstallMetrics(telemetry->metrics.get());
  }
  if (!trace_out.empty() && telemetry->trace == nullptr) {
    telemetry->trace = std::make_unique<obs::TraceRecorder>();
    obs::TraceRecorder::Install(telemetry->trace.get());
  }
  if (!convergence_out.empty() && telemetry->convergence == nullptr) {
    telemetry->convergence =
        std::make_unique<obs::ConvergenceRecorder>(convergence_out);
    obs::ConvergenceRecorder::Install(telemetry->convergence.get());
  }
  Scheduling();  // validate --cell-scheduling before the first grid runs
  if (!cache_dir.empty() && solve_store == nullptr) {
    solve_store = std::make_shared<core::SolveStore>(cache_dir,
                                                     cache_read_only);
  }
}

std::vector<std::string> SweepConfig::MethodList() const {
  std::vector<std::string> list;
  std::vector<std::string> parts = util::Split(methods, ',');
  for (std::string& name : parts) {
    if (!name.empty()) {
      list.push_back(std::move(name));
    }
  }
  ACS_REQUIRE(!list.empty(), "--methods must name at least one method");
  return list;
}

std::vector<std::string> SweepConfig::ScenarioList() const {
  std::vector<std::string> list;
  std::vector<std::string> parts = util::Split(scenarios, ',');
  for (std::string& name : parts) {
    if (!name.empty()) {
      list.push_back(std::move(name));
    }
  }
  ACS_REQUIRE(!list.empty(), "--scenarios must name at least one scenario");
  return list;
}

bool SweepConfig::SweepsScenarios() const {
  const std::vector<std::string> list = ScenarioList();
  return list.size() != 1 || list.front() != "iid-normal";
}

runner::CellScheduling SweepConfig::Scheduling() const {
  if (scheduling == "family") {
    return runner::CellScheduling::kFamilyAffinity;
  }
  if (scheduling == "cursor") {
    return runner::CellScheduling::kCursor;
  }
  throw util::InvalidArgumentError(
      "--cell-scheduling must be family or cursor, got \"" + scheduling +
      "\"");
}

dvs::dpm::Options SweepConfig::DpmOptions(const model::IdlePower& idle) const {
  dvs::dpm::Options options;
  options.enabled = dpm;
  options.idle = idle;
  options.sleep = dvs::dpm::ResolveSleepState(sleep_state, idle);
  options.critical_speed = critical_speed;
  options.reallocate = !dpm_no_realloc;
  options.realloc_after = realloc_after;
  return options;
}

core::WarmStartPolicy SweepConfig::WarmStartPolicy() const {
  if (warm_start == "off") {
    return core::WarmStartPolicy::kOff;
  }
  if (warm_start == "neighbor") {
    return core::WarmStartPolicy::kNeighbor;
  }
  throw util::InvalidArgumentError(
      "--warm-start must be off or neighbor, got \"" + warm_start + "\"");
}

runner::ExperimentGrid SweepConfig::MakeGrid(
    const model::DvsModel& dvs, std::vector<runner::TaskSetSource> sources,
    std::uint64_t grid_label) const {
  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = std::move(sources);
  grid.methods = MethodList();
  grid.baseline = baseline;
  grid.scenarios = ScenarioList();
  grid.hyper_periods = hyper_periods;
  grid.planning = planning;
  grid.online = online;
  grid.warm_start = WarmStartPolicy();
  // Decorrelate grid points sharing one config seed (e.g. fig6a's task-count
  // x ratio sweep runs one grid per point).
  grid.master_seed = stats::Rng(seed).ForkWith(grid_label).NextU64();
  return grid;
}

std::int64_t SweepConfig::ResolvedThreads() const {
  return threads > 0 ? threads : runner::ThreadPool::HardwareThreads();
}

runner::RunOptions SweepConfig::RunOpts() const {
  runner::RunOptions options;
  options.threads = static_cast<int>(threads);
  options.sink = sink;
  options.workspaces = workspaces.get();
  options.scheduling = Scheduling();
  options.solve_store = solve_store.get();
  return options;
}

void SweepConfig::WriteBenchJson() const {
  if (bench_json.empty()) {
    return;
  }
  util::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value(program);
  json.Key("config")
      .BeginObject()
      .Key("tasksets")
      .Value(tasksets)
      .Key("hyper_periods")
      .Value(hyper_periods)
      .Key("seeds")
      .Value(seeds)
      .Key("seed")
      .Value(static_cast<std::uint64_t>(seed))
      .Key("threads")
      .Value(ResolvedThreads())
      .Key("methods")
      .Value(methods)
      .Key("baseline")
      .Value(baseline)
      .Key("scenarios")
      .Value(scenarios)
      .Key("grid_repeats")
      .Value(grid_repeats)
      .Key("paper")
      .Value(paper)
      .EndObject();
  json.Key("grids").BeginArray();
  for (const BenchReport::Entry& entry : report->entries) {
    json.BeginObject();
    json.Key("label").Value(entry.label);
    json.Key("repeat").Value(entry.repeat);
    json.Key("wall_ms").Value(entry.wall_ms);
    json.Key("cells").Value(static_cast<std::uint64_t>(entry.cells));
    json.Key("failed_cells")
        .Value(static_cast<std::uint64_t>(entry.failed_cells));
    json.Key("threads").Value(entry.threads);
    json.Key("methods").BeginArray();
    for (const BenchReport::MethodSummary& method : entry.methods) {
      json.BeginObject();
      json.Key("name").Value(method.name);
      json.Key("mean_measured_energy").Value(method.mean_measured_energy);
      json.Key("mean_improvement").Value(method.mean_improvement);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Key("total_wall_ms").Value(report->total_wall_ms);
  // Cold (repeat 0) and warm (last repeat) wall-time totals across grids —
  // what the CI perf gate compares against its checked-in baseline.  The
  // last-repeat index uses the same >= 1 clamp as RunGridTimed, so
  // --grid-repeats 0 still reports the (single) run instead of zero.
  const std::int64_t last_repeat = std::max<std::int64_t>(1, grid_repeats) - 1;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  for (const BenchReport::Entry& entry : report->entries) {
    if (entry.repeat == 0) {
      cold_ms += entry.wall_ms;
    }
    if (entry.repeat == last_repeat) {
      warm_ms += entry.wall_ms;
    }
  }
  json.Key("cold_wall_ms").Value(cold_ms);
  json.Key("warm_wall_ms").Value(warm_ms);
  json.EndObject();

  std::ofstream out(bench_json);
  if (!out) {
    throw util::Error("cannot open --bench-json file: " + bench_json);
  }
  out << json.str() << '\n';
  std::cout << "bench json written to " << bench_json << "\n";
}

void SweepConfig::WriteRunArtifacts() const {
  // Write the solve cache back first so persist.write_backs — and the
  // final hit/miss tallies — land in the manifest's metric block below.
  if (solve_store != nullptr && !solve_store->read_only()) {
    const std::size_t written = solve_store->WriteBack();
    std::cout << "solve cache: " << written << " entr"
              << (written == 1 ? "y" : "ies") << " written back to "
              << solve_store->dir() << "\n";
  }
  if (telemetry->convergence != nullptr && !convergence_out.empty()) {
    telemetry->convergence->Flush();
    std::cout << "convergence records written to " << convergence_out << " ("
              << telemetry->convergence->records() << " records)\n";
  }
  if (telemetry->trace != nullptr && !trace_out.empty()) {
    telemetry->trace->WriteChromeTrace(trace_out);
    std::cout << "trace written to " << trace_out << " ("
              << telemetry->trace->event_count() << " spans)\n";
  }
  if (telemetry->metrics != nullptr && metrics) {
    std::cout << "telemetry metrics:\n";
    for (const obs::AggregatedMetric& metric : telemetry->metrics->Aggregate()) {
      switch (metric.kind) {
        case obs::MetricKind::kCounter:
          std::cout << "  " << metric.name << " = " << metric.count << "\n";
          break;
        case obs::MetricKind::kGauge:
          std::cout << "  " << metric.name << " = " << metric.value << "\n";
          break;
        case obs::MetricKind::kHistogram:
          std::cout << "  " << metric.name << " n=" << metric.count
                    << " sum=" << metric.value << "\n";
          break;
      }
    }
  }
  if (!manifest_out.empty()) {
    obs::RunManifest manifest;
    manifest.tool = program;
    manifest.master_seed = seed;
    manifest.threads = ResolvedThreads();
    manifest.wall_ms = report->total_wall_ms;
    manifest.config = {
        {"tasksets", std::to_string(tasksets)},
        {"hyper_periods", std::to_string(hyper_periods)},
        {"seeds", std::to_string(seeds)},
        {"threads", std::to_string(ResolvedThreads())},
        {"methods", methods},
        {"baseline", baseline},
        {"scenarios", scenarios},
        {"warm_start", warm_start},
        {"grid_repeats", std::to_string(grid_repeats)},
        {"paper", paper ? "true" : "false"},
        {"cell_scheduling", scheduling},
        {"cache_dir", cache_dir},
        {"cache_read_only", cache_read_only ? "true" : "false"},
    };
    obs::WriteManifest(manifest_out, manifest, telemetry->metrics.get());
    std::cout << "manifest written to " << manifest_out << "\n";
  }
}

runner::GridResult RunGridTimed(const runner::ExperimentGrid& grid,
                                const core::MethodRegistry& registry,
                                const SweepConfig& config, std::string label) {
  runner::GridResult result;
  for (std::int64_t repeat = 0; repeat < std::max<std::int64_t>(
                                    1, config.grid_repeats);
       ++repeat) {
    runner::RunOptions options = config.RunOpts();
    if (repeat > 0) {
      // Timing-only re-runs must not duplicate --cell-csv rows.
      options.sink = nullptr;
    }
    const auto start = std::chrono::steady_clock::now();
    runner::GridResult run = runner::RunGrid(grid, registry, options);
    const auto stop = std::chrono::steady_clock::now();

    BenchReport::Entry entry;
    entry.label = label;
    entry.repeat = repeat;
    entry.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    entry.cells = run.cells.size();
    entry.failed_cells = run.failed_cells;
    entry.threads = config.ResolvedThreads();
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      const runner::MethodAggregate aggregate = run.Aggregate(grid, m);
      BenchReport::MethodSummary summary;
      summary.name = grid.methods[m];
      summary.mean_measured_energy = aggregate.measured_energy.count() > 0
                                         ? aggregate.measured_energy.mean()
                                         : 0.0;
      summary.mean_improvement = aggregate.improvement.count() > 0
                                     ? aggregate.improvement.mean()
                                     : 0.0;
      entry.methods.push_back(std::move(summary));
    }
    config.report->entries.push_back(std::move(entry));
    config.report->total_wall_ms +=
        config.report->entries.back().wall_ms;

    if (repeat == 0) {
      result = std::move(run);
    }
  }
  return result;
}

runner::GridResult RunGridTimed(const runner::ExperimentGrid& grid,
                                const SweepConfig& config, std::string label) {
  return RunGridTimed(grid, core::MethodRegistry::Builtin(), config,
                      std::move(label));
}

namespace {

/// Shared shape of the two list parsers: split, trim empties, convert each
/// entry with `convert` (which must consume the whole field), require > 0.
template <typename T, typename Convert>
std::vector<T> ParsePositiveList(const std::string& flag,
                                 const std::string& text, Convert convert) {
  std::vector<T> values;
  for (const std::string& part : util::Split(text, ',')) {
    if (part.empty()) {
      continue;
    }
    T value{};
    std::size_t consumed = 0;
    try {
      value = convert(part, &consumed);
    } catch (const std::exception&) {  // stoi/stod invalid or out of range
      throw util::InvalidArgumentError("--" + flag +
                                       " entries must be positive numbers, "
                                       "got \"" + part + "\"");
    }
    ACS_REQUIRE(consumed == part.size() && value > T{0},
                "--" + flag + " entries must be positive numbers, got \"" +
                    part + "\"");
    values.push_back(value);
  }
  ACS_REQUIRE(!values.empty(), "--" + flag + " must name at least one value");
  return values;
}

}  // namespace

std::vector<int> ParsePositiveIntList(const std::string& flag,
                                      const std::string& text) {
  return ParsePositiveList<int>(
      flag, text,
      [](const std::string& part, std::size_t* consumed) {
        return std::stoi(part, consumed);
      });
}

std::vector<double> ParsePositiveDoubleList(const std::string& flag,
                                            const std::string& text) {
  return ParsePositiveList<double>(
      flag, text,
      [](const std::string& part, std::size_t* consumed) {
        return std::stod(part, consumed);
      });
}

std::size_t FirstNonBaseline(const runner::ExperimentGrid& grid) {
  const std::size_t baseline = grid.BaselineIndex();
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    if (m != baseline) {
      return m;
    }
  }
  throw util::InvalidArgumentError(
      "the grid needs at least one non-baseline method to report an "
      "improvement");
}

SweepPoint Collapse(const runner::ExperimentGrid& grid,
                    const runner::GridResult& result) {
  SweepPoint point;
  point.failed_cells = result.failed_cells;
  point.methods = grid.methods;

  const std::size_t reported = FirstNonBaseline(grid);
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    const runner::MethodAggregate aggregate = result.Aggregate(grid, m);
    point.method_energy.push_back(aggregate.measured_energy);
    point.method_improvement.push_back(aggregate.improvement);
    point.total_misses += aggregate.deadline_misses;
    point.fallbacks += aggregate.fallbacks;
    if (m == reported) {
      point.improvement = aggregate.improvement;
    }
  }
  return point;
}

SweepPoint RunRandomSweep(int num_tasks, double ratio,
                          const SweepConfig& config,
                          const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = ratio;

  const std::uint64_t label =
      static_cast<std::uint64_t>(num_tasks) * 1000003ULL +
      static_cast<std::uint64_t>(ratio * 1e6);
  const std::string source_label = "random-" + std::to_string(num_tasks) +
                                   "-r" + util::FormatDouble(ratio, 2);
  runner::ExperimentGrid grid = config.MakeGrid(
      dvs, {runner::RandomSource(source_label, gen, config.tasksets)}, label);
  return Collapse(grid, RunGridTimed(grid, config, source_label));
}

SweepPoint RunFixedSetSweep(const model::TaskSet& set, std::string label,
                            const SweepConfig& config,
                            const model::DvsModel& dvs) {
  const std::string grid_label = label;
  runner::ExperimentGrid grid =
      config.MakeGrid(dvs, {runner::FixedSource(std::move(label), set)});
  grid.workload_seeds.clear();
  for (std::int64_t i = 0; i < config.seeds; ++i) {
    grid.workload_seeds.push_back(static_cast<std::uint64_t>(i));
  }
  return Collapse(grid, RunGridTimed(grid, config, grid_label));
}

void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const std::string& csv_path) {
  std::cout << table.Render() << std::flush;
  if (!csv_path.empty()) {
    csv.WriteFile(csv_path);
    std::cout << "csv written to " << csv_path << "\n";
  }
}

void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const SweepConfig& config) {
  Emit(table, csv, config.csv);
  config.WriteBenchJson();
  config.WriteRunArtifacts();
}

}  // namespace dvs::bench
