#include "bench_common.h"

#include <iostream>
#include <utility>

#include "runner/thread_pool.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"
#include "workload/random_taskset.h"

namespace dvs::bench {

void SweepConfig::Register(util::ArgParser& parser) {
  parser.AddInt("tasksets", &tasksets,
                "random task sets per grid point");
  parser.AddInt("hyper-periods", &hyper_periods,
                "simulated hyper-periods per run");
  parser.AddInt("seeds", &seeds, "workload streams for fixed task sets");
  parser.AddInt("seed", reinterpret_cast<std::int64_t*>(&seed),
                "master random seed");
  parser.AddInt("threads", &threads,
                "worker threads for grid sweeps (0 = all hardware threads)");
  parser.AddString("methods", &methods,
                   "comma-separated registry methods to evaluate");
  parser.AddString("baseline", &baseline,
                   "registry method the improvement is measured against");
  parser.AddFlag("paper", &paper,
                 "paper scale: 100 task sets, 1000 hyper-periods");
  parser.AddString("csv", &csv, "write results to this CSV file");
  parser.AddString("cell-csv", &cell_csv,
                   "stream one row per (cell, method) to this CSV file");
}

std::unique_ptr<runner::CsvSink> SweepConfig::OpenCellSink() {
  if (cell_csv.empty()) {
    return nullptr;
  }
  auto cell_sink = std::make_unique<runner::CsvSink>(cell_csv);
  sink = cell_sink.get();
  return cell_sink;
}

void SweepConfig::Finalize() {
  if (paper) {
    tasksets = 100;
    hyper_periods = 1000;
    seeds = 20;
  }
}

std::vector<std::string> SweepConfig::MethodList() const {
  std::vector<std::string> list;
  std::vector<std::string> parts = util::Split(methods, ',');
  for (std::string& name : parts) {
    if (!name.empty()) {
      list.push_back(std::move(name));
    }
  }
  ACS_REQUIRE(!list.empty(), "--methods must name at least one method");
  return list;
}

runner::ExperimentGrid SweepConfig::MakeGrid(
    const model::DvsModel& dvs, std::vector<runner::TaskSetSource> sources,
    std::uint64_t grid_label) const {
  runner::ExperimentGrid grid;
  grid.dvs = &dvs;
  grid.sources = std::move(sources);
  grid.methods = MethodList();
  grid.baseline = baseline;
  grid.hyper_periods = hyper_periods;
  // Decorrelate grid points sharing one config seed (e.g. fig6a's task-count
  // x ratio sweep runs one grid per point).
  grid.master_seed = stats::Rng(seed).ForkWith(grid_label).NextU64();
  return grid;
}

std::int64_t SweepConfig::ResolvedThreads() const {
  return threads > 0 ? threads : runner::ThreadPool::HardwareThreads();
}

runner::RunOptions SweepConfig::RunOpts() const {
  runner::RunOptions options;
  options.threads = static_cast<int>(threads);
  options.sink = sink;
  return options;
}

std::size_t FirstNonBaseline(const runner::ExperimentGrid& grid) {
  const std::size_t baseline = grid.BaselineIndex();
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    if (m != baseline) {
      return m;
    }
  }
  throw util::InvalidArgumentError(
      "the grid needs at least one non-baseline method to report an "
      "improvement");
}

SweepPoint Collapse(const runner::ExperimentGrid& grid,
                    const runner::GridResult& result) {
  SweepPoint point;
  point.failed_cells = result.failed_cells;
  point.methods = grid.methods;

  const std::size_t reported = FirstNonBaseline(grid);
  for (std::size_t m = 0; m < grid.methods.size(); ++m) {
    const runner::MethodAggregate aggregate = result.Aggregate(grid, m);
    point.method_energy.push_back(aggregate.measured_energy);
    point.method_improvement.push_back(aggregate.improvement);
    point.total_misses += aggregate.deadline_misses;
    point.fallbacks += aggregate.fallbacks;
    if (m == reported) {
      point.improvement = aggregate.improvement;
    }
  }
  return point;
}

SweepPoint RunRandomSweep(int num_tasks, double ratio,
                          const SweepConfig& config,
                          const model::DvsModel& dvs) {
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = ratio;

  const std::uint64_t label =
      static_cast<std::uint64_t>(num_tasks) * 1000003ULL +
      static_cast<std::uint64_t>(ratio * 1e6);
  runner::ExperimentGrid grid = config.MakeGrid(
      dvs,
      {runner::RandomSource("random-" + std::to_string(num_tasks) + "-r" +
                                util::FormatDouble(ratio, 2),
                            gen, config.tasksets)},
      label);
  return Collapse(grid, runner::RunGrid(grid, config.RunOpts()));
}

SweepPoint RunFixedSetSweep(const model::TaskSet& set, std::string label,
                            const SweepConfig& config,
                            const model::DvsModel& dvs) {
  runner::ExperimentGrid grid =
      config.MakeGrid(dvs, {runner::FixedSource(std::move(label), set)});
  grid.workload_seeds.clear();
  for (std::int64_t i = 0; i < config.seeds; ++i) {
    grid.workload_seeds.push_back(static_cast<std::uint64_t>(i));
  }
  return Collapse(grid, runner::RunGrid(grid, config.RunOpts()));
}

void Emit(const util::TextTable& table, const util::CsvTable& csv,
          const std::string& csv_path) {
  std::cout << table.Render() << std::flush;
  if (!csv_path.empty()) {
    csv.WriteFile(csv_path);
    std::cout << "csv written to " << csv_path << "\n";
  }
}

}  // namespace dvs::bench
