// Execution-time scenario sweep: scenario x sigma x schedule method x cores.
//
// The paper's headline numbers are measured under one stochastic process —
// i.i.d. truncated-normal per-job cycles — which is the easiest regime for
// average-case-aware DVS: every job is an independent draw around ACEC, so
// the offline ACS plan is unbiased and the online reclamation sees steady
// slack.  Real workloads are burstier (Berten et al., "Managing Varying
// Worst Case Execution Times on DVS Platforms"): modal cache behaviour,
// sticky heavy phases, job-to-job correlation and heavy-tailed stragglers
// all starve or concentrate the slack stream.  This bench sweeps every
// registered execution-time scenario against the ACS/WCS/greedy-reclaim
// arms on single-core and 4-core fleets, with paired draws per cell (the
// scenario axis shares both the task-set draw and the workload-seed label,
// runner/experiment_grid.h), so the scenario column isolates the process
// itself.
//
// Reading: ACS's edge over WCS holds across processes but narrows when the
// realised mean shifts away from ACEC (bimodal/bursty heavy phases) and
// when draws correlate (less fresh slack per job); greedy-reclaim, which
// plans at WCEC, gains the most from heavy-tailed near-BCEC bulk.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace {

constexpr const char* kDefaultScenarios =
    "iid-normal,bimodal,bursty,heavy-tail,correlated,trace";

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 4;
  config.hyper_periods = 50;
  config.methods = "acs,wcs,greedy-reclaim";
  config.scenarios = kDefaultScenarios;
  std::string sigmas_flag = "6,10";
  std::string cores_flag = "1,4";
  std::string trace_csv;
  double idle_power = 0.05;
  double per_core_utilization = 0.7;

  util::ArgParser parser("bench_scenario_sweep",
                         "execution-time scenario sweep: scenario x sigma x "
                         "method x cores");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("sigmas", &sigmas_flag,
                   "comma-separated sigma divisors (dispersion of the "
                   "normal-based scenarios; sigma-insensitive scenarios "
                   "like heavy-tail and trace run once at the first value)");
  parser.AddString("cores", &cores_flag, "comma-separated core counts");
  parser.AddString("trace-csv", &trace_csv,
                   "load this per-job fraction CSV as scenario "
                   "\"trace-file\" (appended to the default scenario list)");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddDouble("per-core-utilization", &per_core_utilization,
                   "worst-case utilisation target per core");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    // A custom registry carries the optional loaded trace on top of the
    // built-ins; it must outlive every grid run below.
    workload::ScenarioRegistry registry;
    workload::RegisterBuiltinScenarios(registry);
    if (!trace_csv.empty()) {
      registry.Register("trace-file",
                        "trace replay loaded from " + trace_csv,
                        workload::LoadTraceScenario(trace_csv));
      if (config.scenarios == kDefaultScenarios) {
        config.scenarios += ",trace-file";
      }
    }

    const auto cell_sink = config.OpenCellSink();
    const std::vector<double> sigmas =
        bench::ParsePositiveDoubleList("sigmas", sigmas_flag);
    const std::vector<int> core_counts =
        bench::ParsePositiveIntList("cores", cores_flag);
    const std::vector<std::string> scenario_names = config.ScenarioList();

    const model::LinearDvsModel cpu = workload::DefaultModel();

    std::cout << "Execution-time scenario sweep ("
              << util::FormatPercent(per_core_utilization)
              << " per core, " << config.tasksets << " sets/point, "
              << config.ResolvedThreads() << " threads)\n\n";

    util::TextTable table({"cores", "scenario", "ACS fleet power",
                           "ACS vs WCS", "misses", "failed"});
    util::CsvTable csv({"cores", "scenario", "acs_fleet_power",
                        "improvement_mean", "improvement_stddev",
                        "deadline_misses", "failed_cells"});

    // The sigma axis only disperses the normal-based processes; scenarios
    // reporting UsesSigmaDivisor() == false would compute byte-identical
    // duplicate cells per sigma (and double-count them in the stats), so
    // they run in a sibling grid pinned to the first sigma.  Both grids of
    // one m share the master seed, sources and utilisation, hence the same
    // SetIndex-keyed streams — the scenario columns stay paired across the
    // split.
    std::vector<std::string> sigma_scenarios;
    std::vector<std::string> fixed_scenarios;
    for (const std::string& name : scenario_names) {
      (registry.Get(name).UsesSigmaDivisor() ? sigma_scenarios
                                             : fixed_scenarios)
          .push_back(name);
    }

    for (int m : core_counts) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = std::max(6, 3 * m);
      gen.bcec_wcec_ratio = 0.3;
      gen.utilization = per_core_utilization * static_cast<double>(m);
      gen.max_sub_instances = 350;  // per-core scale (pro-rata for m > 1)
      const runner::TaskSetSource source = runner::RandomSource(
          "random-m" + std::to_string(m), gen, config.tasksets);

      struct GridRun {
        runner::ExperimentGrid grid;
        runner::GridResult result;
      };
      std::vector<GridRun> runs;
      const auto run_subset = [&](const std::vector<std::string>& subset,
                                  const std::vector<double>& sigma_axis,
                                  const std::string& label) {
        if (subset.empty()) {
          return;
        }
        runner::ExperimentGrid grid = config.MakeGrid(
            cpu, {source}, static_cast<std::uint64_t>(m));
        grid.core_counts = {m};
        grid.scenario_registry = &registry;
        grid.scenarios = subset;
        grid.sigma_divisors = sigma_axis;
        grid.idle_power.power_per_ms = idle_power;
        runner::GridResult result =
            bench::RunGridTimed(grid, config, label);
        runs.push_back(GridRun{std::move(grid), std::move(result)});
      };
      run_subset(sigma_scenarios, sigmas, "cores-" + std::to_string(m));
      run_subset(fixed_scenarios, {sigmas.front()},
                 "cores-" + std::to_string(m) + "-fixed-sigma");

      struct ScenarioAgg {
        stats::OnlineStats power;
        stats::OnlineStats improvement;
        std::int64_t misses = 0;
        std::size_t failed = 0;
      };
      std::vector<ScenarioAgg> aggs(scenario_names.size());
      const auto name_index = [&](const std::string& name) {
        for (std::size_t s = 0; s < scenario_names.size(); ++s) {
          if (scenario_names[s] == name) {
            return s;
          }
        }
        throw util::Error("scenario \"" + name + "\" missing from sweep");
      };

      for (const GridRun& run : runs) {
        const std::size_t baseline = run.grid.BaselineIndex();
        const std::size_t method = bench::FirstNonBaseline(run.grid);
        for (const runner::CellResult& cell : run.result.cells) {
          ScenarioAgg& agg = aggs[name_index(
              run.grid.scenarios[cell.coord.scenario_index])];
          if (!cell.ok()) {
            ++agg.failed;
            continue;
          }
          // Multi-core (or idle-floor) cells report energy/ms already;
          // plain single-core cells report per hyper-period — normalise so
          // the column compares across the cores axis.
          double cell_power = cell.outcomes[method].measured_energy;
          if (!run.grid.MultiCore()) {
            cell_power /= static_cast<double>(cell.hyper_period);
          }
          agg.power.Add(cell_power);
          agg.improvement.Add(cell.ImprovementOver(method, baseline));
          for (const core::MethodOutcome& outcome : cell.outcomes) {
            agg.misses += outcome.deadline_misses;
          }
        }
      }

      for (std::size_t s = 0; s < scenario_names.size(); ++s) {
        const ScenarioAgg& agg = aggs[s];
        const bool has_data = agg.improvement.count() > 0;
        table.AddRow(
            {std::to_string(m), scenario_names[s],
             has_data ? util::FormatDouble(agg.power.mean(), 3) : "n/a",
             has_data ? util::FormatPercent(agg.improvement.mean()) : "n/a",
             std::to_string(agg.misses), std::to_string(agg.failed)});
        csv.NewRow()
            .Add(m)
            .Add(scenario_names[s])
            .Add(has_data ? agg.power.mean() : 0.0, 6)
            .Add(has_data ? agg.improvement.mean() : 0.0, 6)
            .Add(has_data ? agg.improvement.stddev() : 0.0, 6)
            .Add(agg.misses)
            .Add(agg.failed);
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: deadline misses stay 0 under every scenario "
                 "(the [BCEC, WCEC] clamp keeps feasibility intact); the "
                 "ACS-vs-WCS margin is the scenario's reclaimable-slack "
                 "signature\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
