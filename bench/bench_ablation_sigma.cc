// Ablation: sensitivity to the workload standard deviation.
//
// The paper's sigma is lost to OCR; we default to (WCEC-BCEC)/6.  This bench
// sweeps the divisor to show how the reported improvement depends on that
// choice: tighter distributions concentrate at ACEC (where ACS plans),
// wider ones push more mass toward WCEC.  The sweep runs as one
// runner::RunGrid with the sigma divisor as a grid axis.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_sigma",
                         "improvement vs workload sigma divisor");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();

    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.1;
    runner::ExperimentGrid grid = config.MakeGrid(
        cpu, {runner::RandomSource("random-6", gen, config.tasksets)});
    grid.sigma_divisors = {2.0, 4.0, 6.0, 10.0, 20.0};

    util::TextTable table({"sigma divisor", "sigma/(WCEC-BCEC)",
                           "mean improvement", "misses"});
    util::CsvTable csv({"sigma_divisor", "improvement_mean",
                        "improvement_stddev", "deadline_misses"});

    std::cout << "Ablation: workload sigma (6 tasks, ratio 0.1, "
              << config.tasksets << " sets/point, " << config.ResolvedThreads()
              << " threads)\n\n";

    const runner::GridResult result =
        bench::RunGridTimed(grid, config, "sigma-grid");
    const std::size_t baseline = grid.BaselineIndex();
    // Improvement column tracks the first non-baseline method.
    const std::size_t method = bench::FirstNonBaseline(grid);

    for (std::size_t s = 0; s < grid.sigma_divisors.size(); ++s) {
      stats::OnlineStats improvement;
      std::int64_t misses = 0;
      for (const runner::CellResult& cell : result.cells) {
        if (!cell.ok() || cell.coord.sigma_index != s) {
          continue;
        }
        improvement.Add(cell.ImprovementOver(method, baseline));
        for (const core::MethodOutcome& outcome : cell.outcomes) {
          misses += outcome.deadline_misses;
        }
      }
      const double divisor = grid.sigma_divisors[s];
      const bool has_data = improvement.count() > 0;
      table.AddRow({util::FormatDouble(divisor, 0),
                    util::FormatDouble(1.0 / divisor, 3),
                    has_data ? util::FormatPercent(improvement.mean()) : "n/a",
                    std::to_string(misses)});
      csv.NewRow()
          .Add(divisor, 1)
          .Add(has_data ? improvement.mean() : 0.0, 6)
          .Add(has_data ? improvement.stddev() : 0.0, 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: the improvement is robust to the lost constant; "
                 "deadline safety is independent of sigma\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
