// Ablation: sensitivity to the workload standard deviation.
//
// The paper's sigma is lost to OCR; we default to (WCEC-BCEC)/6.  This bench
// sweeps the divisor to show how the reported improvement depends on that
// choice: tighter distributions concentrate at ACEC (where ACS plans),
// wider ones push more mass toward WCEC.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 6;
  util::ArgParser parser("bench_ablation_sigma",
                         "improvement vs workload sigma divisor");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double divisors[] = {2.0, 4.0, 6.0, 10.0, 20.0};

    util::TextTable table({"sigma divisor", "sigma/(WCEC-BCEC)",
                           "mean improvement", "misses"});
    util::CsvTable csv({"sigma_divisor", "improvement_mean",
                        "improvement_stddev", "deadline_misses"});

    std::cout << "Ablation: workload sigma (6 tasks, ratio 0.1, "
              << config.tasksets << " sets/point)\n\n";

    for (double divisor : divisors) {
      stats::OnlineStats improvement;
      std::int64_t misses = 0;
      stats::Rng stream(config.seed + static_cast<std::uint64_t>(divisor));
      for (std::int64_t i = 0; i < config.tasksets; ++i) {
        workload::RandomTaskSetOptions gen;
        gen.num_tasks = 6;
        gen.bcec_wcec_ratio = 0.1;
        stats::Rng set_rng = stream.Fork();
        const model::TaskSet set =
            workload::GenerateRandomTaskSet(gen, cpu, set_rng);
        core::ExperimentOptions options;
        options.hyper_periods = config.hyper_periods;
        options.seed = stream.NextU64();
        options.sigma_divisor = divisor;
        const core::ComparisonResult result =
            core::CompareAcsWcs(set, cpu, options);
        improvement.Add(result.Improvement());
        misses += result.acs.deadline_misses + result.wcs.deadline_misses;
      }
      table.AddRow({util::FormatDouble(divisor, 0),
                    util::FormatDouble(1.0 / divisor, 3),
                    util::FormatPercent(improvement.mean()),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(divisor, 1)
          .Add(improvement.mean(), 6)
          .Add(improvement.stddev(), 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config.csv);
    std::cout << "\nreading: the improvement is robust to the lost constant; "
                 "deadline safety is independent of sigma\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
