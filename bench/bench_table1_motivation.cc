// Reproduces Table 1 + Figures 1 and 2 (the §2.2 motivational example):
//   * the WCEC-optimal static schedule {6.7, 13.3, 20} ms at 3 V (Fig. 1a),
//   * its greedy runtime under ACEC (Fig. 1b: finishes 3.3 / 8.3 / 14.2 ms),
//   * the ACS schedule {10, 15, 20} ms — 24% lower average-case energy
//     (Fig. 2), 33% higher worst-case energy, 4 V worst-case requirement,
//   * the same schedules recovered *by the solvers* rather than hard-coded.
#include <iostream>

#include "bench_common.h"
#include "core/formulation.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/motivation.h"

namespace {

struct Row {
  std::string name;
  double e1, e2, e3;
  double avg_energy;
  double worst_energy;
};

Row Measure(const std::string& name, const dvs::fps::FullyPreemptiveSchedule& fps,
            const dvs::sim::StaticSchedule& schedule,
            const dvs::model::DvsModel& cpu) {
  using namespace dvs;
  const model::TaskSet& set = fps.task_set();
  const sim::GreedyReclaimPolicy policy(cpu);
  const model::FixedWorkload avg(set, model::FixedScenario::kAverage);
  const model::FixedWorkload worst(set, model::FixedScenario::kWorst);
  stats::Rng r1(1), r2(2);
  Row row;
  row.name = name;
  row.e1 = schedule.end_time(0);
  row.e2 = schedule.end_time(1);
  row.e3 = schedule.end_time(2);
  row.avg_energy =
      sim::Simulate(fps, schedule, cpu, policy, avg, r1).total_energy;
  row.worst_energy =
      sim::Simulate(fps, schedule, cpu, policy, worst, r2).total_energy;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  util::ArgParser parser("bench_table1_motivation",
                         "Table 1 / Figs. 1-2: the motivational example");
  std::string csv_path;
  parser.AddString("csv", &csv_path, "write results to this CSV file");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    const model::TaskSet set = workload::MotivationTaskSet();
    const model::LinearDvsModel cpu = workload::MotivationModel();
    const fps::FullyPreemptiveSchedule fps(set);
    const std::vector<double> budgets(3, set.task(0).wcec);

    std::cout << "Table 1 reconstruction — three tasks, 20 ms frame, "
                 "WCEC 2e7 cycles (20 V*ms), ACEC 1e7, f = 1e6 cycles/ms/V, "
                 "V in [0.5, 4]\n\n";

    // Paper schedules, hard-coded.
    const sim::StaticSchedule fig1(fps, workload::MotivationWcsEndTimes(),
                                   budgets);
    const sim::StaticSchedule fig2(fps, workload::MotivationAcsEndTimes(),
                                   budgets);
    // Solver-recovered schedules.
    const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
    const core::ScheduleResult acs = core::SolveSchedule(
        fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);

    const Row rows[] = {
        Measure("Fig.1 schedule (paper WCS)", fps, fig1, cpu),
        Measure("Fig.2 schedule (paper ACS)", fps, fig2, cpu),
        Measure("WCS solver output", fps, wcs.schedule, cpu),
        Measure("ACS solver output", fps, acs.schedule, cpu),
    };

    util::TextTable table({"schedule", "e1 (ms)", "e2 (ms)", "e3 (ms)",
                           "E avg-case", "E worst-case"});
    util::CsvTable csv({"schedule", "e1", "e2", "e3", "avg_energy",
                        "worst_energy"});
    for (const Row& row : rows) {
      table.AddRow({row.name, util::FormatDouble(row.e1, 2),
                    util::FormatDouble(row.e2, 2),
                    util::FormatDouble(row.e3, 2),
                    util::FormatDouble(row.avg_energy / 1e8, 4) + "e8",
                    util::FormatDouble(row.worst_energy / 1e8, 4) + "e8"});
      csv.NewRow()
          .Add(row.name)
          .Add(row.e1, 4)
          .Add(row.e2, 4)
          .Add(row.e3, 4)
          .Add(row.avg_energy, 1)
          .Add(row.worst_energy, 1);
    }
    dvs::bench::Emit(table, csv, csv_path);

    const double improvement =
        (rows[0].avg_energy - rows[1].avg_energy) / rows[0].avg_energy;
    const double penalty =
        (rows[1].worst_energy - rows[0].worst_energy) / rows[0].worst_energy;
    std::cout << "\naverage-case improvement of Fig.2 over Fig.1: "
              << util::FormatPercent(improvement) << "  (paper: 24%)\n";
    std::cout << "worst-case penalty of Fig.2 over Fig.1:         "
              << util::FormatPercent(penalty) << "  (paper: 33%)\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
