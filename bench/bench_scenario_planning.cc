// Scenario-conditioned planning sweep: scenario x planning arm x sigma x
// cores.
//
// The scenario sweep (bench_scenario_sweep) showed the ACS-vs-WCS margin is
// a property of the execution-time process — widest under heavy-tail,
// narrowest under trace/correlated — while the ACS NLP kept planning at the
// paper's fixed ACEC point regardless.  This bench closes the loop: it runs
// the scenario-conditioned arms (acs-scenario at the calibrated realised
// mean, acs-quantile at a per-task quantile, acs-mixture averaging K
// calibrated sample vectors — core/method_registry.h) against plain acs and
// wcs on paired draws, per scenario and per core count, so every row
// isolates what conditioning the *offline plan* on the realised law buys on
// top of online reclamation.
//
// Reading: under iid-normal the calibrated mean nearly coincides with ACEC,
// so acs-scenario tracks acs (small either-sign noise); under heavy-tail
// and bimodal the realised mean sits well below ACEC and planning at it
// cuts fleet energy further — the Berten-style win the ROADMAP names.  The
// "vs acs" column is the paired improvement of each planning arm over the
// plain acs baseline; "vs wcs" contextualises it against the paper's
// headline margin.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace {

constexpr const char* kDefaultScenarios =
    "iid-normal,bimodal,bursty,heavy-tail,correlated,trace";
constexpr const char* kDefaultMethods =
    "acs,acs-scenario,acs-quantile,acs-mixture,wcs";

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 4;
  config.hyper_periods = 50;
  config.methods = kDefaultMethods;
  config.baseline = "acs";
  config.scenarios = kDefaultScenarios;
  std::string sigmas_flag = "6,10";
  std::string cores_flag = "1,4";
  double idle_power = 0.05;
  double per_core_utilization = 0.7;

  util::ArgParser parser("bench_scenario_planning",
                         "scenario-conditioned planning sweep: scenario x "
                         "planning arm x sigma x cores");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("sigmas", &sigmas_flag,
                   "comma-separated sigma divisors (sigma-insensitive "
                   "scenarios run once at the first value)");
  parser.AddString("cores", &cores_flag, "comma-separated core counts");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddDouble("per-core-utilization", &per_core_utilization,
                   "worst-case utilisation target per core");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const auto cell_sink = config.OpenCellSink();
    const std::vector<double> sigmas =
        bench::ParsePositiveDoubleList("sigmas", sigmas_flag);
    const std::vector<int> core_counts =
        bench::ParsePositiveIntList("cores", cores_flag);
    const std::vector<std::string> scenario_names = config.ScenarioList();
    const std::vector<std::string> method_names = config.MethodList();

    const workload::ScenarioRegistry& registry =
        workload::ScenarioRegistry::Builtin();
    const model::LinearDvsModel cpu = workload::DefaultModel();

    std::cout << "Scenario-conditioned planning sweep ("
              << util::FormatPercent(per_core_utilization) << " per core, "
              << config.tasksets << " sets/point, p"
              << util::FormatDouble(config.planning.quantile * 100.0, 0)
              << " quantile, K=" << config.planning.mixture_samples
              << " mixture, " << config.ResolvedThreads() << " threads)\n\n";

    util::TextTable table({"cores", "scenario", "arm", "fleet power",
                           "vs acs", "vs wcs", "misses", "failed"});
    util::CsvTable csv({"cores", "scenario", "arm", "fleet_power_mean",
                        "vs_acs_mean", "vs_acs_stddev", "vs_wcs_mean",
                        "deadline_misses", "failed_cells"});

    // Sigma-insensitive scenarios would duplicate cells per sigma (see
    // bench_scenario_sweep); run them in a sibling grid pinned to the first
    // sigma.  Both grids of one m share master seed / sources / utilisation,
    // so their SetIndex-keyed streams stay paired across the split.
    std::vector<std::string> sigma_scenarios;
    std::vector<std::string> fixed_scenarios;
    for (const std::string& name : scenario_names) {
      (registry.Get(name).UsesSigmaDivisor() ? sigma_scenarios
                                             : fixed_scenarios)
          .push_back(name);
    }

    for (int m : core_counts) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = std::max(6, 3 * m);
      gen.bcec_wcec_ratio = 0.3;
      gen.utilization = per_core_utilization * static_cast<double>(m);
      gen.max_sub_instances = 350;  // per-core scale (pro-rata for m > 1)
      const runner::TaskSetSource source = runner::RandomSource(
          "random-m" + std::to_string(m), gen, config.tasksets);

      struct GridRun {
        runner::ExperimentGrid grid;
        runner::GridResult result;
      };
      std::vector<GridRun> runs;
      const auto run_subset = [&](const std::vector<std::string>& subset,
                                  const std::vector<double>& sigma_axis,
                                  const std::string& label) {
        if (subset.empty()) {
          return;
        }
        runner::ExperimentGrid grid = config.MakeGrid(
            cpu, {source}, static_cast<std::uint64_t>(m));
        grid.core_counts = {m};
        grid.scenarios = subset;
        grid.sigma_divisors = sigma_axis;
        grid.idle_power.power_per_ms = idle_power;
        runner::GridResult result = bench::RunGridTimed(grid, config, label);
        runs.push_back(GridRun{std::move(grid), std::move(result)});
      };
      run_subset(sigma_scenarios, sigmas, "cores-" + std::to_string(m));
      run_subset(fixed_scenarios, {sigmas.front()},
                 "cores-" + std::to_string(m) + "-fixed-sigma");

      // Per (scenario, method): paired aggregates against the acs and wcs
      // rows of the same cell.
      struct ArmAgg {
        stats::OnlineStats power;
        stats::OnlineStats vs_acs;
        stats::OnlineStats vs_wcs;
        std::int64_t misses = 0;
        std::size_t failed = 0;
      };
      std::vector<std::vector<ArmAgg>> aggs(
          scenario_names.size(), std::vector<ArmAgg>(method_names.size()));
      const auto scenario_of = [&](const std::string& name) {
        const auto it = std::find(scenario_names.begin(),
                                  scenario_names.end(), name);
        ACS_REQUIRE(it != scenario_names.end(),
                    "scenario \"" + name + "\" missing from sweep");
        return static_cast<std::size_t>(it - scenario_names.begin());
      };

      for (const GridRun& run : runs) {
        const std::size_t acs_index = run.grid.BaselineIndex();
        // "vs wcs" is contextual and only meaningful when the wcs arm is
        // in the sweep; without it the column reports n/a instead of
        // silently re-labelling some other baseline.
        std::size_t wcs_index = run.grid.methods.size();
        for (std::size_t i = 0; i < run.grid.methods.size(); ++i) {
          if (run.grid.methods[i] == "wcs") {
            wcs_index = i;
          }
        }
        for (const runner::CellResult& cell : run.result.cells) {
          const std::size_t s = scenario_of(
              run.grid.scenarios[cell.coord.scenario_index]);
          for (std::size_t i = 0; i < method_names.size(); ++i) {
            ArmAgg& agg = aggs[s][i];
            if (!cell.ok()) {
              ++agg.failed;
              continue;
            }
            double power = cell.outcomes[i].measured_energy;
            if (!run.grid.MultiCore()) {
              power /= static_cast<double>(cell.hyper_period);
            }
            agg.power.Add(power);
            agg.vs_acs.Add(cell.ImprovementOver(i, acs_index));
            if (wcs_index < run.grid.methods.size()) {
              agg.vs_wcs.Add(cell.ImprovementOver(i, wcs_index));
            }
            agg.misses += cell.outcomes[i].deadline_misses;
          }
        }
      }

      for (std::size_t s = 0; s < scenario_names.size(); ++s) {
        for (std::size_t i = 0; i < method_names.size(); ++i) {
          const ArmAgg& agg = aggs[s][i];
          const bool has_data = agg.power.count() > 0;
          const bool has_wcs = agg.vs_wcs.count() > 0;
          table.AddRow(
              {std::to_string(m), scenario_names[s], method_names[i],
               has_data ? util::FormatDouble(agg.power.mean(), 3) : "n/a",
               has_data ? util::FormatPercent(agg.vs_acs.mean()) : "n/a",
               has_wcs ? util::FormatPercent(agg.vs_wcs.mean()) : "n/a",
               std::to_string(agg.misses), std::to_string(agg.failed)});
          csv.NewRow()
              .Add(m)
              .Add(scenario_names[s])
              .Add(method_names[i])
              .Add(has_data ? agg.power.mean() : 0.0, 6)
              .Add(has_data ? agg.vs_acs.mean() : 0.0, 6)
              .Add(has_data ? agg.vs_acs.stddev() : 0.0, 6)
              .Add(has_wcs ? agg.vs_wcs.mean() : 0.0, 6)
              .Add(agg.misses)
              .Add(agg.failed);
        }
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: \"vs acs\" is the paired gain of conditioning "
                 "the offline plan on the realised law — near zero under "
                 "iid-normal (the calibrated mean ~= ACEC), largest under "
                 "heavy-tail/bimodal whose realised mean sits far below "
                 "ACEC; misses stay 0 (planning points are clamped to "
                 "[BCEC, WCEC], so the worst-case envelope is untouched)\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
