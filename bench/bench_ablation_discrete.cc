// Ablation: discrete voltage levels.
//
// The paper assumes a continuously variable voltage.  Real processors expose
// a handful of operating points; the runtime then rounds every requested
// voltage *up* to the next level (deadlines keep holding, energy rises).
// This bench sweeps the number of evenly spaced levels.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 5;
  util::ArgParser parser("bench_ablation_discrete",
                         "continuous vs discrete voltage levels");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const auto continuous = std::make_shared<model::LinearDvsModel>(
        workload::DefaultModel());
    const int level_counts[] = {0, 4, 8, 16, 32};  // 0 = continuous

    util::TextTable table({"levels", "ACS energy vs continuous",
                           "improvement vs WCS", "misses"});
    util::CsvTable csv({"levels", "acs_energy_ratio", "improvement_mean",
                        "deadline_misses"});

    std::cout << "Ablation: voltage quantisation (6 tasks, ratio 0.3, "
              << config.tasksets << " sets; schedules computed on the "
                 "continuous model, runtime quantises up)\n\n";

    // Build shared task sets and continuous-model schedules first.
    struct Prepared {
      // The expansion holds a pointer into the task set, so the set needs a
      // stable address for the lifetime of the record.
      std::unique_ptr<model::TaskSet> set;
      std::unique_ptr<fps::FullyPreemptiveSchedule> fps;
      std::unique_ptr<sim::StaticSchedule> acs;
      std::unique_ptr<sim::StaticSchedule> wcs;
      std::uint64_t seed;
    };
    std::vector<Prepared> prepared;
    stats::Rng stream(config.seed);
    for (std::int64_t i = 0; i < config.tasksets; ++i) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = 6;
      gen.bcec_wcec_ratio = 0.3;
      stats::Rng set_rng = stream.Fork();
      auto set = std::make_unique<model::TaskSet>(
          workload::GenerateRandomTaskSet(gen, *continuous, set_rng));
      auto fps = std::make_unique<fps::FullyPreemptiveSchedule>(*set);
      const core::ScheduleResult wcs = core::SolveWcs(*fps, *continuous);
      const core::ScheduleResult acs = core::SolveSchedule(
          *fps, *continuous, core::Scenario::kAverage, {}, wcs.schedule);
      prepared.push_back(
          Prepared{std::move(set),
                   std::move(fps),
                   std::make_unique<sim::StaticSchedule>(acs.schedule),
                   std::make_unique<sim::StaticSchedule>(wcs.schedule),
                   stream.NextU64()});
    }

    double continuous_acs_energy = 0.0;
    for (int levels : level_counts) {
      std::shared_ptr<const model::DvsModel> runtime_model;
      if (levels == 0) {
        runtime_model = continuous;
      } else {
        runtime_model = std::make_shared<model::DiscreteDvsModel>(
            continuous, model::DiscreteDvsModel::EvenLevels(*continuous,
                                                            levels));
      }
      double acs_energy = 0.0;
      double wcs_energy = 0.0;
      std::int64_t misses = 0;
      for (const Prepared& p : prepared) {
        const model::TruncatedNormalWorkload sampler(*p.set, 6.0);
        const sim::GreedyReclaimPolicy policy(*runtime_model);
        const auto ra = core::SimulateWith(*p.fps, *p.acs, *runtime_model,
                                           policy, sampler, p.seed,
                                           config.hyper_periods);
        const auto rw = core::SimulateWith(*p.fps, *p.wcs, *runtime_model,
                                           policy, sampler, p.seed,
                                           config.hyper_periods);
        acs_energy += ra.total_energy;
        wcs_energy += rw.total_energy;
        misses += ra.deadline_misses + rw.deadline_misses;
      }
      if (levels == 0) {
        continuous_acs_energy = acs_energy;
      }
      const double ratio = continuous_acs_energy > 0.0
                               ? acs_energy / continuous_acs_energy
                               : 1.0;
      const double improvement = (wcs_energy - acs_energy) / wcs_energy;
      table.AddRow({levels == 0 ? "continuous" : std::to_string(levels),
                    util::FormatDouble(ratio, 3) + "x",
                    util::FormatPercent(improvement),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(levels)
          .Add(ratio, 6)
          .Add(improvement, 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config.csv);
    std::cout << "\nreading: a handful of levels already tracks the "
                 "continuous model closely; quantising up preserves every "
                 "deadline\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
