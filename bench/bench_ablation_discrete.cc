// Ablation: discrete voltage levels.
//
// The paper assumes a continuously variable voltage.  Real processors expose
// a handful of operating points; the runtime then rounds every requested
// voltage *up* to the next level (deadlines keep holding, energy rises).
// This bench sweeps the number of evenly spaced levels.
//
// Runs as one runner::RunGrid over a custom method registry: for every
// level count L the "acs-dL"/"wcs-dL" arms reuse the cell's cached
// continuous-model solves (schedules are computed on the continuous model)
// and dispatch through a quantising runtime policy, so all arms — including
// the continuous references — face identical task sets and workload
// realisations.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/method_registry.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

/// Continuous-model ACS/WCS schedule dispatched through a runtime that
/// quantises every requested voltage up to the next discrete level.
class QuantisedMethod final : public dvs::core::ScheduleMethod {
 public:
  QuantisedMethod(std::shared_ptr<const dvs::model::DvsModel> runtime,
                  bool acs)
      : runtime_(std::move(runtime)), acs_(acs) {}

  dvs::core::MethodPlan Plan(dvs::core::MethodContext& context) const override {
    const dvs::core::ScheduleResult& solve =
        acs_ ? context.Acs() : context.Wcs();
    return dvs::core::MethodPlan{
        solve.schedule,
        std::make_unique<dvs::sim::GreedyReclaimPolicy>(*runtime_),
        solve.predicted_energy, solve.used_fallback};
  }

 private:
  std::shared_ptr<const dvs::model::DvsModel> runtime_;
  bool acs_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  const std::vector<int> level_counts = {4, 8, 16, 32};

  bench::SweepConfig config;
  config.tasksets = 5;
  {
    // Default method list: the continuous ACS reference (also the
    // improvement baseline — the continuous WCS arm would be simulated
    // without ever being read) plus every level pair.
    std::vector<std::string> names = {"acs"};
    for (int levels : level_counts) {
      names.push_back("acs-d" + std::to_string(levels));
      names.push_back("wcs-d" + std::to_string(levels));
    }
    config.methods = util::Join(names, ",");
  }
  config.baseline = "acs";
  util::ArgParser parser("bench_ablation_discrete",
                         "continuous vs discrete voltage levels");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const auto continuous =
        std::make_shared<model::LinearDvsModel>(workload::DefaultModel());

    core::MethodRegistry registry;
    core::RegisterBuiltins(registry);
    for (int levels : level_counts) {
      const auto runtime = std::make_shared<model::DiscreteDvsModel>(
          continuous,
          model::DiscreteDvsModel::EvenLevels(*continuous, levels));
      const std::string suffix = "-d" + std::to_string(levels);
      registry.Register("acs" + suffix,
                        "ACS schedule, runtime quantised to " +
                            std::to_string(levels) + " levels",
                        std::make_unique<QuantisedMethod>(runtime, true));
      registry.Register("wcs" + suffix,
                        "WCS schedule, runtime quantised to " +
                            std::to_string(levels) + " levels",
                        std::make_unique<QuantisedMethod>(runtime, false));
    }

    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.3;
    runner::ExperimentGrid grid = config.MakeGrid(
        *continuous, {runner::RandomSource("random-6", gen, config.tasksets)});

    std::cout << "Ablation: voltage quantisation (6 tasks, ratio 0.3, "
              << config.tasksets << " sets, " << config.ResolvedThreads()
              << " threads; schedules computed on the continuous model, "
                 "runtime quantises up)\n\n";

    const runner::GridResult result =
        bench::RunGridTimed(grid, registry, config, "discrete-grid");

    // Method name -> grid index, for looking up each level's pair.
    const auto method_index = [&grid](const std::string& name) {
      for (std::size_t m = 0; m < grid.methods.size(); ++m) {
        if (grid.methods[m] == name) {
          return static_cast<std::int64_t>(m);
        }
      }
      return static_cast<std::int64_t>(-1);
    };

    util::TextTable table({"levels", "ACS energy vs continuous",
                           "improvement vs WCS", "misses"});
    util::CsvTable csv({"levels", "acs_energy_ratio", "improvement_mean",
                        "deadline_misses"});

    const std::int64_t acs_cont = method_index("acs");
    ACS_REQUIRE(acs_cont >= 0, "--methods must keep the continuous \"acs\" "
                               "reference arm");
    const double continuous_acs_energy =
        result.Aggregate(grid, static_cast<std::size_t>(acs_cont))
            .measured_energy.mean();

    for (int levels : level_counts) {
      const std::string suffix = "-d" + std::to_string(levels);
      const std::int64_t acs = method_index("acs" + suffix);
      const std::int64_t wcs = method_index("wcs" + suffix);
      if (acs < 0 || wcs < 0) {
        continue;  // level pair deselected via --methods
      }
      const std::size_t acs_m = static_cast<std::size_t>(acs);
      const std::size_t wcs_m = static_cast<std::size_t>(wcs);

      stats::OnlineStats improvement;
      std::int64_t misses = 0;
      for (const runner::CellResult& cell : result.cells) {
        if (!cell.ok()) {
          continue;
        }
        improvement.Add(cell.ImprovementOver(acs_m, wcs_m));
        misses += cell.outcomes[acs_m].deadline_misses +
                  cell.outcomes[wcs_m].deadline_misses;
      }
      const double acs_energy =
          result.Aggregate(grid, acs_m).measured_energy.mean();
      const double ratio = continuous_acs_energy > 0.0
                               ? acs_energy / continuous_acs_energy
                               : 1.0;
      table.AddRow({std::to_string(levels),
                    util::FormatDouble(ratio, 3) + "x",
                    util::FormatPercent(improvement.mean()),
                    std::to_string(misses)});
      csv.NewRow()
          .Add(levels)
          .Add(ratio, 6)
          .Add(improvement.mean(), 6)
          .Add(misses);
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: a handful of levels already tracks the "
                 "continuous model closely; quantising up preserves every "
                 "deadline\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
