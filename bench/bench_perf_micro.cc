// Google-benchmark micro-benchmarks for the computational kernels: fully
// preemptive expansion, objective forward/gradient evaluation, the full
// scheduler solve, the discrete-event simulator, and the dispatched SIMD
// kernels (util/simd.h) at both levels.
//
// Every SIMD-dispatched benchmark takes a trailing 0/1 "simd" argument:
// 0 pins the scalar level (the historical loops), 1 pins the best level
// the CPU supports — on AVX2 hardware the per-kernel speedup is the
// 0-vs-1 time ratio at equal n.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/formulation.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "stats/rng.h"
#include "util/simd.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

using namespace dvs;

model::TaskSet MakeSet(int num_tasks, std::uint64_t seed) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(seed);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  return workload::GenerateRandomTaskSet(gen, cpu, rng);
}

util::simd::Level LevelArg(std::int64_t simd) {
  return simd != 0 ? util::simd::Detect() : util::simd::Level::kScalar;
}

std::vector<double> FillVec(std::size_t n, std::uint64_t seed) {
  std::vector<double> values(n);
  stats::Rng rng(seed);
  for (double& v : values) {
    v = rng.Uniform(-2.0, 2.0);
  }
  return values;
}

void SimdSizes(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"n", "simd"});
  for (std::int64_t n : {64, 512, 4096}) {
    for (std::int64_t simd : {0, 1}) {
      bench->Args({n, simd});
    }
  }
}

void BM_Expansion(benchmark::State& state) {
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 42);
  std::size_t subs = 0;
  for (auto _ : state) {
    const fps::FullyPreemptiveSchedule fps(set);
    subs = fps.sub_count();
    benchmark::DoNotOptimize(subs);
  }
  state.counters["sub_instances"] = static_cast<double>(subs);
}
BENCHMARK(BM_Expansion)->Arg(4)->Arg(8);

void BM_ObjectiveValueAndGradient(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 7);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::EnergyObjective objective(fps, cpu, core::Scenario::kAverage);
  opt::Vector x =
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  opt::Vector grad(objective.dim(), 0.0);
  for (auto _ : state) {
    const double value = objective.ValueAndGradient(x, grad);
    benchmark::DoNotOptimize(value);
  }
  state.counters["variables"] = static_cast<double>(objective.dim());
}
BENCHMARK(BM_ObjectiveValueAndGradient)
    ->ArgNames({"tasks", "simd"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

// ---- dispatched SIMD kernels (util/simd.h), scalar vs best level ----------

void BM_KernelDot(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = FillVec(n, 1);
  const std::vector<double> b = FillVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelDot)->Apply(SimdSizes);

void BM_KernelSum(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> a = FillVec(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::Sum(a.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSum)->Apply(SimdSizes);

void BM_KernelStepAndSlope(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> x = FillVec(n, 4);
  const std::vector<double> grad = FillVec(n, 5);
  const std::vector<double> trial = FillVec(n, 6);
  std::vector<double> direction(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::simd::StepAndSlope(
        x.data(), grad.data(), trial.data(), direction.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelStepAndSlope)->Apply(SimdSizes);

void BM_KernelSpectralPair(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> direction = FillVec(n, 7);
  const std::vector<double> grad = FillVec(n, 8);
  const std::vector<double> trial_grad = FillVec(n, 9);
  double sts = 0.0;
  double sty = 0.0;
  for (auto _ : state) {
    util::simd::SpectralPair(0.8, direction.data(), grad.data(),
                             trial_grad.data(), n, &sts, &sty);
    benchmark::DoNotOptimize(sts);
    benchmark::DoNotOptimize(sty);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelSpectralPair)->Apply(SimdSizes);

void BM_KernelClampBox(benchmark::State& state) {
  // The box projection of every SPG inner iteration.
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> lo = FillVec(n, 10);
  std::vector<double> hi = lo;
  for (double& v : hi) {
    v += 1.0;
  }
  std::vector<double> x = FillVec(n, 11);
  for (auto _ : state) {
    util::simd::ClampBox(lo.data(), hi.data(), x.data(), n);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_KernelClampBox)->Apply(SimdSizes);

void BM_KernelPackedRows3(benchmark::State& state) {
  // The batched linear-constraint residual sweep (opt/workspace.h packs
  // precedence rows into this slot-major 3-term layout).
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 2 * rows + 1;
  const std::vector<double> x = FillVec(dim, 12);
  const std::vector<double> constant = FillVec(rows, 13);
  const std::vector<double> coeff = FillVec(3 * rows, 14);
  std::vector<std::int32_t> idx(3 * rows);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = static_cast<std::int32_t>((i * 7 + 3) % dim);
  }
  std::vector<double> out(rows);
  for (auto _ : state) {
    util::simd::PackedRows3(constant.data(), coeff.data(), idx.data(),
                            x.data(), out.data(), rows);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_KernelPackedRows3)->Apply(SimdSizes);

void BM_SolveAcs(benchmark::State& state) {
  const util::simd::ScopedLevel pin(LevelArg(state.range(1)));
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 11);
  const fps::FullyPreemptiveSchedule fps(set);
  for (auto _ : state) {
    const core::ScheduleResult result = core::SolveAcs(fps, cpu);
    benchmark::DoNotOptimize(result.predicted_energy);
  }
}
BENCHMARK(BM_SolveAcs)
    ->ArgNames({"tasks", "simd"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SimulateHyperPeriods(benchmark::State& state) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(6, 13);
  const fps::FullyPreemptiveSchedule fps(set);
  const sim::StaticSchedule schedule = sim::BuildVmaxAsapSchedule(fps, cpu);
  const model::TruncatedNormalWorkload sampler(set, 6.0);
  const sim::GreedyReclaimPolicy policy(cpu);
  sim::SimOptions options;
  options.hyper_periods = state.range(0);
  for (auto _ : state) {
    stats::Rng rng(99);
    const sim::SimResult result =
        sim::Simulate(fps, schedule, cpu, policy, sampler, rng, options);
    benchmark::DoNotOptimize(result.total_energy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateHyperPeriods)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_TruncatedNormalSampling(benchmark::State& state) {
  const model::TaskSet set = MakeSet(6, 17);
  const model::TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleCycles(0, rng));
  }
}
BENCHMARK(BM_TruncatedNormalSampling);

}  // namespace

BENCHMARK_MAIN();
