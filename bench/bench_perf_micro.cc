// Google-benchmark micro-benchmarks for the computational kernels: fully
// preemptive expansion, objective forward/gradient evaluation, the full
// scheduler solve and the discrete-event simulator.
#include <benchmark/benchmark.h>

#include "core/formulation.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "stats/rng.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

using namespace dvs;

model::TaskSet MakeSet(int num_tasks, std::uint64_t seed) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  stats::Rng rng(seed);
  workload::RandomTaskSetOptions gen;
  gen.num_tasks = num_tasks;
  gen.bcec_wcec_ratio = 0.3;
  return workload::GenerateRandomTaskSet(gen, cpu, rng);
}

void BM_Expansion(benchmark::State& state) {
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 42);
  std::size_t subs = 0;
  for (auto _ : state) {
    const fps::FullyPreemptiveSchedule fps(set);
    subs = fps.sub_count();
    benchmark::DoNotOptimize(subs);
  }
  state.counters["sub_instances"] = static_cast<double>(subs);
}
BENCHMARK(BM_Expansion)->Arg(4)->Arg(8);

void BM_ObjectiveValueAndGradient(benchmark::State& state) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 7);
  const fps::FullyPreemptiveSchedule fps(set);
  const core::EnergyObjective objective(fps, cpu, core::Scenario::kAverage);
  opt::Vector x =
      objective.PackSchedule(sim::BuildVmaxAsapSchedule(fps, cpu));
  opt::Vector grad(objective.dim(), 0.0);
  for (auto _ : state) {
    const double value = objective.ValueAndGradient(x, grad);
    benchmark::DoNotOptimize(value);
  }
  state.counters["variables"] = static_cast<double>(objective.dim());
}
BENCHMARK(BM_ObjectiveValueAndGradient)->Arg(4)->Arg(8);

void BM_SolveAcs(benchmark::State& state) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(static_cast<int>(state.range(0)), 11);
  const fps::FullyPreemptiveSchedule fps(set);
  for (auto _ : state) {
    const core::ScheduleResult result = core::SolveAcs(fps, cpu);
    benchmark::DoNotOptimize(result.predicted_energy);
  }
}
BENCHMARK(BM_SolveAcs)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SimulateHyperPeriods(benchmark::State& state) {
  const model::LinearDvsModel cpu = workload::DefaultModel();
  const model::TaskSet set = MakeSet(6, 13);
  const fps::FullyPreemptiveSchedule fps(set);
  const sim::StaticSchedule schedule = sim::BuildVmaxAsapSchedule(fps, cpu);
  const model::TruncatedNormalWorkload sampler(set, 6.0);
  const sim::GreedyReclaimPolicy policy(cpu);
  sim::SimOptions options;
  options.hyper_periods = state.range(0);
  for (auto _ : state) {
    stats::Rng rng(99);
    const sim::SimResult result =
        sim::Simulate(fps, schedule, cpu, policy, sampler, rng, options);
    benchmark::DoNotOptimize(result.total_energy);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulateHyperPeriods)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_TruncatedNormalSampling(benchmark::State& state) {
  const model::TaskSet set = MakeSet(6, 17);
  const model::TruncatedNormalWorkload sampler(set, 6.0);
  stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.SampleCycles(0, rng));
  }
}
BENCHMARK(BM_TruncatedNormalSampling);

}  // namespace

BENCHMARK_MAIN();
