// Reproduces Fig. 6 (left): ACS-vs-WCS energy improvement on random task
// sets, tasks in {2,4,6,8,10} x BCEC/WCEC ratio in {0.1, 0.5, 0.9}.
//
// Paper shape: improvement grows with the task count, peaks near 60% at
// ratio 0.1 / 10 tasks, and nearly vanishes at ratio 0.9.
#include <iostream>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  util::ArgParser parser("bench_fig6a_random",
                         "Fig. 6 (left): improvement vs task count");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const int task_counts[] = {2, 4, 6, 8, 10};
    const double ratios[] = {0.1, 0.5, 0.9};

    util::TextTable table({"tasks", "ratio 0.1", "ratio 0.5", "ratio 0.9"});
    util::CsvTable csv({"num_tasks", "bcec_wcec_ratio", "improvement_mean",
                        "improvement_stddev", "improvement_min",
                        "improvement_max", "tasksets", "deadline_misses"});

    std::cout << "Fig. 6 (left) — ACS improvement over WCS, random task sets\n"
              << "(" << config.tasksets << " sets/point, "
              << config.hyper_periods << " hyper-periods each, "
              << config.ResolvedThreads() << " threads"
              << (config.paper ? ", paper scale" : "") << ")\n\n";

    ACS_REQUIRE(config.MethodList().size() >= 2,
                "this bench reports improvement over the baseline; --methods "
                "needs at least one non-baseline entry");
    for (int n : task_counts) {
      std::vector<std::string> row{std::to_string(n)};
      for (double ratio : ratios) {
        const bench::SweepPoint point =
            bench::RunRandomSweep(n, ratio, config, cpu);
        const bool has_data = point.improvement.count() > 0;
        row.push_back(has_data ? util::FormatPercent(point.improvement.mean())
                               : "n/a");
        csv.NewRow()
            .Add(n)
            .Add(ratio, 2)
            .Add(has_data ? point.improvement.mean() : 0.0, 6)
            .Add(has_data ? point.improvement.stddev() : 0.0, 6)
            .Add(has_data ? point.improvement.min() : 0.0, 6)
            .Add(has_data ? point.improvement.max() : 0.0, 6)
            .Add(static_cast<std::int64_t>(point.improvement.count()))
            .Add(point.total_misses);
        if (point.failed_cells != 0) {
          std::cerr << "WARNING: " << point.failed_cells
                    << " cells failed and were skipped at n=" << n
                    << " ratio=" << ratio << "\n";
        }
        if (point.total_misses != 0) {
          std::cerr << "WARNING: deadline misses at n=" << n
                    << " ratio=" << ratio << "\n";
        }
      }
      table.AddRow(std::move(row));
    }
    bench::Emit(table, csv, config);
    std::cout << "\npaper reference: ~60% at (10 tasks, ratio 0.1); "
                 "improvement rises with task count, falls with ratio\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
