// Ablation: why the runtime gates each sub-instance at its segment start.
//
// The greedy dispatcher refuses to start a sub-instance before its segment
// (its release): the static plan assigns the pre-release window to *other*
// tasks, and slack is handed to the next sub-instance in the total order —
// the premise of the paper's constraint (11).  The "eager" variant removes
// that gate: a task rolls straight into its next segment's budget at a
// stretched voltage, hogging windows the plan reserved for lower-priority
// tasks.  This bench measures both: the eager variant sometimes saves a
// little energy and sometimes MISSES DEADLINES — which is the point.
#include <iostream>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 8;
  util::ArgParser parser("bench_ablation_policy",
                         "segment gating vs eager early-start dispatch");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    stats::OnlineStats gated_energy;
    stats::OnlineStats eager_energy;
    std::int64_t gated_misses = 0;
    std::int64_t eager_misses = 0;

    stats::Rng stream(config.seed);
    for (std::int64_t i = 0; i < config.tasksets; ++i) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = 6;
      gen.bcec_wcec_ratio = 0.3;
      stats::Rng set_rng = stream.Fork();
      const model::TaskSet set =
          workload::GenerateRandomTaskSet(gen, cpu, set_rng);
      const fps::FullyPreemptiveSchedule fps(set);
      const core::ScheduleResult wcs = core::SolveWcs(fps, cpu);
      const core::ScheduleResult acs = core::SolveSchedule(
          fps, cpu, core::Scenario::kAverage, {}, wcs.schedule);

      const model::TruncatedNormalWorkload sampler(set, 6.0);
      const sim::GreedyReclaimPolicy gated(cpu, /*allow_early_start=*/false);
      const sim::GreedyReclaimPolicy eager(cpu, /*allow_early_start=*/true);
      const std::uint64_t seed = stream.NextU64();

      const auto rg = core::SimulateWith(fps, acs.schedule, cpu, gated,
                                         sampler, seed, config.hyper_periods);
      const auto re = core::SimulateWith(fps, acs.schedule, cpu, eager,
                                         sampler, seed, config.hyper_periods);
      gated_energy.Add(rg.total_energy);
      eager_energy.Add(re.total_energy);
      gated_misses += rg.deadline_misses;
      eager_misses += re.deadline_misses;
    }

    util::TextTable table({"dispatch policy", "mean energy",
                           "deadline misses"});
    table.AddRow({"gated at segment start (paper)",
                  util::FormatDouble(gated_energy.mean(), 1),
                  std::to_string(gated_misses)});
    table.AddRow({"eager early-start (unsafe)",
                  util::FormatDouble(eager_energy.mean(), 1),
                  std::to_string(eager_misses)});
    std::cout << "Ablation: dispatch gating (6 tasks, ratio 0.3, "
              << config.tasksets << " sets, ACS schedules)\n\n"
              << table.Render();
    std::cout << "\nreading: gating costs little energy and is what makes "
                 "the offline worst-case guarantee hold at runtime; the "
                 "eager variant breaks the planned interleaving\n";

    util::CsvTable csv({"policy", "mean_energy", "deadline_misses"});
    csv.NewRow().Add("gated").Add(gated_energy.mean(), 3).Add(gated_misses);
    csv.NewRow().Add("eager").Add(eager_energy.mean(), 3).Add(eager_misses);
    if (!config.csv.empty()) {
      csv.WriteFile(config.csv);
    }
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
