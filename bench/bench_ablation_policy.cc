// Ablation: why the runtime gates each sub-instance at its segment start.
//
// The greedy dispatcher refuses to start a sub-instance before its segment
// (its release): the static plan assigns the pre-release window to *other*
// tasks, and slack is handed to the next sub-instance in the total order —
// the premise of the paper's constraint (11).  The "eager" variant removes
// that gate: a task rolls straight into its next segment's budget at a
// stretched voltage, hogging windows the plan reserved for lower-priority
// tasks.  This bench measures both: the eager variant sometimes saves a
// little energy and sometimes MISSES DEADLINES — which is the point.
//
// Runs as one runner::RunGrid over a custom method registry: the
// "acs-eager" arm shares the cell's cached ACS solve with the "acs" arm and
// both see identical workload realisations, so the energy delta isolates
// the dispatch gate alone.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/method_registry.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

/// ACS schedule dispatched WITHOUT the segment gate (unsafe on purpose).
class AcsEagerMethod final : public dvs::core::ScheduleMethod {
 public:
  dvs::core::MethodPlan Plan(dvs::core::MethodContext& context) const override {
    const dvs::core::ScheduleResult& acs = context.Acs();
    return dvs::core::MethodPlan{
        acs.schedule,
        std::make_unique<dvs::sim::GreedyReclaimPolicy>(
            context.dvs(), /*allow_early_start=*/true),
        acs.predicted_energy, acs.used_fallback};
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 8;
  config.methods = "acs,acs-eager";
  config.baseline = "acs";
  util::ArgParser parser("bench_ablation_policy",
                         "segment gating vs eager early-start dispatch");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    core::MethodRegistry registry;
    core::RegisterBuiltins(registry);
    registry.Register("acs-eager",
                      "ACS schedule + eager early-start dispatch (unsafe)",
                      std::make_unique<AcsEagerMethod>());

    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.3;
    runner::ExperimentGrid grid = config.MakeGrid(
        cpu, {runner::RandomSource("random-6", gen, config.tasksets)});

    std::cout << "Ablation: dispatch gating (6 tasks, ratio 0.3, "
              << config.tasksets << " sets, ACS schedules, "
              << config.ResolvedThreads() << " threads)\n\n";

    const runner::GridResult result =
        bench::RunGridTimed(grid, registry, config, "policy-grid");

    util::TextTable table({"dispatch policy", "mean energy",
                           "deadline misses"});
    util::CsvTable csv({"policy", "mean_energy", "deadline_misses"});
    for (std::size_t m = 0; m < grid.methods.size(); ++m) {
      const runner::MethodAggregate aggregate = result.Aggregate(grid, m);
      const bool eager = grid.methods[m] == "acs-eager";
      const std::string label =
          eager ? "acs-eager: no gate (unsafe)"
                : grid.methods[m] + ": gated at segment start";
      table.AddRow({label,
                    util::FormatDouble(aggregate.measured_energy.mean(), 1),
                    std::to_string(aggregate.deadline_misses)});
      csv.NewRow()
          .Add(grid.methods[m])
          .Add(aggregate.measured_energy.mean(), 3)
          .Add(aggregate.deadline_misses);
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: gating costs little energy and is what makes "
                 "the offline worst-case guarantee hold at runtime; the "
                 "eager variant breaks the planned interleaving\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
