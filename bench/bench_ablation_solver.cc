// Ablation: reduced formulation vs the paper-faithful full NLP.
//
// The reduced model (end-times + budget splits, everything else derived)
// carries 1-3 variables per sub-instance; the paper's original variable set
// carries six plus nonlinear coupling constraints.  This bench compares
// solution quality (predicted average energy) and wall-clock cost on small
// systems where both are tractable.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "core/formulation.h"
#include "core/full_nlp.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  util::ArgParser parser("bench_ablation_solver",
                         "reduced formulation vs paper-faithful full NLP");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }

    const model::LinearDvsModel default_cpu = workload::DefaultModel();
    const model::LinearDvsModel motivation_cpu = workload::MotivationModel();

    util::TextTable table({"system", "subs", "reduced E", "full E",
                           "E ratio", "reduced ms", "full ms"});
    util::CsvTable csv({"system", "sub_instances", "reduced_energy",
                        "full_energy", "reduced_ms", "full_ms"});

    struct Case {
      std::string name;
      model::TaskSet set;
      const model::DvsModel* cpu;
    };
    std::vector<Case> cases;
    cases.push_back({"motivation (3 tasks)", workload::MotivationTaskSet(),
                     &motivation_cpu});
    {
      stats::Rng rng(config.seed);
      for (int n : {3, 4}) {
        workload::RandomTaskSetOptions gen;
        gen.num_tasks = n;
        gen.bcec_wcec_ratio = 0.3;
        gen.max_sub_instances = 60;  // keep the full NLP tractable
        cases.push_back({"random " + std::to_string(n) + "-task",
                         workload::GenerateRandomTaskSet(gen, default_cpu,
                                                         rng),
                         &default_cpu});
      }
    }

    std::cout << "Ablation: reduced vs full NLP (energy = predicted "
                 "average-case objective)\n\n";
    for (const Case& c : cases) {
      const fps::FullyPreemptiveSchedule fps(c.set);

      const auto t0 = std::chrono::steady_clock::now();
      const core::ScheduleResult wcs = core::SolveWcs(fps, *c.cpu);
      const core::ScheduleResult reduced = core::SolveSchedule(
          fps, *c.cpu, core::Scenario::kAverage, {}, wcs.schedule);
      const auto t1 = std::chrono::steady_clock::now();

      const core::FullNlp full(fps, *c.cpu);
      const core::FullNlpResult full_result = full.Solve(wcs.schedule);
      const auto t2 = std::chrono::steady_clock::now();

      // Evaluate both final schedules under the same reduced objective so
      // the comparison is apples to apples.
      const core::EnergyObjective avg(fps, *c.cpu, core::Scenario::kAverage);
      const double e_reduced =
          avg.Value(avg.PackSchedule(reduced.schedule));
      const double e_full =
          avg.Value(avg.PackSchedule(full_result.schedule));

      table.AddRow({c.name, std::to_string(fps.sub_count()),
                    util::FormatDouble(e_reduced, 1),
                    util::FormatDouble(e_full, 1),
                    util::FormatDouble(e_full / e_reduced, 3),
                    util::FormatDouble(Ms(t0, t1), 1),
                    util::FormatDouble(Ms(t1, t2), 1)});
      csv.NewRow()
          .Add(c.name)
          .Add(fps.sub_count())
          .Add(e_reduced, 3)
          .Add(e_full, 3)
          .Add(Ms(t0, t1), 2)
          .Add(Ms(t1, t2), 2);
    }
    bench::Emit(table, csv, config.csv);
    std::cout << "\nreading: both formulations find the same optima on "
                 "small systems; the reduced model is the one that scales "
                 "to the paper's 1000-sub-instance cap\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
