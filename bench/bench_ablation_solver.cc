// Ablation: reduced formulation vs the paper-faithful full NLP.
//
// The reduced model (end-times + budget splits, everything else derived)
// carries 1-3 variables per sub-instance; the paper's original variable set
// carries six plus nonlinear coupling constraints.  This bench compares
// solution quality (predicted average energy) and wall-clock cost on small
// systems where both are tractable.
//
// Runs through runner::RunGrid with a custom registry arm, "acs-full-nlp",
// that solves the paper-faithful model warm-started from the cell's cached
// WCS solve.  Each (system, arm) pair is one timed grid run over the same
// master seed, so both arms solve identical task sets; both report the
// *average-scenario replay energy* of their final schedule, which makes the
// quality comparison apples to apples.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "core/formulation.h"
#include "core/full_nlp.h"
#include "core/method_registry.h"
#include "sim/policy.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/motivation.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

/// The paper-faithful six-variable NLP, warm-started from the cached WCS
/// solve; predicted energy is the final schedule's average-scenario replay
/// (the reduced arm's objective), so both arms report the same quantity.
class FullNlpMethod final : public dvs::core::ScheduleMethod {
 public:
  dvs::core::MethodPlan Plan(dvs::core::MethodContext& context) const override {
    const dvs::core::FullNlp full(context.fps(), context.dvs());
    dvs::core::FullNlpResult result = full.Solve(context.Wcs().schedule);
    const dvs::core::EnergyObjective average(context.fps(), context.dvs(),
                                             dvs::core::Scenario::kAverage);
    const double predicted =
        average.Value(average.PackSchedule(result.schedule));
    return dvs::core::MethodPlan{
        std::move(result.schedule),
        std::make_unique<dvs::sim::GreedyReclaimPolicy>(context.dvs()),
        predicted, false};
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 1;
  // The bench reports *predicted* (offline) energy, so the default of one
  // simulated hyper-period keeps the wall-ms column dominated by the solve
  // cost the two formulations differ in; --hyper-periods raises it.
  config.hyper_periods = 1;
  config.methods = "acs,acs-full-nlp";
  config.baseline = "acs";
  util::ArgParser parser("bench_ablation_solver",
                         "reduced formulation vs paper-faithful full NLP");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    core::MethodRegistry registry;
    core::RegisterBuiltins(registry);
    registry.Register("acs-full-nlp",
                      "paper-faithful full NLP, WCS warm start",
                      std::make_unique<FullNlpMethod>());

    const model::LinearDvsModel default_cpu = workload::DefaultModel();
    const model::LinearDvsModel motivation_cpu = workload::MotivationModel();

    struct System {
      std::string name;
      runner::TaskSetSource source;
      const model::DvsModel* cpu;
    };
    std::vector<System> systems;
    systems.push_back({"motivation (3 tasks)",
                       runner::FixedSource("motivation",
                                           workload::MotivationTaskSet()),
                       &motivation_cpu});
    for (int n : {3, 4}) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = n;
      gen.bcec_wcec_ratio = 0.3;
      gen.max_sub_instances = 60;  // keep the full NLP tractable
      systems.push_back({"random " + std::to_string(n) + "-task",
                         runner::RandomSource("random-" + std::to_string(n),
                                              gen, config.tasksets),
                         &default_cpu});
    }

    std::cout << "Ablation: reduced vs full NLP (energy = predicted "
                 "average-case objective, " << config.ResolvedThreads()
              << " threads)\n\n";

    util::TextTable table({"system", "method", "subs", "predicted E",
                           "wall ms"});
    util::CsvTable csv({"system", "method", "sub_instances",
                        "predicted_energy", "wall_ms"});

    for (std::size_t s = 0; s < systems.size(); ++s) {
      for (const std::string& method : config.MethodList()) {
        runner::ExperimentGrid grid =
            config.MakeGrid(*systems[s].cpu, {systems[s].source},
                            static_cast<std::uint64_t>(s));
        grid.methods = {method};
        grid.baseline = method;

        // Each arm is timed from scratch: the persistent workspaces are
        // cleared so the full-NLP arm cannot reuse the WCS solve cached by
        // the reduced arm's grid — the wall-ms column is a fair
        // reduced-vs-full comparison, both paying their warm starts.
        config.workspaces->clear();
        // The wall-ms column reports the result-bearing repeat-0 run only
        // (RunGridTimed may re-run the grid --grid-repeats times for the
        // --bench-json cold/warm trajectory).
        const std::size_t first_entry = config.report->entries.size();
        const runner::GridResult result = bench::RunGridTimed(
            grid, registry, config, systems[s].name + "-" + method);
        const double wall_ms = config.report->entries[first_entry].wall_ms;

        stats::OnlineStats predicted;
        stats::OnlineStats subs;
        for (const runner::CellResult& cell : result.cells) {
          if (!cell.ok()) {
            continue;
          }
          predicted.Add(cell.outcomes[0].predicted_energy);
          subs.Add(static_cast<double>(cell.sub_instances));
        }
        ACS_REQUIRE(predicted.count() > 0,
                    "every cell of system \"" + systems[s].name +
                        "\" failed");
        table.AddRow({systems[s].name, method,
                      util::FormatDouble(subs.mean(), 0),
                      util::FormatDouble(predicted.mean(), 1),
                      util::FormatDouble(wall_ms, 1)});
        csv.NewRow()
            .Add(systems[s].name)
            .Add(method)
            .Add(subs.mean(), 0)
            .Add(predicted.mean(), 3)
            .Add(wall_ms, 2);
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: both formulations find the same optima on "
                 "small systems; the reduced model is the one that scales "
                 "to the paper's 1000-sub-instance cap\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
