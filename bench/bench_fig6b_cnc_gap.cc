// Reproduces Fig. 6 (right): ACS-vs-WCS energy improvement on the two
// real-life applications — the CNC controller (Kim et al., RTSS'96) and the
// GAP avionics platform (Locke et al.) — across BCEC/WCEC ratios.
//
// Paper shape: improvement decreases with the ratio; peaks of ~41% (CNC)
// and ~30% (GAP) at ratio 0.1.
#include <iostream>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/cnc.h"
#include "workload/gap.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  util::ArgParser parser("bench_fig6b_cnc_gap",
                         "Fig. 6 (right): CNC & GAP improvement vs ratio");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double ratios[] = {0.1, 0.3, 0.5, 0.7, 0.9};

    util::TextTable table({"ratio", "CNC", "GAP"});
    util::CsvTable csv({"application", "bcec_wcec_ratio", "improvement_mean",
                        "improvement_stddev", "seeds", "deadline_misses"});

    std::cout << "Fig. 6 (right) — ACS improvement over WCS, real-life "
                 "applications\n("
              << config.seeds << " workload streams/point, "
              << config.hyper_periods << " hyper-periods each"
              << (config.paper ? ", paper scale" : "") << ")\n\n";

    for (double ratio : ratios) {
      workload::CncOptions cnc_options;
      cnc_options.bcec_wcec_ratio = ratio;
      const model::TaskSet cnc = workload::CncTaskSet(cnc_options, cpu);
      const bench::SweepPoint pc = bench::RunFixedSetSweep(cnc, config, cpu);

      workload::GapOptions gap_options;
      gap_options.bcec_wcec_ratio = ratio;
      const model::TaskSet gap = workload::GapTaskSet(gap_options, cpu);
      const bench::SweepPoint pg = bench::RunFixedSetSweep(gap, config, cpu);

      table.AddRow({util::FormatDouble(ratio, 1),
                    util::FormatPercent(pc.improvement.mean()),
                    util::FormatPercent(pg.improvement.mean())});
      csv.NewRow()
          .Add("cnc")
          .Add(ratio, 2)
          .Add(pc.improvement.mean(), 6)
          .Add(pc.improvement.stddev(), 6)
          .Add(static_cast<std::int64_t>(pc.improvement.count()))
          .Add(pc.total_misses);
      csv.NewRow()
          .Add("gap")
          .Add(ratio, 2)
          .Add(pg.improvement.mean(), 6)
          .Add(pg.improvement.stddev(), 6)
          .Add(static_cast<std::int64_t>(pg.improvement.count()))
          .Add(pg.total_misses);
      if (pc.total_misses + pg.total_misses != 0) {
        std::cerr << "WARNING: deadline misses at ratio " << ratio << "\n";
      }
    }
    bench::Emit(table, csv, config.csv);
    std::cout << "\npaper reference: ~41% (CNC) and ~30% (GAP) at ratio 0.1, "
                 "falling towards zero at 0.9\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
