// Reproduces Fig. 6 (right): ACS-vs-WCS energy improvement on the two
// real-life applications — the CNC controller (Kim et al., RTSS'96) and the
// GAP avionics platform (Locke et al.) — across BCEC/WCEC ratios.
//
// Paper shape: improvement decreases with the ratio; peaks of ~41% (CNC)
// and ~30% (GAP) at ratio 0.1.
#include <iostream>

#include "bench_common.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/cnc.h"
#include "workload/gap.h"
#include "workload/presets.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  util::ArgParser parser("bench_fig6b_cnc_gap",
                         "Fig. 6 (right): CNC & GAP improvement vs ratio");
  config.Register(parser);
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const model::LinearDvsModel cpu = workload::DefaultModel();
    const double ratios[] = {0.1, 0.3, 0.5, 0.7, 0.9};

    util::TextTable table({"ratio", "CNC", "GAP"});
    util::CsvTable csv({"application", "bcec_wcec_ratio", "improvement_mean",
                        "improvement_stddev", "seeds", "deadline_misses"});

    std::cout << "Fig. 6 (right) — ACS improvement over WCS, real-life "
                 "applications\n("
              << config.seeds << " workload streams/point, "
              << config.hyper_periods << " hyper-periods each, "
              << config.ResolvedThreads() << " threads"
              << (config.paper ? ", paper scale" : "") << ")\n\n";

    ACS_REQUIRE(config.MethodList().size() >= 2,
                "this bench reports improvement over the baseline; --methods "
                "needs at least one non-baseline entry");
    const auto emit = [&csv](const char* app, double ratio,
                             const bench::SweepPoint& point) {
      const bool has_data = point.improvement.count() > 0;
      csv.NewRow()
          .Add(app)
          .Add(ratio, 2)
          .Add(has_data ? point.improvement.mean() : 0.0, 6)
          .Add(has_data ? point.improvement.stddev() : 0.0, 6)
          .Add(static_cast<std::int64_t>(point.improvement.count()))
          .Add(point.total_misses);
      if (point.failed_cells != 0) {
        std::cerr << "WARNING: " << point.failed_cells << " " << app
                  << " cells failed and were skipped at ratio " << ratio
                  << "\n";
      }
      return has_data ? util::FormatPercent(point.improvement.mean())
                      : std::string("n/a");
    };
    for (double ratio : ratios) {
      workload::CncOptions cnc_options;
      cnc_options.bcec_wcec_ratio = ratio;
      const model::TaskSet cnc = workload::CncTaskSet(cnc_options, cpu);
      const bench::SweepPoint pc = bench::RunFixedSetSweep(
          cnc, "cnc-r" + util::FormatDouble(ratio, 1), config, cpu);

      workload::GapOptions gap_options;
      gap_options.bcec_wcec_ratio = ratio;
      const model::TaskSet gap = workload::GapTaskSet(gap_options, cpu);
      const bench::SweepPoint pg = bench::RunFixedSetSweep(
          gap, "gap-r" + util::FormatDouble(ratio, 1), config, cpu);

      table.AddRow({util::FormatDouble(ratio, 1), emit("cnc", ratio, pc),
                    emit("gap", ratio, pg)});
      if (pc.total_misses + pg.total_misses != 0) {
        std::cerr << "WARNING: deadline misses at ratio " << ratio << "\n";
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\npaper reference: ~41% (CNC) and ~30% (GAP) at ratio 0.1, "
                 "falling towards zero at 0.9\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
