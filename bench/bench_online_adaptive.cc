// Online adaptive dispatch sweep: scenario x online arm x sigma x cores.
//
// The scenario-planning sweep (bench_scenario_planning) conditions the
// *offline plan* on the calibrated law; this bench measures what moving the
// expected-case decision *online* buys on top.  It runs the online arms
// (acs-online: calibrated-mean plan + per-dispatch expected-case DP over
// the remaining-work distribution; acs-online-drift: the same plus an EWMA
// drift detector with warm-started mid-run replans) against greedy-reclaim
// and the frozen acs-scenario plan on paired draws, per scenario, sigma
// and core count.
//
// Besides the built-in processes, the sweep adds a "shift" scenario this
// binary registers locally: each task draws from a heavy truncated normal
// (BCEC + 0.7 span) for its first --shift-after jobs, then from a light
// one (BCEC + 0.2 span) for the rest of the run.  The default calibration
// budget (--calibration-samples) equals --shift-after, so offline
// calibration sees only the pre-shift law — the frozen acs-scenario plan
// keeps over-spending for the whole post-shift tail, which is exactly the
// regime the drift arm's replans are for.
//
// Reading: "vs greedy" is the paired improvement over pure online
// reclamation (positive means the expected-case DP beats greedy slack
// chasing — widest under bursty/correlated, whose sticky phases starve the
// greedy policy of usable slack); "vs frozen" is the paired improvement
// over the frozen acs-scenario plan (near zero for the stationary
// processes, positive for acs-online-drift under "shift", where the
// mid-run replan tracks the moved mean).
#include <algorithm>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "stats/distributions.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace {

constexpr const char* kDefaultScenarios =
    "iid-normal,bursty,heavy-tail,correlated,shift";
constexpr const char* kDefaultMethods =
    "greedy-reclaim,acs-scenario,acs-online,acs-online-drift";

using dvs::model::TaskIndex;
using dvs::model::TaskSet;

/// Mid-run distribution shift: task i's first `shift_after` jobs draw from
/// a heavy truncated normal at BCEC + 0.7 span, every later job from a
/// light one at BCEC + 0.2 span (sigma = span / (2 sigma_divisor), the
/// bimodal/bursty mode width) — the "provisioned for a heavy launch
/// window, reality lightened" story, where a plan frozen at the calibrated
/// heavy mean keeps over-spending for the whole post-shift tail.  The
/// per-task job counter makes the shift a property of the *process*, so
/// the clamping contract and paired-seed reproducibility are untouched.
/// Collapsed windows (span == 0) degenerate to the fixed WCEC draw like
/// every built-in.
class ShiftWorkload final : public dvs::model::WorkloadSampler {
 public:
  ShiftWorkload(const TaskSet& set, double sigma_divisor,
                std::int64_t shift_after)
      : shift_after_(shift_after) {
    for (TaskIndex i = 0; i < set.size(); ++i) {
      const dvs::model::Task& t = set.task(i);
      const double span = t.wcec - t.bcec;
      fixed_.push_back(t.wcec);
      if (span > 0.0) {
        const double sigma = span / (2.0 * sigma_divisor);
        heavy_.emplace_back(dvs::stats::TruncatedNormal(
            t.bcec + 0.7 * span, sigma, t.bcec, t.wcec));
        light_.emplace_back(dvs::stats::TruncatedNormal(
            t.bcec + 0.2 * span, sigma, t.bcec, t.wcec));
      } else {
        heavy_.emplace_back(std::nullopt);
        light_.emplace_back(std::nullopt);
      }
    }
    draws_.assign(set.size(), 0);
  }

  double SampleCycles(TaskIndex task, dvs::stats::Rng& rng) const override {
    ACS_REQUIRE(task < draws_.size(), "task index out of range");
    const bool shifted = draws_[task] >= shift_after_;
    ++draws_[task];
    const auto& dist = shifted ? light_[task] : heavy_[task];
    return dist.has_value() ? dist->Sample(rng) : fixed_[task];
  }

 private:
  std::int64_t shift_after_;
  std::vector<std::optional<dvs::stats::TruncatedNormal>> light_;
  std::vector<std::optional<dvs::stats::TruncatedNormal>> heavy_;
  std::vector<double> fixed_;
  mutable std::vector<std::int64_t> draws_;  // per-run state
};

class ShiftScenario final : public dvs::model::WorkloadScenario {
 public:
  explicit ShiftScenario(std::int64_t shift_after)
      : shift_after_(shift_after) {}

  std::unique_ptr<dvs::model::WorkloadSampler> MakeSampler(
      const TaskSet& set, double sigma_divisor) const override {
    return std::make_unique<ShiftWorkload>(set, sigma_divisor, shift_after_);
  }

 private:
  std::int64_t shift_after_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 8;
  config.hyper_periods = 80;
  config.methods = kDefaultMethods;
  config.baseline = "greedy-reclaim";
  config.scenarios = kDefaultScenarios;
  // Calibrate on exactly the pre-shift prefix (see the header comment);
  // --calibration-samples and --shift-after both remain overridable.
  config.planning.calibration_samples = 256;
  std::string sigmas_flag = "6,10";
  std::string cores_flag = "1,4";
  double idle_power = 0.05;
  double per_core_utilization = 0.7;
  std::int64_t shift_after = 256;

  util::ArgParser parser("bench_online_adaptive",
                         "online expected-case dispatch and drift-replanning "
                         "sweep: scenario x online arm x sigma x cores");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("sigmas", &sigmas_flag,
                   "comma-separated sigma divisors (sigma-insensitive "
                   "scenarios run once at the first value)");
  parser.AddString("cores", &cores_flag, "comma-separated core counts");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddDouble("per-core-utilization", &per_core_utilization,
                   "worst-case utilisation target per core");
  parser.AddInt("shift-after", &shift_after,
                "per-task job count before the \"shift\" scenario moves its "
                "mean from BCEC + 0.7 span down to BCEC + 0.2 span");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    ACS_REQUIRE(shift_after > 0, "--shift-after must be positive");
    config.Finalize();

    const auto cell_sink = config.OpenCellSink();
    const std::vector<double> sigmas =
        bench::ParsePositiveDoubleList("sigmas", sigmas_flag);
    const std::vector<int> core_counts =
        bench::ParsePositiveIntList("cores", cores_flag);
    const std::vector<std::string> scenario_names = config.ScenarioList();
    const std::vector<std::string> method_names = config.MethodList();

    // The built-ins plus this binary's local "shift" process.
    workload::ScenarioRegistry registry;
    workload::RegisterBuiltinScenarios(registry);
    registry.Register("shift",
                      "mid-run mean shift: heavy law for the first "
                      "--shift-after jobs per task, light after",
                      std::make_unique<ShiftScenario>(shift_after));
    const model::LinearDvsModel cpu = workload::DefaultModel();

    std::cout << "Online adaptive dispatch sweep ("
              << util::FormatPercent(per_core_utilization) << " per core, "
              << config.tasksets << " sets/point, " << config.hyper_periods
              << " hyper-periods, " << config.online.dp_bins
              << " DP bins, drift ewma "
              << util::FormatDouble(config.online.drift_ewma, 2)
              << " threshold "
              << util::FormatDouble(config.online.drift_threshold, 2) << ", "
              << config.ResolvedThreads() << " threads)\n\n";

    util::TextTable table({"cores", "scenario", "arm", "fleet power",
                           "vs greedy", "vs frozen", "misses", "failed"});
    util::CsvTable csv({"cores", "scenario", "arm", "fleet_power_mean",
                        "vs_greedy_mean", "vs_greedy_stddev",
                        "vs_frozen_mean", "deadline_misses", "failed_cells"});

    // Sigma-insensitive scenarios would duplicate cells per sigma (see
    // bench_scenario_sweep); run them in a sibling grid pinned to the first
    // sigma.  Both grids of one m share master seed / sources / utilisation,
    // so their SetIndex-keyed streams stay paired across the split.
    std::vector<std::string> sigma_scenarios;
    std::vector<std::string> fixed_scenarios;
    for (const std::string& name : scenario_names) {
      (registry.Get(name).UsesSigmaDivisor() ? sigma_scenarios
                                             : fixed_scenarios)
          .push_back(name);
    }

    for (int m : core_counts) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = std::max(6, 3 * m);
      gen.bcec_wcec_ratio = 0.3;
      gen.utilization = per_core_utilization * static_cast<double>(m);
      gen.max_sub_instances = 350;  // per-core scale (pro-rata for m > 1)
      const runner::TaskSetSource source = runner::RandomSource(
          "random-m" + std::to_string(m), gen, config.tasksets);

      struct GridRun {
        runner::ExperimentGrid grid;
        runner::GridResult result;
      };
      std::vector<GridRun> runs;
      const auto run_subset = [&](const std::vector<std::string>& subset,
                                  const std::vector<double>& sigma_axis,
                                  const std::string& label) {
        if (subset.empty()) {
          return;
        }
        runner::ExperimentGrid grid = config.MakeGrid(
            cpu, {source}, static_cast<std::uint64_t>(m));
        grid.core_counts = {m};
        grid.scenarios = subset;
        grid.scenario_registry = &registry;
        grid.sigma_divisors = sigma_axis;
        grid.idle_power.power_per_ms = idle_power;
        runner::GridResult result = bench::RunGridTimed(grid, config, label);
        runs.push_back(GridRun{std::move(grid), std::move(result)});
      };
      run_subset(sigma_scenarios, sigmas, "cores-" + std::to_string(m));
      run_subset(fixed_scenarios, {sigmas.front()},
                 "cores-" + std::to_string(m) + "-fixed-sigma");

      // Per (scenario, method): paired aggregates against the greedy
      // baseline and the frozen acs-scenario rows of the same cell.
      struct ArmAgg {
        stats::OnlineStats power;
        stats::OnlineStats vs_greedy;
        stats::OnlineStats vs_frozen;
        std::int64_t misses = 0;
        std::size_t failed = 0;
      };
      std::vector<std::vector<ArmAgg>> aggs(
          scenario_names.size(), std::vector<ArmAgg>(method_names.size()));
      const auto scenario_of = [&](const std::string& name) {
        const auto it = std::find(scenario_names.begin(),
                                  scenario_names.end(), name);
        ACS_REQUIRE(it != scenario_names.end(),
                    "scenario \"" + name + "\" missing from sweep");
        return static_cast<std::size_t>(it - scenario_names.begin());
      };

      for (const GridRun& run : runs) {
        const std::size_t greedy_index = run.grid.BaselineIndex();
        // "vs frozen" is contextual and only meaningful when the
        // acs-scenario arm is in the sweep; without it the column reports
        // n/a instead of silently re-labelling some other reference.
        std::size_t frozen_index = run.grid.methods.size();
        for (std::size_t i = 0; i < run.grid.methods.size(); ++i) {
          if (run.grid.methods[i] == "acs-scenario") {
            frozen_index = i;
          }
        }
        for (const runner::CellResult& cell : run.result.cells) {
          const std::size_t s = scenario_of(
              run.grid.scenarios[cell.coord.scenario_index]);
          for (std::size_t i = 0; i < method_names.size(); ++i) {
            ArmAgg& agg = aggs[s][i];
            if (!cell.ok()) {
              ++agg.failed;
              continue;
            }
            double power = cell.outcomes[i].measured_energy;
            if (!run.grid.MultiCore()) {
              power /= static_cast<double>(cell.hyper_period);
            }
            agg.power.Add(power);
            agg.vs_greedy.Add(cell.ImprovementOver(i, greedy_index));
            if (frozen_index < run.grid.methods.size()) {
              agg.vs_frozen.Add(cell.ImprovementOver(i, frozen_index));
            }
            agg.misses += cell.outcomes[i].deadline_misses;
          }
        }
      }

      for (std::size_t s = 0; s < scenario_names.size(); ++s) {
        for (std::size_t i = 0; i < method_names.size(); ++i) {
          const ArmAgg& agg = aggs[s][i];
          const bool has_data = agg.power.count() > 0;
          const bool has_frozen = agg.vs_frozen.count() > 0;
          table.AddRow(
              {std::to_string(m), scenario_names[s], method_names[i],
               has_data ? util::FormatDouble(agg.power.mean(), 3) : "n/a",
               has_data ? util::FormatPercent(agg.vs_greedy.mean()) : "n/a",
               has_frozen ? util::FormatPercent(agg.vs_frozen.mean())
                          : "n/a",
               std::to_string(agg.misses), std::to_string(agg.failed)});
          csv.NewRow()
              .Add(m)
              .Add(scenario_names[s])
              .Add(method_names[i])
              .Add(has_data ? agg.power.mean() : 0.0, 6)
              .Add(has_data ? agg.vs_greedy.mean() : 0.0, 6)
              .Add(has_data ? agg.vs_greedy.stddev() : 0.0, 6)
              .Add(has_frozen ? agg.vs_frozen.mean() : 0.0, 6)
              .Add(agg.misses)
              .Add(agg.failed);
        }
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: \"vs greedy\" is the paired gain of dispatching "
                 "at the expected-case DP speed instead of greedy slack "
                 "reclamation — widest under bursty/correlated, whose "
                 "sticky phases starve greedy of usable slack; \"vs "
                 "frozen\" isolates the drift arm's mid-run replans, "
                 "positive under \"shift\" where the frozen plan goes "
                 "stale; misses stay 0 (every dispatch keeps the "
                 "worst-case window)\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
