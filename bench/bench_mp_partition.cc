// Partitioned multi-core sweep: core count x partitioner x schedule method.
//
// The mp layer's headline experiment, in the spirit of the partitioned-DVS
// literature (Nélis et al.; Huang et al.): draw task sets whose worst-case
// demand scales with the fleet (utilisation = 70% per core), partition them
// with each registered strategy, run the paper's per-core ACS/WCS pipeline
// on every powered core, and report the fleet-energy improvement of
// partitioned-ACS over partitioned-WCS together with the partitioning
// cost itself.
//
// One runner::RunGrid per core count (task count and utilisation co-vary
// with m); the partitioner is a grid axis inside each, so the rows of one
// m face bit-identical task-set draws and the partitioner columns compare
// paired on the input side.  (Per-core workload realisations still differ
// between partitions — streams fork by physical core and the partitions
// assign different subsets — so small runs carry sampling noise on top of
// the partitioning effect; raise --replicates to average it out.)  Fleet figures
// are energy per ms including the per-powered-core idle floor (mp/fleet.h);
// the default non-zero --idle-power keeps every cell — m = 1 included — in
// those units and gives consolidation-vs-spread a real trade-off.
#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.h"
#include "mp/partitioner.h"
#include "util/error.h"
#include "util/strings.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

int main(int argc, char** argv) {
  using namespace dvs;
  bench::SweepConfig config;
  config.tasksets = 4;
  config.hyper_periods = 50;
  std::string cores_flag = "1,2,4,8";
  std::string partitioners_flag = "ffd,wfd,energy-greedy";
  double idle_power = 0.05;
  double per_core_utilization = 0.7;

  util::ArgParser parser("bench_mp_partition",
                         "partitioned multi-core ACS vs WCS fleet energy");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("cores", &cores_flag, "comma-separated core counts");
  parser.AddString("partitioners", &partitioners_flag,
                   "comma-separated mp partitioners");
  parser.AddDouble("idle-power", &idle_power,
                   "always-on energy/ms floor per powered core");
  parser.AddDouble("per-core-utilization", &per_core_utilization,
                   "worst-case utilisation target per core");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    config.Finalize();
    const auto cell_sink = config.OpenCellSink();

    const std::vector<int> core_counts =
        bench::ParsePositiveIntList("cores", cores_flag);
    std::vector<std::string> partitioners;
    for (const std::string& name : util::Split(partitioners_flag, ',')) {
      if (!name.empty()) {
        partitioners.push_back(name);
      }
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();

    std::cout << "Partitioned multi-core sweep ("
              << util::FormatPercent(per_core_utilization)
              << " per core, idle floor " << idle_power << "/ms/core, "
              << config.tasksets << " sets/point, "
              << config.ResolvedThreads() << " threads)\n\n";

    util::TextTable table({"cores", "partitioner", "ACS fleet power",
                           "ACS vs WCS", "misses", "failed"});
    util::CsvTable csv({"cores", "partitioner", "acs_fleet_power",
                        "improvement_mean", "improvement_stddev",
                        "deadline_misses", "failed_cells"});

    for (int m : core_counts) {
      workload::RandomTaskSetOptions gen;
      gen.num_tasks = std::max(6, 3 * m);
      gen.bcec_wcec_ratio = 0.3;
      gen.utilization = per_core_utilization * static_cast<double>(m);
      gen.max_sub_instances = 350;  // per-core scale (pro-rata for m > 1)

      runner::ExperimentGrid grid = config.MakeGrid(
          cpu,
          {runner::RandomSource("random-m" + std::to_string(m), gen,
                                config.tasksets)},
          static_cast<std::uint64_t>(m));
      grid.core_counts = {m};
      grid.partitioners = partitioners;
      grid.idle_power.power_per_ms = idle_power;

      const runner::GridResult result = bench::RunGridTimed(
          grid, config, "cores-" + std::to_string(m));
      const std::size_t baseline = grid.BaselineIndex();
      const std::size_t method = bench::FirstNonBaseline(grid);

      for (std::size_t p = 0; p < partitioners.size(); ++p) {
        stats::OnlineStats power;
        stats::OnlineStats improvement;
        std::int64_t misses = 0;
        std::size_t failed = 0;
        for (const runner::CellResult& cell : result.cells) {
          if (cell.coord.partitioner_index != p) {
            continue;
          }
          if (!cell.ok()) {
            ++failed;
            continue;
          }
          double cell_power = cell.outcomes[method].measured_energy;
          if (!grid.MultiCore()) {
            // m = 1 with a zero idle floor runs the legacy single-core path
            // (energy per hyper-period); normalise so the column is
            // energy/ms in every row.
            cell_power /= static_cast<double>(cell.hyper_period);
          }
          power.Add(cell_power);
          improvement.Add(cell.ImprovementOver(method, baseline));
          for (const core::MethodOutcome& outcome : cell.outcomes) {
            misses += outcome.deadline_misses;
          }
        }
        const bool has_data = improvement.count() > 0;
        table.AddRow({std::to_string(m), partitioners[p],
                      has_data ? util::FormatDouble(power.mean(), 2) : "n/a",
                      has_data ? util::FormatPercent(improvement.mean())
                               : "n/a",
                      std::to_string(misses), std::to_string(failed)});
        csv.NewRow()
            .Add(m)
            .Add(partitioners[p])
            .Add(has_data ? power.mean() : 0.0, 6)
            .Add(has_data ? improvement.mean() : 0.0, 6)
            .Add(has_data ? improvement.stddev() : 0.0, 6)
            .Add(misses)
            .Add(failed);
      }
    }
    bench::Emit(table, csv, config);
    std::cout << "\nreading: the per-core ACS win survives partitioning at "
                 "every core count; the partitioner decides how much idle "
                 "floor the fleet pays on top\n";
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
