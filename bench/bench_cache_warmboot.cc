// Persistent solve-cache warm-boot bench: cold vs warm-boot vs
// partial-overlap (core/solve_store.h).
//
// Four timed phases over a planning-heavy grid, each with *fresh* per-worker
// workspaces and a *fresh* SolveStore handle — i.e. each phase models a new
// process:
//
//   cold          empty cache dir; every solve/calibration computed, then
//                 written back;
//   warm-boot     the identical grid over the now-populated dir: every
//                 Prepare() pre-seeds from disk, so only simulation remains;
//   overlap-cold  the grid with an extended sigma axis into a second, empty
//                 dir — the honest denominator for the overlap speedup;
//   overlap-warm  the extended grid over the primary dir: the original
//                 sigma columns' planned solves and calibrations hit, only
//                 the new column solves.
//
// The bench byte-compares the cold and warm-boot cell CSVs (header plus
// sorted data rows — row completion order is nondeterministic across
// threads, the row *set* is not) and emits BENCH_cache_warmboot.json with
// the phase walls, speedup_warm = cold/warm, speedup_overlap =
// overlap_cold/overlap_warm, persist hit/miss/reject deltas per phase and
// the byte_identical verdict.  CI gates speedup_warm >= 5, warm persist
// hits > 0 and byte_identical == true.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/solve_store.h"
#include "obs/metrics.h"
#include "runner/csv_sink.h"
#include "util/error.h"
#include "util/json.h"
#include "workload/presets.h"
#include "workload/random_taskset.h"

namespace {

using namespace dvs;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Persist counters folded across shards; zero when no registry is active.
struct PersistCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t rejects = 0;

  PersistCounters operator-(const PersistCounters& other) const {
    return {hits - other.hits, misses - other.misses,
            rejects - other.rejects};
  }
};

PersistCounters SnapshotPersist() {
  PersistCounters out;
  obs::MetricsRegistry* registry = obs::ActiveMetrics();
  if (registry == nullptr) {
    return out;
  }
  for (const obs::AggregatedMetric& metric : registry->Aggregate()) {
    if (metric.name == "persist.cache_hits") {
      out.hits = metric.count;
    } else if (metric.name == "persist.cache_misses") {
      out.misses = metric.count;
    } else if (metric.name == "persist.verify_rejects") {
      out.rejects = metric.count;
    }
  }
  return out;
}

struct Phase {
  std::string label;
  double wall_ms = 0.0;
  std::size_t cells = 0;
  std::size_t failed_cells = 0;
  std::size_t entries_written = 0;
  PersistCounters persist;
  std::string csv_path;
};

/// Runs `grid` as a simulated new process: fresh workspaces, a fresh
/// writable SolveStore over `dir`, a fresh cell CSV at `csv_path`; writes
/// the store back before the handle closes.
Phase RunPhase(const std::string& label, const runner::ExperimentGrid& grid,
               const std::string& dir, const std::string& csv_path,
               const bench::SweepConfig& config) {
  Phase phase;
  phase.label = label;
  phase.csv_path = csv_path;

  std::vector<core::EvalWorkspace> workspaces;
  core::SolveStore store(dir);
  runner::CsvSink sink(csv_path, config.SweepsScenarios(),
                       config.csv_solver_stats);
  runner::RunOptions options = config.RunOpts();
  options.workspaces = &workspaces;
  options.solve_store = &store;
  options.sink = &sink;

  const PersistCounters before = SnapshotPersist();
  const auto start = std::chrono::steady_clock::now();
  const runner::GridResult result = runner::RunGrid(grid, options);
  phase.wall_ms = ElapsedMs(start);
  phase.entries_written = store.WriteBack();
  phase.persist = SnapshotPersist() - before;
  phase.cells = result.cells.size();
  phase.failed_cells = result.failed_cells;
  return phase;
}

/// Empties an entry directory (creating it if needed) so a "cold" phase is
/// genuinely cold even across bench re-runs.
void PurgeStoreDir(const std::string& dir) {
  core::SolveStore store(dir);
  for (std::uint64_t key : store.DiskKeys()) {
    std::remove(store.EntryPath(key).c_str());
  }
}

/// Header plus sorted data rows: the thread-count-independent canonical
/// image of a streamed cell CSV (rows land in completion order; the row
/// set is deterministic).
std::string CanonicalCsv(const std::string& path) {
  std::ifstream in(path);
  ACS_REQUIRE(in.good(), "cannot reopen cell csv: " + path);
  std::string line;
  std::string header;
  std::vector<std::string> rows;
  if (std::getline(in, line)) {
    header = line;
  }
  while (std::getline(in, line)) {
    rows.push_back(line);
  }
  std::sort(rows.begin(), rows.end());
  std::ostringstream out;
  out << header << '\n';
  for (const std::string& row : rows) {
    out << row << '\n';
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepConfig config;
  config.tasksets = 3;
  config.hyper_periods = 40;
  config.methods = "acs,acs-scenario,acs-quantile,wcs";
  config.baseline = "acs";
  config.scenarios = "iid-normal,bursty";
  std::string sigmas_flag = "5,8";
  std::string overlap_flag = "11";

  util::ArgParser parser("bench_cache_warmboot",
                         "persistent solve-cache warm-boot bench: cold vs "
                         "warm-boot vs partial-overlap");
  config.Register(parser);
  parser.AddInt("replicates", &config.tasksets,
                "random task sets per grid point (alias of --tasksets)");
  parser.AddString("sigmas", &sigmas_flag,
                   "comma-separated sigma divisors of the base grid");
  parser.AddString("overlap-sigmas", &overlap_flag,
                   "extra sigma divisors appended for the partial-overlap "
                   "phases");
  try {
    if (!parser.Parse(argc, argv)) {
      return 0;
    }
    // The phases open their own writable stores over the phase dirs; a
    // config-level store on the same dir would deadlock on the writer LOCK,
    // so --cache-dir names the bench's *root* instead of a shared store.
    const std::string cache_root =
        config.cache_dir.empty() ? "cache_warmboot.dir" : config.cache_dir;
    config.cache_dir.clear();
    config.Finalize();

    // Persist hit/miss deltas need a metrics registry; install one for the
    // bench's lifetime unless the telemetry flags already did.
    std::unique_ptr<obs::MetricsRegistry> own_metrics;
    if (obs::ActiveMetrics() == nullptr) {
      own_metrics = std::make_unique<obs::MetricsRegistry>();
      obs::InstallMetrics(own_metrics.get());
    }

    const std::vector<double> sigmas =
        bench::ParsePositiveDoubleList("sigmas", sigmas_flag);
    std::vector<double> overlap_sigmas = sigmas;
    for (double extra :
         bench::ParsePositiveDoubleList("overlap-sigmas", overlap_flag)) {
      overlap_sigmas.push_back(extra);
    }

    const model::LinearDvsModel cpu = workload::DefaultModel();
    workload::RandomTaskSetOptions gen;
    gen.num_tasks = 6;
    gen.bcec_wcec_ratio = 0.3;
    gen.utilization = 0.7;
    gen.max_sub_instances = 350;
    const runner::TaskSetSource source =
        runner::RandomSource("warmboot", gen, config.tasksets);

    const auto make_grid = [&](const std::vector<double>& sigma_axis) {
      runner::ExperimentGrid grid = config.MakeGrid(cpu, {source});
      grid.sigma_divisors = sigma_axis;
      return grid;
    };
    const runner::ExperimentGrid base_grid = make_grid(sigmas);
    const runner::ExperimentGrid overlap_grid = make_grid(overlap_sigmas);

    const std::string primary_dir = cache_root + "/primary";
    const std::string overlap_dir = cache_root + "/overlap";
    PurgeStoreDir(primary_dir);
    PurgeStoreDir(overlap_dir);

    std::cout << "Solve-cache warm-boot bench (" << config.tasksets
              << " sets, " << config.hyper_periods << " hyper-periods, "
              << config.ResolvedThreads() << " threads, cache root "
              << cache_root << ")\n\n";

    std::vector<Phase> phases;
    phases.push_back(RunPhase("cold", base_grid, primary_dir,
                              "cache_warmboot_cold.csv", config));
    phases.push_back(RunPhase("warm-boot", base_grid, primary_dir,
                              "cache_warmboot_warm.csv", config));
    phases.push_back(RunPhase("overlap-cold", overlap_grid, overlap_dir,
                              "cache_warmboot_overlap_cold.csv", config));
    phases.push_back(RunPhase("overlap-warm", overlap_grid, primary_dir,
                              "cache_warmboot_overlap_warm.csv", config));
    const Phase& cold = phases[0];
    const Phase& warm = phases[1];
    const Phase& overlap_cold = phases[2];
    const Phase& overlap_warm = phases[3];

    const bool byte_identical =
        CanonicalCsv(cold.csv_path) == CanonicalCsv(warm.csv_path);
    const double speedup_warm =
        warm.wall_ms > 0.0 ? cold.wall_ms / warm.wall_ms : 0.0;
    const double speedup_overlap = overlap_warm.wall_ms > 0.0
                                       ? overlap_cold.wall_ms /
                                             overlap_warm.wall_ms
                                       : 0.0;

    util::TextTable table({"phase", "wall ms", "cells", "failed", "hits",
                           "misses", "rejects", "written"});
    for (const Phase& phase : phases) {
      table.AddRow({phase.label, util::FormatDouble(phase.wall_ms, 1),
                    std::to_string(phase.cells),
                    std::to_string(phase.failed_cells),
                    std::to_string(phase.persist.hits),
                    std::to_string(phase.persist.misses),
                    std::to_string(phase.persist.rejects),
                    std::to_string(phase.entries_written)});
    }
    std::cout << table.Render() << "\n";
    std::cout << "warm-boot speedup:  " << util::FormatDouble(speedup_warm, 2)
              << "x\noverlap speedup:    "
              << util::FormatDouble(speedup_overlap, 2)
              << "x\ncold vs warm CSV:   "
              << (byte_identical ? "byte-identical" : "MISMATCH") << "\n";

    if (!config.bench_json.empty()) {
      util::JsonWriter json;
      json.BeginObject();
      json.Key("bench").Value(std::string("bench_cache_warmboot"));
      json.Key("schema").Value(std::int64_t{1});
      json.Key("config")
          .BeginObject()
          .Key("tasksets")
          .Value(config.tasksets)
          .Key("hyper_periods")
          .Value(config.hyper_periods)
          .Key("threads")
          .Value(config.ResolvedThreads())
          .Key("methods")
          .Value(config.methods)
          .Key("scenarios")
          .Value(config.scenarios)
          .Key("sigmas")
          .Value(sigmas_flag)
          .Key("overlap_sigmas")
          .Value(overlap_flag)
          .Key("cell_scheduling")
          .Value(config.scheduling)
          .Key("cache_root")
          .Value(cache_root)
          .EndObject();
      json.Key("phases").BeginArray();
      for (const Phase& phase : phases) {
        json.BeginObject();
        json.Key("label").Value(phase.label);
        json.Key("wall_ms").Value(phase.wall_ms);
        json.Key("cells").Value(static_cast<std::uint64_t>(phase.cells));
        json.Key("failed_cells")
            .Value(static_cast<std::uint64_t>(phase.failed_cells));
        json.Key("persist_hits").Value(phase.persist.hits);
        json.Key("persist_misses").Value(phase.persist.misses);
        json.Key("persist_rejects").Value(phase.persist.rejects);
        json.Key("entries_written")
            .Value(static_cast<std::uint64_t>(phase.entries_written));
        json.EndObject();
      }
      json.EndArray();
      json.Key("cold_wall_ms").Value(cold.wall_ms);
      json.Key("warm_wall_ms").Value(warm.wall_ms);
      json.Key("overlap_cold_wall_ms").Value(overlap_cold.wall_ms);
      json.Key("overlap_warm_wall_ms").Value(overlap_warm.wall_ms);
      json.Key("speedup_warm").Value(speedup_warm);
      json.Key("speedup_overlap").Value(speedup_overlap);
      json.Key("warm_persist_hits").Value(warm.persist.hits);
      json.Key("byte_identical").Value(byte_identical);
      json.EndObject();
      std::ofstream out(config.bench_json);
      ACS_REQUIRE(out.good(),
                  "cannot open --bench-json file: " + config.bench_json);
      out << json.str() << '\n';
      std::cout << "bench json written to " << config.bench_json << "\n";
    }

    // Restore the flag text so the run manifest records the real root.
    config.cache_dir = cache_root;
    config.WriteRunArtifacts();
    if (own_metrics != nullptr) {
      obs::InstallMetrics(nullptr);
    }

    if (!byte_identical) {
      std::cerr << "error: cold and warm-boot cell CSVs differ\n";
      return 1;
    }
    return 0;
  } catch (const util::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
