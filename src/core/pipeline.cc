#include "core/pipeline.h"

#include "sim/policy.h"
#include "util/error.h"

namespace dvs::core {

sim::SimResult SimulateWith(const fps::FullyPreemptiveSchedule& fps,
                            const sim::StaticSchedule& schedule,
                            const model::DvsModel& dvs,
                            const sim::DvsPolicy& policy,
                            const model::WorkloadSampler& sampler,
                            std::uint64_t seed,
                            std::int64_t hyper_periods) {
  stats::Rng rng(seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = hyper_periods;
  return sim::Simulate(fps, schedule, dvs, policy, sampler, rng, sim_options);
}

sim::SimResult SimulateSchedule(const fps::FullyPreemptiveSchedule& fps,
                                const sim::StaticSchedule& schedule,
                                const model::DvsModel& dvs,
                                const ExperimentOptions& options) {
  const model::TruncatedNormalWorkload sampler(fps.task_set(),
                                               options.sigma_divisor);
  const sim::GreedyReclaimPolicy policy(dvs);
  return SimulateWith(fps, schedule, dvs, policy, sampler, options.seed,
                      options.hyper_periods);
}

ComparisonResult CompareAcsWcs(const model::TaskSet& set,
                               const model::DvsModel& dvs,
                               const ExperimentOptions& options) {
  const fps::FullyPreemptiveSchedule fps(set);

  ComparisonResult result;
  result.sub_instances = fps.sub_count();

  const ScheduleResult wcs = SolveWcs(fps, dvs, options.scheduler);
  ScheduleResult acs =
      options.scheduler.warm_start_acs_with_wcs
          ? SolveSchedule(fps, dvs, Scenario::kAverage, options.scheduler,
                          wcs.schedule)
          : SolveAcs(fps, dvs, options.scheduler);

  // Identical workload streams: both methods face the same realisations.
  const sim::SimResult acs_sim =
      SimulateSchedule(fps, acs.schedule, dvs, options);
  const sim::SimResult wcs_sim =
      SimulateSchedule(fps, wcs.schedule, dvs, options);

  result.acs.predicted_energy = acs.predicted_energy;
  result.acs.measured_energy =
      acs_sim.EnergyPerHyperPeriod(options.hyper_periods);
  result.acs.deadline_misses = acs_sim.deadline_misses;
  result.acs.used_fallback = acs.used_fallback;

  result.wcs.predicted_energy = wcs.predicted_energy;
  result.wcs.measured_energy =
      wcs_sim.EnergyPerHyperPeriod(options.hyper_periods);
  result.wcs.deadline_misses = wcs_sim.deadline_misses;
  result.wcs.used_fallback = wcs.used_fallback;

  return result;
}

}  // namespace dvs::core
