#include "core/pipeline.h"

#include "core/method_registry.h"
#include "sim/policy.h"
#include "util/error.h"

namespace dvs::core {

std::uint64_t CalibrationSeed(const ExperimentOptions& options) {
  // A fixed fork label (any constant distinct from the per-core fork labels
  // 0..cores-1 and the workload-seed labels) re-seeds an independent stream
  // from the cell's workload seed; see the header contract.
  constexpr std::uint64_t kCalibrationLabel = 0xCA11B2A7E0FF51DEULL;
  return stats::Rng(options.seed).ForkWith(kCalibrationLabel).NextU64();
}

std::unique_ptr<model::WorkloadSampler> MakeRunSampler(
    const ExperimentOptions& options, const model::TaskSet& set) {
  if (options.scenario != nullptr) {
    return options.scenario->MakeSampler(set, options.sigma_divisor);
  }
  return std::make_unique<model::TruncatedNormalWorkload>(
      set, options.sigma_divisor);
}

sim::SimResult SimulateWith(const fps::FullyPreemptiveSchedule& fps,
                            const sim::StaticSchedule& schedule,
                            const model::DvsModel& dvs,
                            const sim::DvsPolicy& policy,
                            const model::WorkloadSampler& sampler,
                            std::uint64_t seed,
                            std::int64_t hyper_periods) {
  stats::Rng rng(seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = hyper_periods;
  return sim::Simulate(fps, schedule, dvs, policy, sampler, rng, sim_options);
}

sim::SimResult SimulateSchedule(const fps::FullyPreemptiveSchedule& fps,
                                const sim::StaticSchedule& schedule,
                                const model::DvsModel& dvs,
                                const ExperimentOptions& options) {
  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, fps.task_set());
  const sim::GreedyReclaimPolicy policy(dvs);
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;
  return sim::Simulate(fps, schedule, dvs, policy, *sampler, rng,
                       sim_options);
}

ComparisonResult CompareAcsWcs(const model::TaskSet& set,
                               const model::DvsModel& dvs,
                               const ExperimentOptions& options) {
  // Compatibility shim over the method registry: the "acs" arm solves WCS
  // first for its warm start (cached in the context, so the "wcs" arm reuses
  // it), and both arms simulate with identical workload streams — the exact
  // computation sequence of the original hard-coded pair.
  const fps::FullyPreemptiveSchedule fps(set);
  const MethodRegistry& registry = MethodRegistry::Builtin();
  MethodContext context(fps, dvs, options.scheduler);

  ComparisonResult result;
  result.sub_instances = fps.sub_count();
  result.acs = EvaluateMethod(registry.Get("acs"), context, options);
  result.wcs = EvaluateMethod(registry.Get("wcs"), context, options);
  return result;
}

}  // namespace dvs::core
