#include "core/case_analysis.h"

#include <algorithm>

#include "util/error.h"

namespace dvs::core {

AvgSplit SplitAverageWorkload(double acec, const std::vector<double>& worst) {
  ACS_REQUIRE(!worst.empty(), "no sub-instances");
  ACS_REQUIRE(acec >= -1e-9, "negative ACEC");

  AvgSplit out;
  out.avg.resize(worst.size(), 0.0);
  out.cases.resize(worst.size(), AvgCase::kEmpty);

  double cumulative = 0.0;  // worst-case budget consumed by earlier subs
  for (std::size_t k = 0; k < worst.size(); ++k) {
    ACS_REQUIRE(worst[k] >= -1e-9, "negative worst-case budget");
    const double w = std::max(0.0, worst[k]);
    const double left = acec - cumulative;
    if (left >= w) {
      out.avg[k] = w;
      out.cases[k] = AvgCase::kFull;
    } else if (left > 0.0) {
      out.avg[k] = left;
      out.cases[k] = AvgCase::kPartial;
    } else {
      out.avg[k] = 0.0;
      out.cases[k] = AvgCase::kEmpty;
    }
    cumulative += w;
  }
  return out;
}

}  // namespace dvs::core
