// Paper-faithful NLP formulation (constraints (6)-(14) of §3.2).
//
// Unlike the reduced formulation — which eliminates every derived quantity
// and optimises only end-times + budgets — this model carries the paper's
// original variable set per sub-instance:
//
//   savg  : average-case start time
//   e     : end-time
//   wavg  : average-case workload
//   wworst: worst-case workload budget
//   vavg  : dispatch voltage in the average-case scenario
//   vworst: voltage reserved for the worst-case guarantee
//
// with the paper's constraints: release/deadline/voltage boxes (6)-(9), the
// worst-case chain e_u - e_{u-1} >= wworst_u * t_cyc(vworst_u) (10), the
// greedy slack bound on savg (11), workload conservation and domination
// (12), and the case-1/case-2 selection (13)-(14) — realised here as a
// smoothed  wavg_k >= min(wworst_k, ACEC - sum_{j<k} wworst_j)  which,
// combined with (12), pins the unique Fig. 5 assignment.
//
// The model is nonconvex and ~6x larger than the reduced one; it exists as
// a fidelity artefact: tests check both formulations agree on small systems
// and bench_ablation_solver compares cost/quality.
#ifndef ACS_CORE_FULL_NLP_H
#define ACS_CORE_FULL_NLP_H

#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "opt/augmented_lagrangian.h"
#include "sim/static_schedule.h"

namespace dvs::core {

struct FullNlpOptions {
  opt::AlmOptions alm = DefaultAlmOptions();
  double min_smoothing = 1e-3;  // epsilon of the smoothed min() in (13)-(14)
  /// Per-task planning point replacing ACEC in the workload-conservation
  /// constraint (12) and the case selection (13)-(14) — the full-model twin
  /// of the reduced objective's PlanningPoint threading, so the two
  /// formulations stay comparable per arm.  Point shape only (`cycles`);
  /// the K-vector mixture has no counterpart in the paper's constraint
  /// set and is rejected at construction.  Default: the ACEC point,
  /// bit-identical to the pre-planning model.
  PlanningPoint planning;

  static opt::AlmOptions DefaultAlmOptions();
};

struct FullNlpResult {
  sim::StaticSchedule schedule;   // extracted (e, wworst)
  double objective = 0.0;         // sum ceff * vavg^2 * wavg
  opt::AlmReport alm;
};

class FullNlp {
 public:
  FullNlp(const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
          const FullNlpOptions& options = {});

  /// Solves starting from a worst-case-feasible schedule (typically the
  /// reduced solver's output or the Vmax-ASAP schedule).
  FullNlpResult Solve(const sim::StaticSchedule& warm_start) const;

  // Variable layout (n = sub-instance count): block b in
  // {savg, e, wavg, wworst, vavg, vworst} at offset b*n + order.
  std::size_t dim() const { return 6 * n_; }
  std::size_t savg_index(std::size_t u) const { return u; }
  std::size_t e_index(std::size_t u) const { return n_ + u; }
  std::size_t wavg_index(std::size_t u) const { return 2 * n_ + u; }
  std::size_t wworst_index(std::size_t u) const { return 3 * n_ + u; }
  std::size_t vavg_index(std::size_t u) const { return 4 * n_ + u; }
  std::size_t vworst_index(std::size_t u) const { return 5 * n_ + u; }

 private:
  opt::Vector InitialPoint(const sim::StaticSchedule& warm_start) const;
  double PlannedCycles(model::TaskIndex task) const;

  const fps::FullyPreemptiveSchedule* fps_;
  const model::DvsModel* dvs_;
  FullNlpOptions options_;
  std::size_t n_;
};

}  // namespace dvs::core

#endif  // ACS_CORE_FULL_NLP_H
