// Reduced NLP formulation of the ACS scheduling problem (paper §3.2).
//
// Decision variables: end-time e_u of every sub-instance (total order) plus
// the worst-case workload split w_{I,k} of every instance that the fully
// preemptive expansion cut into two or more sub-instances (single-segment
// instances carry their full WCEC).  All other quantities of the paper's
// formulation — average start times, average workloads, dispatch voltages —
// are *derived* by replaying the greedy runtime under the scenario workload:
//
//   avg workload  : the Fig. 5 case analysis  avg_u = clamp(ACEC - cum, 0, w_u)
//   start chain   : s_u = max(release_u, finish_{u-1})
//   voltage       : V_u = clamp(V(speed = w_u / (e_u - s_u)))   (greedy DVS)
//   finish        : f_u = s_u + avg_u * t_cyc(V_u)
//   objective     : sum ceff * V_u^2 * avg_u
//
// so the objective literally *is* the runtime energy of the scenario the
// schedule is being optimised for (ACEC for ACS, WCEC for the WCS baseline).
// The eliminated paper constraints (6)-(14) reappear as the feasible set
// (segment boxes + per-instance budget simplexes) plus linear worst-case
// chain constraints; see BuildFeasibleSet / BuildChainConstraints.
//
// The gradient is computed analytically by reverse-mode accumulation through
// the forward chain (piecewise smooth: max/clamp kinks take one-sided
// derivatives); tests validate it against central finite differences.
#ifndef ACS_CORE_FORMULATION_H
#define ACS_CORE_FORMULATION_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/case_analysis.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "opt/problem.h"
#include "sim/static_schedule.h"

namespace dvs::core {

/// Which workload the static schedule should be optimal for.
enum class Scenario {
  kAverage,  // ACS: plan for ACEC (the paper's contribution)
  kWorst,    // WCS: plan for WCEC (the paper's baseline)
};

/// The per-task workload point an average-scenario solve optimises for.
///
/// The paper's ACS plans at ACEC; scenario-conditioned arms plan at the
/// calibrated realised mean, a per-task quantile, or a distribution-weighted
/// mixture of calibrated sample vectors (workload/calibrator.h).  The
/// objective clamps every entry into the task's [BCEC, WCEC] window, so a
/// planning point can never widen the worst-case envelope — feasibility
/// analysis is untouched by the planning axis.
///
/// Exactly one shape is active:
///   - cycles.empty() && mixture.empty(): the ACEC point (the
///     byte-compatible default — solves are bit-identical to the
///     pre-planning tree);
///   - cycles (per model::TaskIndex): a single planning point;
///   - mixture (K per-task vectors): the objective becomes the *mean* of
///     the K forward replays — an expectation over the calibrated law
///     rather than a point plan.  `cycles` must then be empty.
struct PlanningPoint {
  std::vector<double> cycles;
  std::vector<std::vector<double>> mixture;

  bool IsAcec() const { return cycles.empty() && mixture.empty(); }

  /// Per-task planning workload of `cycles` resolved against `set`: the
  /// task's ACEC when `cycles` is empty, otherwise the entry clamped into
  /// [BCEC, WCEC].  The single resolution rule shared by the reduced
  /// objective and the full NLP, so the two formulations can never drift
  /// onto different points.
  static double ResolveFor(const std::vector<double>& cycles,
                           const model::TaskSet& set, std::size_t task);

  /// FNV-1a over the exact double bit patterns (shape-tagged, so a point
  /// and a 1-vector mixture never collide).  Cache key material for
  /// SolveCache's planned-solve entries; a hit additionally verifies
  /// operator== so a hash collision degrades to a re-solve, never a wrong
  /// reuse.
  std::uint64_t Fingerprint() const;

  friend bool operator==(const PlanningPoint& a, const PlanningPoint& b) {
    return a.cycles == b.cycles && a.mixture == b.mixture;
  }
  friend bool operator!=(const PlanningPoint& a, const PlanningPoint& b) {
    return !(a == b);
  }
};

/// Per-sub-instance quantities of one forward replay — exposed for tests,
/// examples and the experiment reports.
struct ForwardDetail {
  std::vector<double> start;       // s_u
  std::vector<double> avg_cycles;  // avg_u
  std::vector<double> voltage;     // V_u (clamped)
  std::vector<double> finish;      // f_u
  std::vector<double> energy;      // per-sub energy
  double total_energy = 0.0;
};

/// Reusable buffers for EnergyObjective::Evaluate.  One objective evaluation
/// walks every sub-instance forward and (for gradients) backward; these are
/// the per-sub working arrays of that walk.  An objective owns a private
/// scratch by default; passing a shared one (from core::EvalWorkspace) makes
/// the evaluation hot path allocation-free across solves.  Not synchronised:
/// a scratch — and therefore an objective evaluating through it — must be
/// used by one thread at a time.
struct ObjectiveScratch {
  enum class Clamp : unsigned char { kBelowMin, kInside, kAboveMax };

  // Forward-pass state, structure-of-arrays: one slot per sub-instance in
  // each array.  The SoA layout keeps every field contiguous so the
  // vectorized phases (budget clamp, energy reduction, the 4-lane mixture
  // replay) stream whole cache lines of one quantity; the scalar walk reads
  // the same values in the same order as the historical per-node struct.
  std::vector<double> w;       // worst-case budget
  std::vector<double> avg;     // scenario workload executed here
  std::vector<double> s;       // start (scenario chain)
  std::vector<double> d;       // window e - s
  std::vector<double> v;       // dispatch voltage (clamped)
  std::vector<double> ct;      // cycle time at v
  std::vector<double> f;       // finish under the scenario
  std::vector<double> energy;  // per-sub energy (0 when not executing)
  std::vector<AvgCase> avg_case;
  std::vector<Clamp> clamp;
  std::vector<unsigned char> s_from_finish;  // max() branch: depends on f_{u-1}
  std::vector<unsigned char> executes;       // w > eps

  std::vector<double> cum;     // per parent: worst-case budget before sub
  std::vector<double> g_f;     // per sub: adjoint of the finish time
  std::vector<double> carry;   // per parent: partial-case avg adjoints
  std::vector<double> mix_grad;  // mixture planning: per-replay gradient

  // Lane-major state of the AVX2 mixture replay (four mixture rows per
  // pass): 4 doubles per sub-instance / variable / parent.  Mask arrays
  // store all-ones/all-zeros bit patterns.  Unused at scalar dispatch.
  std::vector<double> mix4_avg;
  std::vector<double> mix4_d;
  std::vector<double> mix4_v;
  std::vector<double> mix4_ct;
  std::vector<double> mix4_inside;
  std::vector<double> mix4_full;
  std::vector<double> mix4_partial;
  std::vector<double> mix4_sff;
  std::vector<double> mix4_gf;     // 4 * n lane adjoints
  std::vector<double> mix4_grad;   // 4 * dim lane gradients
  std::vector<double> mix4_carry;  // 4 * instance_count lane carries

  /// Grows the per-sub SoA arrays to `n` slots.
  void ResizeSubs(std::size_t n) {
    w.resize(n);
    avg.resize(n);
    s.resize(n);
    d.resize(n);
    v.resize(n);
    ct.resize(n);
    f.resize(n);
    energy.resize(n);
    avg_case.resize(n);
    clamp.resize(n);
    s_from_finish.resize(n);
    executes.resize(n);
  }
};

class EnergyObjective final : public opt::Objective {
 public:
  /// `fps` and `dvs` must outlive the objective.  `scratch` (optional)
  /// shares evaluation buffers across objectives — pass one per thread from
  /// core::EvalWorkspace to make repeated solves allocation-free; results
  /// are bit-identical either way.  `planning` (optional, average scenario
  /// only) replaces the ACEC planning point: entries are clamped into each
  /// task's [BCEC, WCEC] window and copied at construction, so the pointee
  /// need not outlive the objective.  Null or an IsAcec() point keeps the
  /// paper's objective bit-for-bit.
  EnergyObjective(const fps::FullyPreemptiveSchedule& fps,
                  const model::DvsModel& dvs, Scenario scenario,
                  ObjectiveScratch* scratch = nullptr,
                  const PlanningPoint* planning = nullptr);

  // scratch_ may point at the objective's own owned scratch, so copies and
  // moves would leave the new object writing through the source's buffers
  // (dangling once the source dies).  Objectives are cheap to construct
  // where needed instead.
  EnergyObjective(const EnergyObjective&) = delete;
  EnergyObjective& operator=(const EnergyObjective&) = delete;

  // --- opt::Objective -------------------------------------------------------
  std::size_t dim() const override { return dim_; }
  double Value(const opt::Vector& x) const override;
  void Gradient(const opt::Vector& x, opt::Vector& grad) const override;
  double ValueAndGradient(const opt::Vector& x,
                          opt::Vector& grad) const override;

  // --- Variable layout ------------------------------------------------------
  std::size_t sub_count() const { return n_; }
  std::size_t end_time_index(std::size_t order) const { return order; }
  /// True when the sub-instance's budget is a decision variable (parent has
  /// two or more sub-instances).
  bool HasBudgetVariable(std::size_t order) const;
  std::size_t budget_index(std::size_t order) const;
  /// Budget value under `x` (variable or the fixed WCEC).
  double BudgetOf(const opt::Vector& x, std::size_t order) const;

  // --- Problem assembly -----------------------------------------------------
  /// Segment boxes on end-times + per-instance budget simplexes.
  std::shared_ptr<opt::BoxSimplexSet> BuildFeasibleSet() const;

  /// Worst-case chain constraints (linear; see DESIGN.md §3.1):
  ///   e_u - e_{u-1} >= w_u * t_cyc(Vmax)      (total-order chaining)
  ///   e_u - r_u     >= w_u * t_cyc(Vmax)      (release offset)
  std::vector<opt::LinearConstraint> BuildChainConstraints() const;

  // --- Schedule conversion --------------------------------------------------
  opt::Vector PackSchedule(const sim::StaticSchedule& schedule) const;
  sim::StaticSchedule ExtractSchedule(const opt::Vector& x) const;

  /// Full forward replay with per-sub detail (slower; for reports/tests).
  ForwardDetail Replay(const opt::Vector& x) const;

  const fps::FullyPreemptiveSchedule& fps() const { return *fps_; }
  const model::DvsModel& dvs() const { return *dvs_; }
  Scenario scenario() const { return scenario_; }

 private:
  struct SubRecord {
    std::size_t parent = 0;
    int k = 0;
    double release = 0.0;
    double wcec = 0.0;   // parent task WCEC (fixed budget when single-sub)
    bool has_budget_var = false;
    std::size_t budget_var = 0;  // index into x when has_budget_var
  };

  /// Forward + optional reverse pass; grad may be nullptr.  Dispatches to
  /// one replay per the kernel x scenario template grid, or — under mixture
  /// planning — averages value/gradient/detail over the K replays.
  double Evaluate(const opt::Vector& x, opt::Vector* grad,
                  ForwardDetail* detail) const;

  /// One replay at the per-sub planning workloads `plan` (never null;
  /// points at plan_by_sub_ or one mixture row), after kernel/scenario
  /// dispatch.
  double EvaluateOnce(const double* plan, const opt::Vector& x,
                      opt::Vector* grad, ForwardDetail* detail) const;

  /// The pass itself, templated on the voltage-model kernel (so the linear
  /// model runs devirtualized) and on the scenario (so the WCS solve skips
  /// the average-case bookkeeping entirely); see formulation.cc.
  template <typename Kernel, bool kAverageScenario>
  double EvaluateImpl(const double* plan, const opt::Vector& x,
                      opt::Vector* grad, ForwardDetail* detail,
                      const Kernel& kernel) const;

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  /// Four complete mixture replays in the four AVX2 lanes (linear kernel,
  /// average scenario, no detail).  Returns the sum of the four row values
  /// and, when `grad` is non-null, adds the four rows' gradients into it.
  /// Only called at AVX2 dispatch; folds lanes in a fixed order, so results
  /// are deterministic but associate differently than the scalar row loop.
  __attribute__((target("avx2"))) double MixtureBlock4Avx2(
      std::size_t first_row, const opt::Vector& x, opt::Vector* grad) const;
#endif

  const fps::FullyPreemptiveSchedule* fps_;
  const model::DvsModel* dvs_;
  Scenario scenario_;
  std::size_t n_ = 0;    // sub-instance count
  std::size_t dim_ = 0;  // n_ + number of budget variables
  std::vector<SubRecord> records_;
  /// Per-sub planning workload: the parent task's ACEC by default, or the
  /// (clamped) PlanningPoint entry.  Same value bits as the historical
  /// SubRecord::acec read in the default case, so the replay stays
  /// bit-identical.
  std::vector<double> plan_by_sub_;
  /// Mixture planning rows, flattened row-major (mixture_rows_ x n_);
  /// empty outside the acs-mixture arm.
  std::vector<double> mixture_by_sub_;
  std::size_t mixture_rows_ = 0;
  double ct_vmax_ = 0.0;
  double max_speed_ = 0.0;
  /// Devirtualized fast path: set when `dvs` is a LinearDvsModel, whose
  /// closed-form speed law (speed = k * V) the evaluation inlines with
  /// bit-identical arithmetic.
  bool linear_model_ = false;
  double linear_k_ = 0.0;
  ObjectiveScratch* scratch_;             // never null after construction
  mutable ObjectiveScratch own_scratch_;  // used when none was provided
};

}  // namespace dvs::core

#endif  // ACS_CORE_FORMULATION_H
