#include "core/solve_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "core/eval_workspace.h"
#include "fps/expansion.h"
#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/error.h"

namespace dvs::core {
namespace {

constexpr char kMagic[4] = {'A', 'C', 'S', 'C'};

/// Metric charge that also works in the quiescent phases (store open,
/// write-back on the main thread after the workers joined): the thread-
/// local shard when one is scoped, else shard 0 of the installed registry.
void CountPersist(obs::MetricId id, std::int64_t delta = 1) {
  if (delta == 0) {
    return;
  }
  if (obs::ActiveShard() != nullptr) {
    obs::Count(id, delta);
    return;
  }
  obs::MetricsRegistry* registry = obs::ActiveMetrics();
  if (registry != nullptr) {
    registry->EnsureShards(1);
    registry->Shard(0).Count(id, delta);
  }
}

// --- Canonical payload serialization ---------------------------------------

void WriteTaskSet(util::BinaryWriter& out, const model::TaskSet& set) {
  out.U64(set.size());
  for (const model::Task& task : set.tasks()) {
    out.Str(task.name);
    out.I64(task.period);
    out.F64(task.wcec);
    out.F64(task.acec);
    out.F64(task.bcec);
  }
}

model::TaskSet ReadTaskSet(util::BinaryReader& in) {
  const std::uint64_t count = in.U64();
  std::vector<model::Task> tasks;
  tasks.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    model::Task task;
    task.name = in.Str();
    task.period = in.I64();
    task.wcec = in.F64();
    task.acec = in.F64();
    task.bcec = in.F64();
    tasks.push_back(std::move(task));
  }
  return model::TaskSet(std::move(tasks));  // re-validates on read
}

void WriteModel(util::BinaryWriter& out, const ModelDescriptor& model) {
  out.U8(model.tag);
  out.VecF64(model.params);
}

ModelDescriptor ReadModel(util::BinaryReader& in) {
  ModelDescriptor model;
  model.tag = in.U8();
  model.params = in.VecF64();
  return model;
}

void WriteScheduler(util::BinaryWriter& out, const SchedulerOptions& o) {
  // Exactly the fields SameSchedulerOptions compares — transient per-solve
  // state (dual_seed, observers) is not part of the solve identity.
  const opt::AlmOptions& alm = o.alm;
  const opt::SpgOptions& spg = alm.inner;
  out.U8(o.warm_start_acs_with_wcs ? 1 : 0);
  out.U64(alm.max_outer);
  out.F64(alm.feasibility_tol);
  out.F64(alm.initial_penalty);
  out.F64(alm.penalty_growth);
  out.F64(alm.max_penalty);
  out.F64(alm.violation_shrink);
  out.F64(alm.inner_tol_start);
  out.U64(spg.max_iterations);
  out.F64(spg.tolerance);
  out.U64(spg.history);
  out.F64(spg.armijo_c);
  out.F64(spg.step_min);
  out.F64(spg.step_max);
  out.F64(spg.backtrack);
  out.U64(spg.max_backtracks);
}

SchedulerOptions ReadScheduler(util::BinaryReader& in) {
  SchedulerOptions o;
  opt::AlmOptions& alm = o.alm;
  opt::SpgOptions& spg = alm.inner;
  o.warm_start_acs_with_wcs = in.U8() != 0;
  alm.max_outer = static_cast<std::size_t>(in.U64());
  alm.feasibility_tol = in.F64();
  alm.initial_penalty = in.F64();
  alm.penalty_growth = in.F64();
  alm.max_penalty = in.F64();
  alm.violation_shrink = in.F64();
  alm.inner_tol_start = in.F64();
  spg.max_iterations = static_cast<std::size_t>(in.U64());
  spg.tolerance = in.F64();
  spg.history = static_cast<std::size_t>(in.U64());
  spg.armijo_c = in.F64();
  spg.step_min = in.F64();
  spg.step_max = in.F64();
  spg.backtrack = in.F64();
  spg.max_backtracks = static_cast<std::size_t>(in.U64());
  return o;
}

void WritePoint(util::BinaryWriter& out, const PlanningPoint& point) {
  out.VecF64(point.cycles);
  out.VecVecF64(point.mixture);
}

PlanningPoint ReadPoint(util::BinaryReader& in) {
  PlanningPoint point;
  point.cycles = in.VecF64();
  point.mixture = in.VecVecF64();
  return point;
}

void WriteSchedule(util::BinaryWriter& out, const StoredSchedule& schedule) {
  out.VecF64(schedule.end_times);
  out.VecF64(schedule.worst_budgets);
}

StoredSchedule ReadSchedule(util::BinaryReader& in) {
  StoredSchedule schedule;
  schedule.end_times = in.VecF64();
  schedule.worst_budgets = in.VecF64();
  return schedule;
}

void WriteResult(util::BinaryWriter& out, const StoredScheduleResult& r) {
  WriteSchedule(out, r.schedule);
  out.F64(r.predicted_energy);
  out.U8(r.used_fallback ? 1 : 0);
  const opt::AlmReport& alm = r.alm;
  out.U8(alm.feasible ? 1 : 0);
  out.U8(static_cast<std::uint8_t>(alm.inner_status));
  out.U64(alm.outer_iterations);
  out.U64(alm.total_inner_iterations);
  out.U64(alm.evaluations);
  out.F64(alm.final_value);
  out.F64(alm.max_violation);
  out.F64(alm.final_penalty);
  out.VecF64(alm.multipliers);
}

StoredScheduleResult ReadResult(util::BinaryReader& in) {
  StoredScheduleResult r;
  r.schedule = ReadSchedule(in);
  r.predicted_energy = in.F64();
  r.used_fallback = in.U8() != 0;
  opt::AlmReport& alm = r.alm;
  alm.feasible = in.U8() != 0;
  const std::uint8_t status = in.U8();
  if (status > static_cast<std::uint8_t>(opt::SolveStatus::kLineSearchFailed)) {
    throw util::Error("solve-store entry corrupt: solve status " +
                      std::to_string(status));
  }
  alm.inner_status = static_cast<opt::SolveStatus>(status);
  alm.outer_iterations = static_cast<std::size_t>(in.U64());
  alm.total_inner_iterations = static_cast<std::size_t>(in.U64());
  alm.evaluations = static_cast<std::size_t>(in.U64());
  alm.final_value = in.F64();
  alm.max_violation = in.F64();
  alm.final_penalty = in.F64();
  alm.multipliers = in.VecF64();
  return r;
}

void WriteCalibration(util::BinaryWriter& out, const StoredCalibration& c) {
  out.Str(c.scenario_key);
  out.F64(c.sigma_divisor);
  out.U64(c.seed);
  out.I64(c.samples);
  out.I64(c.calibration.samples_per_task);
  out.VecF64(c.calibration.mean);
  out.VecF64(c.calibration.stddev);
  out.VecVecF64(c.calibration.draws);
  out.VecVecF64(c.calibration.sorted);
}

StoredCalibration ReadCalibration(util::BinaryReader& in) {
  StoredCalibration c;
  c.scenario_key = in.Str();
  c.sigma_divisor = in.F64();
  c.seed = in.U64();
  c.samples = in.I64();
  c.calibration.samples_per_task = in.I64();
  c.calibration.mean = in.VecF64();
  c.calibration.stddev = in.VecF64();
  c.calibration.draws = in.VecVecF64();
  c.calibration.sorted = in.VecVecF64();
  return c;
}

std::string SerializePayload(const StoredCell& cell) {
  util::BinaryWriter out;
  WriteTaskSet(out, cell.set);
  WriteModel(out, cell.model);
  WriteScheduler(out, cell.scheduler);
  out.U8(cell.wcs.has_value() ? 1 : 0);
  if (cell.wcs.has_value()) {
    WriteResult(out, *cell.wcs);
  }
  out.U8(cell.acs.has_value() ? 1 : 0);
  if (cell.acs.has_value()) {
    WriteResult(out, *cell.acs);
  }
  out.U8(cell.vmax_asap.has_value() ? 1 : 0);
  if (cell.vmax_asap.has_value()) {
    WriteSchedule(out, *cell.vmax_asap);
  }
  out.U64(cell.planned.size());
  for (const StoredPlannedSolve& solve : cell.planned) {
    WritePoint(out, solve.planning);
    out.U64(solve.chain.size());
    for (const PlanningPoint& link : solve.chain) {
      WritePoint(out, link);
    }
    WriteResult(out, solve.result);
  }
  out.U64(cell.calibrations.size());
  for (const StoredCalibration& calibration : cell.calibrations) {
    WriteCalibration(out, calibration);
  }
  return out.bytes();
}

StoredCell ParsePayload(util::BinaryReader& in) {
  StoredCell cell(ReadTaskSet(in));
  cell.model = ReadModel(in);
  cell.scheduler = ReadScheduler(in);
  if (in.U8() != 0) {
    cell.wcs = ReadResult(in);
  }
  if (in.U8() != 0) {
    cell.acs = ReadResult(in);
  }
  if (in.U8() != 0) {
    cell.vmax_asap = ReadSchedule(in);
  }
  const std::uint64_t planned = in.U64();
  cell.planned.reserve(static_cast<std::size_t>(planned));
  for (std::uint64_t i = 0; i < planned; ++i) {
    StoredPlannedSolve solve;
    solve.planning = ReadPoint(in);
    const std::uint64_t links = in.U64();
    solve.chain.reserve(static_cast<std::size_t>(links));
    for (std::uint64_t j = 0; j < links; ++j) {
      solve.chain.push_back(ReadPoint(in));
    }
    solve.result = ReadResult(in);
    cell.planned.push_back(std::move(solve));
  }
  const std::uint64_t calibrations = in.U64();
  cell.calibrations.reserve(static_cast<std::size_t>(calibrations));
  for (std::uint64_t i = 0; i < calibrations; ++i) {
    cell.calibrations.push_back(ReadCalibration(in));
  }
  return cell;
}

// --- Merging ---------------------------------------------------------------

bool HasPlanned(const StoredCell& cell, const StoredPlannedSolve& solve) {
  for (const StoredPlannedSolve& mine : cell.planned) {
    if (mine.planning == solve.planning && mine.chain == solve.chain) {
      return true;
    }
  }
  return false;
}

bool HasCalibration(const StoredCell& cell, const StoredCalibration& c) {
  for (const StoredCalibration& mine : cell.calibrations) {
    if (mine.scenario_key == c.scenario_key &&
        mine.sigma_divisor == c.sigma_divisor && mine.seed == c.seed &&
        mine.samples == c.samples) {
      return true;
    }
  }
  return false;
}

/// Logical union: fill missing slots, append unseen planned solves and
/// calibrations.  Because every solve is a deterministic function of its
/// key, "first writer wins" on an already-present entry merges bit-equal
/// values — the file's content is deterministic whatever the worker or
/// thread count that produced the pieces.
void MergeCells(StoredCell& into, const StoredCell& from) {
  if (!into.wcs.has_value() && from.wcs.has_value()) {
    into.wcs = from.wcs;
  }
  if (!into.acs.has_value() && from.acs.has_value()) {
    into.acs = from.acs;
  }
  if (!into.vmax_asap.has_value() && from.vmax_asap.has_value()) {
    into.vmax_asap = from.vmax_asap;
  }
  for (const StoredPlannedSolve& solve : from.planned) {
    if (!HasPlanned(into, solve)) {
      into.planned.push_back(solve);
    }
  }
  for (const StoredCalibration& calibration : from.calibrations) {
    if (!HasCalibration(into, calibration)) {
      into.calibrations.push_back(calibration);
    }
  }
}

// --- Filesystem helpers ----------------------------------------------------

bool ReadFileBytes(const std::string& path, std::string* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *bytes = buffer.str();
  return true;
}

/// mkdir -p without <filesystem> (portable across the toolchain matrix).
void MakeDirs(const std::string& dir) {
  std::string path;
  std::size_t begin = 0;
  while (begin <= dir.size()) {
    const std::size_t slash = dir.find('/', begin);
    const std::size_t end = slash == std::string::npos ? dir.size() : slash;
    path = dir.substr(0, end);
    begin = end + 1;
    if (path.empty() || path == ".") {
      continue;
    }
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      throw util::Error("cannot create cache directory \"" + path +
                        "\": " + std::strerror(errno));
    }
  }
  struct stat info {};
  if (::stat(dir.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
    throw util::Error("cache path \"" + dir + "\" is not a directory");
  }
}

StoredScheduleResult StoreResult(const ScheduleResult& result) {
  StoredScheduleResult stored;
  stored.schedule.end_times = result.schedule.end_times();
  stored.schedule.worst_budgets = result.schedule.worst_budgets();
  stored.predicted_energy = result.predicted_energy;
  stored.alm = result.alm;
  stored.alm.inner_status = result.alm.inner_status;
  stored.used_fallback = result.used_fallback;
  return stored;
}

ScheduleResult RestoreResult(const StoredScheduleResult& stored,
                             const fps::FullyPreemptiveSchedule& fps) {
  if (stored.schedule.end_times.size() != fps.sub_count() ||
      stored.schedule.worst_budgets.size() != fps.sub_count()) {
    throw util::Error("solve-store schedule length mismatch: stored " +
                      std::to_string(stored.schedule.end_times.size()) +
                      " sub-instances, expansion has " +
                      std::to_string(fps.sub_count()));
  }
  return ScheduleResult{sim::StaticSchedule(fps, stored.schedule.end_times,
                                            stored.schedule.worst_budgets),
                        stored.predicted_energy, stored.alm,
                        stored.used_fallback};
}

}  // namespace

std::uint64_t ModelDescriptor::BitsOf(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

ModelDescriptor DescribeModel(const model::DvsModel& dvs) {
  ModelDescriptor descriptor;
  if (const auto* linear = dynamic_cast<const model::LinearDvsModel*>(&dvs)) {
    descriptor.tag = 1;
    descriptor.params = {linear->vmin(), linear->vmax(), linear->ceff(),
                         linear->k()};
    return descriptor;
  }
  if (const auto* alpha = dynamic_cast<const model::AlphaDvsModel*>(&dvs)) {
    descriptor.tag = 2;
    descriptor.params = {alpha->vmin(),    alpha->vmax(), alpha->ceff(),
                         alpha->k_delay(), alpha->vth(),  alpha->alpha()};
    return descriptor;
  }
  if (const auto* discrete =
          dynamic_cast<const model::DiscreteDvsModel*>(&dvs)) {
    const ModelDescriptor base = DescribeModel(discrete->base());
    if (!base.Persistable()) {
      return descriptor;  // unknown base: the wrapper is unknown too
    }
    descriptor.tag = 3;
    descriptor.params.push_back(static_cast<double>(base.tag));
    descriptor.params.push_back(static_cast<double>(base.params.size()));
    descriptor.params.insert(descriptor.params.end(), base.params.begin(),
                             base.params.end());
    descriptor.params.insert(descriptor.params.end(),
                             discrete->levels().begin(),
                             discrete->levels().end());
    return descriptor;
  }
  return descriptor;  // tag 0: not persistable
}

std::uint64_t TaskSetFingerprint(const model::TaskSet& set) {
  util::BinaryWriter out;
  WriteTaskSet(out, set);
  return util::Fnv1a(out.bytes());
}

std::uint64_t ModelFingerprint(const ModelDescriptor& model) {
  if (!model.Persistable()) {
    return 0;
  }
  util::BinaryWriter out;
  WriteModel(out, model);
  return util::Fnv1a(out.bytes());
}

std::uint64_t SchedulerOptionsFingerprint(const SchedulerOptions& options) {
  util::BinaryWriter out;
  WriteScheduler(out, options);
  return util::Fnv1a(out.bytes());
}

std::uint64_t SolveStoreEntryKey(const model::TaskSet& set,
                                 const ModelDescriptor& model,
                                 const SchedulerOptions& scheduler) {
  if (!model.Persistable()) {
    return 0;
  }
  util::BinaryWriter out;
  out.U32(kSolveStoreSchemaVersion);
  out.U64(TaskSetFingerprint(set));
  out.U64(ModelFingerprint(model));
  out.U64(SchedulerOptionsFingerprint(scheduler));
  return util::Fnv1a(out.bytes());
}

StoredCell MakeStoredCell(const model::TaskSet& set,
                          const ModelDescriptor& model,
                          const SchedulerOptions& scheduler,
                          const SolveCache& solves) {
  StoredCell cell(set);
  cell.model = model;
  cell.scheduler = scheduler;
  if (solves.wcs.has_value()) {
    cell.wcs = StoreResult(*solves.wcs);
  }
  if (solves.acs.has_value()) {
    cell.acs = StoreResult(*solves.acs);
  }
  if (solves.vmax_asap.has_value()) {
    StoredSchedule schedule;
    schedule.end_times = solves.vmax_asap->end_times();
    schedule.worst_budgets = solves.vmax_asap->worst_budgets();
    cell.vmax_asap = std::move(schedule);
  }
  for (const std::unique_ptr<SolveCache::PlannedSolve>& solve :
       solves.planned) {
    StoredPlannedSolve stored;
    stored.planning = solve->planning;
    stored.chain = solve->chain;
    stored.result = StoreResult(solve->result);
    cell.planned.push_back(std::move(stored));
  }
  for (const std::unique_ptr<SolveCache::CalibrationEntry>& entry :
       solves.calibrations) {
    if (entry->persist_key.empty()) {
      continue;  // direct-API entry: no persistable scenario identity
    }
    StoredCalibration stored;
    stored.scenario_key = entry->persist_key;
    stored.sigma_divisor = entry->sigma_divisor;
    stored.seed = entry->seed;
    stored.samples = entry->samples;
    stored.calibration = entry->calibration;
    cell.calibrations.push_back(std::move(stored));
  }
  return cell;
}

void RestoreSolveCache(const StoredCell& stored,
                       const fps::FullyPreemptiveSchedule& fps,
                       SolveCache& solves) {
  if (!solves.wcs.has_value() && stored.wcs.has_value()) {
    solves.wcs = RestoreResult(*stored.wcs, fps);
  }
  if (!solves.acs.has_value() && stored.acs.has_value()) {
    solves.acs = RestoreResult(*stored.acs, fps);
  }
  if (!solves.vmax_asap.has_value() && stored.vmax_asap.has_value()) {
    if (stored.vmax_asap->end_times.size() != fps.sub_count() ||
        stored.vmax_asap->worst_budgets.size() != fps.sub_count()) {
      throw util::Error("solve-store vmax schedule length mismatch");
    }
    solves.vmax_asap = sim::StaticSchedule(fps, stored.vmax_asap->end_times,
                                           stored.vmax_asap->worst_budgets);
  }
  for (const StoredPlannedSolve& solve : stored.planned) {
    bool present = false;
    for (const std::unique_ptr<SolveCache::PlannedSolve>& mine :
         solves.planned) {
      if (mine->planning == solve.planning && mine->chain == solve.chain) {
        present = true;
        break;
      }
    }
    if (!present) {
      solves.planned.push_back(std::make_unique<SolveCache::PlannedSolve>(
          solve.planning.Fingerprint(), solve.planning, solve.chain,
          RestoreResult(solve.result, fps)));
    }
  }
  for (const StoredCalibration& calibration : stored.calibrations) {
    if (calibration.scenario_key.empty()) {
      continue;
    }
    bool present = false;
    for (const std::unique_ptr<SolveCache::CalibrationEntry>& mine :
         solves.calibrations) {
      if (mine->persist_key == calibration.scenario_key &&
          mine->sigma_divisor == calibration.sigma_divisor &&
          mine->seed == calibration.seed &&
          mine->samples == calibration.samples) {
        present = true;
        break;
      }
    }
    if (!present) {
      solves.calibrations.push_back(
          std::make_unique<SolveCache::CalibrationEntry>(
              SolveCache::CalibrationEntry{
                  nullptr, calibration.sigma_divisor, calibration.seed,
                  calibration.samples, calibration.calibration,
                  calibration.scenario_key}));
    }
  }
}

std::string SerializeStoredCell(const StoredCell& cell) {
  const std::string payload = SerializePayload(cell);
  util::BinaryWriter out;
  out.Raw(std::string(kMagic, sizeof(kMagic)));
  out.U32(kSolveStoreSchemaVersion);
  out.U64(cell.EntryKey());
  out.U64(payload.size());
  out.Raw(payload);
  out.U64(util::Fnv1a(payload));
  return out.bytes();
}

StoredCell DeserializeStoredCell(const std::string& bytes) {
  util::BinaryReader in(bytes);
  if (in.remaining() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw util::Error("solve-store entry: bad magic");
  }
  util::BinaryReader header(bytes.data() + sizeof(kMagic),
                            bytes.size() - sizeof(kMagic));
  const std::uint32_t version = header.U32();
  if (version != kSolveStoreSchemaVersion) {
    throw util::Error("solve-store entry: schema version " +
                      std::to_string(version) + ", expected " +
                      std::to_string(kSolveStoreSchemaVersion));
  }
  const std::uint64_t embedded_key = header.U64();
  const std::uint64_t payload_size = header.U64();
  if (payload_size > header.remaining()) {
    throw util::Error("solve-store entry: truncated payload");
  }
  const std::size_t payload_offset = sizeof(kMagic) + header.offset();
  const std::string payload =
      bytes.substr(payload_offset, static_cast<std::size_t>(payload_size));
  util::BinaryReader tail(bytes.data() + payload_offset + payload.size(),
                          bytes.size() - payload_offset - payload.size());
  const std::uint64_t checksum = tail.U64();
  if (checksum != util::Fnv1a(payload)) {
    throw util::Error("solve-store entry: checksum mismatch");
  }
  util::BinaryReader body(payload);
  StoredCell cell = ParsePayload(body);
  if (!body.AtEnd()) {
    throw util::Error("solve-store entry: trailing payload bytes");
  }
  if (cell.EntryKey() != embedded_key) {
    throw util::Error("solve-store entry: content does not match its key");
  }
  return cell;
}

SolveStore::SolveStore(std::string dir, bool read_only)
    : dir_(std::move(dir)), read_only_(read_only) {
  ACS_REQUIRE(!dir_.empty(), "solve-store directory must be non-empty");
  while (dir_.size() > 1 && dir_.back() == '/') {
    dir_.pop_back();
  }
  if (read_only_) {
    struct stat info {};
    if (::stat(dir_.c_str(), &info) != 0 || !S_ISDIR(info.st_mode)) {
      throw util::Error("read-only cache dir \"" + dir_ +
                        "\" does not exist");
    }
    return;
  }
  MakeDirs(dir_);
  // One writer per directory: O_EXCL is the atomic claim.  A crashed
  // writer leaves a stale LOCK behind; the error message names the file so
  // the operator can remove it deliberately.
  const std::string lock = dir_ + "/LOCK";
  const int fd = ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    throw util::Error(
        "cache dir \"" + dir_ +
        "\" already has a writer (remove " + lock +
        " if no other process is running, or open the cache read-only "
        "for shared pre-seeding)");
  }
  const std::string pid = std::to_string(::getpid()) + "\n";
  // The content is informational only; a short write still leaves a valid
  // lock.
  (void)!::write(fd, pid.data(), pid.size());
  ::close(fd);
  locked_ = true;
}

SolveStore::~SolveStore() {
  if (locked_) {
    std::remove((dir_ + "/LOCK").c_str());
  }
}

std::string SolveStore::EntryFileName(std::uint64_t key) {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.acsc",
                static_cast<unsigned long long>(key));
  return name;
}

std::string SolveStore::EntryPath(std::uint64_t key) const {
  return dir_ + "/" + EntryFileName(key);
}

std::optional<StoredCell> SolveStore::Load(
    const model::TaskSet& set, const ModelDescriptor& model,
    const SchedulerOptions& scheduler) const {
  if (!model.Persistable()) {
    return std::nullopt;
  }
  const std::uint64_t key = SolveStoreEntryKey(set, model, scheduler);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = absorbed_.find(key);
    if (it != absorbed_.end() && SameTaskSet(it->second.set, set) &&
        it->second.model == model &&
        SameSchedulerOptions(it->second.scheduler, scheduler)) {
      CountPersist(obs::metric::kPersistHits);
      return it->second;
    }
  }
  std::string bytes;
  if (!ReadFileBytes(EntryPath(key), &bytes)) {
    CountPersist(obs::metric::kPersistMisses);
    return std::nullopt;
  }
  try {
    StoredCell cell = DeserializeStoredCell(bytes);
    if (cell.EntryKey() != key || !SameTaskSet(cell.set, set) ||
        cell.model != model ||
        !SameSchedulerOptions(cell.scheduler, scheduler)) {
      // Foreign fingerprint: a structurally valid file that answers a
      // different question (renamed file, colliding key, stale grid).
      CountPersist(obs::metric::kPersistRejects);
      CountPersist(obs::metric::kPersistMisses);
      return std::nullopt;
    }
    CountPersist(obs::metric::kPersistHits);
    return cell;
  } catch (const util::Error&) {
    // Corrupt / truncated / wrong-schema file: reject, never abort.
    CountPersist(obs::metric::kPersistRejects);
    CountPersist(obs::metric::kPersistMisses);
    return std::nullopt;
  }
}

void SolveStore::Absorb(StoredCell cell) {
  if (!cell.model.Persistable()) {
    return;
  }
  const std::uint64_t key = cell.EntryKey();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = absorbed_.find(key);
  if (it == absorbed_.end()) {
    absorbed_.emplace(key, std::move(cell));
    return;
  }
  MergeCells(it->second, cell);
}

std::size_t SolveStore::AbsorbedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return absorbed_.size();
}

std::size_t SolveStore::WriteBack() {
  if (read_only_) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t written = 0;
  for (auto& [key, cell] : absorbed_) {
    const std::string path = EntryPath(key);
    std::string bytes;
    if (ReadFileBytes(path, &bytes)) {
      try {
        const StoredCell disk = DeserializeStoredCell(bytes);
        if (disk.EntryKey() == key && SameTaskSet(disk.set, cell.set) &&
            disk.model == cell.model &&
            SameSchedulerOptions(disk.scheduler, cell.scheduler)) {
          MergeCells(cell, disk);  // accumulate across runs
        }
      } catch (const util::Error&) {
        // Unreadable on-disk entry: overwrite it with the fresh one.
        CountPersist(obs::metric::kPersistRejects);
      }
    }
    const std::string image = SerializeStoredCell(cell);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw util::Error("cannot write cache file \"" + tmp + "\"");
      }
      out.write(image.data(),
                static_cast<std::streamsize>(image.size()));
      if (!out) {
        throw util::Error("short write to cache file \"" + tmp + "\"");
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw util::Error("cannot rename \"" + tmp + "\" to \"" + path + "\"");
    }
    ++written;
  }
  CountPersist(obs::metric::kPersistWriteBacks,
               static_cast<std::int64_t>(written));
  return written;
}

std::vector<std::uint64_t> SolveStore::DiskKeys() const {
  std::vector<std::uint64_t> keys;
  DIR* handle = ::opendir(dir_.c_str());
  if (handle == nullptr) {
    return keys;
  }
  while (const struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.size() != 21 || name.substr(16) != ".acsc") {
      continue;
    }
    char* end = nullptr;
    const unsigned long long key = std::strtoull(name.c_str(), &end, 16);
    if (end == name.c_str() + 16) {
      keys.push_back(static_cast<std::uint64_t>(key));
    }
  }
  ::closedir(handle);
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace dvs::core
