#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/eval_workspace.h"
#include "obs/convergence.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/logging.h"

namespace dvs::core {

opt::AlmOptions SchedulerOptions::DefaultAlmOptions() {
  opt::AlmOptions alm;
  alm.max_outer = 14;
  alm.feasibility_tol = 1e-8;
  alm.initial_penalty = 10.0;
  alm.penalty_growth = 10.0;
  alm.inner.max_iterations = 700;
  alm.inner.tolerance = 1e-7;
  alm.inner_tol_start = 1e-4;
  return alm;
}

std::optional<sim::StaticSchedule> RepairSchedule(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    const std::vector<double>& end_times, const std::vector<double>& budgets) {
  ACS_REQUIRE(end_times.size() == fps.sub_count(), "end-time size mismatch");
  ACS_REQUIRE(budgets.size() == fps.sub_count(), "budget size mismatch");
  const model::TaskSet& set = fps.task_set();
  const double ct_max = dvs.CycleTime(dvs.vmax());

  // Exact per-instance budget projection (>= 0, sum == WCEC).
  std::vector<double> w = budgets;
  for (const fps::InstanceRecord& rec : fps.instances()) {
    std::vector<double> group;
    group.reserve(rec.subs.size());
    for (std::size_t order : rec.subs) {
      group.push_back(std::max(0.0, w[order]));
    }
    opt::ProjectOntoSimplex(group, set.task(rec.info.task).wcec);
    for (std::size_t j = 0; j < rec.subs.size(); ++j) {
      w[rec.subs[j]] = group[j];
    }
  }

  // Forward sweep: honour the worst-case chain; overflow spills to the next
  // sub-instance of the same instance.  Returns the residual budget per
  // instance that fell past its deadline.
  std::vector<double> e(fps.sub_count(), 0.0);
  std::vector<double> pending(fps.instance_count(), 0.0);
  const std::vector<double>& end_cap = fps.effective_end_bounds();
  const auto sweep = [&]() {
    std::fill(pending.begin(), pending.end(), 0.0);
    double finish = 0.0;
    for (std::size_t u = 0; u < fps.sub_count(); ++u) {
      const fps::SubInstance& sub = fps.sub(u);
      const double start = std::max(finish, sub.release());
      double want = w[u] + pending[sub.parent];
      pending[sub.parent] = 0.0;
      const double capacity =
          std::max(0.0, (end_cap[u] - start) / ct_max);
      if (want > capacity) {
        pending[sub.parent] = want - capacity;
        want = capacity;
      }
      w[u] = want;
      const double chain_min = start + w[u] * ct_max;
      e[u] = std::clamp(std::max(end_times[u], chain_min), sub.seg_begin,
                        end_cap[u]);
      if (w[u] > 0.0) {
        finish = e[u];
      }
    }
  };

  // Residual budget below this is dropped: it represents less processor
  // time than any tolerance in the system (audits use 1e-6, the engine
  // resolves events to 1e-9), so it cannot affect schedulability.
  const double drop_cycles = 1e-7 / ct_max;

  sweep();
  bool leftover = false;
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    if (pending[p] > drop_cycles) {
      // Residual that could not move later (capacity-tight tail, typically
      // solver dust).  Front-load it: the next sweep re-places it at the
      // earliest spare capacity of the instance instead.
      w[fps.instance(p).subs.front()] += pending[p];
      leftover = true;
    }
  }
  if (leftover) {
    sweep();
    for (std::size_t p = 0; p < fps.instance_count(); ++p) {
      if (pending[p] > drop_cycles) {
        ACS_LOG_DEBUG << "repair: instance " << p << " has " << pending[p]
                      << " cycles of budget past its deadline";
        return std::nullopt;
      }
    }
  }

  sim::StaticSchedule repaired(fps, std::move(e), std::move(w));
  const sim::FeasibilityReport audit = VerifyWorstCase(fps, repaired, dvs);
  if (!audit.feasible) {
    ACS_LOG_DEBUG << "repair audit failed: " << audit.detail;
    return std::nullopt;
  }
  return repaired;
}

namespace {

/// Shared solve body: `planning` is null for the paper's ACEC/WCEC solves
/// (exactly the historical construction, bit-for-bit) and a
/// scenario-conditioned point for SolvePlanned.
ScheduleResult SolveWith(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    Scenario scenario, const PlanningPoint* planning,
    const SchedulerOptions& options,
    const std::optional<sim::StaticSchedule>& warm_start,
    EvalWorkspace* workspace, const opt::AlmReport* dual_seed = nullptr) {
  // Telemetry (observation-only: none of this feeds back into the solve).
  // The phase label keys the span, the solve counter and the convergence
  // records to the same taxonomy the --csv-solver-stats columns use.
  const char* const phase = planning != nullptr          ? "planned"
                            : scenario == Scenario::kWorst ? "wcs"
                                                           : "acs";
  obs::Count(planning != nullptr        ? obs::metric::kPlannedSolves
             : scenario == Scenario::kWorst ? obs::metric::kWcsSolves
                                            : obs::metric::kAcsSolves);
  obs::ScopedWallTimer solve_timer(obs::metric::kSolveWallUs);
  obs::Span span("alm", "solve");
  if (span.enabled()) {
    span.Arg("phase", phase);
    span.Arg("warm", warm_start.has_value() ? "seeded" : "cold");
    span.Arg("dual", dual_seed != nullptr ? "seeded" : "cold");
  }
  obs::ConvergenceScope convergence(phase);

  const sim::StaticSchedule start_schedule =
      warm_start.has_value() ? *warm_start
                             : sim::BuildVmaxAsapSchedule(fps, dvs);

  EnergyObjective objective(
      fps, dvs, scenario,
      workspace != nullptr ? &workspace->objective_scratch() : nullptr,
      planning);
  const auto feasible_set = objective.BuildFeasibleSet();
  const std::vector<opt::LinearConstraint> chain =
      objective.BuildChainConstraints();

  opt::Vector x = objective.PackSchedule(start_schedule);
  const double start_energy = objective.Value(x);

  ScheduleResult result{start_schedule, start_energy, {}, false};
  opt::AlmOptions alm_options = options.alm;
  if (dual_seed != nullptr) {
    alm_options.dual_seed = &dual_seed->multipliers;
    alm_options.dual_penalty_seed = dual_seed->final_penalty;
  }
  // The observer goes on the local copy only, never into stored
  // SchedulerOptions, so solve-cache identity (SameSchedulerOptions) and
  // the solve trajectory are untouched.
  alm_options.observer = convergence.observer();
  result.alm = opt::MinimizeAlm(
      objective, *feasible_set, chain, x, alm_options,
      workspace != nullptr ? &workspace->solver().alm : nullptr);

  std::vector<double> end_times(fps.sub_count());
  std::vector<double> budgets(fps.sub_count());
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    end_times[u] = x[u];
    budgets[u] = objective.BudgetOf(x, u);
  }
  std::optional<sim::StaticSchedule> repaired =
      RepairSchedule(fps, dvs, end_times, budgets);

  if (repaired.has_value()) {
    const double repaired_energy =
        objective.Value(objective.PackSchedule(*repaired));
    if (repaired_energy <= start_energy + 1e-12 * std::fabs(start_energy)) {
      result.schedule = std::move(*repaired);
      result.predicted_energy = repaired_energy;
      return result;
    }
    ACS_LOG_WARN << "solver result (" << repaired_energy
                 << ") worse than warm start (" << start_energy
                 << "); keeping warm start";
  } else {
    ACS_LOG_WARN << "feasibility repair failed; keeping warm start";
  }
  result.used_fallback = true;
  return result;
}

}  // namespace

ScheduleResult SolveSchedule(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    Scenario scenario, const SchedulerOptions& options,
    const std::optional<sim::StaticSchedule>& warm_start,
    EvalWorkspace* workspace) {
  return SolveWith(fps, dvs, scenario, nullptr, options, warm_start,
                   workspace);
}

ScheduleResult SolvePlanned(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    const PlanningPoint& planning, const SchedulerOptions& options,
    const std::optional<sim::StaticSchedule>& warm_start,
    EvalWorkspace* workspace, const opt::AlmReport* dual_seed) {
  return SolveWith(fps, dvs, Scenario::kAverage, &planning, options,
                   warm_start, workspace, dual_seed);
}

ScheduleResult SolveWcs(const fps::FullyPreemptiveSchedule& fps,
                        const model::DvsModel& dvs,
                        const SchedulerOptions& options,
                        EvalWorkspace* workspace) {
  return SolveSchedule(fps, dvs, Scenario::kWorst, options, std::nullopt,
                       workspace);
}

ScheduleResult SolveAcs(const fps::FullyPreemptiveSchedule& fps,
                        const model::DvsModel& dvs,
                        const SchedulerOptions& options,
                        EvalWorkspace* workspace) {
  std::optional<sim::StaticSchedule> warm;
  if (options.warm_start_acs_with_wcs) {
    warm = SolveWcs(fps, dvs, options, workspace).schedule;
  }
  return SolveSchedule(fps, dvs, Scenario::kAverage, options, warm, workspace);
}

}  // namespace dvs::core
