// End-to-end experiment pipeline: task set -> offline schedules (ACS + WCS)
// -> online simulation on identical workload realisations -> energy
// comparison.  CompareAcsWcs is now a thin shim over the method registry
// (core/method_registry.h); grids of experiments across many methods go
// through runner::RunGrid instead.
#ifndef ACS_CORE_PIPELINE_H
#define ACS_CORE_PIPELINE_H

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/scheduler.h"
#include "dpm/options.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "model/task.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "stats/rng.h"

namespace dvs::core {

/// Knobs of the scenario-conditioned planning arms (acs-scenario /
/// acs-quantile / acs-mixture): how the offline calibration samples the
/// cell's scenario and which point of the calibrated law the NLP plans at.
/// Ignored by every other method, so legacy grids are unaffected.
struct PlanningOptions {
  /// Per-task planning quantile of the acs-quantile arm (p50 by default:
  /// plan at the realised median).
  double quantile = 0.5;
  /// Sample vectors the acs-mixture objective averages over.
  std::int64_t mixture_samples = 8;
  /// Calibration draws per task (workload::ScenarioCalibrator::Options).
  std::int64_t calibration_samples = 2048;
};

/// Knobs of the online expected-case arms (acs-online / acs-online-drift):
/// the dispatch-time DP discretisation and the drift detector that triggers
/// mid-run replans.  Ignored by every other method.
struct OnlineOptions {
  /// Cycle bins of the per-dispatch expected-case speed profile
  /// (sim::ExpectedCasePolicy); more bins track the survival curve closer
  /// at the cost of more re-dispatches per sub-instance.
  std::int64_t dp_bins = 8;
  /// EWMA weight of one hyper-period's realised per-task mean cycles
  /// (acs-online-drift): ewma <- (1-w) ewma + w batch_mean.
  double drift_ewma = 0.2;
  /// Replan trigger: max-over-tasks |ewma - planned| / (WCEC - BCEC) above
  /// this fires a recalibrated replan through the warm-start machinery.
  double drift_threshold = 0.2;
};

/// How the scenario-conditioned planning arms seed their NLP solve.
enum class WarmStartPolicy {
  /// Every planned solve seeds from the WCS incumbent (the legacy path —
  /// byte-identical to the pre-warm-start pipeline).
  kOff,
  /// Continuation along the sigma axis: the cell solves the prefix chain of
  /// sigma divisors in axis order, each solve seeded from the previous
  /// converged schedule (the chain base still seeds from WCS).  The chain
  /// is defined by grid coordinates alone — never by execution order — so
  /// results stay a pure function of the grid at any thread count.
  kNeighbor,
};

struct ExperimentOptions {
  std::int64_t hyper_periods = 200;  // paper: 1000 (set via --paper)
  double sigma_divisor = 6.0;        // workload sigma = (WCEC-BCEC)/divisor
  std::uint64_t seed = 1;            // workload sampling stream
  /// Warm-start policy of the scenario-conditioned solves (see above).
  WarmStartPolicy warm_start = WarmStartPolicy::kOff;
  /// Continuation chain for kNeighbor: the sigma-divisor axis entries up to
  /// and including this cell's own (runner::RunCell fills it from the grid;
  /// the last entry must equal sigma_divisor).  Empty disables chaining
  /// even under kNeighbor.
  std::vector<double> sigma_chain;
  /// Charged by the simulator per voltage change; zero matches the paper's
  /// "transition overhead is negligible" assumption (ablation bench knob).
  model::TransitionOverhead transition;
  /// Execution-time process the simulation draws from: a fresh sampler is
  /// built per evaluation via MakeSampler(set, sigma_divisor).  Null keeps
  /// the paper's i.i.d. truncated normal (bit-identical to the
  /// pre-scenario pipeline).  Non-owning — typically a
  /// workload::ScenarioRegistry entry that outlives the run; mp's per-core
  /// fan-out copies these options, so the pointee must outlive the whole
  /// fleet evaluation.
  const model::WorkloadScenario* scenario = nullptr;
  /// Registry name of `scenario` — the identity the persistent solve cache
  /// stores for calibrations, since pointer identity cannot survive a
  /// process boundary (runner::RunCell fills it from the grid's scenario
  /// axis).  Empty disables calibration persistence for this evaluation;
  /// results are identical either way.
  std::string scenario_key;
  /// Scenario-conditioned planning knobs (see PlanningOptions).
  PlanningOptions planning;
  /// Online expected-case dispatch + drift replanning knobs.
  OnlineOptions online;
  /// Leakage-aware DPM layer (dpm/options.h): sleep states across
  /// break-even idle intervals, the critical-speed floor (applied by the
  /// driver via dpm::CriticalSpeedFloor), cross-hyper-period reallocation.
  /// Disabled by default; every consumer's DPM-off path is byte-identical
  /// to the pre-DPM pipeline.
  dpm::Options dpm;
  SchedulerOptions scheduler;
};

/// The calibration stream of one evaluation: a fixed-label fork of the
/// cell's workload seed.  Deriving from `options.seed` pairs calibration
/// with the cell it plans for (runner cells key that seed by SetIndex, and
/// mp::EvaluateFleet forks it per core, so per-core calibration pairs with
/// per-core evaluation); the distinct label keeps calibration draws
/// statistically independent of the evaluation realisations.
std::uint64_t CalibrationSeed(const ExperimentOptions& options);

struct MethodOutcome {
  double predicted_energy = 0.0;      // NLP objective (per hyper-period)
  double measured_energy = 0.0;       // simulated energy per hyper-period
  std::int64_t deadline_misses = 0;
  std::int64_t voltage_switches = 0;  // across the whole simulated run
  bool used_fallback = false;         // scheduler kept its warm start
  /// Offline solver effort behind the plan (the NLP arms' AlmReport; zero
  /// for closed-form methods).  Multi-core cells sum per-core solves; a
  /// warm-start chain charges every solve the chain actually ran.  Surfaced
  /// by runner::CsvSink's opt-in solver-stats columns.
  std::int64_t solver_outer_iterations = 0;
  std::int64_t solver_inner_iterations = 0;
  std::int64_t solver_evaluations = 0;
  /// DPM ledger (all zero when ExperimentOptions::dpm is off).  The two
  /// energies are included in measured_energy; units follow it (per
  /// hyper-period single-core, per-ms for a fleet aggregate).
  double idle_energy = 0.0;   // awake floor paid across the run
  double sleep_energy = 0.0;  // sleep transitions + residency
  double sleep_time = 0.0;    // ms spent in committed sleeps
  std::int64_t sleeps = 0;    // committed sleep transitions
  /// Fleet-only DPM fields (zero on single-core outcomes): tasks migrated by
  /// the cross-hyper-period reallocation (identical across a cell's methods)
  /// and the time-weighted powered-core count — cores that the reallocation
  /// emptied or that slept part of the mission count fractionally.
  std::int64_t migrations = 0;
  double weighted_cores = 0.0;
};

/// The paper's reported metric, shared by every result type that compares a
/// method against a baseline: (E_base - E_method) / E_base.  Degenerate
/// inputs stay honest instead of reading as "no improvement": a non-finite
/// energy propagates NaN, a zero baseline reports signed infinity toward
/// the method's sign (and 0 only when the method is also free).  CSV/JSON
/// sinks render the non-finite cases as empty/null fields.
inline double ImprovementRatio(double baseline_energy, double method_energy) {
  if (!std::isfinite(baseline_energy) || !std::isfinite(method_energy)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (baseline_energy == 0.0) {
    if (method_energy == 0.0) {
      return 0.0;
    }
    return method_energy > 0.0 ? -std::numeric_limits<double>::infinity()
                               : std::numeric_limits<double>::infinity();
  }
  return (baseline_energy - method_energy) / baseline_energy;
}

struct ComparisonResult {
  MethodOutcome acs;
  MethodOutcome wcs;
  std::size_t sub_instances = 0;

  /// The paper's reported metric: (E_wcs - E_acs) / E_wcs on measured
  /// runtime energy (ImprovementRatio's degenerate-input contract applies).
  double Improvement() const {
    return ImprovementRatio(wcs.measured_energy, acs.measured_energy);
  }
};

/// Builds the fresh per-run sampler one evaluation simulates under:
/// `options.scenario`'s process, or the paper's i.i.d. truncated normal
/// when unset (the byte-compatible default).  Owning — one sampler serves
/// one simulation run (the statefulness contract of model/workload.h);
/// the single resolution point for everything that consumes
/// ExperimentOptions (EvaluateMethod, SimulateSchedule).
std::unique_ptr<model::WorkloadSampler> MakeRunSampler(
    const ExperimentOptions& options, const model::TaskSet& set);

/// Runs the full ACS-vs-WCS comparison.  Both schedules are simulated over
/// the *same* workload realisations (identical seeded streams), mirroring
/// the paper's methodology.  Throws InfeasibleError when the set is not
/// RM-schedulable at Vmax.
ComparisonResult CompareAcsWcs(const model::TaskSet& set,
                               const model::DvsModel& dvs,
                               const ExperimentOptions& options = {});

/// Simulates one schedule under the paper's truncated-normal workload with
/// the greedy-reclamation policy; returns energy per hyper-period.
sim::SimResult SimulateSchedule(const fps::FullyPreemptiveSchedule& fps,
                                const sim::StaticSchedule& schedule,
                                const model::DvsModel& dvs,
                                const ExperimentOptions& options);

/// Simulates one schedule under an arbitrary sampler / policy (ablations).
sim::SimResult SimulateWith(const fps::FullyPreemptiveSchedule& fps,
                            const sim::StaticSchedule& schedule,
                            const model::DvsModel& dvs,
                            const sim::DvsPolicy& policy,
                            const model::WorkloadSampler& sampler,
                            std::uint64_t seed, std::int64_t hyper_periods);

}  // namespace dvs::core

#endif  // ACS_CORE_PIPELINE_H
