// Persistent content-addressed solve cache.
//
// A grid run's expensive artifacts — the WCS / ACS / Vmax-ASAP solves, the
// scenario-conditioned planned solves (with their warm-start chain
// ancestry) and the scenario calibrations cached per task set in
// core::SolveCache — are all deterministic functions of their inputs.  The
// SolveStore serialises them to a binary, versioned, fingerprint-keyed
// directory (`--cache-dir`) so a later process re-running the same grid,
// extending an axis, or picking up a different shard window only solves
// genuinely new cells.
//
// Keying and verification mirror the in-memory caches exactly:
//
//   entry key  = FNV(schema version x task-set content hash x DvsModel
//                parameter hash x solver-option hash)  -> the file name;
//   on load    every fingerprint match is re-verified against the *exact*
//                values (structural task-set equality, concrete model
//                parameters, every solver option field), and each planned
//                solve inside the entry is additionally keyed by its
//                PlanningPoint (exact values + chain ancestry) when
//                core::MethodContext looks it up — so a hash collision, a
//                renamed file or a foreign cache degrades to a re-solve,
//                never to a wrong reuse.
//
// Invalidation is by construction: anything that can change a solve's bits
// is either part of the key (task set, model parameters, solver options,
// planning point, chain) or covered by kSolveStoreSchemaVersion, which must
// be bumped whenever solver arithmetic or the serialization layout changes.
// DvsModel subclasses unknown to DescribeModel are simply not persistable
// (Load/Absorb become no-ops) — an unknown model can never alias a known
// one.
//
// Concurrency: one writer per directory, enforced with an O_EXCL LOCK file
// (two shards pointed at the same writable cache dir hard-error; read-only
// opens skip the lock, which is the shared pre-seed flow tools/shard_grid
// documents).  Absorb() is thread-safe; Load() is safe from any number of
// threads.  Write-back happens once, after the grid's workers have joined.
#ifndef ACS_CORE_SOLVE_STORE_H
#define ACS_CORE_SOLVE_STORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "model/power_model.h"
#include "model/task.h"
#include "workload/calibrator.h"

namespace dvs::fps {
class FullyPreemptiveSchedule;
}  // namespace dvs::fps

namespace dvs::core {

/// Bump on ANY change to the entry layout or to solver arithmetic that can
/// alter solve bits: version-mismatched files are rejected wholesale.
inline constexpr std::uint32_t kSolveStoreSchemaVersion = 1;

/// Concrete-parameter description of a DvsModel — the model's persistable
/// identity.  DescribeModel recognises the three library models by
/// dynamic_cast and records their exact constructor parameters; an unknown
/// subclass yields tag 0 (not persistable), so probing SpeedAt at sample
/// points — which could alias two models that merely agree at the probes —
/// is never used as identity.
struct ModelDescriptor {
  std::uint8_t tag = 0;  // 0 unknown, 1 linear, 2 alpha, 3 discrete
  std::vector<double> params;

  bool Persistable() const { return tag != 0; }

  friend bool operator==(const ModelDescriptor& a, const ModelDescriptor& b) {
    if (a.tag != b.tag || a.params.size() != b.params.size()) {
      return false;
    }
    // Bitwise, not arithmetic, equality: 0.0 vs -0.0 are different models.
    for (std::size_t i = 0; i < a.params.size(); ++i) {
      if (BitsOf(a.params[i]) != BitsOf(b.params[i])) {
        return false;
      }
    }
    return true;
  }
  friend bool operator!=(const ModelDescriptor& a, const ModelDescriptor& b) {
    return !(a == b);
  }

  static std::uint64_t BitsOf(double value);
};

ModelDescriptor DescribeModel(const model::DvsModel& dvs);

/// Content fingerprints (FNV-1a over the canonical serialization).
std::uint64_t TaskSetFingerprint(const model::TaskSet& set);
std::uint64_t ModelFingerprint(const ModelDescriptor& model);
std::uint64_t SchedulerOptionsFingerprint(const SchedulerOptions& options);

/// The entry key = file identity of one (task set, model, solver options)
/// cell under the current schema version.  0 when the model is not
/// persistable — the store's universal "skip me" value.
std::uint64_t SolveStoreEntryKey(const model::TaskSet& set,
                                 const ModelDescriptor& model,
                                 const SchedulerOptions& scheduler);

/// Serializable mirror of sim::StaticSchedule (reconstructed against the
/// loader's own FPS expansion).
struct StoredSchedule {
  std::vector<double> end_times;
  std::vector<double> worst_budgets;
};

/// Serializable mirror of core::ScheduleResult.
struct StoredScheduleResult {
  StoredSchedule schedule;
  double predicted_energy = 0.0;
  opt::AlmReport alm;
  bool used_fallback = false;
};

/// One planned solve: the exact PlanningPoint, its warm-start chain
/// ancestry and the result — the same triple the in-memory
/// SolveCache::PlannedSolve verifies on hit.
struct StoredPlannedSolve {
  PlanningPoint planning;
  std::vector<PlanningPoint> chain;
  StoredScheduleResult result;
};

/// One scenario calibration, identified by the scenario's registry *name*
/// (pointer identity cannot persist; see SolveCache::CalibrationEntry::
/// persist_key) plus the full in-memory key tuple.
struct StoredCalibration {
  std::string scenario_key;
  double sigma_divisor = 0.0;
  std::uint64_t seed = 0;
  std::int64_t samples = 0;
  workload::Calibration calibration;
};

/// Everything one cache entry holds: the exact-verify material (set, model
/// descriptor, solver options) plus the solves and calibrations.
struct StoredCell {
  explicit StoredCell(model::TaskSet set) : set(std::move(set)) {}

  model::TaskSet set;
  ModelDescriptor model;
  SchedulerOptions scheduler;
  std::optional<StoredScheduleResult> wcs;
  std::optional<StoredScheduleResult> acs;
  std::optional<StoredSchedule> vmax_asap;
  std::vector<StoredPlannedSolve> planned;
  std::vector<StoredCalibration> calibrations;

  std::uint64_t EntryKey() const {
    return SolveStoreEntryKey(set, model, scheduler);
  }
};

/// Snapshot of a SolveCache for persistence.  Calibration entries without a
/// persist key (direct-API callers that never set ExperimentOptions::
/// scenario_key) are skipped — their scenario identity cannot be restored.
StoredCell MakeStoredCell(const model::TaskSet& set,
                          const ModelDescriptor& model,
                          const SchedulerOptions& scheduler,
                          const SolveCache& solves);

/// Rebuilds a SolveCache from a verified StoredCell: StaticSchedules are
/// reconstructed against `fps` (which the caller built from the verified
/// set), restored calibrations carry a null scenario pointer plus the
/// persist key, and only empty slots are filled.  Throws util::Error when a
/// stored schedule's length does not match fps.sub_count() — callers treat
/// that as a verify-reject.
void RestoreSolveCache(const StoredCell& stored,
                       const fps::FullyPreemptiveSchedule& fps,
                       SolveCache& solves);

/// Full entry file image: magic, schema version, entry key, payload,
/// FNV-1a payload checksum.
std::string SerializeStoredCell(const StoredCell& cell);

/// Parses and structurally validates an entry file; throws util::Error on a
/// bad magic, schema version mismatch, checksum mismatch or truncation.
/// (Key and exact-value verification against the *requesting* cell is the
/// caller's second step — see SolveStore::Load.)
StoredCell DeserializeStoredCell(const std::string& bytes);

class SolveStore {
 public:
  /// Opens (creating if needed) cache directory `dir`.  A writable open
  /// takes the directory's LOCK file exclusively and throws util::Error
  /// when another writer holds it — the two-shards-one-cache-dir
  /// hard-error.  A read-only open never locks and never writes (the
  /// shared pre-seed flow).
  explicit SolveStore(std::string dir, bool read_only = false);
  ~SolveStore();

  SolveStore(const SolveStore&) = delete;
  SolveStore& operator=(const SolveStore&) = delete;

  const std::string& dir() const { return dir_; }
  bool read_only() const { return read_only_; }

  /// Looks the cell up by content key — first among this process's absorbed
  /// entries, then on disk — and verifies every match exactly (task set
  /// structure, model parameters, every solver option).  Counts
  /// persist.cache_hits / cache_misses / verify_rejects; a rejected file
  /// (corrupt, truncated, wrong schema version, foreign fingerprint) is
  /// reported as both a reject and a miss and never aborts the run.
  std::optional<StoredCell> Load(const model::TaskSet& set,
                                 const ModelDescriptor& model,
                                 const SchedulerOptions& scheduler) const;

  /// Merges `cell` into the in-memory write-back set (thread-safe): missing
  /// wcs/acs/vmax slots fill, planned solves union by (point, chain),
  /// calibrations union by their full key tuple.  Cells with a
  /// non-persistable model are dropped.
  void Absorb(StoredCell cell);

  std::size_t AbsorbedCount() const;

  /// Writes every absorbed entry to disk (merging with any existing file
  /// first, so concurrent *runs* — serialised by the LOCK — accumulate),
  /// via tmp-file + rename.  Returns the number of files written; counts
  /// persist.write_backs.  No-op in read-only mode.
  std::size_t WriteBack();

  /// Keys of the entry files currently on disk, sorted (tools/cache_info).
  std::vector<std::uint64_t> DiskKeys() const;

  /// "<key as %016x>.acsc".
  static std::string EntryFileName(std::uint64_t key);

  std::string EntryPath(std::uint64_t key) const;

 private:
  std::string dir_;
  bool read_only_;
  bool locked_ = false;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, StoredCell> absorbed_;
};

}  // namespace dvs::core

#endif  // ACS_CORE_SOLVE_STORE_H
