// Umbrella header: the public API of the ACS reproduction in one include.
//
//   #include "core/api.h"
//
//   using namespace dvs;
//   model::LinearDvsModel cpu = workload::DefaultModel();
//   model::TaskSet set = ...;
//   core::ComparisonResult r = core::CompareAcsWcs(set, cpu, {});
//
// Layering (see DESIGN.md): util <- stats <- model <- {fps, opt} <- sim <-
// core <- workload <- mp <- runner.  Downstream users normally need only
// this header plus the workload builders they care about; parallel
// experiment grids additionally include runner/run_grid.h, and partitioned
// multi-core experiments mp/fleet.h.
#ifndef ACS_CORE_API_H
#define ACS_CORE_API_H

#include "core/case_analysis.h"
#include "core/eval_workspace.h"
#include "core/formulation.h"
#include "core/full_nlp.h"
#include "core/method_registry.h"
#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "model/task.h"
#include "model/workload.h"
#include "sim/engine.h"
#include "sim/policy.h"
#include "sim/static_schedule.h"
#include "sim/trace.h"
#include "stats/rng.h"

#endif  // ACS_CORE_API_H
