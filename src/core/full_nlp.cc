#include "core/full_nlp.h"

#include <algorithm>
#include <cmath>

#include "core/formulation.h"
#include "util/error.h"
#include "util/logging.h"

namespace dvs::core {
namespace {

/// Smoothed min and its partials: smin(a, b) ~= min(a, b), C^inf.
struct SmoothMin {
  double value = 0.0;
  double da = 0.0;
  double db = 0.0;

  SmoothMin(double a, double b, double eps) {
    const double d = a - b;
    const double s = std::sqrt(d * d + eps * eps);
    value = 0.5 * (a + b - s);
    da = 0.5 * (1.0 - d / s);
    db = 0.5 * (1.0 + d / s);
  }
};

/// d t_cyc / d V = -speed'(V) * t_cyc(V)^2.
double CycleTimeSlope(const model::DvsModel& dvs, double v) {
  const double ct = dvs.CycleTime(v);
  return -dvs.SpeedSlope(v) * ct * ct;
}

/// Objective: sum ceff * vavg_u^2 * wavg_u.
class FullObjective final : public opt::Objective {
 public:
  FullObjective(const model::DvsModel& dvs, std::size_t n)
      : dvs_(&dvs), n_(n) {}

  std::size_t dim() const override { return 6 * n_; }

  double Value(const opt::Vector& x) const override {
    const double ceff = dvs_->ceff();
    double total = 0.0;
    for (std::size_t u = 0; u < n_; ++u) {
      const double v = x[4 * n_ + u];
      const double w = x[2 * n_ + u];
      total += ceff * v * v * w;
    }
    return total;
  }

  void Gradient(const opt::Vector& x, opt::Vector& grad) const override {
    grad.assign(dim(), 0.0);
    const double ceff = dvs_->ceff();
    for (std::size_t u = 0; u < n_; ++u) {
      const double v = x[4 * n_ + u];
      const double w = x[2 * n_ + u];
      grad[2 * n_ + u] = ceff * v * v;
      grad[4 * n_ + u] = 2.0 * ceff * v * w;
    }
  }

 private:
  const model::DvsModel* dvs_;
  std::size_t n_;
};

/// (definition of vavg)  e_u - savg_u - wworst_u * t_cyc(vavg_u) >= 0.
class WindowConstraint final : public opt::ConstraintFunction {
 public:
  WindowConstraint(const model::DvsModel& dvs, std::size_t n, std::size_t u)
      : dvs_(&dvs), n_(n), u_(u) {}

  opt::ConstraintKind kind() const override {
    return opt::ConstraintKind::kGeZero;
  }

  double Evaluate(const opt::Vector& x) const override {
    const double v = x[4 * n_ + u_];
    return x[n_ + u_] - x[u_] - x[3 * n_ + u_] * dvs_->CycleTime(v);
  }

  void AccumulateGradient(const opt::Vector& x, double weight,
                          opt::Vector& grad) const override {
    const double v = x[4 * n_ + u_];
    const double ct = dvs_->CycleTime(v);
    grad[n_ + u_] += weight;
    grad[u_] -= weight;
    grad[3 * n_ + u_] += weight * (-ct);
    grad[4 * n_ + u_] += weight * (-x[3 * n_ + u_] * CycleTimeSlope(*dvs_, v));
  }

  std::string name() const override {
    return "window[" + std::to_string(u_) + "]";
  }

 private:
  const model::DvsModel* dvs_;
  std::size_t n_;
  std::size_t u_;
};

/// (10)  e_u - anchor - wworst_u * t_cyc(vworst_u) >= 0, where anchor is
/// either e_{u-1} (chain) or the constant release r_u.
class WorstChainConstraint final : public opt::ConstraintFunction {
 public:
  WorstChainConstraint(const model::DvsModel& dvs, std::size_t n,
                       std::size_t u, bool from_previous, double release)
      : dvs_(&dvs),
        n_(n),
        u_(u),
        from_previous_(from_previous),
        release_(release) {}

  opt::ConstraintKind kind() const override {
    return opt::ConstraintKind::kGeZero;
  }

  double Evaluate(const opt::Vector& x) const override {
    const double v = x[5 * n_ + u_];
    const double anchor = from_previous_ ? x[n_ + (u_ - 1)] : release_;
    return x[n_ + u_] - anchor - x[3 * n_ + u_] * dvs_->CycleTime(v);
  }

  void AccumulateGradient(const opt::Vector& x, double weight,
                          opt::Vector& grad) const override {
    const double v = x[5 * n_ + u_];
    grad[n_ + u_] += weight;
    if (from_previous_) {
      grad[n_ + (u_ - 1)] -= weight;
    }
    grad[3 * n_ + u_] += weight * (-dvs_->CycleTime(v));
    grad[5 * n_ + u_] += weight * (-x[3 * n_ + u_] * CycleTimeSlope(*dvs_, v));
  }

  std::string name() const override {
    return std::string(from_previous_ ? "chain[" : "rel[") +
           std::to_string(u_) + "]";
  }

 private:
  const model::DvsModel* dvs_;
  std::size_t n_;
  std::size_t u_;
  bool from_previous_;
  double release_;
};

/// (11)  savg_u - e_{u-1} + (wworst_{u-1} - wavg_{u-1}) * t_cyc(vavg_{u-1})
///       >= 0   (greedy slack pass-through bound).
class SlackBoundConstraint final : public opt::ConstraintFunction {
 public:
  SlackBoundConstraint(const model::DvsModel& dvs, std::size_t n,
                       std::size_t u)
      : dvs_(&dvs), n_(n), u_(u) {}

  opt::ConstraintKind kind() const override {
    return opt::ConstraintKind::kGeZero;
  }

  double Evaluate(const opt::Vector& x) const override {
    const std::size_t p = u_ - 1;
    const double v = x[4 * n_ + p];
    const double slack = (x[3 * n_ + p] - x[2 * n_ + p]) * dvs_->CycleTime(v);
    return x[u_] - x[n_ + p] + slack;
  }

  void AccumulateGradient(const opt::Vector& x, double weight,
                          opt::Vector& grad) const override {
    const std::size_t p = u_ - 1;
    const double v = x[4 * n_ + p];
    const double ct = dvs_->CycleTime(v);
    grad[u_] += weight;
    grad[n_ + p] -= weight;
    grad[3 * n_ + p] += weight * ct;
    grad[2 * n_ + p] -= weight * ct;
    grad[4 * n_ + p] += weight * (x[3 * n_ + p] - x[2 * n_ + p]) *
                        CycleTimeSlope(*dvs_, v);
  }

  std::string name() const override {
    return "slack[" + std::to_string(u_) + "]";
  }

 private:
  const model::DvsModel* dvs_;
  std::size_t n_;
  std::size_t u_;
};

/// (13)/(14)  wavg_k - smin(wworst_k, ACEC - sum_{j<k} wworst_j) >= 0.
class CaseSelectConstraint final : public opt::ConstraintFunction {
 public:
  CaseSelectConstraint(std::size_t n, std::size_t u,
                       std::vector<std::size_t> earlier, double acec,
                       double eps)
      : n_(n), u_(u), earlier_(std::move(earlier)), acec_(acec), eps_(eps) {}

  opt::ConstraintKind kind() const override {
    return opt::ConstraintKind::kGeZero;
  }

  double Evaluate(const opt::Vector& x) const override {
    double left = acec_;
    for (std::size_t j : earlier_) {
      left -= x[3 * n_ + j];
    }
    const SmoothMin m(x[3 * n_ + u_], left, eps_);
    return x[2 * n_ + u_] - m.value;
  }

  void AccumulateGradient(const opt::Vector& x, double weight,
                          opt::Vector& grad) const override {
    double left = acec_;
    for (std::size_t j : earlier_) {
      left -= x[3 * n_ + j];
    }
    const SmoothMin m(x[3 * n_ + u_], left, eps_);
    grad[2 * n_ + u_] += weight;
    grad[3 * n_ + u_] += weight * (-m.da);
    for (std::size_t j : earlier_) {
      grad[3 * n_ + j] += weight * m.db;  // -smin, d left/d wworst_j = -1
    }
  }

  std::string name() const override {
    return "case[" + std::to_string(u_) + "]";
  }

 private:
  std::size_t n_;
  std::size_t u_;
  std::vector<std::size_t> earlier_;
  double acec_;
  double eps_;
};

}  // namespace

opt::AlmOptions FullNlpOptions::DefaultAlmOptions() {
  opt::AlmOptions alm;
  alm.max_outer = 20;
  alm.feasibility_tol = 1e-6;
  alm.initial_penalty = 10.0;
  alm.penalty_growth = 5.0;
  alm.inner.max_iterations = 600;
  alm.inner.tolerance = 1e-7;
  alm.inner_tol_start = 1e-3;
  return alm;
}

FullNlp::FullNlp(const fps::FullyPreemptiveSchedule& fps,
                 const model::DvsModel& dvs, const FullNlpOptions& options)
    : fps_(&fps), dvs_(&dvs), options_(options), n_(fps.sub_count()) {
  ACS_REQUIRE(options_.planning.mixture.empty(),
              "the full NLP supports point planning only — the paper's "
              "constraint set has no mixture counterpart");
}

/// The per-task planning workload of constraints (12)-(14): the shared
/// PlanningPoint resolution rule (ACEC by default, clamped entry
/// otherwise), so the full and reduced formulations plan at literally the
/// same point.
double FullNlp::PlannedCycles(model::TaskIndex task) const {
  return PlanningPoint::ResolveFor(options_.planning.cycles,
                                   fps_->task_set(), task);
}

opt::Vector FullNlp::InitialPoint(
    const sim::StaticSchedule& warm_start) const {
  // Replay the warm start under the average scenario to seed every derived
  // variable consistently — at the same planning point the constraints
  // below will enforce.
  EnergyObjective reduced(*fps_, *dvs_, Scenario::kAverage, nullptr,
                          &options_.planning);
  const opt::Vector packed = reduced.PackSchedule(warm_start);
  const ForwardDetail detail = reduced.Replay(packed);

  opt::Vector x(dim(), 0.0);
  for (std::size_t u = 0; u < n_; ++u) {
    x[savg_index(u)] = detail.start[u];
    x[e_index(u)] = warm_start.end_time(u);
    x[wavg_index(u)] = detail.avg_cycles[u];
    x[wworst_index(u)] = warm_start.worst_budget(u);
    x[vavg_index(u)] = detail.voltage[u];
    x[vworst_index(u)] = dvs_->vmax();
  }
  return x;
}

FullNlpResult FullNlp::Solve(const sim::StaticSchedule& warm_start) const {
  const model::TaskSet& set = fps_->task_set();

  FullObjective objective(*dvs_, n_);

  // Boxes.
  opt::BoxSimplexSet feasible(dim());
  const std::vector<double>& end_cap = fps_->effective_end_bounds();
  for (std::size_t u = 0; u < n_; ++u) {
    const fps::SubInstance& sub = fps_->sub(u);
    const double wcec = set.task(sub.task).wcec;
    feasible.SetBounds(savg_index(u), sub.release(), sub.deadline);
    feasible.SetBounds(e_index(u), sub.seg_begin, end_cap[u]);
    feasible.SetBounds(wavg_index(u), 0.0, wcec);
    feasible.SetBounds(wworst_index(u), 0.0, wcec);
    feasible.SetBounds(vavg_index(u), dvs_->vmin(), dvs_->vmax());
    feasible.SetBounds(vworst_index(u), dvs_->vmin(), dvs_->vmax());
  }

  // Nonlinear constraint pool (owning) + linear conservation constraints.
  std::vector<std::unique_ptr<opt::ConstraintFunction>> owned;
  std::vector<opt::LinearConstraint> linear;

  for (std::size_t u = 0; u < n_; ++u) {
    const fps::SubInstance& sub = fps_->sub(u);
    owned.push_back(std::make_unique<WindowConstraint>(*dvs_, n_, u));
    owned.push_back(std::make_unique<WorstChainConstraint>(
        *dvs_, n_, u, /*from_previous=*/u > 0, sub.release()));
    if (u > 0 && sub.release() > 0.0) {
      owned.push_back(std::make_unique<WorstChainConstraint>(
          *dvs_, n_, u, /*from_previous=*/false, sub.release()));
    }
    if (u > 0) {
      owned.push_back(std::make_unique<SlackBoundConstraint>(*dvs_, n_, u));
    }
  }

  for (const fps::InstanceRecord& rec : fps_->instances()) {
    const model::Task& task = set.task(rec.info.task);
    const double planned = PlannedCycles(rec.info.task);

    opt::LinearConstraint worst_sum;
    worst_sum.kind = opt::ConstraintKind::kEqZero;
    worst_sum.constant = -task.wcec;
    opt::LinearConstraint avg_sum;
    avg_sum.kind = opt::ConstraintKind::kEqZero;
    avg_sum.constant = -planned;

    std::vector<std::size_t> earlier;
    for (std::size_t order : rec.subs) {
      worst_sum.terms.emplace_back(wworst_index(order), 1.0);
      avg_sum.terms.emplace_back(wavg_index(order), 1.0);

      // (12c) wworst_k - wavg_k >= 0.
      opt::LinearConstraint dominate;
      dominate.kind = opt::ConstraintKind::kGeZero;
      dominate.terms.emplace_back(wworst_index(order), 1.0);
      dominate.terms.emplace_back(wavg_index(order), -1.0);
      dominate.name = "dom[" + std::to_string(order) + "]";
      linear.push_back(std::move(dominate));

      owned.push_back(std::make_unique<CaseSelectConstraint>(
          n_, order, earlier, planned, options_.min_smoothing));
      earlier.push_back(order);
    }
    worst_sum.name = "wcec-sum";
    avg_sum.name = "acec-sum";
    linear.push_back(std::move(worst_sum));
    linear.push_back(std::move(avg_sum));
  }

  std::vector<opt::LinearConstraintFn> linear_fns;
  linear_fns.reserve(linear.size());
  for (const opt::LinearConstraint& con : linear) {
    linear_fns.emplace_back(con);
  }
  std::vector<const opt::ConstraintFunction*> constraints;
  constraints.reserve(owned.size() + linear_fns.size());
  for (const auto& con : owned) {
    constraints.push_back(con.get());
  }
  for (const auto& fn : linear_fns) {
    constraints.push_back(&fn);
  }

  opt::Vector x = InitialPoint(warm_start);
  FullNlpResult result{warm_start, 0.0, {}};
  result.alm =
      opt::MinimizeAlm(objective, feasible, constraints, x, options_.alm);
  result.objective = objective.Value(x);

  // Extract (e, wworst) and restore strict feasibility.
  std::vector<double> end_times(n_);
  std::vector<double> budgets(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    end_times[u] = x[e_index(u)];
    budgets[u] = x[wworst_index(u)];
  }
  if (auto repaired = RepairSchedule(*fps_, *dvs_, end_times, budgets)) {
    result.schedule = std::move(*repaired);
  } else {
    ACS_LOG_WARN << "full-NLP repair failed; returning warm start";
    result.schedule = warm_start;
  }
  return result;
}

}  // namespace dvs::core
