// Offline schedulers: ACS (the paper's contribution) and the WCS baseline.
//
// Both run the same pipeline — fully preemptive expansion -> reduced NLP ->
// augmented-Lagrangian solve -> feasibility repair — differing only in the
// scenario the objective replays (ACEC vs WCEC).  The repair pass converts
// the solver's epsilon-feasible iterate into a *strictly* feasible static
// schedule (exact budget simplexes, chain-respecting end-times); if repair
// cannot absorb the residual violation the scheduler falls back to its warm
// start, which is feasible by construction, and flags it in the result.
#ifndef ACS_CORE_SCHEDULER_H
#define ACS_CORE_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/formulation.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "opt/augmented_lagrangian.h"
#include "sim/static_schedule.h"
#include "workload/calibrator.h"

namespace dvs::core {

class EvalWorkspace;  // core/eval_workspace.h

struct SchedulerOptions {
  opt::AlmOptions alm = DefaultAlmOptions();
  /// ACS warm-starts from the solved WCS schedule (recommended: WCS is both
  /// the paper's baseline and a good feasible incumbent).  When false, ACS
  /// starts from the Vmax-ASAP schedule.
  bool warm_start_acs_with_wcs = true;

  static opt::AlmOptions DefaultAlmOptions();
};

struct ScheduleResult {
  sim::StaticSchedule schedule;
  double predicted_energy = 0.0;  // scenario energy of the final schedule
  opt::AlmReport alm;
  bool used_fallback = false;     // repair failed; warm start returned
};

/// Lazily solved per-task-set state shared by every method evaluated on one
/// task set: the WCS solution doubles as the ACS warm start and as its own
/// arm, and the Vmax-ASAP schedule seeds two baselines.  MethodContext owns
/// one per cell by default; core::EvalWorkspace keeps one per *task set* so
/// grid cells that share a set reuse the solves outright.
///
/// The wcs / acs / vmax_asap slots are *planning-invariant*: they depend on
/// the task set, model and scheduler options alone (plain ACS plans at the
/// ACEC point whatever the cell's scenario), so sharing them across
/// scenario / planning-arm cells is sound.  Scenario-conditioned solves are
/// NOT — their schedule is a function of the calibrated PlanningPoint — so
/// they live in `planned`, keyed by the point's exact values: two cells
/// sharing a SetIndex but differing in scenario, planning arm, quantile,
/// sigma or calibration seed produce different points and therefore
/// different keys, which is the cache-hazard guarantee the planning
/// regression test pins down (a colliding fingerprint still verifies the
/// full point before reuse, degrading to a re-solve).
struct SolveCache {
  std::optional<ScheduleResult> wcs;
  std::optional<ScheduleResult> acs;
  std::optional<sim::StaticSchedule> vmax_asap;

  /// One scenario-conditioned solve; unique_ptr for reference stability
  /// (MethodContext::Planned returns references that must survive later
  /// insertions).  `chain` records the warm-start ancestry of a
  /// continuation solve (the planning points whose schedules seeded this
  /// one, in solve order) — empty for the legacy WCS-seeded path.  A hit
  /// requires the ancestry to match exactly as well as the point, so a
  /// chained and an unchained solve of the same point can never alias (the
  /// solver trajectory, and therefore the schedule, depends on the seed).
  struct PlannedSolve {
    PlannedSolve(std::uint64_t key, PlanningPoint planning,
                 std::vector<PlanningPoint> chain, ScheduleResult result)
        : key(key),
          planning(std::move(planning)),
          chain(std::move(chain)),
          result(std::move(result)) {}

    std::uint64_t key;       // PlanningPoint::Fingerprint()
    PlanningPoint planning;  // exact-value verification on hit
    std::vector<PlanningPoint> chain;  // warm-start ancestry (may be empty)
    ScheduleResult result;
  };
  std::vector<std::unique_ptr<PlannedSolve>> planned;

  /// One scenario calibration, cached at task-set scope so sigma-axis
  /// siblings and warm-start chain prefixes share the sampling work.
  /// Keyed like MethodContext's old single-slot memo: scenario by identity
  /// (registry entries outlive the run), sigma divisor, the
  /// CalibrationSeed-derived stream and the sample count.  unique_ptr for
  /// reference stability across later insertions.
  /// An entry matches a lookup when the pointer identity AND the persist
  /// key agree — or, for entries restored from the persistent solve cache
  /// (core/solve_store.h), when the pointer is null and the non-empty
  /// persist key matches the lookup's scenario_key.  The two-sided rule
  /// keeps the legacy direct-API behaviour (null scenario, empty keys)
  /// intact while preventing a restored calibration of one named scenario
  /// from ever serving a caller that supplied no scenario name.
  struct CalibrationEntry {
    const model::WorkloadScenario* scenario;
    double sigma_divisor;
    std::uint64_t seed;
    std::int64_t samples;
    workload::Calibration calibration;
    /// Registry name of the scenario (ExperimentOptions::scenario_key) —
    /// the identity that survives serialization.  Empty for direct-API
    /// callers; such entries are never persisted.
    std::string persist_key;
  };
  std::vector<std::unique_ptr<CalibrationEntry>> calibrations;
};

/// Solves for one scenario.  `warm_start` must be worst-case feasible; when
/// absent the Vmax-ASAP schedule is used.  Throws InfeasibleError when the
/// task set is not RM-schedulable at Vmax.  `workspace` (optional) supplies
/// reusable solver/objective scratch — bit-identical results either way.
ScheduleResult SolveSchedule(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    Scenario scenario, const SchedulerOptions& options = {},
    const std::optional<sim::StaticSchedule>& warm_start = std::nullopt,
    EvalWorkspace* workspace = nullptr);

/// WCS: the classical WCEC-only minimum-energy static schedule (paper §4's
/// comparison baseline).
ScheduleResult SolveWcs(const fps::FullyPreemptiveSchedule& fps,
                        const model::DvsModel& dvs,
                        const SchedulerOptions& options = {},
                        EvalWorkspace* workspace = nullptr);

/// ACS: the paper's average-case-aware schedule.
ScheduleResult SolveAcs(const fps::FullyPreemptiveSchedule& fps,
                        const model::DvsModel& dvs,
                        const SchedulerOptions& options = {},
                        EvalWorkspace* workspace = nullptr);

/// Scenario-conditioned ACS: the average-scenario pipeline with the NLP
/// objective replaying at `planning` instead of the ACEC point (calibrated
/// mean, per-task quantile, or the K-vector mixture expectation — see
/// core::PlanningPoint and workload/calibrator.h).  An IsAcec() point is
/// bit-identical to SolveSchedule(kAverage, ...) with the same warm start.
///
/// `dual_seed` (optional) is the AlmReport of a previous converged solve of
/// the SAME task set at a nearby planning point — a warm-start chain
/// neighbor.  Its multipliers and final penalty continue the ALM dual state
/// so the chained solve polishes instead of re-running the cold tolerance
/// ramp (opt::AlmOptions::dual_seed).  Null keeps the cold solve untouched.
ScheduleResult SolvePlanned(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    const PlanningPoint& planning, const SchedulerOptions& options = {},
    const std::optional<sim::StaticSchedule>& warm_start = std::nullopt,
    EvalWorkspace* workspace = nullptr,
    const opt::AlmReport* dual_seed = nullptr);

/// Repairs an epsilon-feasible (end-times, budgets) pair into a strictly
/// feasible StaticSchedule: exact per-instance budget simplex projection,
/// then a forward sweep that pushes capacity overflow to later sub-instances
/// of the same instance and lifts end-times onto the worst-case chain.
/// Returns std::nullopt when the overflow cannot be absorbed.
std::optional<sim::StaticSchedule> RepairSchedule(
    const fps::FullyPreemptiveSchedule& fps, const model::DvsModel& dvs,
    const std::vector<double>& end_times, const std::vector<double>& budgets);

}  // namespace dvs::core

#endif  // ACS_CORE_SCHEDULER_H
