#include "core/method_registry.h"

#include <utility>

#include "core/eval_workspace.h"
#include "core/formulation.h"
#include "sim/engine.h"
#include "util/error.h"

namespace dvs::core {
namespace {

/// Average-scenario energy of running every instance at Vmax (the no-DVS
/// ceiling): voltage is fixed, so the estimate is exact, not a replay.
double VmaxAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                         const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  double energy = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    energy += static_cast<double>(set.InstanceCount(i)) *
              dvs.Energy(dvs.vmax(), set.task(i).acec);
  }
  return energy;
}

/// Average-scenario greedy-runtime energy of an arbitrary feasible schedule
/// (the same forward replay the NLP objective optimises).
double GreedyAverageEnergy(MethodContext& context,
                           const sim::StaticSchedule& schedule) {
  EvalWorkspace* ws = context.workspace();
  const EnergyObjective objective(
      context.fps(), context.dvs(), Scenario::kAverage,
      ws != nullptr ? &ws->objective_scratch() : nullptr);
  return objective.Replay(objective.PackSchedule(schedule)).total_energy;
}

class AcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& acs = context.Acs();
    MethodPlan plan{acs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    acs.predicted_energy, acs.used_fallback};
    return plan;
  }
};

class WcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class WcsStaticMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    sim::StaticOnlyPolicy(context.fps(), wcs.schedule,
                                          context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class GreedyReclaimMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const sim::StaticSchedule& asap = context.VmaxAsap();
    MethodPlan plan{asap, sim::GreedyReclaimPolicy(context.dvs()),
                    GreedyAverageEnergy(context, asap), false};
    return plan;
  }
};

class StaticVmaxMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    MethodPlan plan{context.VmaxAsap(), sim::VmaxPolicy(context.dvs()),
                    VmaxAverageEnergy(context.fps(), context.dvs()), false};
    return plan;
  }
};

}  // namespace

const ScheduleResult& MethodContext::Wcs() {
  if (!cache_->wcs.has_value()) {
    cache_->wcs = SolveWcs(*fps_, *dvs_, *scheduler_, workspace_);
  }
  return *cache_->wcs;
}

const ScheduleResult& MethodContext::Acs() {
  if (!cache_->acs.has_value()) {
    cache_->acs = scheduler_->warm_start_acs_with_wcs
                      ? SolveSchedule(*fps_, *dvs_, Scenario::kAverage,
                                      *scheduler_, Wcs().schedule, workspace_)
                      : SolveAcs(*fps_, *dvs_, *scheduler_, workspace_);
  }
  return *cache_->acs;
}

const sim::StaticSchedule& MethodContext::VmaxAsap() {
  if (!cache_->vmax_asap.has_value()) {
    cache_->vmax_asap = sim::BuildVmaxAsapSchedule(*fps_, *dvs_);
  }
  return *cache_->vmax_asap;
}

const MethodRegistry& MethodRegistry::Builtin() {
  static const MethodRegistry registry = [] {
    MethodRegistry built;
    RegisterBuiltins(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltins(MethodRegistry& registry) {
  registry.Register("acs", "ACS full-NLP schedule + greedy online reclamation",
                    std::make_unique<AcsMethod>());
  registry.Register("wcs", "WCS schedule + greedy online reclamation",
                    std::make_unique<WcsMethod>());
  registry.Register("wcs-static",
                    "WCS schedule, offline voltages only (no reclamation)",
                    std::make_unique<WcsStaticMethod>());
  registry.Register("greedy-reclaim",
                    "Vmax-ASAP schedule + greedy reclamation (online only)",
                    std::make_unique<GreedyReclaimMethod>());
  registry.Register("static-vmax", "Vmax throughout (the no-DVS ceiling)",
                    std::make_unique<StaticVmaxMethod>());
}

MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options) {
  const MethodPlan plan = method.Plan(context);
  // A fresh sampler per evaluation (MakeRunSampler): stateful scenarios
  // (Markov phases, AR(1) memory, trace cursors) restart per run, so every
  // method faces the identical realisation for one (options.seed, scenario)
  // pair.
  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, context.fps().task_set());
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;

  const auto fill = [&](const sim::SimResult& sim) {
    MethodOutcome outcome;
    outcome.predicted_energy = plan.predicted_energy;
    outcome.measured_energy = sim.EnergyPerHyperPeriod(options.hyper_periods);
    outcome.deadline_misses = sim.deadline_misses;
    outcome.voltage_switches = sim.voltage_switches;
    outcome.used_fallback = plan.used_fallback;
    return outcome;
  };

  EvalWorkspace* ws = context.workspace();
  if (ws != nullptr) {
    // Steady-state path: simulate into the workspace's reused result.
    return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                              plan.policy, *sampler, rng, sim_options,
                              ws->engine()));
  }
  return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                            plan.policy, *sampler, rng, sim_options));
}

}  // namespace dvs::core
