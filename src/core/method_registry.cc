#include "core/method_registry.h"

#include <utility>

#include "core/formulation.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/strings.h"

namespace dvs::core {
namespace {

/// Average-scenario energy of running every instance at Vmax (the no-DVS
/// ceiling): voltage is fixed, so the estimate is exact, not a replay.
double VmaxAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                         const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  double energy = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    energy += static_cast<double>(set.InstanceCount(i)) *
              dvs.Energy(dvs.vmax(), set.task(i).acec);
  }
  return energy;
}

/// Average-scenario greedy-runtime energy of an arbitrary feasible schedule
/// (the same forward replay the NLP objective optimises).
double GreedyAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                           const model::DvsModel& dvs,
                           const sim::StaticSchedule& schedule) {
  const EnergyObjective objective(fps, dvs, Scenario::kAverage);
  return objective.Replay(objective.PackSchedule(schedule)).total_energy;
}

class AcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& acs = context.Acs();
    MethodPlan plan{acs.schedule,
                    std::make_unique<sim::GreedyReclaimPolicy>(context.dvs()),
                    acs.predicted_energy, acs.used_fallback};
    return plan;
  }
};

class WcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    std::make_unique<sim::GreedyReclaimPolicy>(context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class WcsStaticMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    std::make_unique<sim::StaticOnlyPolicy>(
                        context.fps(), wcs.schedule, context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class GreedyReclaimMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const sim::StaticSchedule& asap = context.VmaxAsap();
    MethodPlan plan{asap,
                    std::make_unique<sim::GreedyReclaimPolicy>(context.dvs()),
                    GreedyAverageEnergy(context.fps(), context.dvs(), asap),
                    false};
    return plan;
  }
};

class StaticVmaxMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    MethodPlan plan{context.VmaxAsap(),
                    std::make_unique<sim::VmaxPolicy>(context.dvs()),
                    VmaxAverageEnergy(context.fps(), context.dvs()), false};
    return plan;
  }
};

}  // namespace

const ScheduleResult& MethodContext::Wcs() {
  if (!wcs_.has_value()) {
    wcs_ = SolveWcs(*fps_, *dvs_, *scheduler_);
  }
  return *wcs_;
}

const ScheduleResult& MethodContext::Acs() {
  if (!acs_.has_value()) {
    acs_ = scheduler_->warm_start_acs_with_wcs
               ? SolveSchedule(*fps_, *dvs_, Scenario::kAverage, *scheduler_,
                               Wcs().schedule)
               : SolveAcs(*fps_, *dvs_, *scheduler_);
  }
  return *acs_;
}

const sim::StaticSchedule& MethodContext::VmaxAsap() {
  if (!vmax_asap_.has_value()) {
    vmax_asap_ = sim::BuildVmaxAsapSchedule(*fps_, *dvs_);
  }
  return *vmax_asap_;
}

const MethodRegistry& MethodRegistry::Builtin() {
  static const MethodRegistry registry = [] {
    MethodRegistry built;
    RegisterBuiltins(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltins(MethodRegistry& registry) {
  registry.Register("acs", "ACS full-NLP schedule + greedy online reclamation",
                    std::make_unique<AcsMethod>());
  registry.Register("wcs", "WCS schedule + greedy online reclamation",
                    std::make_unique<WcsMethod>());
  registry.Register("wcs-static",
                    "WCS schedule, offline voltages only (no reclamation)",
                    std::make_unique<WcsStaticMethod>());
  registry.Register("greedy-reclaim",
                    "Vmax-ASAP schedule + greedy reclamation (online only)",
                    std::make_unique<GreedyReclaimMethod>());
  registry.Register("static-vmax", "Vmax throughout (the no-DVS ceiling)",
                    std::make_unique<StaticVmaxMethod>());
}

void MethodRegistry::Register(std::string name, std::string description,
                              std::unique_ptr<const ScheduleMethod> method) {
  ACS_REQUIRE(!name.empty(), "method name must be non-empty");
  ACS_REQUIRE(method != nullptr, "method must be non-null");
  ACS_REQUIRE(!Contains(name), "duplicate method name: " + name);
  entries_.push_back(
      Entry{std::move(name), std::move(description), std::move(method)});
}

bool MethodRegistry::Contains(const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return true;
    }
  }
  return false;
}

const MethodRegistry::Entry& MethodRegistry::Find(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return entry;
    }
  }
  throw util::InvalidArgumentError("unknown schedule method \"" + name +
                                   "\"; registered methods: " +
                                   util::Join(Names(), ", "));
}

const ScheduleMethod& MethodRegistry::Get(const std::string& name) const {
  return *Find(name).method;
}

const std::string& MethodRegistry::Description(const std::string& name) const {
  return Find(name).description;
}

std::vector<std::string> MethodRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    names.push_back(entry.name);
  }
  return names;
}

MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options) {
  const MethodPlan plan = method.Plan(context);
  const model::TruncatedNormalWorkload sampler(context.fps().task_set(),
                                               options.sigma_divisor);
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;
  const sim::SimResult sim =
      sim::Simulate(context.fps(), plan.schedule, context.dvs(), *plan.policy,
                    sampler, rng, sim_options);

  MethodOutcome outcome;
  outcome.predicted_energy = plan.predicted_energy;
  outcome.measured_energy = sim.EnergyPerHyperPeriod(options.hyper_periods);
  outcome.deadline_misses = sim.deadline_misses;
  outcome.voltage_switches = sim.voltage_switches;
  outcome.used_fallback = plan.used_fallback;
  return outcome;
}

}  // namespace dvs::core
