#include "core/method_registry.h"

#include <utility>

#include "core/eval_workspace.h"
#include "core/formulation.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/calibrator.h"

namespace dvs::core {
namespace {

/// Average-scenario energy of running every instance at Vmax (the no-DVS
/// ceiling): voltage is fixed, so the estimate is exact, not a replay.
double VmaxAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                         const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  double energy = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    energy += static_cast<double>(set.InstanceCount(i)) *
              dvs.Energy(dvs.vmax(), set.task(i).acec);
  }
  return energy;
}

/// Average-scenario greedy-runtime energy of an arbitrary feasible schedule
/// (the same forward replay the NLP objective optimises).
double GreedyAverageEnergy(MethodContext& context,
                           const sim::StaticSchedule& schedule) {
  EvalWorkspace* ws = context.workspace();
  const EnergyObjective objective(
      context.fps(), context.dvs(), Scenario::kAverage,
      ws != nullptr ? &ws->objective_scratch() : nullptr);
  return objective.Replay(objective.PackSchedule(schedule)).total_energy;
}

class AcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& acs = context.Acs();
    MethodPlan plan{acs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    acs.predicted_energy, acs.used_fallback};
    return plan;
  }
};

class WcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class WcsStaticMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    sim::StaticOnlyPolicy(context.fps(), wcs.schedule,
                                          context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    return plan;
  }
};

class GreedyReclaimMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const sim::StaticSchedule& asap = context.VmaxAsap();
    MethodPlan plan{asap, sim::GreedyReclaimPolicy(context.dvs()),
                    GreedyAverageEnergy(context, asap), false};
    return plan;
  }
};

class StaticVmaxMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    MethodPlan plan{context.VmaxAsap(), sim::VmaxPolicy(context.dvs()),
                    VmaxAverageEnergy(context.fps(), context.dvs()), false};
    return plan;
  }
};

/// Shared skeleton of the scenario-conditioned arms: calibrate the cell's
/// scenario offline (paired CalibrationSeed stream), derive the arm's
/// PlanningPoint from the calibration, solve through the value-keyed
/// planned-solve cache, dispatch greedily online like "acs".
class ScenarioPlannedMethod : public ScheduleMethod {
 public:
  explicit ScenarioPlannedMethod(std::string name) : name_(std::move(name)) {}

  MethodPlan Plan(MethodContext& context) const override {
    const ExperimentOptions* experiment = context.experiment();
    ACS_REQUIRE(experiment != nullptr,
                "method \"" + name_ +
                    "\" needs experiment options on the context — evaluate "
                    "through EvaluateMethod or call AttachExperiment first");

    const workload::Calibration& calibration =
        context.ScenarioCalibration(*experiment);
    const ScheduleResult& planned =
        context.Planned(BuildPoint(calibration, experiment->planning));
    MethodPlan plan{planned.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    planned.predicted_energy, planned.used_fallback};
    return plan;
  }

 protected:
  virtual PlanningPoint BuildPoint(const workload::Calibration& calibration,
                                   const PlanningOptions& options) const = 0;

 private:
  std::string name_;
};

class AcsScenarioMethod final : public ScenarioPlannedMethod {
 public:
  AcsScenarioMethod() : ScenarioPlannedMethod("acs-scenario") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions&) const override {
    PlanningPoint point;
    point.cycles = calibration.mean;
    return point;
  }
};

class AcsQuantileMethod final : public ScenarioPlannedMethod {
 public:
  AcsQuantileMethod() : ScenarioPlannedMethod("acs-quantile") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.cycles = calibration.QuantileVector(options.quantile);
    return point;
  }
};

class AcsMixtureMethod final : public ScenarioPlannedMethod {
 public:
  AcsMixtureMethod() : ScenarioPlannedMethod("acs-mixture") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.mixture = calibration.SampleVectors(options.mixture_samples);
    return point;
  }
};

}  // namespace

const ScheduleResult& MethodContext::Wcs() {
  if (!cache_->wcs.has_value()) {
    cache_->wcs = SolveWcs(*fps_, *dvs_, *scheduler_, workspace_);
  }
  return *cache_->wcs;
}

const ScheduleResult& MethodContext::Acs() {
  if (!cache_->acs.has_value()) {
    cache_->acs = scheduler_->warm_start_acs_with_wcs
                      ? SolveSchedule(*fps_, *dvs_, Scenario::kAverage,
                                      *scheduler_, Wcs().schedule, workspace_)
                      : SolveAcs(*fps_, *dvs_, *scheduler_, workspace_);
  }
  return *cache_->acs;
}

const sim::StaticSchedule& MethodContext::VmaxAsap() {
  if (!cache_->vmax_asap.has_value()) {
    cache_->vmax_asap = sim::BuildVmaxAsapSchedule(*fps_, *dvs_);
  }
  return *cache_->vmax_asap;
}

const workload::Calibration& MethodContext::ScenarioCalibration(
    const ExperimentOptions& options) {
  const std::uint64_t seed = CalibrationSeed(options);
  const bool hit = calibration_.has_value() &&
                   calibration_->scenario == options.scenario &&
                   calibration_->sigma_divisor == options.sigma_divisor &&
                   calibration_->seed == seed &&
                   calibration_->samples ==
                       options.planning.calibration_samples;
  if (!hit) {
    workload::CalibratorOptions copts;
    copts.samples_per_task = options.planning.calibration_samples;
    const workload::ScenarioCalibrator calibrator(
        options.scenario, options.sigma_divisor, copts);
    calibration_.emplace(CalibrationMemo{
        options.scenario, options.sigma_divisor, seed,
        options.planning.calibration_samples,
        calibrator.Calibrate(fps_->task_set(), seed)});
  }
  return calibration_->calibration;
}

const ScheduleResult& MethodContext::Planned(const PlanningPoint& planning) {
  const std::uint64_t key = planning.Fingerprint();
  for (const std::unique_ptr<SolveCache::PlannedSolve>& entry :
       cache_->planned) {
    // Fingerprint is a fast reject; the full value comparison is the hit
    // condition, so colliding hashes re-solve instead of cross-reusing.
    if (entry->key == key && entry->planning == planning) {
      return entry->result;
    }
  }
  std::optional<sim::StaticSchedule> warm;
  if (scheduler_->warm_start_acs_with_wcs) {
    warm = Wcs().schedule;
  }
  cache_->planned.push_back(std::make_unique<SolveCache::PlannedSolve>(
      key, planning,
      SolvePlanned(*fps_, *dvs_, planning, *scheduler_, warm, workspace_)));
  return cache_->planned.back()->result;
}

const MethodRegistry& MethodRegistry::Builtin() {
  static const MethodRegistry registry = [] {
    MethodRegistry built;
    RegisterBuiltins(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltins(MethodRegistry& registry) {
  registry.Register("acs", "ACS full-NLP schedule + greedy online reclamation",
                    std::make_unique<AcsMethod>());
  registry.Register("wcs", "WCS schedule + greedy online reclamation",
                    std::make_unique<WcsMethod>());
  registry.Register("wcs-static",
                    "WCS schedule, offline voltages only (no reclamation)",
                    std::make_unique<WcsStaticMethod>());
  registry.Register("greedy-reclaim",
                    "Vmax-ASAP schedule + greedy reclamation (online only)",
                    std::make_unique<GreedyReclaimMethod>());
  registry.Register("static-vmax", "Vmax throughout (the no-DVS ceiling)",
                    std::make_unique<StaticVmaxMethod>());
  registry.Register("acs-scenario",
                    "ACS planned at the scenario's calibrated per-task mean",
                    std::make_unique<AcsScenarioMethod>());
  registry.Register("acs-quantile",
                    "ACS planned at a per-task quantile of the calibrated "
                    "law (--plan-quantile)",
                    std::make_unique<AcsQuantileMethod>());
  registry.Register("acs-mixture",
                    "ACS whose objective averages K calibrated sample "
                    "vectors",
                    std::make_unique<AcsMixtureMethod>());
}

MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options) {
  // Scenario-conditioned arms read the experiment (scenario, seed,
  // planning knobs) at Plan() time; attaching here makes every evaluation
  // funnel — runner cells, mp per-core fan-out, the CompareAcsWcs shim —
  // planning-capable without call-site changes.
  context.AttachExperiment(options);
  const MethodPlan plan = method.Plan(context);
  // A fresh sampler per evaluation (MakeRunSampler): stateful scenarios
  // (Markov phases, AR(1) memory, trace cursors) restart per run, so every
  // method faces the identical realisation for one (options.seed, scenario)
  // pair.
  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, context.fps().task_set());
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;

  const auto fill = [&](const sim::SimResult& sim) {
    MethodOutcome outcome;
    outcome.predicted_energy = plan.predicted_energy;
    outcome.measured_energy = sim.EnergyPerHyperPeriod(options.hyper_periods);
    outcome.deadline_misses = sim.deadline_misses;
    outcome.voltage_switches = sim.voltage_switches;
    outcome.used_fallback = plan.used_fallback;
    return outcome;
  };

  EvalWorkspace* ws = context.workspace();
  if (ws != nullptr) {
    // Steady-state path: simulate into the workspace's reused result.
    return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                              plan.policy, *sampler, rng, sim_options,
                              ws->engine()));
  }
  return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                            plan.policy, *sampler, rng, sim_options));
}

}  // namespace dvs::core
