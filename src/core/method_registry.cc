#include "core/method_registry.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <variant>

#include "core/eval_workspace.h"
#include "core/formulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/calibrator.h"

namespace dvs::core {
namespace {

/// Average-scenario energy of running every instance at Vmax (the no-DVS
/// ceiling): voltage is fixed, so the estimate is exact, not a replay.
double VmaxAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                         const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  double energy = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    energy += static_cast<double>(set.InstanceCount(i)) *
              dvs.Energy(dvs.vmax(), set.task(i).acec);
  }
  return energy;
}

/// Average-scenario greedy-runtime energy of an arbitrary feasible schedule
/// (the same forward replay the NLP objective optimises).
double GreedyAverageEnergy(MethodContext& context,
                           const sim::StaticSchedule& schedule) {
  EvalWorkspace* ws = context.workspace();
  const EnergyObjective objective(
      context.fps(), context.dvs(), Scenario::kAverage,
      ws != nullptr ? &ws->objective_scratch() : nullptr);
  return objective.Replay(objective.PackSchedule(schedule)).total_energy;
}

class AcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& acs = context.Acs();
    MethodPlan plan{acs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    acs.predicted_energy, acs.used_fallback};
    plan.ChargeSolver(acs.alm);
    return plan;
  }
};

class WcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    plan.ChargeSolver(wcs.alm);
    return plan;
  }
};

class WcsStaticMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    sim::StaticOnlyPolicy(context.fps(), wcs.schedule,
                                          context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    plan.ChargeSolver(wcs.alm);
    return plan;
  }
};

class GreedyReclaimMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const sim::StaticSchedule& asap = context.VmaxAsap();
    MethodPlan plan{asap, sim::GreedyReclaimPolicy(context.dvs()),
                    GreedyAverageEnergy(context, asap), false};
    return plan;
  }
};

class StaticVmaxMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    MethodPlan plan{context.VmaxAsap(), sim::VmaxPolicy(context.dvs()),
                    VmaxAverageEnergy(context.fps(), context.dvs()), false};
    return plan;
  }
};

/// Shared skeleton of the scenario-conditioned arms: calibrate the cell's
/// scenario offline (paired CalibrationSeed stream), derive the arm's
/// PlanningPoint from the calibration, solve through the value-keyed
/// planned-solve cache, dispatch through MakePolicy (greedy reclamation by
/// default; the online arms substitute the expected-case DP policy).
class ScenarioPlannedMethod : public ScheduleMethod {
 public:
  explicit ScenarioPlannedMethod(std::string name) : name_(std::move(name)) {}

  MethodPlan Plan(MethodContext& context) const override {
    const ExperimentOptions* experiment = context.experiment();
    ACS_REQUIRE(experiment != nullptr,
                "method \"" + name_ +
                    "\" needs experiment options on the context — evaluate "
                    "through EvaluateMethod or call AttachExperiment first");

    // Resolve the arm's solve — either the single planned solve or the
    // sigma-axis continuation chain (WarmStartPolicy::kNeighbor): the
    // cell's prefix chain of sigma divisors in axis order, each link seeded
    // from the previous converged schedule (the base link seeds from WCS
    // exactly like the unchained path).  The chain is a pure function of
    // the cell's grid coordinates, so results are thread-count
    // independent; links land in the per-task-set SolveCache, where
    // sibling cells at deeper sigma indices extend the chain instead of
    // re-solving its prefix.  Counters charge every link's report —
    // deterministic whether this cell solved the link or a cache served
    // it.
    const workload::Calibration* calibration = nullptr;
    std::vector<PlanningPoint> ancestry;
    std::vector<const ScheduleResult*> links;
    const ScheduleResult* solved = nullptr;
    if (experiment->warm_start == WarmStartPolicy::kNeighbor &&
        experiment->sigma_chain.size() > 1) {
      ACS_REQUIRE(experiment->sigma_chain.back() == experiment->sigma_divisor,
                  "sigma_chain must end at the cell's own sigma divisor");
      ExperimentOptions step = *experiment;
      ancestry.reserve(experiment->sigma_chain.size());
      links.reserve(experiment->sigma_chain.size());
      for (const double sigma : experiment->sigma_chain) {
        obs::Span link_span("warm-link", "solve");
        if (link_span.enabled()) {
          link_span.Arg("sigma", sigma);
          link_span.Arg("link", static_cast<std::int64_t>(ancestry.size()));
        }
        step.sigma_divisor = sigma;
        calibration = &context.ScenarioCalibration(step);
        PlanningPoint point = BuildPoint(*calibration, step.planning);
        solved = &context.PlannedChained(point, ancestry, solved);
        links.push_back(solved);
        ancestry.push_back(std::move(point));
      }
    } else {
      calibration = &context.ScenarioCalibration(*experiment);
      PlanningPoint point = BuildPoint(*calibration, experiment->planning);
      solved = &context.Planned(point);
      links.push_back(solved);
      ancestry.push_back(std::move(point));
    }

    MethodPlan plan{solved->schedule,
                    MakePolicy(context, solved->schedule, *calibration,
                               *experiment),
                    solved->predicted_energy, solved->used_fallback};
    for (const ScheduleResult* link : links) {
      plan.ChargeSolver(link->alm);
    }
    Decorate(plan, *calibration, std::move(ancestry), solved);
    return plan;
  }

 protected:
  virtual PlanningPoint BuildPoint(const workload::Calibration& calibration,
                                   const PlanningOptions& options) const = 0;

  /// The online half the plan dispatches through; greedy reclamation unless
  /// an arm overrides.
  virtual sim::AnyPolicy MakePolicy(MethodContext& context,
                                    const sim::StaticSchedule& /*schedule*/,
                                    const workload::Calibration& /*calibration*/,
                                    const ExperimentOptions& /*experiment*/)
      const {
    return sim::GreedyReclaimPolicy(context.dvs());
  }

  /// Post-solve hook: the drift arm attaches its MethodPlan::DriftSpec
  /// here.  `ancestry` is the full warm-start chain including the final
  /// solve's own point; `solved` is the final (incumbent) solve.
  virtual void Decorate(MethodPlan& /*plan*/,
                        const workload::Calibration& /*calibration*/,
                        std::vector<PlanningPoint> /*ancestry*/,
                        const ScheduleResult* /*solved*/) const {}

 private:
  std::string name_;
};

class AcsScenarioMethod final : public ScenarioPlannedMethod {
 public:
  AcsScenarioMethod() : ScenarioPlannedMethod("acs-scenario") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions&) const override {
    PlanningPoint point;
    point.cycles = calibration.mean;
    return point;
  }
};

class AcsQuantileMethod final : public ScenarioPlannedMethod {
 public:
  AcsQuantileMethod() : ScenarioPlannedMethod("acs-quantile") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.cycles = calibration.QuantileVector(options.quantile);
    return point;
  }
};

class AcsMixtureMethod final : public ScenarioPlannedMethod {
 public:
  AcsMixtureMethod() : ScenarioPlannedMethod("acs-mixture") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.mixture = calibration.SampleVectors(options.mixture_samples);
    return point;
  }
};

/// Online expected-case arm: the same calibrated-mean planned schedule as
/// acs-scenario, dispatched through the expected-case DP policy instead of
/// greedy reclamation — each dispatch shapes the sub-instance's speed
/// profile by the calibrated probability the work is actually reached.
class AcsOnlineMethod : public ScenarioPlannedMethod {
 public:
  AcsOnlineMethod() : ScenarioPlannedMethod("acs-online") {}

 protected:
  explicit AcsOnlineMethod(std::string name)
      : ScenarioPlannedMethod(std::move(name)) {}

  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions&) const override {
    PlanningPoint point;
    point.cycles = calibration.mean;
    return point;
  }

  sim::AnyPolicy MakePolicy(MethodContext& context,
                            const sim::StaticSchedule& schedule,
                            const workload::Calibration& calibration,
                            const ExperimentOptions& experiment)
      const override {
    return sim::ExpectedCasePolicy(context.fps(), schedule, context.dvs(),
                                   calibration.sorted,
                                   experiment.online.dp_bins);
  }
};

/// acs-online plus mid-run drift adaptation: EvaluateMethod consumes the
/// DriftSpec and replans when the realised per-task EWMA strays from the
/// planned point (see MethodPlan::DriftSpec).
class AcsOnlineDriftMethod final : public AcsOnlineMethod {
 public:
  AcsOnlineDriftMethod() : AcsOnlineMethod("acs-online-drift") {}

 protected:
  void Decorate(MethodPlan& plan, const workload::Calibration& calibration,
                std::vector<PlanningPoint> ancestry,
                const ScheduleResult* solved) const override {
    MethodPlan::DriftSpec spec;
    spec.calibration = &calibration;
    spec.base = solved;
    spec.ancestry = std::move(ancestry);
    plan.drift = std::move(spec);
  }
};

}  // namespace

const ScheduleResult& MethodContext::Wcs() {
  obs::Span span("wcs", "solve");
  if (cache_->wcs.has_value()) {
    if (span.enabled()) {
      span.Arg("cache", "hit");
    }
    obs::Count(obs::metric::kSolveCacheHits);
    return *cache_->wcs;
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
  }
  cache_->wcs = SolveWcs(*fps_, *dvs_, *scheduler_, workspace_);
  return *cache_->wcs;
}

const ScheduleResult& MethodContext::Acs() {
  obs::Span span("acs", "solve");
  if (cache_->acs.has_value()) {
    if (span.enabled()) {
      span.Arg("cache", "hit");
    }
    obs::Count(obs::metric::kSolveCacheHits);
    return *cache_->acs;
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
  }
  cache_->acs = scheduler_->warm_start_acs_with_wcs
                    ? SolveSchedule(*fps_, *dvs_, Scenario::kAverage,
                                    *scheduler_, Wcs().schedule, workspace_)
                    : SolveAcs(*fps_, *dvs_, *scheduler_, workspace_);
  return *cache_->acs;
}

const sim::StaticSchedule& MethodContext::VmaxAsap() {
  if (!cache_->vmax_asap.has_value()) {
    cache_->vmax_asap = sim::BuildVmaxAsapSchedule(*fps_, *dvs_);
  }
  return *cache_->vmax_asap;
}

const workload::Calibration& MethodContext::ScenarioCalibration(
    const ExperimentOptions& options) {
  obs::Span span("calibrate", "solve");
  const std::uint64_t seed = CalibrationSeed(options);
  const std::int64_t samples = options.planning.calibration_samples;
  for (const std::unique_ptr<SolveCache::CalibrationEntry>& entry :
       cache_->calibrations) {
    // Scenario identity: pointer + persist key for live entries, persist
    // key alone for entries restored from the persistent solve cache
    // (null pointer, non-empty key) — see SolveCache::CalibrationEntry.
    const bool same_scenario =
        (entry->scenario == options.scenario &&
         entry->persist_key == options.scenario_key) ||
        (entry->scenario == nullptr && !entry->persist_key.empty() &&
         entry->persist_key == options.scenario_key);
    if (same_scenario && entry->sigma_divisor == options.sigma_divisor &&
        entry->seed == seed && entry->samples == samples) {
      if (span.enabled()) {
        span.Arg("cache", "hit");
      }
      obs::Count(obs::metric::kCalibrationHits);
      return entry->calibration;
    }
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
    span.Arg("sigma", options.sigma_divisor);
  }
  obs::Count(obs::metric::kCalibrations);
  workload::CalibratorOptions copts;
  copts.samples_per_task = samples;
  const workload::ScenarioCalibrator calibrator(
      options.scenario, options.sigma_divisor, copts);
  cache_->calibrations.push_back(
      std::make_unique<SolveCache::CalibrationEntry>(
          SolveCache::CalibrationEntry{
              options.scenario, options.sigma_divisor, seed, samples,
              calibrator.Calibrate(fps_->task_set(), seed),
              options.scenario_key}));
  return cache_->calibrations.back()->calibration;
}

const ScheduleResult& MethodContext::Planned(const PlanningPoint& planning) {
  return PlannedChained(planning, {}, nullptr);
}

const ScheduleResult& MethodContext::PlannedChained(
    const PlanningPoint& planning, const std::vector<PlanningPoint>& chain,
    const ScheduleResult* warm) {
  obs::Span span("planned", "solve");
  const std::uint64_t key = planning.Fingerprint();
  for (const std::unique_ptr<SolveCache::PlannedSolve>& entry :
       cache_->planned) {
    // Fingerprint is a fast reject; the full value comparison (point AND
    // warm-start ancestry) is the hit condition, so colliding hashes — and
    // chained-vs-unchained solves of one point — re-solve instead of
    // cross-reusing.
    if (entry->key == key && entry->planning == planning &&
        entry->chain == chain) {
      if (span.enabled()) {
        span.Arg("cache", "hit");
      }
      obs::Count(obs::metric::kSolveCacheHits);
      return entry->result;
    }
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
    span.Arg("chain_depth", static_cast<std::int64_t>(chain.size()));
  }
  std::optional<sim::StaticSchedule> warm_start;
  const opt::AlmReport* dual_seed = nullptr;
  if (warm != nullptr) {
    // Chain continuation: the neighbor's converged schedule seeds the
    // primal and its multipliers/penalty seed the ALM dual, so the link
    // polishes instead of re-running the cold tolerance ramp.
    warm_start = warm->schedule;
    dual_seed = &warm->alm;
  } else if (scheduler_->warm_start_acs_with_wcs) {
    warm_start = Wcs().schedule;
  }
  cache_->planned.push_back(std::make_unique<SolveCache::PlannedSolve>(
      key, planning, chain,
      SolvePlanned(*fps_, *dvs_, planning, *scheduler_, warm_start,
                   workspace_, dual_seed)));
  return cache_->planned.back()->result;
}

const MethodRegistry& MethodRegistry::Builtin() {
  static const MethodRegistry registry = [] {
    MethodRegistry built;
    RegisterBuiltins(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltins(MethodRegistry& registry) {
  registry.Register("acs", "ACS full-NLP schedule + greedy online reclamation",
                    std::make_unique<AcsMethod>());
  registry.Register("wcs", "WCS schedule + greedy online reclamation",
                    std::make_unique<WcsMethod>());
  registry.Register("wcs-static",
                    "WCS schedule, offline voltages only (no reclamation)",
                    std::make_unique<WcsStaticMethod>());
  registry.Register("greedy-reclaim",
                    "Vmax-ASAP schedule + greedy reclamation (online only)",
                    std::make_unique<GreedyReclaimMethod>());
  registry.Register("static-vmax", "Vmax throughout (the no-DVS ceiling)",
                    std::make_unique<StaticVmaxMethod>());
  registry.Register("acs-scenario",
                    "ACS planned at the scenario's calibrated per-task mean",
                    std::make_unique<AcsScenarioMethod>());
  registry.Register("acs-quantile",
                    "ACS planned at a per-task quantile of the calibrated "
                    "law (--plan-quantile)",
                    std::make_unique<AcsQuantileMethod>());
  registry.Register("acs-mixture",
                    "ACS whose objective averages K calibrated sample "
                    "vectors",
                    std::make_unique<AcsMixtureMethod>());
  registry.Register("acs-online",
                    "calibrated-mean plan + expected-case online DP "
                    "dispatch (--online-dp-bins)",
                    std::make_unique<AcsOnlineMethod>());
  registry.Register("acs-online-drift",
                    "acs-online + EWMA drift detector with warm-started "
                    "mid-run replans (--drift-ewma / --drift-threshold)",
                    std::make_unique<AcsOnlineDriftMethod>());
}

namespace {

/// DP-dispatch count of a plan's policy (0 for non-expected-case policies).
std::int64_t PolicyDpDispatches(const sim::AnyPolicy& policy) {
  if (!policy.IsBuiltin()) {
    return 0;
  }
  if (const auto* expected =
          std::get_if<sim::ExpectedCasePolicy>(&policy.builtin())) {
    return expected->dp_dispatches();
  }
  return 0;
}

/// The drift-adaptive evaluation loop (MethodPlan::DriftSpec): simulate one
/// hyper-period at a time against the *same* sampler and rng stream (so
/// stateful scenarios keep their phase across chunks and energy sums
/// exactly), fold each batch's realised per-task mean cycles into an EWMA,
/// and replan at the EWMA point through PlannedChained — seeded from the
/// incumbent solve, cached by exact point + ancestry — whenever the drift
/// exceeds the configured threshold.  Every input of a replan (the EWMA) is
/// a pure function of (options.seed, scenario), so replan points, counters
/// and energies are bit-identical at any thread count.
MethodOutcome EvaluateWithDrift(MethodContext& context,
                                const ExperimentOptions& options,
                                MethodPlan& plan) {
  const model::TaskSet& set = context.fps().task_set();
  const MethodPlan::DriftSpec& spec = *plan.drift;
  const workload::Calibration& calibration = *spec.calibration;
  const OnlineOptions& online = options.online;

  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, set);
  stats::Rng rng(options.seed);
  sim::SimOptions chunk_options;
  chunk_options.hyper_periods = 1;
  chunk_options.transition = options.transition;
  if (options.dpm.enabled) {
    chunk_options.dpm = true;
    chunk_options.idle_power = options.dpm.idle;
    chunk_options.sleep = options.dpm.sleep;
  }

  EvalWorkspace* ws = context.workspace();
  sim::EngineWorkspace own_engine;
  sim::EngineWorkspace& engine = ws != nullptr ? ws->engine() : own_engine;

  // Current plan state; replans swap these.  The replanned solves live in
  // the context's SolveCache, so the references outlive the loop.
  const sim::StaticSchedule* schedule = &plan.schedule;
  std::vector<PlanningPoint> ancestry = spec.ancestry;
  const ScheduleResult* incumbent = spec.base;
  std::vector<double> planned(set.size(), 0.0);
  std::vector<double> ewma(set.size(), 0.0);
  for (std::size_t i = 0; i < set.size(); ++i) {
    planned[i] = PlanningPoint::ResolveFor(ancestry.back().cycles, set, i);
    ewma[i] = planned[i];
  }

  double total_energy = 0.0;
  std::int64_t misses = 0;
  std::int64_t switches = 0;
  std::int64_t dp_dispatches = 0;
  std::int64_t replans = 0;
  double idle_energy = 0.0;
  double sleep_energy = 0.0;
  double sleep_time = 0.0;
  std::int64_t sleeps = 0;
  std::vector<double> scale(set.size(), 1.0);

  for (std::int64_t hp = 0; hp < options.hyper_periods; ++hp) {
    const sim::SimResult& sim =
        sim::Simulate(context.fps(), *schedule, context.dvs(), plan.policy,
                      *sampler, rng, chunk_options, engine);
    total_energy += sim.total_energy;
    misses += sim.deadline_misses;
    switches += sim.voltage_switches;
    idle_energy += sim.idle_energy;
    sleep_energy += sim.sleep_energy;
    sleep_time += sim.sleep_time;
    sleeps += sim.sleeps;

    // EWMA over this hyper-period's realised per-task mean cycles.
    double drift = 0.0;
    for (std::size_t i = 0; i < set.size(); ++i) {
      if (sim.sampled_counts[i] > 0) {
        const double batch = sim.sampled_cycles[i] /
                             static_cast<double>(sim.sampled_counts[i]);
        ewma[i] = (1.0 - online.drift_ewma) * ewma[i] +
                  online.drift_ewma * batch;
      }
      const model::Task& task = set.task(i);
      const double span = task.wcec - task.bcec;
      if (span > 0.0) {
        drift = std::max(drift, std::fabs(ewma[i] - planned[i]) / span);
      }
    }
    if (drift <= online.drift_threshold || hp + 1 >= options.hyper_periods) {
      continue;
    }

    // Replan at the drifted point, warm-started from the incumbent.
    ++replans;
    obs::Span replan_span("drift-replan", "solve");
    if (replan_span.enabled()) {
      replan_span.Arg("hyper_period", hp);
      replan_span.Arg("drift", drift);
    }
    PlanningPoint point;
    point.cycles = ewma;
    const ScheduleResult& replanned =
        context.PlannedChained(point, ancestry, incumbent);
    plan.ChargeSolver(replanned.alm);
    plan.used_fallback = plan.used_fallback || replanned.used_fallback;
    ancestry.push_back(std::move(point));
    incumbent = &replanned;
    schedule = &replanned.schedule;
    for (std::size_t i = 0; i < set.size(); ++i) {
      planned[i] = PlanningPoint::ResolveFor(ancestry.back().cycles, set, i);
      scale[i] = calibration.mean[i] > 0.0 ? ewma[i] / calibration.mean[i]
                                           : 1.0;
    }
    // Rebuild the DP tables against the replanned schedule with the law
    // stretched to the EWMA (sub-instance budgets changed, so the old
    // tables no longer describe the plan).
    dp_dispatches += PolicyDpDispatches(plan.policy);
    plan.policy = sim::ExpectedCasePolicy(context.fps(), replanned.schedule,
                                          context.dvs(), calibration.sorted,
                                          online.dp_bins, &scale);
  }
  dp_dispatches += PolicyDpDispatches(plan.policy);
  // Result-charged telemetry: replans and DP dispatches are pure functions
  // of the cell, so the aggregated counters stay thread-count invariant.
  obs::Count(obs::metric::kDriftReplans, replans);
  obs::Count(obs::metric::kOnlineDpDispatches, dp_dispatches);

  MethodOutcome outcome;
  outcome.predicted_energy = plan.predicted_energy;
  outcome.measured_energy =
      options.hyper_periods > 0
          ? total_energy / static_cast<double>(options.hyper_periods)
          : 0.0;
  outcome.deadline_misses = misses;
  outcome.voltage_switches = switches;
  outcome.used_fallback = plan.used_fallback;
  outcome.solver_outer_iterations = plan.solver_outer_iterations;
  outcome.solver_inner_iterations = plan.solver_inner_iterations;
  outcome.solver_evaluations = plan.solver_evaluations;
  const double norm = options.hyper_periods > 0
                          ? 1.0 / static_cast<double>(options.hyper_periods)
                          : 0.0;
  outcome.idle_energy = idle_energy * norm;
  outcome.sleep_energy = sleep_energy * norm;
  outcome.sleep_time = sleep_time;
  outcome.sleeps = sleeps;
  return outcome;
}

}  // namespace

MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options) {
  // Scenario-conditioned arms read the experiment (scenario, seed,
  // planning knobs) at Plan() time; attaching here makes every evaluation
  // funnel — runner cells, mp per-core fan-out, the CompareAcsWcs shim —
  // planning-capable without call-site changes.
  context.AttachExperiment(options);
  MethodPlan plan = method.Plan(context);
  if (plan.drift.has_value()) {
    return EvaluateWithDrift(context, options, plan);
  }
  // A fresh sampler per evaluation (MakeRunSampler): stateful scenarios
  // (Markov phases, AR(1) memory, trace cursors) restart per run, so every
  // method faces the identical realisation for one (options.seed, scenario)
  // pair.
  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, context.fps().task_set());
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;
  if (options.dpm.enabled) {
    sim_options.dpm = true;
    sim_options.idle_power = options.dpm.idle;
    sim_options.sleep = options.dpm.sleep;
  }

  const auto fill = [&](const sim::SimResult& sim) {
    // Result-charged: the DP-dispatch count is part of the deterministic
    // simulation outcome, so the aggregate is thread-count invariant.
    if (const std::int64_t dp = PolicyDpDispatches(plan.policy)) {
      obs::Count(obs::metric::kOnlineDpDispatches, dp);
    }
    MethodOutcome outcome;
    outcome.predicted_energy = plan.predicted_energy;
    outcome.measured_energy = sim.EnergyPerHyperPeriod(options.hyper_periods);
    outcome.deadline_misses = sim.deadline_misses;
    outcome.voltage_switches = sim.voltage_switches;
    outcome.used_fallback = plan.used_fallback;
    outcome.solver_outer_iterations = plan.solver_outer_iterations;
    outcome.solver_inner_iterations = plan.solver_inner_iterations;
    outcome.solver_evaluations = plan.solver_evaluations;
    const double norm =
        options.hyper_periods > 0
            ? 1.0 / static_cast<double>(options.hyper_periods)
            : 0.0;
    outcome.idle_energy = sim.idle_energy * norm;
    outcome.sleep_energy = sim.sleep_energy * norm;
    outcome.sleep_time = sim.sleep_time;
    outcome.sleeps = sim.sleeps;
    return outcome;
  };

  obs::Span span("simulate", "sim");
  if (span.enabled()) {
    span.Arg("hyper_periods", options.hyper_periods);
  }
  EvalWorkspace* ws = context.workspace();
  if (ws != nullptr) {
    // Steady-state path: simulate into the workspace's reused result.
    return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                              plan.policy, *sampler, rng, sim_options,
                              ws->engine()));
  }
  return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                            plan.policy, *sampler, rng, sim_options));
}

}  // namespace dvs::core
