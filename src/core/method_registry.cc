#include "core/method_registry.h"

#include <utility>

#include "core/eval_workspace.h"
#include "core/formulation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/calibrator.h"

namespace dvs::core {
namespace {

/// Average-scenario energy of running every instance at Vmax (the no-DVS
/// ceiling): voltage is fixed, so the estimate is exact, not a replay.
double VmaxAverageEnergy(const fps::FullyPreemptiveSchedule& fps,
                         const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  double energy = 0.0;
  for (std::size_t i = 0; i < set.size(); ++i) {
    energy += static_cast<double>(set.InstanceCount(i)) *
              dvs.Energy(dvs.vmax(), set.task(i).acec);
  }
  return energy;
}

/// Average-scenario greedy-runtime energy of an arbitrary feasible schedule
/// (the same forward replay the NLP objective optimises).
double GreedyAverageEnergy(MethodContext& context,
                           const sim::StaticSchedule& schedule) {
  EvalWorkspace* ws = context.workspace();
  const EnergyObjective objective(
      context.fps(), context.dvs(), Scenario::kAverage,
      ws != nullptr ? &ws->objective_scratch() : nullptr);
  return objective.Replay(objective.PackSchedule(schedule)).total_energy;
}

class AcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& acs = context.Acs();
    MethodPlan plan{acs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    acs.predicted_energy, acs.used_fallback};
    plan.ChargeSolver(acs.alm);
    return plan;
  }
};

class WcsMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    plan.ChargeSolver(wcs.alm);
    return plan;
  }
};

class WcsStaticMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const ScheduleResult& wcs = context.Wcs();
    MethodPlan plan{wcs.schedule,
                    sim::StaticOnlyPolicy(context.fps(), wcs.schedule,
                                          context.dvs()),
                    wcs.predicted_energy, wcs.used_fallback};
    plan.ChargeSolver(wcs.alm);
    return plan;
  }
};

class GreedyReclaimMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    const sim::StaticSchedule& asap = context.VmaxAsap();
    MethodPlan plan{asap, sim::GreedyReclaimPolicy(context.dvs()),
                    GreedyAverageEnergy(context, asap), false};
    return plan;
  }
};

class StaticVmaxMethod final : public ScheduleMethod {
 public:
  MethodPlan Plan(MethodContext& context) const override {
    MethodPlan plan{context.VmaxAsap(), sim::VmaxPolicy(context.dvs()),
                    VmaxAverageEnergy(context.fps(), context.dvs()), false};
    return plan;
  }
};

/// Shared skeleton of the scenario-conditioned arms: calibrate the cell's
/// scenario offline (paired CalibrationSeed stream), derive the arm's
/// PlanningPoint from the calibration, solve through the value-keyed
/// planned-solve cache, dispatch greedily online like "acs".
class ScenarioPlannedMethod : public ScheduleMethod {
 public:
  explicit ScenarioPlannedMethod(std::string name) : name_(std::move(name)) {}

  MethodPlan Plan(MethodContext& context) const override {
    const ExperimentOptions* experiment = context.experiment();
    ACS_REQUIRE(experiment != nullptr,
                "method \"" + name_ +
                    "\" needs experiment options on the context — evaluate "
                    "through EvaluateMethod or call AttachExperiment first");

    if (experiment->warm_start == WarmStartPolicy::kNeighbor &&
        experiment->sigma_chain.size() > 1) {
      return PlanChained(context, *experiment);
    }
    const workload::Calibration& calibration =
        context.ScenarioCalibration(*experiment);
    const ScheduleResult& planned =
        context.Planned(BuildPoint(calibration, experiment->planning));
    MethodPlan plan{planned.schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    planned.predicted_energy, planned.used_fallback};
    plan.ChargeSolver(planned.alm);
    return plan;
  }

 protected:
  virtual PlanningPoint BuildPoint(const workload::Calibration& calibration,
                                   const PlanningOptions& options) const = 0;

 private:
  /// Sigma-axis continuation (WarmStartPolicy::kNeighbor): solve the cell's
  /// prefix chain of sigma divisors in axis order, each link seeded from
  /// the previous converged schedule (the base link seeds from WCS exactly
  /// like the unchained path).  The chain is a pure function of the cell's
  /// grid coordinates, so results are thread-count independent; links land
  /// in the per-task-set SolveCache, where sibling cells at deeper sigma
  /// indices extend the chain instead of re-solving its prefix.  Counters
  /// charge every link's report — deterministic whether this cell solved
  /// the link or a cache served it.
  MethodPlan PlanChained(MethodContext& context,
                         const ExperimentOptions& experiment) const {
    ACS_REQUIRE(experiment.sigma_chain.back() == experiment.sigma_divisor,
                "sigma_chain must end at the cell's own sigma divisor");
    ExperimentOptions step = experiment;
    std::vector<PlanningPoint> ancestry;
    ancestry.reserve(experiment.sigma_chain.size());
    std::vector<const ScheduleResult*> links;
    links.reserve(experiment.sigma_chain.size());
    const ScheduleResult* prev = nullptr;
    for (const double sigma : experiment.sigma_chain) {
      obs::Span link_span("warm-link", "solve");
      if (link_span.enabled()) {
        link_span.Arg("sigma", sigma);
        link_span.Arg("link", static_cast<std::int64_t>(ancestry.size()));
      }
      step.sigma_divisor = sigma;
      const workload::Calibration& calibration =
          context.ScenarioCalibration(step);
      PlanningPoint point = BuildPoint(calibration, step.planning);
      const ScheduleResult& solved =
          context.PlannedChained(point, ancestry, prev);
      links.push_back(&solved);
      prev = &solved;
      ancestry.push_back(std::move(point));
    }
    MethodPlan plan{prev->schedule, sim::GreedyReclaimPolicy(context.dvs()),
                    prev->predicted_energy, prev->used_fallback};
    for (const ScheduleResult* link : links) {
      plan.ChargeSolver(link->alm);
    }
    return plan;
  }

  std::string name_;
};

class AcsScenarioMethod final : public ScenarioPlannedMethod {
 public:
  AcsScenarioMethod() : ScenarioPlannedMethod("acs-scenario") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions&) const override {
    PlanningPoint point;
    point.cycles = calibration.mean;
    return point;
  }
};

class AcsQuantileMethod final : public ScenarioPlannedMethod {
 public:
  AcsQuantileMethod() : ScenarioPlannedMethod("acs-quantile") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.cycles = calibration.QuantileVector(options.quantile);
    return point;
  }
};

class AcsMixtureMethod final : public ScenarioPlannedMethod {
 public:
  AcsMixtureMethod() : ScenarioPlannedMethod("acs-mixture") {}

 protected:
  PlanningPoint BuildPoint(const workload::Calibration& calibration,
                           const PlanningOptions& options) const override {
    PlanningPoint point;
    point.mixture = calibration.SampleVectors(options.mixture_samples);
    return point;
  }
};

}  // namespace

const ScheduleResult& MethodContext::Wcs() {
  obs::Span span("wcs", "solve");
  if (cache_->wcs.has_value()) {
    if (span.enabled()) {
      span.Arg("cache", "hit");
    }
    obs::Count(obs::metric::kSolveCacheHits);
    return *cache_->wcs;
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
  }
  cache_->wcs = SolveWcs(*fps_, *dvs_, *scheduler_, workspace_);
  return *cache_->wcs;
}

const ScheduleResult& MethodContext::Acs() {
  obs::Span span("acs", "solve");
  if (cache_->acs.has_value()) {
    if (span.enabled()) {
      span.Arg("cache", "hit");
    }
    obs::Count(obs::metric::kSolveCacheHits);
    return *cache_->acs;
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
  }
  cache_->acs = scheduler_->warm_start_acs_with_wcs
                    ? SolveSchedule(*fps_, *dvs_, Scenario::kAverage,
                                    *scheduler_, Wcs().schedule, workspace_)
                    : SolveAcs(*fps_, *dvs_, *scheduler_, workspace_);
  return *cache_->acs;
}

const sim::StaticSchedule& MethodContext::VmaxAsap() {
  if (!cache_->vmax_asap.has_value()) {
    cache_->vmax_asap = sim::BuildVmaxAsapSchedule(*fps_, *dvs_);
  }
  return *cache_->vmax_asap;
}

const workload::Calibration& MethodContext::ScenarioCalibration(
    const ExperimentOptions& options) {
  obs::Span span("calibrate", "solve");
  const std::uint64_t seed = CalibrationSeed(options);
  const std::int64_t samples = options.planning.calibration_samples;
  for (const std::unique_ptr<SolveCache::CalibrationEntry>& entry :
       cache_->calibrations) {
    // Scenario identity: pointer + persist key for live entries, persist
    // key alone for entries restored from the persistent solve cache
    // (null pointer, non-empty key) — see SolveCache::CalibrationEntry.
    const bool same_scenario =
        (entry->scenario == options.scenario &&
         entry->persist_key == options.scenario_key) ||
        (entry->scenario == nullptr && !entry->persist_key.empty() &&
         entry->persist_key == options.scenario_key);
    if (same_scenario && entry->sigma_divisor == options.sigma_divisor &&
        entry->seed == seed && entry->samples == samples) {
      if (span.enabled()) {
        span.Arg("cache", "hit");
      }
      obs::Count(obs::metric::kCalibrationHits);
      return entry->calibration;
    }
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
    span.Arg("sigma", options.sigma_divisor);
  }
  obs::Count(obs::metric::kCalibrations);
  workload::CalibratorOptions copts;
  copts.samples_per_task = samples;
  const workload::ScenarioCalibrator calibrator(
      options.scenario, options.sigma_divisor, copts);
  cache_->calibrations.push_back(
      std::make_unique<SolveCache::CalibrationEntry>(
          SolveCache::CalibrationEntry{
              options.scenario, options.sigma_divisor, seed, samples,
              calibrator.Calibrate(fps_->task_set(), seed),
              options.scenario_key}));
  return cache_->calibrations.back()->calibration;
}

const ScheduleResult& MethodContext::Planned(const PlanningPoint& planning) {
  return PlannedChained(planning, {}, nullptr);
}

const ScheduleResult& MethodContext::PlannedChained(
    const PlanningPoint& planning, const std::vector<PlanningPoint>& chain,
    const ScheduleResult* warm) {
  obs::Span span("planned", "solve");
  const std::uint64_t key = planning.Fingerprint();
  for (const std::unique_ptr<SolveCache::PlannedSolve>& entry :
       cache_->planned) {
    // Fingerprint is a fast reject; the full value comparison (point AND
    // warm-start ancestry) is the hit condition, so colliding hashes — and
    // chained-vs-unchained solves of one point — re-solve instead of
    // cross-reusing.
    if (entry->key == key && entry->planning == planning &&
        entry->chain == chain) {
      if (span.enabled()) {
        span.Arg("cache", "hit");
      }
      obs::Count(obs::metric::kSolveCacheHits);
      return entry->result;
    }
  }
  if (span.enabled()) {
    span.Arg("cache", "miss");
    span.Arg("chain_depth", static_cast<std::int64_t>(chain.size()));
  }
  std::optional<sim::StaticSchedule> warm_start;
  const opt::AlmReport* dual_seed = nullptr;
  if (warm != nullptr) {
    // Chain continuation: the neighbor's converged schedule seeds the
    // primal and its multipliers/penalty seed the ALM dual, so the link
    // polishes instead of re-running the cold tolerance ramp.
    warm_start = warm->schedule;
    dual_seed = &warm->alm;
  } else if (scheduler_->warm_start_acs_with_wcs) {
    warm_start = Wcs().schedule;
  }
  cache_->planned.push_back(std::make_unique<SolveCache::PlannedSolve>(
      key, planning, chain,
      SolvePlanned(*fps_, *dvs_, planning, *scheduler_, warm_start,
                   workspace_, dual_seed)));
  return cache_->planned.back()->result;
}

const MethodRegistry& MethodRegistry::Builtin() {
  static const MethodRegistry registry = [] {
    MethodRegistry built;
    RegisterBuiltins(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltins(MethodRegistry& registry) {
  registry.Register("acs", "ACS full-NLP schedule + greedy online reclamation",
                    std::make_unique<AcsMethod>());
  registry.Register("wcs", "WCS schedule + greedy online reclamation",
                    std::make_unique<WcsMethod>());
  registry.Register("wcs-static",
                    "WCS schedule, offline voltages only (no reclamation)",
                    std::make_unique<WcsStaticMethod>());
  registry.Register("greedy-reclaim",
                    "Vmax-ASAP schedule + greedy reclamation (online only)",
                    std::make_unique<GreedyReclaimMethod>());
  registry.Register("static-vmax", "Vmax throughout (the no-DVS ceiling)",
                    std::make_unique<StaticVmaxMethod>());
  registry.Register("acs-scenario",
                    "ACS planned at the scenario's calibrated per-task mean",
                    std::make_unique<AcsScenarioMethod>());
  registry.Register("acs-quantile",
                    "ACS planned at a per-task quantile of the calibrated "
                    "law (--plan-quantile)",
                    std::make_unique<AcsQuantileMethod>());
  registry.Register("acs-mixture",
                    "ACS whose objective averages K calibrated sample "
                    "vectors",
                    std::make_unique<AcsMixtureMethod>());
}

MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options) {
  // Scenario-conditioned arms read the experiment (scenario, seed,
  // planning knobs) at Plan() time; attaching here makes every evaluation
  // funnel — runner cells, mp per-core fan-out, the CompareAcsWcs shim —
  // planning-capable without call-site changes.
  context.AttachExperiment(options);
  const MethodPlan plan = method.Plan(context);
  // A fresh sampler per evaluation (MakeRunSampler): stateful scenarios
  // (Markov phases, AR(1) memory, trace cursors) restart per run, so every
  // method faces the identical realisation for one (options.seed, scenario)
  // pair.
  const std::unique_ptr<model::WorkloadSampler> sampler =
      MakeRunSampler(options, context.fps().task_set());
  stats::Rng rng(options.seed);
  sim::SimOptions sim_options;
  sim_options.hyper_periods = options.hyper_periods;
  sim_options.transition = options.transition;

  const auto fill = [&](const sim::SimResult& sim) {
    MethodOutcome outcome;
    outcome.predicted_energy = plan.predicted_energy;
    outcome.measured_energy = sim.EnergyPerHyperPeriod(options.hyper_periods);
    outcome.deadline_misses = sim.deadline_misses;
    outcome.voltage_switches = sim.voltage_switches;
    outcome.used_fallback = plan.used_fallback;
    outcome.solver_outer_iterations = plan.solver_outer_iterations;
    outcome.solver_inner_iterations = plan.solver_inner_iterations;
    outcome.solver_evaluations = plan.solver_evaluations;
    return outcome;
  };

  obs::Span span("simulate", "sim");
  if (span.enabled()) {
    span.Arg("hyper_periods", options.hyper_periods);
  }
  EvalWorkspace* ws = context.workspace();
  if (ws != nullptr) {
    // Steady-state path: simulate into the workspace's reused result.
    return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                              plan.policy, *sampler, rng, sim_options,
                              ws->engine()));
  }
  return fill(sim::Simulate(context.fps(), plan.schedule, context.dvs(),
                            plan.policy, *sampler, rng, sim_options));
}

}  // namespace dvs::core
