#include "core/formulation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "util/error.h"
#include "util/simd.h"

namespace dvs::core {
namespace {

constexpr double kCycleEps = 1e-9;   // budgets below this execute nothing
constexpr double kWindowEps = 1e-12; // windows below this mean "infinitely fast"

/// Voltage-model kernel dispatching through the DvsModel vtable — the
/// general path (alpha law, discrete wrapper, external models).
struct VirtualKernel {
  const model::DvsModel* dvs;

  double CycleTime(double v) const { return dvs->CycleTime(v); }
  double VoltageForSpeed(double speed) const {
    return dvs->VoltageForSpeed(speed);
  }
  /// VoltageSlope evaluated at speed = w / d (the reverse pass's chain
  /// point).  Kernels whose slope is speed-independent skip the division.
  double VoltageSlopeForRatio(double w, double d) const {
    return dvs->VoltageSlope(w / d);
  }
  double SpeedSlope(double v) const { return dvs->SpeedSlope(v); }
};

/// Inlined LinearDvsModel math (speed = k * V).  Each expression mirrors
/// the member implementation exactly — same operations, same order — so the
/// fast path is bit-identical to the virtual one.  (`inv_k` is computed
/// once; LinearDvsModel::VoltageSlope computes the same 1.0 / k per call.)
struct LinearKernel {
  double k;
  double inv_k;

  explicit LinearKernel(double k) : k(k), inv_k(1.0 / k) {}

  double CycleTime(double v) const { return 1.0 / (k * v); }
  double VoltageForSpeed(double speed) const { return speed / k; }
  double VoltageSlopeForRatio(double /*w*/, double /*d*/) const {
    return inv_k;
  }
  double SpeedSlope(double /*v*/) const { return k; }
};

}  // namespace

double PlanningPoint::ResolveFor(const std::vector<double>& cycles,
                                 const model::TaskSet& set,
                                 std::size_t task) {
  const model::Task& spec = set.task(task);
  if (cycles.empty()) {
    return spec.acec;
  }
  ACS_REQUIRE(task < cycles.size(),
              "planning point is missing an entry for task " +
                  std::to_string(task));
  return std::clamp(cycles[task], spec.bcec, spec.wcec);
}

std::uint64_t PlanningPoint::Fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(1);  // shape tag: point block
  mix(static_cast<std::uint64_t>(cycles.size()));
  for (double value : cycles) {
    mix_double(value);
  }
  mix(2);  // shape tag: mixture block
  mix(static_cast<std::uint64_t>(mixture.size()));
  for (const std::vector<double>& row : mixture) {
    mix(static_cast<std::uint64_t>(row.size()));
    for (double value : row) {
      mix_double(value);
    }
  }
  return hash;
}

EnergyObjective::EnergyObjective(const fps::FullyPreemptiveSchedule& fps,
                                 const model::DvsModel& dvs,
                                 Scenario scenario, ObjectiveScratch* scratch,
                                 const PlanningPoint* planning)
    : fps_(&fps),
      dvs_(&dvs),
      scenario_(scenario),
      scratch_(scratch != nullptr ? scratch : &own_scratch_) {
  n_ = fps.sub_count();
  records_.resize(n_);
  plan_by_sub_.resize(n_);
  const model::TaskSet& set = fps.task_set();

  static const PlanningPoint kAcecPoint;
  const PlanningPoint& plan = planning != nullptr ? *planning : kAcecPoint;
  ACS_REQUIRE(plan.cycles.empty() || plan.mixture.empty(),
              "a planning point carries either a point or a mixture, "
              "not both");
  ACS_REQUIRE(plan.IsAcec() || scenario == Scenario::kAverage,
              "planning points apply to average-scenario solves only");

  std::size_t next_var = n_;
  // Assign budget variables parent by parent so each instance's variables
  // are contiguous (simplex groups need index lists anyway, but contiguity
  // helps debugging).
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    const fps::InstanceRecord& rec = fps.instance(p);
    const bool multi = rec.subs.size() >= 2;
    for (std::size_t order : rec.subs) {
      const fps::SubInstance& sub = fps.sub(order);
      SubRecord& r = records_[order];
      r.parent = p;
      r.k = sub.k;
      r.release = sub.release();
      plan_by_sub_[order] =
          PlanningPoint::ResolveFor(plan.cycles, set, sub.task);
      r.wcec = set.task(sub.task).wcec;
      r.has_budget_var = multi;
      if (multi) {
        r.budget_var = next_var++;
      }
    }
  }
  dim_ = next_var;

  mixture_rows_ = plan.mixture.size();
  if (mixture_rows_ > 0) {
    mixture_by_sub_.resize(mixture_rows_ * n_);
    for (std::size_t row = 0; row < mixture_rows_; ++row) {
      for (std::size_t u = 0; u < n_; ++u) {
        mixture_by_sub_[row * n_ + u] =
            PlanningPoint::ResolveFor(plan.mixture[row], set, fps.sub(u).task);
      }
    }
  }
  ct_vmax_ = dvs.CycleTime(dvs.vmax());
  max_speed_ = dvs.MaxSpeed();

  if (const auto* linear = dynamic_cast<const model::LinearDvsModel*>(&dvs)) {
    linear_model_ = true;
    linear_k_ = linear->k();
  }
}

bool EnergyObjective::HasBudgetVariable(std::size_t order) const {
  ACS_REQUIRE(order < n_, "sub-instance index out of range");
  return records_[order].has_budget_var;
}

std::size_t EnergyObjective::budget_index(std::size_t order) const {
  ACS_REQUIRE(HasBudgetVariable(order), "sub-instance has a fixed budget");
  return records_[order].budget_var;
}

double EnergyObjective::BudgetOf(const opt::Vector& x,
                                 std::size_t order) const {
  const SubRecord& r = records_[order];
  return r.has_budget_var ? x[r.budget_var] : r.wcec;
}

double EnergyObjective::Value(const opt::Vector& x) const {
  return Evaluate(x, nullptr, nullptr);
}

void EnergyObjective::Gradient(const opt::Vector& x,
                               opt::Vector& grad) const {
  // The reverse pass writes every component exactly once (each end-time and
  // budget variable belongs to exactly one sub-instance), so no zero-fill
  // is needed — only the size.
  grad.resize(dim_);
  (void)Evaluate(x, &grad, nullptr);
}

double EnergyObjective::ValueAndGradient(const opt::Vector& x,
                                         opt::Vector& grad) const {
  grad.resize(dim_);
  return Evaluate(x, &grad, nullptr);
}

ForwardDetail EnergyObjective::Replay(const opt::Vector& x) const {
  ForwardDetail detail;
  detail.start.resize(n_);
  detail.avg_cycles.resize(n_);
  detail.voltage.resize(n_);
  detail.finish.resize(n_);
  detail.energy.resize(n_);
  detail.total_energy = Evaluate(x, nullptr, &detail);
  return detail;
}

double EnergyObjective::EvaluateOnce(const double* plan, const opt::Vector& x,
                                     opt::Vector* grad,
                                     ForwardDetail* detail) const {
  if (linear_model_) {
    const LinearKernel kernel{linear_k_};
    return scenario_ == Scenario::kAverage
               ? EvaluateImpl<LinearKernel, true>(plan, x, grad, detail,
                                                  kernel)
               : EvaluateImpl<LinearKernel, false>(plan, x, grad, detail,
                                                   kernel);
  }
  const VirtualKernel kernel{dvs_};
  return scenario_ == Scenario::kAverage
             ? EvaluateImpl<VirtualKernel, true>(plan, x, grad, detail,
                                                 kernel)
             : EvaluateImpl<VirtualKernel, false>(plan, x, grad, detail,
                                                  kernel);
}

double EnergyObjective::Evaluate(const opt::Vector& x, opt::Vector* grad,
                                 ForwardDetail* detail) const {
  if (mixture_rows_ == 0) {
    return EvaluateOnce(plan_by_sub_.data(), x, grad, detail);
  }

  // Mixture planning: the objective is the *mean* replay over the K
  // calibrated sample vectors, so value and gradient average row results
  // (d/dx of a mean is the mean of the gradients — the replays share x).
  // Detail rows average too: Replay then reports expected start / finish /
  // voltage / energy under the calibrated law.
  const double inv_rows = 1.0 / static_cast<double>(mixture_rows_);
  double total = 0.0;
  if (grad != nullptr) {
    grad->assign(dim_, 0.0);
  }
  ForwardDetail row_detail;
  if (detail != nullptr) {
    row_detail.start.resize(n_);
    row_detail.avg_cycles.resize(n_);
    row_detail.voltage.resize(n_);
    row_detail.finish.resize(n_);
    row_detail.energy.resize(n_);
    std::fill(detail->start.begin(), detail->start.end(), 0.0);
    std::fill(detail->avg_cycles.begin(), detail->avg_cycles.end(), 0.0);
    std::fill(detail->voltage.begin(), detail->voltage.end(), 0.0);
    std::fill(detail->finish.begin(), detail->finish.end(), 0.0);
    std::fill(detail->energy.begin(), detail->energy.end(), 0.0);
  }

  std::vector<double>& row_grad = scratch_->mix_grad;
  std::size_t row = 0;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // K planned points are a natural vector width: four complete replays run
  // in the four AVX2 lanes when the fast-path preconditions hold (linear
  // voltage model, average scenario, no per-sub detail requested).
  if (linear_model_ && scenario_ == Scenario::kAverage && detail == nullptr &&
      util::simd::Active() == util::simd::Level::kAvx2) {
    for (; row + 4 <= mixture_rows_; row += 4) {
      total += MixtureBlock4Avx2(row, x, grad);
    }
  }
#endif
  for (; row < mixture_rows_; ++row) {
    const double* plan = mixture_by_sub_.data() + row * n_;
    opt::Vector* row_grad_ptr = nullptr;
    if (grad != nullptr) {
      row_grad.resize(dim_);
      row_grad_ptr = &row_grad;
    }
    total += EvaluateOnce(plan, x, row_grad_ptr,
                          detail != nullptr ? &row_detail : nullptr);
    if (grad != nullptr) {
      util::simd::Add(row_grad.data(), grad->data(), dim_);
    }
    if (detail != nullptr) {
      util::simd::Add(row_detail.start.data(), detail->start.data(), n_);
      util::simd::Add(row_detail.avg_cycles.data(),
                      detail->avg_cycles.data(), n_);
      util::simd::Add(row_detail.voltage.data(), detail->voltage.data(), n_);
      util::simd::Add(row_detail.finish.data(), detail->finish.data(), n_);
      util::simd::Add(row_detail.energy.data(), detail->energy.data(), n_);
    }
  }

  total *= inv_rows;
  if (grad != nullptr) {
    util::simd::Scale(inv_rows, grad->data(), dim_);
  }
  if (detail != nullptr) {
    util::simd::Scale(inv_rows, detail->start.data(), n_);
    util::simd::Scale(inv_rows, detail->avg_cycles.data(), n_);
    util::simd::Scale(inv_rows, detail->voltage.data(), n_);
    util::simd::Scale(inv_rows, detail->finish.data(), n_);
    util::simd::Scale(inv_rows, detail->energy.data(), n_);
  }
  return total;
}

template <typename Kernel, bool kAverageScenario>
double EnergyObjective::EvaluateImpl(const double* plan, const opt::Vector& x,
                                     opt::Vector* grad, ForwardDetail* detail,
                                     const Kernel& kernel) const {
  ACS_REQUIRE(x.size() == dim_, "point dimension mismatch");
  using Clamp = ObjectiveScratch::Clamp;
  const model::DvsModel& dvs = *dvs_;
  const double ceff = dvs.ceff();
  const double vmin = dvs.vmin();
  const double vmax = dvs.vmax();
  // Cycle times at the clamp rails, hoisted: a clamped dispatch runs at
  // exactly vmin/vmax, so CycleTime(v) is one of these two constants.
  const double ct_vmin = kernel.CycleTime(vmin);
  const double ct_vmax = kernel.CycleTime(vmax);

  // ---- Forward pass --------------------------------------------------------
  // All per-sub state lives in the scratch (SoA); every slot read below is
  // written by this pass first, so stale values from earlier evaluations
  // cannot leak through.
  ObjectiveScratch& scratch = *scratch_;
  scratch.ResizeSubs(n_);
  double* const w = scratch.w.data();
  double* const avg = scratch.avg.data();
  double* const s = scratch.s.data();
  double* const d = scratch.d.data();
  double* const v = scratch.v.data();
  double* const ct = scratch.ct.data();
  double* const f = scratch.f.data();
  double* const energy = scratch.energy.data();
  AvgCase* const avg_case = scratch.avg_case.data();
  Clamp* const clamp = scratch.clamp.data();
  unsigned char* const s_from_finish = scratch.s_from_finish.data();
  unsigned char* const executes = scratch.executes.data();

  // Phase one — worst-case budgets, separable per sub.
  for (std::size_t u = 0; u < n_; ++u) {
    w[u] = std::max(0.0, BudgetOf(x, u));
    executes[u] = w[u] > kCycleEps ? 1 : 0;
  }

  // Cumulative worst-case budget per parent (before the current sub) —
  // only the average-case analysis consumes it.
  double* cum = nullptr;
  if constexpr (kAverageScenario) {
    scratch.cum.assign(fps_->instance_count(), 0.0);
    cum = scratch.cum.data();
  }

  // Phase two — the scenario chain (sequential: s_u depends on f_{u-1}).
  double f_prev = 0.0;
  for (std::size_t u = 0; u < n_; ++u) {
    const SubRecord& r = records_[u];

    if constexpr (kAverageScenario) {
      const double left = plan[u] - cum[r.parent];
      if (left >= w[u]) {
        avg[u] = w[u];
        avg_case[u] = AvgCase::kFull;
      } else if (left > 0.0) {
        avg[u] = left;
        avg_case[u] = AvgCase::kPartial;
      } else {
        avg[u] = 0.0;
        avg_case[u] = AvgCase::kEmpty;
      }
      cum[r.parent] += w[u];
    } else {
      avg[u] = w[u];
      avg_case[u] = AvgCase::kFull;
    }

    s_from_finish[u] = f_prev >= r.release ? 1 : 0;
    s[u] = s_from_finish[u] ? f_prev : r.release;
    d[u] = x[u] - s[u];

    if (executes[u]) {
      // Clamp classification is deliberately *exclusive* at the boundaries:
      // a dispatch sitting exactly at Vmax/Vmin keeps the interior one-sided
      // derivative, so the solver can still pull end-times off the Vmax-tight
      // warm start (whose chain constraints are all exactly active).
      // (The w / d speed is only read when d is non-degenerate, exactly as
      // the short-circuit evaluated it.)
      const double speed = w[u] / d[u];
      if (d[u] <= kWindowEps || speed > max_speed_) {
        v[u] = vmax;
        clamp[u] = Clamp::kAboveMax;
        ct[u] = ct_vmax;
      } else {
        const double v_raw = kernel.VoltageForSpeed(speed);
        if (v_raw < vmin) {
          v[u] = vmin;
          clamp[u] = Clamp::kBelowMin;
          ct[u] = ct_vmin;
        } else if (v_raw > vmax) {
          v[u] = vmax;
          clamp[u] = Clamp::kAboveMax;
          ct[u] = ct_vmax;
        } else {
          v[u] = v_raw;
          clamp[u] = Clamp::kInside;
          ct[u] = kernel.CycleTime(v[u]);
        }
      }
      f[u] = s[u] + avg[u] * ct[u];
      energy[u] = ceff * v[u] * v[u] * avg[u];
    } else {
      v[u] = vmin;
      clamp[u] = Clamp::kBelowMin;
      ct[u] = ct_vmin;
      f[u] = s[u];  // executes nothing
      energy[u] = 0.0;
    }
    f_prev = f[u];
  }

  // Phase three — energy reduction over the per-sub array.  At scalar
  // dispatch this adds the same executing terms in the same order as the
  // historical in-loop accumulation (non-executing slots contribute an
  // exact +0.0), so the value is bit-identical.
  const double total = util::simd::Sum(energy, n_);

  if (detail != nullptr) {
    std::copy(s, s + n_, detail->start.begin());
    std::copy(avg, avg + n_, detail->avg_cycles.begin());
    std::copy(v, v + n_, detail->voltage.begin());
    std::copy(f, f + n_, detail->finish.begin());
    std::copy(energy, energy + n_, detail->energy.begin());
  }

  if (grad == nullptr) {
    return total;
  }

  // ---- Reverse pass --------------------------------------------------------
  // g_f[u]: adjoint of the finish time f_u.  Only sub u+1's start depends on
  // f_u (through the max branch), so reverse iteration accumulates it just
  // in time.  carry[p]: sum of dO/d avg over later *partial* sub-instances
  // of parent p — each earlier budget variable of p shifts those averages by
  // -1 (Fig. 5 semantics).
  scratch.g_f.assign(n_, 0.0);
  double* const g_f = scratch.g_f.data();
  double* carry = nullptr;
  if constexpr (kAverageScenario) {
    scratch.carry.assign(fps_->instance_count(), 0.0);
    carry = scratch.carry.data();
  }

  for (std::size_t u = n_; u-- > 0;) {
    const SubRecord& r = records_[u];

    double d_avg = 0.0;   // dO / d avg_u
    double d_volt = 0.0;  // dO / d V_u
    double d_s = g_f[u];  // dO / d s_u  (f_u = s_u + avg*ct -> df/ds = 1)
    double d_e = 0.0;     // dO / d e_u
    double d_w = 0.0;     // dO / d w_u

    if (executes[u]) {
      d_avg = ceff * v[u] * v[u] + g_f[u] * ct[u];
      if (clamp[u] == Clamp::kInside) {
        // dct/dV = -speed'(V) / speed(V)^2 = -speed'(V) * ct^2
        const double dct_dv = -kernel.SpeedSlope(v[u]) * ct[u] * ct[u];
        d_volt = 2.0 * ceff * v[u] * avg[u] + g_f[u] * avg[u] * dct_dv;
        // V = V(speed = w/d); the shared d_volt * slope factor and the
        // w / d^2 term are hoisted (multiplication is left-associative, so
        // the groupings below are the ones the spelled-out products used).
        const double slope =
            kernel.VoltageSlopeForRatio(w[u], d[u]);  // dV/dspeed
        const double inv_d = 1.0 / d[u];
        const double ds = d_volt * slope;
        const double w_inv_d2 = w[u] * inv_d * inv_d;
        d_e += ds * (-w_inv_d2);
        d_s += ds * w_inv_d2;
        d_w += ds * inv_d;
      }
    }

    // Budget routing through the case analysis.  Under the worst-case
    // scenario every sub is kFull with zero carry, so the routing collapses
    // to d_w + d_avg.
    if constexpr (kAverageScenario) {
      if (r.has_budget_var) {
        double d_w_total = d_w - carry[r.parent];
        if (avg_case[u] == AvgCase::kFull) {
          d_w_total += d_avg;
        }
        (*grad)[r.budget_var] = d_w_total;
      }
      if (avg_case[u] == AvgCase::kPartial) {
        carry[r.parent] += d_avg;
      }
    } else {
      if (r.has_budget_var) {
        (*grad)[r.budget_var] = d_w + d_avg;
      }
    }

    // Start-time routing through the max() branch.
    if (s_from_finish[u] && u > 0) {
      g_f[u - 1] += d_s;
    }
    (*grad)[u] = d_e;
  }

  return total;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

namespace {

/// Folds the four lanes of `v` in the fixed order ((l0 + l1) + l2) + l3.
__attribute__((target("avx2"))) inline double HsumLanes(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

}  // namespace

__attribute__((target("avx2"))) double EnergyObjective::MixtureBlock4Avx2(
    std::size_t first_row, const opt::Vector& x, opt::Vector* grad) const {
  // Four mixture rows ride the four lanes through one complete replay.  The
  // worst-case budgets w_u — and therefore the cum prefix sums — are
  // plan-independent, so they stay scalar and shared across lanes;
  // everything the planned point touches (avg, start, window, voltage,
  // finish) is per-lane.  Branches in the scalar replay become compare
  // masks: values are selected with blendv, adjoint terms are neutralised
  // with a bitwise AND against the mask (which also scrubs the inf/NaN
  // intermediates clamped lanes produce from 1 / d on degenerate windows).
  ObjectiveScratch& scratch = *scratch_;
  scratch.ResizeSubs(n_);
  scratch.mix4_avg.resize(4 * n_);
  scratch.mix4_d.resize(4 * n_);
  scratch.mix4_v.resize(4 * n_);
  scratch.mix4_ct.resize(4 * n_);
  scratch.mix4_inside.resize(4 * n_);
  scratch.mix4_full.resize(4 * n_);
  scratch.mix4_partial.resize(4 * n_);
  scratch.mix4_sff.resize(4 * n_);
  double* const w = scratch.w.data();
  unsigned char* const executes = scratch.executes.data();

  const model::DvsModel& dvs = *dvs_;
  const double ceff = dvs.ceff();
  const double vmin = dvs.vmin();
  const double vmax = dvs.vmax();
  const double k = linear_k_;
  const double inv_k = 1.0 / k;
  const double ct_vmin = 1.0 / (k * vmin);

  for (std::size_t u = 0; u < n_; ++u) {
    w[u] = std::max(0.0, BudgetOf(x, u));
    executes[u] = w[u] > kCycleEps ? 1 : 0;
  }
  scratch.cum.assign(fps_->instance_count(), 0.0);
  double* const cum = scratch.cum.data();

  const double* const mix = mixture_by_sub_.data();
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  const __m256d vvmin = _mm256_set1_pd(vmin);
  const __m256d vvmax = _mm256_set1_pd(vmax);
  const __m256d vk = _mm256_set1_pd(k);
  const __m256d vinv_k = _mm256_set1_pd(inv_k);
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vceff = _mm256_set1_pd(ceff);
  const __m256d veps = _mm256_set1_pd(kWindowEps);
  const __m256d vmax_speed = _mm256_set1_pd(max_speed_);

  // ---- Forward pass, four lanes wide ---------------------------------------
  __m256d total4 = zero;
  __m256d f_prev = zero;
  for (std::size_t u = 0; u < n_; ++u) {
    const SubRecord& r = records_[u];
    const double wu = w[u];
    const __m256d vw = _mm256_set1_pd(wu);
    const __m256d plan_lane = _mm256_set_pd(
        mix[(first_row + 3) * n_ + u], mix[(first_row + 2) * n_ + u],
        mix[(first_row + 1) * n_ + u], mix[first_row * n_ + u]);
    const __m256d left =
        _mm256_sub_pd(plan_lane, _mm256_set1_pd(cum[r.parent]));
    // avg = clamp(left, 0, w); the case masks replicate the scalar branch
    // order (left >= w -> full; else left > 0 -> partial; else empty).
    const __m256d avg = _mm256_min_pd(_mm256_max_pd(left, zero), vw);
    const __m256d m_full = _mm256_cmp_pd(left, vw, _CMP_GE_OQ);
    const __m256d m_partial =
        _mm256_andnot_pd(m_full, _mm256_cmp_pd(left, zero, _CMP_GT_OQ));
    cum[r.parent] += wu;

    const __m256d release = _mm256_set1_pd(r.release);
    const __m256d m_sff = _mm256_cmp_pd(f_prev, release, _CMP_GE_OQ);
    const __m256d sv = _mm256_max_pd(f_prev, release);
    const __m256d dv = _mm256_sub_pd(_mm256_set1_pd(x[u]), sv);

    __m256d volt;
    __m256d ct;
    __m256d m_inside;
    __m256d fin;
    if (executes[u]) {
      const __m256d speed = _mm256_div_pd(vw, dv);
      const __m256d v_raw = _mm256_mul_pd(speed, vinv_k);
      // Degenerate windows (d <= eps) produce huge/inf speeds; the ordered
      // compares route those lanes to the Vmax rail exactly like the scalar
      // short-circuit does.
      const __m256d m_above = _mm256_or_pd(
          _mm256_or_pd(_mm256_cmp_pd(dv, veps, _CMP_LE_OQ),
                       _mm256_cmp_pd(speed, vmax_speed, _CMP_GT_OQ)),
          _mm256_cmp_pd(v_raw, vvmax, _CMP_GT_OQ));
      const __m256d m_low =
          _mm256_andnot_pd(m_above, _mm256_cmp_pd(v_raw, vvmin, _CMP_LT_OQ));
      volt = _mm256_blendv_pd(_mm256_blendv_pd(v_raw, vvmax, m_above), vvmin,
                              m_low);
      ct = _mm256_div_pd(vone, _mm256_mul_pd(vk, volt));
      m_inside = _mm256_andnot_pd(_mm256_or_pd(m_above, m_low), ones);
      fin = _mm256_add_pd(sv, _mm256_mul_pd(avg, ct));
      total4 = _mm256_add_pd(
          total4,
          _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(vceff, volt), volt), avg));
    } else {
      volt = vvmin;
      ct = _mm256_set1_pd(ct_vmin);
      m_inside = zero;
      fin = sv;
    }

    _mm256_storeu_pd(scratch.mix4_avg.data() + 4 * u, avg);
    _mm256_storeu_pd(scratch.mix4_d.data() + 4 * u, dv);
    _mm256_storeu_pd(scratch.mix4_v.data() + 4 * u, volt);
    _mm256_storeu_pd(scratch.mix4_ct.data() + 4 * u, ct);
    _mm256_storeu_pd(scratch.mix4_inside.data() + 4 * u, m_inside);
    _mm256_storeu_pd(scratch.mix4_full.data() + 4 * u, m_full);
    _mm256_storeu_pd(scratch.mix4_partial.data() + 4 * u, m_partial);
    _mm256_storeu_pd(scratch.mix4_sff.data() + 4 * u, m_sff);
    f_prev = fin;
  }

  const double total = HsumLanes(total4);
  if (grad == nullptr) {
    return total;
  }

  // ---- Reverse pass, four lanes wide ---------------------------------------
  // Lane gradients accumulate into mix4_grad (every entry written exactly
  // once, mirroring the scalar reverse pass) and fold into *grad at the end.
  scratch.mix4_gf.assign(4 * n_, 0.0);
  scratch.mix4_carry.assign(4 * fps_->instance_count(), 0.0);
  scratch.mix4_grad.resize(4 * dim_);
  double* const gf4 = scratch.mix4_gf.data();
  double* const carry4 = scratch.mix4_carry.data();
  double* const grad4 = scratch.mix4_grad.data();
  const __m256d two_ceff = _mm256_set1_pd(2.0 * ceff);

  for (std::size_t u = n_; u-- > 0;) {
    const SubRecord& r = records_[u];
    const __m256d gf = _mm256_loadu_pd(gf4 + 4 * u);
    __m256d d_avg = zero;
    __m256d d_s = gf;
    __m256d d_e = zero;
    __m256d d_w = zero;

    if (executes[u]) {
      const __m256d avg = _mm256_loadu_pd(scratch.mix4_avg.data() + 4 * u);
      const __m256d dv = _mm256_loadu_pd(scratch.mix4_d.data() + 4 * u);
      const __m256d volt = _mm256_loadu_pd(scratch.mix4_v.data() + 4 * u);
      const __m256d ct = _mm256_loadu_pd(scratch.mix4_ct.data() + 4 * u);
      const __m256d m_inside =
          _mm256_loadu_pd(scratch.mix4_inside.data() + 4 * u);
      d_avg = _mm256_add_pd(_mm256_mul_pd(_mm256_mul_pd(vceff, volt), volt),
                            _mm256_mul_pd(gf, ct));
      // Interior lanes: dct/dV = -k ct^2, dV/dspeed = 1/k, speed = w/d.
      const __m256d dct_dv =
          _mm256_sub_pd(zero, _mm256_mul_pd(_mm256_mul_pd(vk, ct), ct));
      const __m256d d_volt =
          _mm256_add_pd(_mm256_mul_pd(_mm256_mul_pd(two_ceff, volt), avg),
                        _mm256_mul_pd(_mm256_mul_pd(gf, avg), dct_dv));
      const __m256d inv_d = _mm256_div_pd(vone, dv);
      const __m256d ds = _mm256_mul_pd(d_volt, vinv_k);
      const __m256d w_inv_d2 =
          _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(w[u]), inv_d), inv_d);
      d_e = _mm256_and_pd(m_inside,
                          _mm256_mul_pd(ds, _mm256_sub_pd(zero, w_inv_d2)));
      d_s = _mm256_add_pd(d_s,
                          _mm256_and_pd(m_inside, _mm256_mul_pd(ds, w_inv_d2)));
      d_w = _mm256_and_pd(m_inside, _mm256_mul_pd(ds, inv_d));
    }

    const __m256d m_full = _mm256_loadu_pd(scratch.mix4_full.data() + 4 * u);
    const __m256d m_partial =
        _mm256_loadu_pd(scratch.mix4_partial.data() + 4 * u);
    __m256d carry = _mm256_loadu_pd(carry4 + 4 * r.parent);
    if (r.has_budget_var) {
      const __m256d d_w_total = _mm256_add_pd(_mm256_sub_pd(d_w, carry),
                                              _mm256_and_pd(m_full, d_avg));
      _mm256_storeu_pd(grad4 + 4 * r.budget_var, d_w_total);
    }
    carry = _mm256_add_pd(carry, _mm256_and_pd(m_partial, d_avg));
    _mm256_storeu_pd(carry4 + 4 * r.parent, carry);

    if (u > 0) {
      const __m256d m_sff = _mm256_loadu_pd(scratch.mix4_sff.data() + 4 * u);
      const __m256d prev = _mm256_loadu_pd(gf4 + 4 * (u - 1));
      _mm256_storeu_pd(gf4 + 4 * (u - 1),
                       _mm256_add_pd(prev, _mm256_and_pd(m_sff, d_s)));
    }
    _mm256_storeu_pd(grad4 + 4 * u, d_e);
  }

  double* const g = grad->data();
  for (std::size_t j = 0; j < dim_; ++j) {
    const double* lane = grad4 + 4 * j;
    g[j] += ((lane[0] + lane[1]) + lane[2]) + lane[3];
  }
  return total;
}

#endif  // x86-64 && (GCC || Clang)

std::shared_ptr<opt::BoxSimplexSet> EnergyObjective::BuildFeasibleSet() const {
  auto set = std::make_shared<opt::BoxSimplexSet>(dim_);
  const std::vector<double>& end_cap = fps_->effective_end_bounds();
  for (std::size_t u = 0; u < n_; ++u) {
    const fps::SubInstance& sub = fps_->sub(u);
    // Upper bound: monotone end-time cap (suffix-min of segment ends), the
    // transitive requirement of the chain constraints.
    set->SetBounds(u, sub.seg_begin, end_cap[u]);
  }
  for (std::size_t p = 0; p < fps_->instance_count(); ++p) {
    const fps::InstanceRecord& rec = fps_->instance(p);
    if (rec.subs.size() < 2) {
      continue;
    }
    std::vector<std::size_t> indices;
    indices.reserve(rec.subs.size());
    for (std::size_t order : rec.subs) {
      indices.push_back(records_[order].budget_var);
    }
    const double wcec =
        fps_->task_set().task(rec.info.task).wcec;
    set->AddSimplex(std::move(indices), wcec);
  }
  return set;
}

std::vector<opt::LinearConstraint>
EnergyObjective::BuildChainConstraints() const {
  std::vector<opt::LinearConstraint> constraints;
  constraints.reserve(2 * n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const SubRecord& r = records_[u];

    // e_u - e_{u-1} - ct_max * w_u >= 0  (u == 0 chains from time zero).
    opt::LinearConstraint chain;
    chain.kind = opt::ConstraintKind::kGeZero;
    chain.terms.emplace_back(u, 1.0);
    if (u > 0) {
      chain.terms.emplace_back(u - 1, -1.0);
    }
    if (r.has_budget_var) {
      chain.terms.emplace_back(r.budget_var, -ct_vmax_);
    } else {
      chain.constant -= ct_vmax_ * r.wcec;
    }
    chain.name = "chain[" + std::to_string(u) + "]";
    constraints.push_back(std::move(chain));

    // e_u - r_u - ct_max * w_u >= 0.  Redundant for u == 0 only when
    // r_0 == 0; emit unless provably identical.
    if (u == 0 && r.release == 0.0) {
      continue;
    }
    opt::LinearConstraint release;
    release.kind = opt::ConstraintKind::kGeZero;
    release.terms.emplace_back(u, 1.0);
    release.constant = -r.release;
    if (r.has_budget_var) {
      release.terms.emplace_back(r.budget_var, -ct_vmax_);
    } else {
      release.constant -= ct_vmax_ * r.wcec;
    }
    release.name = "release[" + std::to_string(u) + "]";
    constraints.push_back(std::move(release));
  }
  return constraints;
}

opt::Vector EnergyObjective::PackSchedule(
    const sim::StaticSchedule& schedule) const {
  ACS_REQUIRE(schedule.size() == n_, "schedule size mismatch");
  opt::Vector x(dim_, 0.0);
  for (std::size_t u = 0; u < n_; ++u) {
    x[u] = schedule.end_time(u);
    if (records_[u].has_budget_var) {
      x[records_[u].budget_var] = schedule.worst_budget(u);
    }
  }
  return x;
}

sim::StaticSchedule EnergyObjective::ExtractSchedule(
    const opt::Vector& x) const {
  ACS_REQUIRE(x.size() == dim_, "point dimension mismatch");
  std::vector<double> end_times(n_);
  std::vector<double> budgets(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    end_times[u] = x[u];
    budgets[u] = BudgetOf(x, u);
  }
  return sim::StaticSchedule(*fps_, std::move(end_times), std::move(budgets));
}

}  // namespace dvs::core
