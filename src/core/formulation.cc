#include "core/formulation.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.h"

namespace dvs::core {
namespace {

constexpr double kCycleEps = 1e-9;   // budgets below this execute nothing
constexpr double kWindowEps = 1e-12; // windows below this mean "infinitely fast"

/// Voltage-model kernel dispatching through the DvsModel vtable — the
/// general path (alpha law, discrete wrapper, external models).
struct VirtualKernel {
  const model::DvsModel* dvs;

  double CycleTime(double v) const { return dvs->CycleTime(v); }
  double VoltageForSpeed(double speed) const {
    return dvs->VoltageForSpeed(speed);
  }
  /// VoltageSlope evaluated at speed = w / d (the reverse pass's chain
  /// point).  Kernels whose slope is speed-independent skip the division.
  double VoltageSlopeForRatio(double w, double d) const {
    return dvs->VoltageSlope(w / d);
  }
  double SpeedSlope(double v) const { return dvs->SpeedSlope(v); }
};

/// Inlined LinearDvsModel math (speed = k * V).  Each expression mirrors
/// the member implementation exactly — same operations, same order — so the
/// fast path is bit-identical to the virtual one.  (`inv_k` is computed
/// once; LinearDvsModel::VoltageSlope computes the same 1.0 / k per call.)
struct LinearKernel {
  double k;
  double inv_k;

  explicit LinearKernel(double k) : k(k), inv_k(1.0 / k) {}

  double CycleTime(double v) const { return 1.0 / (k * v); }
  double VoltageForSpeed(double speed) const { return speed / k; }
  double VoltageSlopeForRatio(double /*w*/, double /*d*/) const {
    return inv_k;
  }
  double SpeedSlope(double /*v*/) const { return k; }
};

}  // namespace

double PlanningPoint::ResolveFor(const std::vector<double>& cycles,
                                 const model::TaskSet& set,
                                 std::size_t task) {
  const model::Task& spec = set.task(task);
  if (cycles.empty()) {
    return spec.acec;
  }
  ACS_REQUIRE(task < cycles.size(),
              "planning point is missing an entry for task " +
                  std::to_string(task));
  return std::clamp(cycles[task], spec.bcec, spec.wcec);
}

std::uint64_t PlanningPoint::Fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  const auto mix_double = [&mix](double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    mix(bits);
  };
  mix(1);  // shape tag: point block
  mix(static_cast<std::uint64_t>(cycles.size()));
  for (double value : cycles) {
    mix_double(value);
  }
  mix(2);  // shape tag: mixture block
  mix(static_cast<std::uint64_t>(mixture.size()));
  for (const std::vector<double>& row : mixture) {
    mix(static_cast<std::uint64_t>(row.size()));
    for (double value : row) {
      mix_double(value);
    }
  }
  return hash;
}

EnergyObjective::EnergyObjective(const fps::FullyPreemptiveSchedule& fps,
                                 const model::DvsModel& dvs,
                                 Scenario scenario, ObjectiveScratch* scratch,
                                 const PlanningPoint* planning)
    : fps_(&fps),
      dvs_(&dvs),
      scenario_(scenario),
      scratch_(scratch != nullptr ? scratch : &own_scratch_) {
  n_ = fps.sub_count();
  records_.resize(n_);
  plan_by_sub_.resize(n_);
  const model::TaskSet& set = fps.task_set();

  static const PlanningPoint kAcecPoint;
  const PlanningPoint& plan = planning != nullptr ? *planning : kAcecPoint;
  ACS_REQUIRE(plan.cycles.empty() || plan.mixture.empty(),
              "a planning point carries either a point or a mixture, "
              "not both");
  ACS_REQUIRE(plan.IsAcec() || scenario == Scenario::kAverage,
              "planning points apply to average-scenario solves only");

  std::size_t next_var = n_;
  // Assign budget variables parent by parent so each instance's variables
  // are contiguous (simplex groups need index lists anyway, but contiguity
  // helps debugging).
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    const fps::InstanceRecord& rec = fps.instance(p);
    const bool multi = rec.subs.size() >= 2;
    for (std::size_t order : rec.subs) {
      const fps::SubInstance& sub = fps.sub(order);
      SubRecord& r = records_[order];
      r.parent = p;
      r.k = sub.k;
      r.release = sub.release();
      plan_by_sub_[order] =
          PlanningPoint::ResolveFor(plan.cycles, set, sub.task);
      r.wcec = set.task(sub.task).wcec;
      r.has_budget_var = multi;
      if (multi) {
        r.budget_var = next_var++;
      }
    }
  }
  dim_ = next_var;

  mixture_rows_ = plan.mixture.size();
  if (mixture_rows_ > 0) {
    mixture_by_sub_.resize(mixture_rows_ * n_);
    for (std::size_t row = 0; row < mixture_rows_; ++row) {
      for (std::size_t u = 0; u < n_; ++u) {
        mixture_by_sub_[row * n_ + u] =
            PlanningPoint::ResolveFor(plan.mixture[row], set, fps.sub(u).task);
      }
    }
  }
  ct_vmax_ = dvs.CycleTime(dvs.vmax());
  max_speed_ = dvs.MaxSpeed();

  if (const auto* linear = dynamic_cast<const model::LinearDvsModel*>(&dvs)) {
    linear_model_ = true;
    linear_k_ = linear->k();
  }
}

bool EnergyObjective::HasBudgetVariable(std::size_t order) const {
  ACS_REQUIRE(order < n_, "sub-instance index out of range");
  return records_[order].has_budget_var;
}

std::size_t EnergyObjective::budget_index(std::size_t order) const {
  ACS_REQUIRE(HasBudgetVariable(order), "sub-instance has a fixed budget");
  return records_[order].budget_var;
}

double EnergyObjective::BudgetOf(const opt::Vector& x,
                                 std::size_t order) const {
  const SubRecord& r = records_[order];
  return r.has_budget_var ? x[r.budget_var] : r.wcec;
}

double EnergyObjective::Value(const opt::Vector& x) const {
  return Evaluate(x, nullptr, nullptr);
}

void EnergyObjective::Gradient(const opt::Vector& x,
                               opt::Vector& grad) const {
  // The reverse pass writes every component exactly once (each end-time and
  // budget variable belongs to exactly one sub-instance), so no zero-fill
  // is needed — only the size.
  grad.resize(dim_);
  (void)Evaluate(x, &grad, nullptr);
}

double EnergyObjective::ValueAndGradient(const opt::Vector& x,
                                         opt::Vector& grad) const {
  grad.resize(dim_);
  return Evaluate(x, &grad, nullptr);
}

ForwardDetail EnergyObjective::Replay(const opt::Vector& x) const {
  ForwardDetail detail;
  detail.start.resize(n_);
  detail.avg_cycles.resize(n_);
  detail.voltage.resize(n_);
  detail.finish.resize(n_);
  detail.energy.resize(n_);
  detail.total_energy = Evaluate(x, nullptr, &detail);
  return detail;
}

double EnergyObjective::EvaluateOnce(const double* plan, const opt::Vector& x,
                                     opt::Vector* grad,
                                     ForwardDetail* detail) const {
  if (linear_model_) {
    const LinearKernel kernel{linear_k_};
    return scenario_ == Scenario::kAverage
               ? EvaluateImpl<LinearKernel, true>(plan, x, grad, detail,
                                                  kernel)
               : EvaluateImpl<LinearKernel, false>(plan, x, grad, detail,
                                                   kernel);
  }
  const VirtualKernel kernel{dvs_};
  return scenario_ == Scenario::kAverage
             ? EvaluateImpl<VirtualKernel, true>(plan, x, grad, detail,
                                                 kernel)
             : EvaluateImpl<VirtualKernel, false>(plan, x, grad, detail,
                                                  kernel);
}

double EnergyObjective::Evaluate(const opt::Vector& x, opt::Vector* grad,
                                 ForwardDetail* detail) const {
  if (mixture_rows_ == 0) {
    return EvaluateOnce(plan_by_sub_.data(), x, grad, detail);
  }

  // Mixture planning: the objective is the *mean* replay over the K
  // calibrated sample vectors, so value and gradient average row results
  // (d/dx of a mean is the mean of the gradients — the replays share x).
  // Detail rows average too: Replay then reports expected start / finish /
  // voltage / energy under the calibrated law.
  const double inv_rows = 1.0 / static_cast<double>(mixture_rows_);
  double total = 0.0;
  if (grad != nullptr) {
    grad->assign(dim_, 0.0);
  }
  ForwardDetail row_detail;
  if (detail != nullptr) {
    row_detail.start.resize(n_);
    row_detail.avg_cycles.resize(n_);
    row_detail.voltage.resize(n_);
    row_detail.finish.resize(n_);
    row_detail.energy.resize(n_);
    std::fill(detail->start.begin(), detail->start.end(), 0.0);
    std::fill(detail->avg_cycles.begin(), detail->avg_cycles.end(), 0.0);
    std::fill(detail->voltage.begin(), detail->voltage.end(), 0.0);
    std::fill(detail->finish.begin(), detail->finish.end(), 0.0);
    std::fill(detail->energy.begin(), detail->energy.end(), 0.0);
  }

  std::vector<double>& row_grad = scratch_->mix_grad;
  for (std::size_t row = 0; row < mixture_rows_; ++row) {
    const double* plan = mixture_by_sub_.data() + row * n_;
    opt::Vector* row_grad_ptr = nullptr;
    if (grad != nullptr) {
      row_grad.resize(dim_);
      row_grad_ptr = &row_grad;
    }
    total += EvaluateOnce(plan, x, row_grad_ptr,
                          detail != nullptr ? &row_detail : nullptr);
    if (grad != nullptr) {
      for (std::size_t i = 0; i < dim_; ++i) {
        (*grad)[i] += row_grad[i];
      }
    }
    if (detail != nullptr) {
      for (std::size_t u = 0; u < n_; ++u) {
        detail->start[u] += row_detail.start[u];
        detail->avg_cycles[u] += row_detail.avg_cycles[u];
        detail->voltage[u] += row_detail.voltage[u];
        detail->finish[u] += row_detail.finish[u];
        detail->energy[u] += row_detail.energy[u];
      }
    }
  }

  total *= inv_rows;
  if (grad != nullptr) {
    for (std::size_t i = 0; i < dim_; ++i) {
      (*grad)[i] *= inv_rows;
    }
  }
  if (detail != nullptr) {
    for (std::size_t u = 0; u < n_; ++u) {
      detail->start[u] *= inv_rows;
      detail->avg_cycles[u] *= inv_rows;
      detail->voltage[u] *= inv_rows;
      detail->finish[u] *= inv_rows;
      detail->energy[u] *= inv_rows;
    }
  }
  return total;
}

template <typename Kernel, bool kAverageScenario>
double EnergyObjective::EvaluateImpl(const double* plan, const opt::Vector& x,
                                     opt::Vector* grad, ForwardDetail* detail,
                                     const Kernel& kernel) const {
  ACS_REQUIRE(x.size() == dim_, "point dimension mismatch");
  using Node = ObjectiveScratch::Node;
  using Clamp = ObjectiveScratch::Clamp;
  const model::DvsModel& dvs = *dvs_;
  const double ceff = dvs.ceff();
  const double vmin = dvs.vmin();
  const double vmax = dvs.vmax();
  // Cycle times at the clamp rails, hoisted: a clamped dispatch runs at
  // exactly vmin/vmax, so CycleTime(nd.v) is one of these two constants.
  const double ct_vmin = kernel.CycleTime(vmin);
  const double ct_vmax = kernel.CycleTime(vmax);

  // ---- Forward pass --------------------------------------------------------
  // All per-sub state lives in the scratch; every field read below is
  // written by this pass first, so stale values from earlier evaluations
  // cannot leak through.
  ObjectiveScratch& scratch = *scratch_;
  scratch.nodes.resize(n_);
  Node* const nodes = scratch.nodes.data();

  // Cumulative worst-case budget per parent (before the current sub) —
  // only the average-case analysis consumes it.
  double* cum = nullptr;
  if constexpr (kAverageScenario) {
    scratch.cum.assign(fps_->instance_count(), 0.0);
    cum = scratch.cum.data();
  }

  double total = 0.0;
  double f_prev = 0.0;
  for (std::size_t u = 0; u < n_; ++u) {
    const SubRecord& r = records_[u];
    Node& nd = nodes[u];

    nd.w = std::max(0.0, BudgetOf(x, u));
    if constexpr (kAverageScenario) {
      const double left = plan[u] - cum[r.parent];
      if (left >= nd.w) {
        nd.avg = nd.w;
        nd.avg_case = AvgCase::kFull;
      } else if (left > 0.0) {
        nd.avg = left;
        nd.avg_case = AvgCase::kPartial;
      } else {
        nd.avg = 0.0;
        nd.avg_case = AvgCase::kEmpty;
      }
      cum[r.parent] += nd.w;
    } else {
      nd.avg = nd.w;
      nd.avg_case = AvgCase::kFull;
    }

    nd.s_from_finish = f_prev >= r.release;
    nd.s = nd.s_from_finish ? f_prev : r.release;
    nd.d = x[u] - nd.s;
    nd.executes = nd.w > kCycleEps;

    if (nd.executes) {
      // Clamp classification is deliberately *exclusive* at the boundaries:
      // a dispatch sitting exactly at Vmax/Vmin keeps the interior one-sided
      // derivative, so the solver can still pull end-times off the Vmax-tight
      // warm start (whose chain constraints are all exactly active).
      // (The w / d speed is only read when d is non-degenerate, exactly as
      // the short-circuit evaluated it.)
      const double speed = nd.w / nd.d;
      if (nd.d <= kWindowEps || speed > max_speed_) {
        nd.v = vmax;
        nd.clamp = Clamp::kAboveMax;
        nd.ct = ct_vmax;
      } else {
        const double v_raw = kernel.VoltageForSpeed(speed);
        if (v_raw < vmin) {
          nd.v = vmin;
          nd.clamp = Clamp::kBelowMin;
          nd.ct = ct_vmin;
        } else if (v_raw > vmax) {
          nd.v = vmax;
          nd.clamp = Clamp::kAboveMax;
          nd.ct = ct_vmax;
        } else {
          nd.v = v_raw;
          nd.clamp = Clamp::kInside;
          nd.ct = kernel.CycleTime(nd.v);
        }
      }
      nd.f = nd.s + nd.avg * nd.ct;
      total += ceff * nd.v * nd.v * nd.avg;
    } else {
      nd.v = vmin;
      nd.clamp = Clamp::kBelowMin;
      nd.ct = ct_vmin;
      nd.f = nd.s;  // executes nothing
    }
    f_prev = nd.f;

    if (detail != nullptr) {
      detail->start[u] = nd.s;
      detail->avg_cycles[u] = nd.avg;
      detail->voltage[u] = nd.v;
      detail->finish[u] = nd.f;
      detail->energy[u] = nd.executes ? ceff * nd.v * nd.v * nd.avg : 0.0;
    }
  }

  if (grad == nullptr) {
    return total;
  }

  // ---- Reverse pass --------------------------------------------------------
  // g_f[u]: adjoint of the finish time f_u.  Only sub u+1's start depends on
  // f_u (through the max branch), so reverse iteration accumulates it just
  // in time.  carry[p]: sum of dO/d avg over later *partial* sub-instances
  // of parent p — each earlier budget variable of p shifts those averages by
  // -1 (Fig. 5 semantics).
  scratch.g_f.assign(n_, 0.0);
  double* const g_f = scratch.g_f.data();
  double* carry = nullptr;
  if constexpr (kAverageScenario) {
    scratch.carry.assign(fps_->instance_count(), 0.0);
    carry = scratch.carry.data();
  }

  for (std::size_t u = n_; u-- > 0;) {
    const SubRecord& r = records_[u];
    const Node& nd = nodes[u];

    double d_avg = 0.0;   // dO / d avg_u
    double d_volt = 0.0;  // dO / d V_u
    double d_s = g_f[u];  // dO / d s_u  (f_u = s_u + avg*ct -> df/ds = 1)
    double d_e = 0.0;     // dO / d e_u
    double d_w = 0.0;     // dO / d w_u

    if (nd.executes) {
      d_avg = ceff * nd.v * nd.v + g_f[u] * nd.ct;
      if (nd.clamp == Clamp::kInside) {
        // dct/dV = -speed'(V) / speed(V)^2 = -speed'(V) * ct^2
        const double dct_dv = -kernel.SpeedSlope(nd.v) * nd.ct * nd.ct;
        d_volt = 2.0 * ceff * nd.v * nd.avg + g_f[u] * nd.avg * dct_dv;
        // V = V(speed = w/d); the shared d_volt * slope factor and the
        // w / d^2 term are hoisted (multiplication is left-associative, so
        // the groupings below are the ones the spelled-out products used).
        const double slope =
            kernel.VoltageSlopeForRatio(nd.w, nd.d);  // dV/dspeed
        const double inv_d = 1.0 / nd.d;
        const double ds = d_volt * slope;
        const double w_inv_d2 = nd.w * inv_d * inv_d;
        d_e += ds * (-w_inv_d2);
        d_s += ds * w_inv_d2;
        d_w += ds * inv_d;
      }
    }

    // Budget routing through the case analysis.  Under the worst-case
    // scenario every sub is kFull with zero carry, so the routing collapses
    // to d_w + d_avg.
    if constexpr (kAverageScenario) {
      if (r.has_budget_var) {
        double d_w_total = d_w - carry[r.parent];
        if (nd.avg_case == AvgCase::kFull) {
          d_w_total += d_avg;
        }
        (*grad)[r.budget_var] = d_w_total;
      }
      if (nd.avg_case == AvgCase::kPartial) {
        carry[r.parent] += d_avg;
      }
    } else {
      if (r.has_budget_var) {
        (*grad)[r.budget_var] = d_w + d_avg;
      }
    }

    // Start-time routing through the max() branch.
    if (nd.s_from_finish && u > 0) {
      g_f[u - 1] += d_s;
    }
    (*grad)[u] = d_e;
  }

  return total;
}

std::shared_ptr<opt::BoxSimplexSet> EnergyObjective::BuildFeasibleSet() const {
  auto set = std::make_shared<opt::BoxSimplexSet>(dim_);
  const std::vector<double>& end_cap = fps_->effective_end_bounds();
  for (std::size_t u = 0; u < n_; ++u) {
    const fps::SubInstance& sub = fps_->sub(u);
    // Upper bound: monotone end-time cap (suffix-min of segment ends), the
    // transitive requirement of the chain constraints.
    set->SetBounds(u, sub.seg_begin, end_cap[u]);
  }
  for (std::size_t p = 0; p < fps_->instance_count(); ++p) {
    const fps::InstanceRecord& rec = fps_->instance(p);
    if (rec.subs.size() < 2) {
      continue;
    }
    std::vector<std::size_t> indices;
    indices.reserve(rec.subs.size());
    for (std::size_t order : rec.subs) {
      indices.push_back(records_[order].budget_var);
    }
    const double wcec =
        fps_->task_set().task(rec.info.task).wcec;
    set->AddSimplex(std::move(indices), wcec);
  }
  return set;
}

std::vector<opt::LinearConstraint>
EnergyObjective::BuildChainConstraints() const {
  std::vector<opt::LinearConstraint> constraints;
  constraints.reserve(2 * n_);
  for (std::size_t u = 0; u < n_; ++u) {
    const SubRecord& r = records_[u];

    // e_u - e_{u-1} - ct_max * w_u >= 0  (u == 0 chains from time zero).
    opt::LinearConstraint chain;
    chain.kind = opt::ConstraintKind::kGeZero;
    chain.terms.emplace_back(u, 1.0);
    if (u > 0) {
      chain.terms.emplace_back(u - 1, -1.0);
    }
    if (r.has_budget_var) {
      chain.terms.emplace_back(r.budget_var, -ct_vmax_);
    } else {
      chain.constant -= ct_vmax_ * r.wcec;
    }
    chain.name = "chain[" + std::to_string(u) + "]";
    constraints.push_back(std::move(chain));

    // e_u - r_u - ct_max * w_u >= 0.  Redundant for u == 0 only when
    // r_0 == 0; emit unless provably identical.
    if (u == 0 && r.release == 0.0) {
      continue;
    }
    opt::LinearConstraint release;
    release.kind = opt::ConstraintKind::kGeZero;
    release.terms.emplace_back(u, 1.0);
    release.constant = -r.release;
    if (r.has_budget_var) {
      release.terms.emplace_back(r.budget_var, -ct_vmax_);
    } else {
      release.constant -= ct_vmax_ * r.wcec;
    }
    release.name = "release[" + std::to_string(u) + "]";
    constraints.push_back(std::move(release));
  }
  return constraints;
}

opt::Vector EnergyObjective::PackSchedule(
    const sim::StaticSchedule& schedule) const {
  ACS_REQUIRE(schedule.size() == n_, "schedule size mismatch");
  opt::Vector x(dim_, 0.0);
  for (std::size_t u = 0; u < n_; ++u) {
    x[u] = schedule.end_time(u);
    if (records_[u].has_budget_var) {
      x[records_[u].budget_var] = schedule.worst_budget(u);
    }
  }
  return x;
}

sim::StaticSchedule EnergyObjective::ExtractSchedule(
    const opt::Vector& x) const {
  ACS_REQUIRE(x.size() == dim_, "point dimension mismatch");
  std::vector<double> end_times(n_);
  std::vector<double> budgets(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    end_times[u] = x[u];
    budgets[u] = BudgetOf(x, u);
  }
  return sim::StaticSchedule(*fps_, std::move(end_times), std::move(budgets));
}

}  // namespace dvs::core
