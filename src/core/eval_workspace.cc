#include "core/eval_workspace.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/solve_store.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace dvs::core {

bool SameTaskSet(const model::TaskSet& a, const model::TaskSet& b) {
  if (a.size() != b.size() || a.hyper_period() != b.hyper_period()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const model::Task& ta = a.task(i);
    const model::Task& tb = b.task(i);
    if (ta.name != tb.name || ta.period != tb.period || ta.wcec != tb.wcec ||
        ta.acec != tb.acec || ta.bcec != tb.bcec) {
      return false;
    }
  }
  return true;
}

bool SameSchedulerOptions(const SchedulerOptions& a, const SchedulerOptions& b) {
  const opt::AlmOptions& x = a.alm;
  const opt::AlmOptions& y = b.alm;
  const opt::SpgOptions& p = x.inner;
  const opt::SpgOptions& q = y.inner;
  return a.warm_start_acs_with_wcs == b.warm_start_acs_with_wcs &&
         x.max_outer == y.max_outer &&
         x.feasibility_tol == y.feasibility_tol &&
         x.initial_penalty == y.initial_penalty &&
         x.penalty_growth == y.penalty_growth &&
         x.max_penalty == y.max_penalty &&
         x.violation_shrink == y.violation_shrink &&
         x.inner_tol_start == y.inner_tol_start &&
         p.max_iterations == q.max_iterations && p.tolerance == q.tolerance &&
         p.history == q.history && p.armijo_c == q.armijo_c &&
         p.step_min == q.step_min && p.step_max == q.step_max &&
         p.backtrack == q.backtrack && p.max_backtracks == q.max_backtracks;
}

std::uint64_t SubsetKey(std::uint64_t base,
                        const std::vector<model::TaskIndex>& owned) {
  // FNV-1a over the base key and the owned indices.
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  mix(base);
  for (model::TaskIndex task : owned) {
    mix(static_cast<std::uint64_t>(task) + 1);
  }
  return hash;
}

EvalWorkspace::PreparedCell::PreparedCell(std::uint64_t key,
                                          model::TaskSet set,
                                          const model::DvsModel& dvs,
                                          const SchedulerOptions& scheduler)
    : key(key),
      set(std::move(set)),
      dvs(&dvs),
      scheduler(scheduler),
      fps(this->set) {}

EvalWorkspace::PreparedCell* EvalWorkspace::Find(
    std::uint64_t key, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler,
    const std::function<bool(const model::TaskSet&)>& same) {
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    if (prepared_[i]->key == key && prepared_[i]->dvs == &dvs &&
        SameSchedulerOptions(prepared_[i]->scheduler, scheduler) &&
        same(prepared_[i]->set)) {
      if (i != 0) {  // move to MRU front
        std::unique_ptr<PreparedCell> hit = std::move(prepared_[i]);
        prepared_.erase(prepared_.begin() + static_cast<std::ptrdiff_t>(i));
        prepared_.insert(prepared_.begin(), std::move(hit));
      }
      // Scheduling-observing counter: which worker's cache holds the set
      // depends on cell assignment, so hit/miss splits vary with the
      // thread count — only the hits+misses total is invariant.
      obs::Count(obs::metric::kPrepareHits);
      return prepared_.front().get();
    }
  }
  return nullptr;
}

namespace {

std::size_t VecBytes(const std::vector<double>& values) {
  return values.size() * sizeof(double);
}

std::size_t MatBytes(const std::vector<std::vector<double>>& rows) {
  std::size_t bytes = rows.size() * sizeof(std::vector<double>);
  for (const std::vector<double>& row : rows) {
    bytes += VecBytes(row);
  }
  return bytes;
}

std::size_t PointBytes(const PlanningPoint& point) {
  return VecBytes(point.cycles) + MatBytes(point.mixture);
}

std::size_t ResultBytes(const ScheduleResult& result) {
  return sizeof(ScheduleResult) + VecBytes(result.schedule.end_times()) +
         VecBytes(result.schedule.worst_budgets()) +
         VecBytes(result.alm.multipliers);
}

}  // namespace

std::size_t EvalWorkspace::ApproxBytes(const PreparedCell& cell) {
  std::size_t bytes = sizeof(PreparedCell);
  for (const model::Task& task : cell.set.tasks()) {
    bytes += sizeof(model::Task) + task.name.size();
  }
  // The expansion's per-sub-instance records (segments, chain links,
  // instance maps) dominate its footprint; ~96 bytes each is the measured
  // order of magnitude and only relative sizes matter for eviction.
  bytes += cell.fps.sub_count() * 96;
  const SolveCache& solves = cell.solves;
  if (solves.wcs.has_value()) {
    bytes += ResultBytes(*solves.wcs);
  }
  if (solves.acs.has_value()) {
    bytes += ResultBytes(*solves.acs);
  }
  if (solves.vmax_asap.has_value()) {
    bytes += VecBytes(solves.vmax_asap->end_times()) +
             VecBytes(solves.vmax_asap->worst_budgets());
  }
  for (const auto& planned : solves.planned) {
    bytes += sizeof(SolveCache::PlannedSolve) + PointBytes(planned->planning) +
             ResultBytes(planned->result);
    for (const PlanningPoint& link : planned->chain) {
      bytes += PointBytes(link);
    }
  }
  for (const auto& entry : solves.calibrations) {
    bytes += sizeof(SolveCache::CalibrationEntry) +
             entry->persist_key.size() + VecBytes(entry->calibration.mean) +
             VecBytes(entry->calibration.stddev) +
             MatBytes(entry->calibration.draws) +
             MatBytes(entry->calibration.sorted);
  }
  return bytes;
}

void EvalWorkspace::EnforceBudget() {
  std::size_t total = 0;
  for (const auto& entry : prepared_) {
    total += ApproxBytes(*entry);
  }
  // An MRU entry bigger than the whole budget can never be paid for by
  // eviction: charging it would evict every LRU entry (futile — the budget
  // stays blown) and, were the MRU itself evictable, loop forever admitting
  // and ejecting it.  Treat it as a transient over-budget resident instead:
  // its bytes don't count against the budget, so the smaller entries it
  // would have pointlessly displaced stay cached.  The gauge still reports
  // the physical total.
  std::size_t charged = total;
  if (!prepared_.empty()) {
    const std::size_t mru_bytes = ApproxBytes(*prepared_.front());
    if (mru_bytes > prepared_budget_bytes_) {
      charged = total - mru_bytes;
      obs::Count(obs::metric::kPrepareOversized);
    }
  }
  while (prepared_.size() > 1 &&
         (prepared_.size() > kPreparedCapacity ||
          charged > prepared_budget_bytes_)) {
    const PreparedCell& victim = *prepared_.back();
    const std::size_t victim_bytes = ApproxBytes(victim);
    total -= victim_bytes;
    charged -= victim_bytes;
    if (store_ != nullptr) {
      const ModelDescriptor descriptor = DescribeModel(*victim.dvs);
      if (descriptor.Persistable()) {
        store_->Absorb(MakeStoredCell(victim.set, descriptor, victim.scheduler,
                                      victim.solves));
      }
    }
    prepared_.pop_back();
    obs::Count(obs::metric::kPrepareEvictions);
  }
  obs::SetGauge(obs::metric::kPreparedBytes, static_cast<double>(total));
}

void EvalWorkspace::AbsorbInto(SolveStore& store) const {
  for (const auto& entry : prepared_) {
    const ModelDescriptor descriptor = DescribeModel(*entry->dvs);
    if (!descriptor.Persistable()) {
      continue;
    }
    store.Absorb(MakeStoredCell(entry->set, descriptor, entry->scheduler,
                                entry->solves));
  }
}

EvalWorkspace::PreparedCell& EvalWorkspace::Insert(
    std::uint64_t key, model::TaskSet set, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  obs::Count(obs::metric::kPrepareMisses);
  prepared_.insert(prepared_.begin(),
                   std::make_unique<PreparedCell>(key, std::move(set), dvs,
                                                  scheduler));
  PreparedCell& entry = *prepared_.front();
  if (store_ != nullptr) {
    const ModelDescriptor descriptor = DescribeModel(dvs);
    if (descriptor.Persistable()) {
      if (std::optional<StoredCell> stored =
              store_->Load(entry.set, descriptor, scheduler)) {
        try {
          RestoreSolveCache(*stored, entry.fps, entry.solves);
        } catch (const util::Error&) {
          // The stored schedules do not fit this expansion (a colliding
          // key or a stale file): drop the partial restore and re-solve.
          entry.solves = SolveCache{};
          obs::Count(obs::metric::kPersistRejects);
        }
      }
    }
  }
  EnforceBudget();  // never evicts the MRU entry just built
  return entry;
}

EvalWorkspace::PreparedCell& EvalWorkspace::Prepare(
    std::uint64_t key, const model::TaskSet& set, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  if (PreparedCell* hit = Find(key, dvs, scheduler,
                               [&set](const model::TaskSet& cached) {
                                 return SameTaskSet(cached, set);
                               })) {
    return *hit;
  }
  return Insert(key, set, dvs, scheduler);
}

EvalWorkspace::PreparedCell& EvalWorkspace::PrepareSubset(
    std::uint64_t key, const model::TaskSet& parent,
    const std::vector<model::TaskIndex>& owned, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  // The sorted owned indices (SubTaskSet's order), in a reused buffer so
  // the hit path allocates nothing.
  std::vector<model::TaskIndex>& sorted = owned_scratch_;
  sorted.assign(owned.begin(), owned.end());
  std::sort(sorted.begin(), sorted.end());

  // Field-by-field equivalent of SameTaskSet(cached, SubTaskSet(parent,
  // owned)) without building the subset: SubTaskSet copies the parent's
  // Task records verbatim in sorted-index order, and the hyper-period is
  // derived from the periods, so matching tasks imply matching sets.
  const auto same_subset = [&](const model::TaskSet& cached) {
    if (cached.size() != sorted.size()) {
      return false;
    }
    for (std::size_t j = 0; j < sorted.size(); ++j) {
      const model::Task& a = cached.task(j);
      const model::Task& b = parent.task(sorted[j]);
      if (a.name != b.name || a.period != b.period || a.wcec != b.wcec ||
          a.acec != b.acec || a.bcec != b.bcec) {
        return false;
      }
    }
    return true;
  };
  if (PreparedCell* hit = Find(key, dvs, scheduler, same_subset)) {
    return *hit;
  }
  // Miss: materialise the subset — verbatim parent Task records in sorted
  // order, exactly what mp::SubTaskSet builds (core cannot call it: mp sits
  // above core in the layering).
  std::vector<model::Task> tasks;
  tasks.reserve(sorted.size());
  for (model::TaskIndex index : sorted) {
    tasks.push_back(parent.task(index));
  }
  return Insert(key, model::TaskSet(std::move(tasks)), dvs, scheduler);
}

}  // namespace dvs::core
