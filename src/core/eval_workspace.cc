#include "core/eval_workspace.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace dvs::core {

bool SameTaskSet(const model::TaskSet& a, const model::TaskSet& b) {
  if (a.size() != b.size() || a.hyper_period() != b.hyper_period()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const model::Task& ta = a.task(i);
    const model::Task& tb = b.task(i);
    if (ta.name != tb.name || ta.period != tb.period || ta.wcec != tb.wcec ||
        ta.acec != tb.acec || ta.bcec != tb.bcec) {
      return false;
    }
  }
  return true;
}

bool SameSchedulerOptions(const SchedulerOptions& a, const SchedulerOptions& b) {
  const opt::AlmOptions& x = a.alm;
  const opt::AlmOptions& y = b.alm;
  const opt::SpgOptions& p = x.inner;
  const opt::SpgOptions& q = y.inner;
  return a.warm_start_acs_with_wcs == b.warm_start_acs_with_wcs &&
         x.max_outer == y.max_outer &&
         x.feasibility_tol == y.feasibility_tol &&
         x.initial_penalty == y.initial_penalty &&
         x.penalty_growth == y.penalty_growth &&
         x.max_penalty == y.max_penalty &&
         x.violation_shrink == y.violation_shrink &&
         x.inner_tol_start == y.inner_tol_start &&
         p.max_iterations == q.max_iterations && p.tolerance == q.tolerance &&
         p.history == q.history && p.armijo_c == q.armijo_c &&
         p.step_min == q.step_min && p.step_max == q.step_max &&
         p.backtrack == q.backtrack && p.max_backtracks == q.max_backtracks;
}

std::uint64_t SubsetKey(std::uint64_t base,
                        const std::vector<model::TaskIndex>& owned) {
  // FNV-1a over the base key and the owned indices.
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  mix(base);
  for (model::TaskIndex task : owned) {
    mix(static_cast<std::uint64_t>(task) + 1);
  }
  return hash;
}

EvalWorkspace::PreparedCell::PreparedCell(std::uint64_t key,
                                          model::TaskSet set,
                                          const model::DvsModel& dvs,
                                          const SchedulerOptions& scheduler)
    : key(key),
      set(std::move(set)),
      dvs(&dvs),
      scheduler(scheduler),
      fps(this->set) {}

EvalWorkspace::PreparedCell* EvalWorkspace::Find(
    std::uint64_t key, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler,
    const std::function<bool(const model::TaskSet&)>& same) {
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    if (prepared_[i]->key == key && prepared_[i]->dvs == &dvs &&
        SameSchedulerOptions(prepared_[i]->scheduler, scheduler) &&
        same(prepared_[i]->set)) {
      if (i != 0) {  // move to MRU front
        std::unique_ptr<PreparedCell> hit = std::move(prepared_[i]);
        prepared_.erase(prepared_.begin() + static_cast<std::ptrdiff_t>(i));
        prepared_.insert(prepared_.begin(), std::move(hit));
      }
      // Scheduling-observing counter: which worker's cache holds the set
      // depends on cell assignment, so hit/miss splits vary with the
      // thread count — only the hits+misses total is invariant.
      obs::Count(obs::metric::kPrepareHits);
      return prepared_.front().get();
    }
  }
  return nullptr;
}

EvalWorkspace::PreparedCell& EvalWorkspace::Insert(
    std::uint64_t key, model::TaskSet set, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  obs::Count(obs::metric::kPrepareMisses);
  if (prepared_.size() >= kPreparedCapacity) {
    prepared_.pop_back();
  }
  prepared_.insert(prepared_.begin(),
                   std::make_unique<PreparedCell>(key, std::move(set), dvs,
                                                  scheduler));
  return *prepared_.front();
}

EvalWorkspace::PreparedCell& EvalWorkspace::Prepare(
    std::uint64_t key, const model::TaskSet& set, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  if (PreparedCell* hit = Find(key, dvs, scheduler,
                               [&set](const model::TaskSet& cached) {
                                 return SameTaskSet(cached, set);
                               })) {
    return *hit;
  }
  return Insert(key, set, dvs, scheduler);
}

EvalWorkspace::PreparedCell& EvalWorkspace::PrepareSubset(
    std::uint64_t key, const model::TaskSet& parent,
    const std::vector<model::TaskIndex>& owned, const model::DvsModel& dvs,
    const SchedulerOptions& scheduler) {
  // The sorted owned indices (SubTaskSet's order), in a reused buffer so
  // the hit path allocates nothing.
  std::vector<model::TaskIndex>& sorted = owned_scratch_;
  sorted.assign(owned.begin(), owned.end());
  std::sort(sorted.begin(), sorted.end());

  // Field-by-field equivalent of SameTaskSet(cached, SubTaskSet(parent,
  // owned)) without building the subset: SubTaskSet copies the parent's
  // Task records verbatim in sorted-index order, and the hyper-period is
  // derived from the periods, so matching tasks imply matching sets.
  const auto same_subset = [&](const model::TaskSet& cached) {
    if (cached.size() != sorted.size()) {
      return false;
    }
    for (std::size_t j = 0; j < sorted.size(); ++j) {
      const model::Task& a = cached.task(j);
      const model::Task& b = parent.task(sorted[j]);
      if (a.name != b.name || a.period != b.period || a.wcec != b.wcec ||
          a.acec != b.acec || a.bcec != b.bcec) {
        return false;
      }
    }
    return true;
  };
  if (PreparedCell* hit = Find(key, dvs, scheduler, same_subset)) {
    return *hit;
  }
  // Miss: materialise the subset — verbatim parent Task records in sorted
  // order, exactly what mp::SubTaskSet builds (core cannot call it: mp sits
  // above core in the layering).
  std::vector<model::Task> tasks;
  tasks.reserve(sorted.size());
  for (model::TaskIndex index : sorted) {
    tasks.push_back(parent.task(index));
  }
  return Insert(key, model::TaskSet(std::move(tasks)), dvs, scheduler);
}

}  // namespace dvs::core
