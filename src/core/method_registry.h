// Named scheduling methods and the registry that makes them selectable.
//
// A ScheduleMethod bundles the two halves of one experiment arm:
//
//   offline — construct a feasible StaticSchedule for the task set (solve
//             the ACS NLP, solve the WCS baseline, or build a closed-form
//             schedule such as Vmax-ASAP);
//   online  — the sim::DvsPolicy the engine dispatches through.
//
// The registry decouples experiment drivers (core::CompareAcsWcs, the
// runner subsystem, the benches) from the concrete strategy list: a new
// baseline is one Register() call, and experiment grids select methods by
// name.  Built-ins (see MethodRegistry::Builtin):
//
//   acs            ACS full-NLP schedule + greedy online reclamation
//                  (the paper's scheme)
//   wcs            WCS schedule + greedy online reclamation (the paper's
//                  comparison baseline)
//   wcs-static     WCS schedule, offline voltages only — isolates the
//                  static end-times from the online slack pass-through
//   greedy-reclaim Vmax-ASAP schedule + greedy reclamation — pure online
//                  slack reclamation with no offline optimisation
//   static-vmax    Vmax-ASAP schedule at Vmax throughout — the no-DVS
//                  energy ceiling
#ifndef ACS_CORE_METHOD_REGISTRY_H
#define ACS_CORE_METHOD_REGISTRY_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "sim/policy.h"
#include "sim/static_schedule.h"
#include "util/named_registry.h"

namespace dvs::core {

class EvalWorkspace;  // core/eval_workspace.h

/// Per-task-set solve state shared by every method evaluated on one cell.
/// The WCS solution doubles as the ACS warm start and as its own arm, and
/// the Vmax-ASAP schedule seeds two baselines, so both are solved lazily
/// once and cached in a SolveCache (core/scheduler.h) — the context's own
/// by default, or an external one whose lifetime exceeds the context (the
/// workspace-backed constructor, which lets runner::RunGrid share solves
/// across cells drawing the same task set).  Not thread-safe: parallel
/// experiment drivers use one MethodContext per cell (see runner::RunGrid).
class MethodContext {
 public:
  MethodContext(const fps::FullyPreemptiveSchedule& fps,
                const model::DvsModel& dvs, const SchedulerOptions& scheduler)
      : fps_(&fps), dvs_(&dvs), scheduler_(&scheduler), cache_(&own_cache_) {}

  /// Workspace-backed variant: solves run out of `workspace`'s scratch
  /// buffers, simulations reuse its engine buffers, and results are cached
  /// in `cache` (typically the workspace's PreparedCell, so later contexts
  /// on the same task set skip the solves entirely).  Bit-identical to the
  /// self-contained constructor.
  MethodContext(const fps::FullyPreemptiveSchedule& fps,
                const model::DvsModel& dvs, const SchedulerOptions& scheduler,
                EvalWorkspace& workspace, SolveCache& cache)
      : fps_(&fps),
        dvs_(&dvs),
        scheduler_(&scheduler),
        workspace_(&workspace),
        cache_(&cache) {}

  // The default cache is a member the context points at, so copies would
  // dangle; contexts are cheap to construct where needed instead.
  MethodContext(const MethodContext&) = delete;
  MethodContext& operator=(const MethodContext&) = delete;

  const fps::FullyPreemptiveSchedule& fps() const { return *fps_; }
  const model::DvsModel& dvs() const { return *dvs_; }
  const SchedulerOptions& scheduler() const { return *scheduler_; }

  /// The attached workspace, or nullptr for a self-contained context.
  EvalWorkspace* workspace() const { return workspace_; }

  /// Solves (once) and returns the WCS schedule.
  const ScheduleResult& Wcs();

  /// Solves (once) and returns the ACS schedule, warm-started per the
  /// scheduler options.  Shared by the "acs" arm and its policy variants
  /// (e.g. the eager-dispatch ablation), so the NLP solve amortises.
  const ScheduleResult& Acs();

  /// Builds (once) and returns the Vmax-ASAP schedule.  Throws
  /// InfeasibleError when the set is not RM-schedulable at Vmax.
  const sim::StaticSchedule& VmaxAsap();

 private:
  const fps::FullyPreemptiveSchedule* fps_;
  const model::DvsModel* dvs_;
  const SchedulerOptions* scheduler_;
  EvalWorkspace* workspace_ = nullptr;
  SolveCache* cache_;
  SolveCache own_cache_;
};

/// The offline product of one method: a feasible static schedule plus the
/// policy that dispatches it online.  Built-in methods hand the policy over
/// by value (sim::AnyPolicy's variant fast path — the engine then dispatches
/// it without virtual calls); external plugins still pass a
/// std::unique_ptr<DvsPolicy> exactly as before.
struct MethodPlan {
  sim::StaticSchedule schedule;
  sim::AnyPolicy policy;
  double predicted_energy = 0.0;  // the method's own offline estimate
  bool used_fallback = false;     // an NLP repair fell back to its warm start
};

/// One named strategy.  Implementations are stateless and const, so a single
/// instance may be shared across threads; all per-cell state lives in the
/// MethodContext.
class ScheduleMethod {
 public:
  virtual ~ScheduleMethod() = default;
  virtual MethodPlan Plan(MethodContext& context) const = 0;
};

/// Name -> strategy map: util::NamedRegistry with this domain's error
/// wording.  Lookups on a fully-built registry are const and safe to share
/// across threads; Register() is not (populate before use).
class MethodRegistry : public util::NamedRegistry<ScheduleMethod> {
 public:
  /// The immutable registry of built-in methods listed above.
  static const MethodRegistry& Builtin();

  MethodRegistry() : NamedRegistry("method", "schedule method", "methods") {}
};

/// Populates `registry` with the built-in methods of MethodRegistry::Builtin.
/// Benches that add custom arms (discrete-voltage variants, the full-NLP
/// solver, policy counterfactuals) start from this and Register() on top.
void RegisterBuiltins(MethodRegistry& registry);

/// Plans `method` and simulates it under the experiment's truncated-normal
/// workload.  Methods evaluated with the same `options.seed` face identical
/// workload realisations — the paper's methodology for fair comparisons.
/// Planning reads `context.scheduler()` exclusively; `options.scheduler` is
/// not consulted here, so construct the context from the same options.
MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options);

}  // namespace dvs::core

#endif  // ACS_CORE_METHOD_REGISTRY_H
