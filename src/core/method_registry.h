// Named scheduling methods and the registry that makes them selectable.
//
// A ScheduleMethod bundles the two halves of one experiment arm:
//
//   offline — construct a feasible StaticSchedule for the task set (solve
//             the ACS NLP, solve the WCS baseline, or build a closed-form
//             schedule such as Vmax-ASAP);
//   online  — the sim::DvsPolicy the engine dispatches through.
//
// The registry decouples experiment drivers (core::CompareAcsWcs, the
// runner subsystem, the benches) from the concrete strategy list: a new
// baseline is one Register() call, and experiment grids select methods by
// name.  Built-ins (see MethodRegistry::Builtin):
//
//   acs            ACS full-NLP schedule + greedy online reclamation
//                  (the paper's scheme)
//   wcs            WCS schedule + greedy online reclamation (the paper's
//                  comparison baseline)
//   wcs-static     WCS schedule, offline voltages only — isolates the
//                  static end-times from the online slack pass-through
//   greedy-reclaim Vmax-ASAP schedule + greedy reclamation — pure online
//                  slack reclamation with no offline optimisation
//   static-vmax    Vmax-ASAP schedule at Vmax throughout — the no-DVS
//                  energy ceiling
//   acs-scenario   ACS NLP planned at the scenario's calibrated per-task
//                  realised mean instead of the ACEC point
//   acs-quantile   ACS NLP planned at a per-task quantile of the calibrated
//                  law (ExperimentOptions::planning.quantile, default p50)
//   acs-mixture    ACS NLP whose objective averages the energy replay over
//                  K calibrated sample vectors (distribution-weighted plan)
//   acs-online     calibrated-mean planned schedule + expected-case online
//                  DP dispatch (sim::ExpectedCasePolicy) over the
//                  calibrated remaining-work distribution
//   acs-online-drift  acs-online plus an EWMA drift detector that
//                  recalibrates the planning point mid-run and replans
//                  through the warm-start machinery (MethodPlan::DriftSpec)
//
// The scenario-conditioned arms calibrate the cell's scenario offline
// (workload::ScenarioCalibrator, seeded by core::CalibrationSeed) and solve
// through SolvePlanned; they require experiment options on the context —
// EvaluateMethod attaches them automatically, direct Plan() callers use
// MethodContext::AttachExperiment first.
#ifndef ACS_CORE_METHOD_REGISTRY_H
#define ACS_CORE_METHOD_REGISTRY_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/power_model.h"
#include "sim/policy.h"
#include "sim/static_schedule.h"
#include "util/named_registry.h"
#include "workload/calibrator.h"

namespace dvs::core {

class EvalWorkspace;  // core/eval_workspace.h

/// Per-task-set solve state shared by every method evaluated on one cell.
/// The WCS solution doubles as the ACS warm start and as its own arm, and
/// the Vmax-ASAP schedule seeds two baselines, so both are solved lazily
/// once and cached in a SolveCache (core/scheduler.h) — the context's own
/// by default, or an external one whose lifetime exceeds the context (the
/// workspace-backed constructor, which lets runner::RunGrid share solves
/// across cells drawing the same task set).  Not thread-safe: parallel
/// experiment drivers use one MethodContext per cell (see runner::RunGrid).
class MethodContext {
 public:
  MethodContext(const fps::FullyPreemptiveSchedule& fps,
                const model::DvsModel& dvs, const SchedulerOptions& scheduler)
      : fps_(&fps), dvs_(&dvs), scheduler_(&scheduler), cache_(&own_cache_) {}

  /// Workspace-backed variant: solves run out of `workspace`'s scratch
  /// buffers, simulations reuse its engine buffers, and results are cached
  /// in `cache` (typically the workspace's PreparedCell, so later contexts
  /// on the same task set skip the solves entirely).  Bit-identical to the
  /// self-contained constructor.
  MethodContext(const fps::FullyPreemptiveSchedule& fps,
                const model::DvsModel& dvs, const SchedulerOptions& scheduler,
                EvalWorkspace& workspace, SolveCache& cache)
      : fps_(&fps),
        dvs_(&dvs),
        scheduler_(&scheduler),
        workspace_(&workspace),
        cache_(&cache) {}

  // The default cache is a member the context points at, so copies would
  // dangle; contexts are cheap to construct where needed instead.
  MethodContext(const MethodContext&) = delete;
  MethodContext& operator=(const MethodContext&) = delete;

  const fps::FullyPreemptiveSchedule& fps() const { return *fps_; }
  const model::DvsModel& dvs() const { return *dvs_; }
  const SchedulerOptions& scheduler() const { return *scheduler_; }

  /// The attached workspace, or nullptr for a self-contained context.
  EvalWorkspace* workspace() const { return workspace_; }

  /// Attaches the experiment options the scenario-conditioned arms read
  /// (scenario, sigma divisor, seed, planning knobs).  EvaluateMethod does
  /// this on entry; only direct Plan() callers need to call it themselves.
  /// Non-owning — the options must outlive the planning calls.
  void AttachExperiment(const ExperimentOptions& options) {
    experiment_ = &options;
  }

  /// The attached experiment options, or nullptr before AttachExperiment.
  const ExperimentOptions* experiment() const { return experiment_; }

  /// Solves (once) and returns the WCS schedule.
  const ScheduleResult& Wcs();

  /// Solves (once) and returns the ACS schedule, warm-started per the
  /// scheduler options.  Shared by the "acs" arm and its policy variants
  /// (e.g. the eager-dispatch ablation), so the NLP solve amortises.
  const ScheduleResult& Acs();

  /// Builds (once) and returns the Vmax-ASAP schedule.  Throws
  /// InfeasibleError when the set is not RM-schedulable at Vmax.
  const sim::StaticSchedule& VmaxAsap();

  /// Calibrates (once per distinct configuration) the context's task set
  /// under `options`' scenario, sigma divisor, calibration sample count
  /// and CalibrationSeed-derived stream.  Calibrations are cached in the
  /// SolveCache (task-set scope), so the three planning arms of one cell,
  /// sigma-axis sibling cells sharing the cache, and warm-start chain
  /// prefixes all share one calibration run instead of re-sampling the
  /// scenario.  The returned reference stays valid for the cache's
  /// lifetime.
  const workload::Calibration& ScenarioCalibration(
      const ExperimentOptions& options);

  /// Solves (once per distinct point) and returns the scenario-conditioned
  /// schedule for `planning`, warm-started like Acs().  Solves are cached
  /// in the SolveCache keyed by the point's exact values — never by the
  /// arm or scenario name alone — so cells sharing a cache but differing
  /// in scenario, arm or planning knobs can never reuse each other's
  /// solve, while cells whose calibrations coincide exactly may (which is
  /// sound: the solve is a pure function of the point).  The returned
  /// reference stays valid for the cache's lifetime.
  const ScheduleResult& Planned(const PlanningPoint& planning);

  /// Continuation variant (WarmStartPolicy::kNeighbor): solves `planning`
  /// seeded from `warm` — the previous chain link's converged result.  Its
  /// schedule seeds the primal and its AlmReport multipliers/penalty seed
  /// the dual (opt::AlmOptions::dual_seed), so the link polishes instead of
  /// re-running the cold tolerance ramp.  Null seeds from WCS exactly like
  /// Planned.  `chain` is the warm-start ancestry — the planning points
  /// whose solves produced `warm`, in solve order — and is part of the
  /// cache identity, so chained and unchained solves of the same point
  /// never alias (see SolveCache::PlannedSolve).
  const ScheduleResult& PlannedChained(const PlanningPoint& planning,
                                       const std::vector<PlanningPoint>& chain,
                                       const ScheduleResult* warm);

 private:
  const fps::FullyPreemptiveSchedule* fps_;
  const model::DvsModel* dvs_;
  const SchedulerOptions* scheduler_;
  EvalWorkspace* workspace_ = nullptr;
  const ExperimentOptions* experiment_ = nullptr;
  SolveCache* cache_;
  SolveCache own_cache_;
};

/// The offline product of one method: a feasible static schedule plus the
/// policy that dispatches it online.  Built-in methods hand the policy over
/// by value (sim::AnyPolicy's variant fast path — the engine then dispatches
/// it without virtual calls); external plugins still pass a
/// std::unique_ptr<DvsPolicy> exactly as before.
struct MethodPlan {
  sim::StaticSchedule schedule;
  sim::AnyPolicy policy;
  double predicted_energy = 0.0;  // the method's own offline estimate
  bool used_fallback = false;     // an NLP repair fell back to its warm start

  /// Mid-run drift adaptation request (the acs-online-drift arm).  When set,
  /// EvaluateMethod simulates hyper-period by hyper-period, folds each
  /// batch's realised per-task mean cycles into an EWMA, and — when the
  /// EWMA strays from the planned point by more than the configured
  /// threshold (relative to the task's [BCEC, WCEC] span) — recalibrates
  /// the PlanningPoint at the EWMA and replans through PlannedChained
  /// seeded from the incumbent solve, so replans cost warm-link prices.
  /// All referenced objects live in the context's SolveCache and outlive
  /// the plan.
  struct DriftSpec {
    /// Baseline calibration the policy's survival tables were built from.
    const workload::Calibration* calibration = nullptr;
    /// The incumbent solve (dual/primal seed of the first replan).
    const ScheduleResult* base = nullptr;
    /// Warm-start ancestry of `base`, including its own planning point —
    /// exactly the `chain` a replan passes to PlannedChained.
    std::vector<PlanningPoint> ancestry;
  };
  std::optional<DriftSpec> drift{};
  /// Offline solver effort behind this plan: zero for closed-form methods,
  /// one AlmReport's counters for a single NLP solve, the sum over every
  /// link of a warm-start chain.  Charged from the (possibly cached)
  /// ScheduleResult reports — a report is a pure function of the solve
  /// inputs, so the charge is identical whether this cell ran the solve or
  /// a cache served it, keeping the CSV columns deterministic at any
  /// thread count.
  std::int64_t solver_outer_iterations = 0;
  std::int64_t solver_inner_iterations = 0;
  std::int64_t solver_evaluations = 0;

  /// Adds one solve's counters.
  void ChargeSolver(const opt::AlmReport& report) {
    solver_outer_iterations += static_cast<std::int64_t>(report.outer_iterations);
    solver_inner_iterations +=
        static_cast<std::int64_t>(report.total_inner_iterations);
    solver_evaluations += static_cast<std::int64_t>(report.evaluations);
  }
};

/// One named strategy.  Implementations are stateless and const, so a single
/// instance may be shared across threads; all per-cell state lives in the
/// MethodContext.
class ScheduleMethod {
 public:
  virtual ~ScheduleMethod() = default;
  virtual MethodPlan Plan(MethodContext& context) const = 0;
};

/// Name -> strategy map: util::NamedRegistry with this domain's error
/// wording.  Lookups on a fully-built registry are const and safe to share
/// across threads; Register() is not (populate before use).
class MethodRegistry : public util::NamedRegistry<ScheduleMethod> {
 public:
  /// The immutable registry of built-in methods listed above.
  static const MethodRegistry& Builtin();

  MethodRegistry() : NamedRegistry("method", "schedule method", "methods") {}
};

/// Populates `registry` with the built-in methods of MethodRegistry::Builtin.
/// Benches that add custom arms (discrete-voltage variants, the full-NLP
/// solver, policy counterfactuals) start from this and Register() on top.
void RegisterBuiltins(MethodRegistry& registry);

/// Plans `method` and simulates it under the experiment's truncated-normal
/// workload.  Methods evaluated with the same `options.seed` face identical
/// workload realisations — the paper's methodology for fair comparisons.
/// Planning reads `context.scheduler()` exclusively; `options.scheduler` is
/// not consulted here, so construct the context from the same options.
MethodOutcome EvaluateMethod(const ScheduleMethod& method,
                             MethodContext& context,
                             const ExperimentOptions& options);

}  // namespace dvs::core

#endif  // ACS_CORE_METHOD_REGISTRY_H
