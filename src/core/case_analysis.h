// Average-workload case analysis (paper §3.2, Fig. 5).
//
// Given the worst-case workload budgets w_1..w_K of an instance's
// sub-instances and the instance's ACEC, the average-case scenario fills the
// budgets *in order*: "the next sub-instance will start execution only if
// the previous sub-instance already reaches the worst-case limit".  Hence
//
//     avg_k = clamp(ACEC - sum_{j<k} w_j,  0,  w_k)
//
// — case 1 of the paper (avg_k == w_k) while the cumulative worst-case
// budget still fits under ACEC, one partially filled sub-instance, and zero
// for the rest (Fig. 5's 10 / 5 / 0 example).
#ifndef ACS_CORE_CASE_ANALYSIS_H
#define ACS_CORE_CASE_ANALYSIS_H

#include <vector>

namespace dvs::core {

/// How a sub-instance's average workload relates to its budget; mirrors the
/// paper's case-1 / case-2 discussion (we split case 2 into the partially
/// filled sub-instance and the empty tail for gradient bookkeeping).
enum class AvgCase {
  kFull,     // avg == w (case 1: cumulative budget fits under ACEC)
  kPartial,  // 0 < avg < w (the one sub-instance straddling ACEC)
  kEmpty,    // avg == 0 (cumulative budget before it already covers ACEC)
};

struct AvgSplit {
  std::vector<double> avg;       // average workload per sub-instance
  std::vector<AvgCase> cases;    // classification per sub-instance
};

/// Computes the average workload assignment.  `worst` must be non-negative;
/// acec must satisfy 0 <= acec <= sum(worst) (up to tolerance — the value is
/// clamped so numerical dust from the solver cannot break the invariant).
AvgSplit SplitAverageWorkload(double acec, const std::vector<double>& worst);

}  // namespace dvs::core

#endif  // ACS_CORE_CASE_ANALYSIS_H
