// Per-thread evaluation workspace: the reusable state of the whole
// offline-solve + online-simulate hot path.
//
// Grid-scale experiments evaluate the same pipeline — FPS expansion, WCS /
// ACS NLP solves, Vmax-ASAP construction, greedy simulation — on thousands
// of cells.  Before this workspace existed every cell re-allocated the
// solver vectors, the objective scratch and the engine tables, and cells
// that shared a task set (sigma / workload-seed / partitioner axes) even
// re-ran the identical solves.  An EvalWorkspace owns all of that state:
//
//   solver()             SPG/ALM/L-BFGS scratch (opt/workspace.h)
//   objective_scratch()  EnergyObjective forward/reverse buffers
//   engine()             sim::Simulate tables, active set and result
//   Prepare(key, set)    per-task-set cache: the FPS expansion plus the
//                        lazily solved WCS / ACS / Vmax-ASAP results
//
// Ownership and thread affinity: one workspace per thread, period.  Nothing
// here is synchronised; runner::RunGrid keeps one per ThreadPool worker and
// mp::EvaluateFleet threads the current worker's workspace through every
// per-core solve.  Reuse never changes results: every consumer overwrites
// its buffers before reading, and a Prepare() cache hit returns solves that
// are bit-identical to what a fresh computation would produce (the solvers
// are deterministic functions of the task set, model and options — which is
// also why the 1-thread-vs-N-thread determinism tests stay exact even
// though thread count changes which worker's cache serves which cell).
#ifndef ACS_CORE_EVAL_WORKSPACE_H
#define ACS_CORE_EVAL_WORKSPACE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/formulation.h"
#include "core/scheduler.h"
#include "fps/expansion.h"
#include "model/task.h"
#include "opt/workspace.h"
#include "sim/engine.h"

namespace dvs::core {

class SolveStore;  // core/solve_store.h

/// Exact structural equality (names, periods, and bitwise-equal cycle
/// demands).  Prepare() trusts a cache entry only when this holds, so a key
/// collision across different grids degrades to a rebuild, never to a wrong
/// result.
bool SameTaskSet(const model::TaskSet& a, const model::TaskSet& b);

/// Exact (bitwise) equality of every solver-relevant field, including the
/// nested ALM/SPG options — the second half of Prepare()'s hit condition.
bool SameSchedulerOptions(const SchedulerOptions& a, const SchedulerOptions& b);

/// Derives the cache key of a task subset from its parent set's key and the
/// owned task indices (FNV-1a).  mp::EvaluateFleet keys per-core solve
/// caches with this, so two cells whose partitioners assign the same tasks
/// to some core share that core's WCS/ACS solves — regardless of which core
/// index carried them.
std::uint64_t SubsetKey(std::uint64_t base,
                        const std::vector<model::TaskIndex>& owned);

class EvalWorkspace {
 public:
  /// Cached per-task-set state.  Owns a copy of the set (the expansion
  /// points into it), the expansion itself, and the lazy solve cache that
  /// MethodContext fills on first use.  The solves depend on the DVS model
  /// and scheduler options as well as the set, so the entry records both
  /// and a hit requires them to match (model by identity, options by
  /// value) — sharing workspaces across grids that differ in either
  /// degrades to a rebuild, never to stale solves.  The model is held
  /// non-owning (like ExperimentGrid::dvs): it must outlive every workspace
  /// that cached solves under it, or a recycled address could masquerade as
  /// the original model.
  struct PreparedCell {
    PreparedCell(std::uint64_t key, model::TaskSet set,
                 const model::DvsModel& dvs, const SchedulerOptions& scheduler);

    std::uint64_t key;
    model::TaskSet set;
    const model::DvsModel* dvs;
    SchedulerOptions scheduler;
    fps::FullyPreemptiveSchedule fps;  // references `set`; do not move
    SolveCache solves;
  };

  EvalWorkspace() = default;
  EvalWorkspace(EvalWorkspace&&) = default;
  EvalWorkspace& operator=(EvalWorkspace&&) = default;

  opt::SolverWorkspace& solver() { return solver_; }
  ObjectiveScratch& objective_scratch() { return objective_scratch_; }
  sim::EngineWorkspace& engine() { return engine_; }

  /// Returns the prepared state for (`key`, `set`, `dvs`, `scheduler`): a
  /// hit when the key matches, the sets are structurally identical, the
  /// model is the same object and the scheduler options are equal;
  /// otherwise a build that may evict the least-recently-used entry
  /// (invalidating references returned for it).  `key` is the caller's
  /// task-set identity — runner::RunGrid uses the grid SetIndex (so all
  /// cells of one set share the entry) and mp::EvaluateFleet uses
  /// SubsetKey per core.  A stale key whose inputs no longer match
  /// degrades to a rebuild, never a wrong hit.
  PreparedCell& Prepare(std::uint64_t key, const model::TaskSet& set,
                        const model::DvsModel& dvs,
                        const SchedulerOptions& scheduler);

  /// Prepare for the subset of `parent` owning tasks `owned` (the
  /// mp::EvaluateFleet per-core path).  Equivalent to
  /// Prepare(key, SubTaskSet(parent, owned), ...) but verifies a cache hit
  /// field-by-field against the parent set, so the steady-state hit path
  /// materialises no TaskSet at all.
  PreparedCell& PrepareSubset(std::uint64_t key, const model::TaskSet& parent,
                              const std::vector<model::TaskIndex>& owned,
                              const model::DvsModel& dvs,
                              const SchedulerOptions& scheduler);

  /// Attaches (or detaches, with nullptr) a persistent solve store.  Every
  /// Prepare() miss then pre-seeds its fresh entry from the store, and
  /// every eviction flows the entry's solves back into it.  Non-owning;
  /// the store must outlive the workspace's last Prepare/AbsorbInto call.
  /// Results are bit-identical with or without a store — restored solves
  /// verify exactly and anything rejected is simply re-solved.
  void set_solve_store(SolveStore* store) { store_ = store; }
  SolveStore* solve_store() const { return store_; }

  /// Flushes every resident entry's solves into `store` (end-of-run
  /// write-back companion; evicted entries were absorbed on the way out).
  void AbsorbInto(SolveStore& store) const;

  /// Byte budget of the prepared-cell cache (approximate resident bytes;
  /// see ApproxBytes).  Insert evicts LRU entries past the budget, always
  /// keeping at least the entry it just built.  Tests shrink this to force
  /// evictions; the default fits any shipped grid comfortably.
  void set_prepared_budget_bytes(std::size_t bytes) {
    prepared_budget_bytes_ = bytes;
  }
  std::size_t prepared_budget_bytes() const { return prepared_budget_bytes_; }

  /// Default byte budget of the prepared cache (256 MiB): planned solves
  /// and calibration draws accumulate per entry, so deep planning grids
  /// bound residency by bytes as well as by count.  Public so tooling
  /// (tools/cache_info) can flag entries that would overflow it.
  static constexpr std::size_t kDefaultPreparedBudgetBytes =
      256ull * 1024 * 1024;

  /// Deterministic size estimate of one cached entry: the task set, the
  /// expansion and every cached solve / calibration, counted by element
  /// size (never capacity, so the estimate is allocator-independent).
  static std::size_t ApproxBytes(const PreparedCell& cell);

 private:
  /// MRU depth: one multi-core cell touches up to `cores` entries and the
  /// reuse window spans the sibling cells of one task-set draw (the
  /// core-count x partitioner axes), so a few dozen entries cover it.
  static constexpr std::size_t kPreparedCapacity = 48;

  /// Moves a hit to the MRU front; returns nullptr on miss.
  PreparedCell* Find(std::uint64_t key, const model::DvsModel& dvs,
                     const SchedulerOptions& scheduler,
                     const std::function<bool(const model::TaskSet&)>& same);

  /// Inserts a fresh entry at the MRU front, evicting if at capacity.
  PreparedCell& Insert(std::uint64_t key, model::TaskSet set,
                       const model::DvsModel& dvs,
                       const SchedulerOptions& scheduler);

  /// Evicts LRU entries while over the count cap or the byte budget
  /// (keeping at least the MRU entry), absorbing each evictee into the
  /// attached store; refreshes the resident-bytes gauge.  An MRU entry
  /// alone bigger than the whole budget is exempt from the byte charge
  /// (counted by prepare.oversized_rejects): evicting everything else
  /// could never pay for it, so the smaller entries stay resident.
  void EnforceBudget();

  opt::SolverWorkspace solver_;
  ObjectiveScratch objective_scratch_;
  sim::EngineWorkspace engine_;
  std::vector<std::unique_ptr<PreparedCell>> prepared_;  // MRU order
  std::vector<model::TaskIndex> owned_scratch_;  // PrepareSubset sort buffer
  SolveStore* store_ = nullptr;                  // non-owning, may be null
  std::size_t prepared_budget_bytes_ = kDefaultPreparedBudgetBytes;
};

}  // namespace dvs::core

#endif  // ACS_CORE_EVAL_WORKSPACE_H
