// Pluggable task partitioners and their registry (mirrors
// core::MethodRegistry).
//
// A Partitioner statically assigns every task of a (possibly multi-core
// demand) TaskSet to one of `cores` identical cores such that every core's
// subset is RM-schedulable at Vmax — the admission test the per-core
// pipeline needs to even start.  Partitioning dominates the energy outcome
// of partitioned DVS (Huang et al., leakage-aware reallocation for periodic
// tasks on multicores), so the choice is a first-class experiment axis:
// grids select partitioners by name exactly like schedule methods.
//
// Built-ins (see PartitionerRegistry::Builtin):
//
//   ffd            first-fit decreasing by utilisation: densest packing,
//                  fewest powered cores (classical bin packing)
//   wfd            worst-fit decreasing: place each task on the least-loaded
//                  feasible core — load balancing, which under convex DVS
//                  power lets every core run slow
//   energy-greedy  place each task on the feasible core with the smallest
//                  *marginal convex-energy estimate*: the increase in
//                  constant-speed energy rate of serving the core's cycle
//                  demand under the model (linear or alpha law), plus the
//                  idle-power floor when the placement powers a new core —
//                  leakage-aware consolidation vs. spread, decided per task
#ifndef ACS_MP_PARTITIONER_H
#define ACS_MP_PARTITIONER_H

#include <memory>
#include <string>
#include <vector>

#include "model/power_model.h"
#include "model/task.h"
#include "mp/partition.h"
#include "util/named_registry.h"

namespace dvs::mp {

/// One named partitioning strategy.  Implementations are stateless and
/// const: a single instance serves all threads (per-cell state, if any,
/// stays on the stack of Assign).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Assigns every task of `set` to one of `cores` cores; each returned
  /// core subset passes the exact RM test at Vmax.  `idle` is the per-core
  /// always-on power floor — energy-aware strategies may weigh powering an
  /// additional core against loading an already-powered one; others ignore
  /// it.  Throws InfeasibleError when some task fits on no core.
  virtual Partition Assign(const model::TaskSet& set,
                           const model::DvsModel& dvs, int cores,
                           const model::IdlePower& idle) const = 0;
};

/// Name -> partitioner map: util::NamedRegistry with this domain's error
/// wording; same contract as core::MethodRegistry (populate before sharing
/// across threads, const lookups after).
class PartitionerRegistry : public util::NamedRegistry<Partitioner> {
 public:
  /// The immutable registry of built-ins listed above.
  static const PartitionerRegistry& Builtin();

  PartitionerRegistry()
      : NamedRegistry("partitioner", "partitioner", "partitioners") {}
};

/// Populates `registry` with the built-ins of PartitionerRegistry::Builtin.
void RegisterBuiltinPartitioners(PartitionerRegistry& registry);

/// Constant-speed energy rate (energy per ms) of one core serving a cycle
/// demand of `utilization` * MaxSpeed cycles/ms: the voltage that meets the
/// demand exactly (vmin when the demand undershoots the slowest speed), so
/// the rate is convex and increasing in the load.  The energy-greedy
/// partitioner's placement estimate; exposed for tests and analysis.
double CoreEnergyRate(const model::DvsModel& dvs, double utilization);

}  // namespace dvs::mp

#endif  // ACS_MP_PARTITIONER_H
