#include "mp/partition.h"

#include <algorithm>

#include "util/error.h"

namespace dvs::mp {

int Partition::used_cores() const {
  int used = 0;
  for (const std::vector<model::TaskIndex>& core : assignment) {
    used += core.empty() ? 0 : 1;
  }
  return used;
}

void Partition::Validate(const model::TaskSet& set) const {
  ACS_REQUIRE(!assignment.empty(), "partition needs at least one core");
  std::vector<int> placed(set.size(), 0);
  for (const std::vector<model::TaskIndex>& core : assignment) {
    for (model::TaskIndex task : core) {
      ACS_REQUIRE(task < set.size(),
                  "partition references task index " + std::to_string(task) +
                      " outside the set");
      ++placed[task];
    }
  }
  for (std::size_t i = 0; i < placed.size(); ++i) {
    ACS_REQUIRE(placed[i] == 1, "task " + set.task(i).name + " placed on " +
                                    std::to_string(placed[i]) +
                                    " cores (expected exactly 1)");
  }
}

double Partition::CoreUtilization(const model::TaskSet& set,
                                  const model::DvsModel& dvs, int c) const {
  ACS_REQUIRE(c >= 0 && c < cores(), "core index out of range");
  const double max_speed = dvs.MaxSpeed();
  double utilization = 0.0;
  for (model::TaskIndex task : assignment[static_cast<std::size_t>(c)]) {
    const model::Task& t = set.task(task);
    utilization += t.wcec / (static_cast<double>(t.period) * max_speed);
  }
  return utilization;
}

std::string Partition::Describe(const model::TaskSet& set) const {
  std::string out;
  for (int c = 0; c < cores(); ++c) {
    if (c > 0) {
      out += ' ';
    }
    out += "core" + std::to_string(c) + '{';
    const std::vector<model::TaskIndex>& core =
        assignment[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < core.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += set.task(core[i]).name;
    }
    out += '}';
  }
  return out;
}

model::TaskSet SubTaskSet(const model::TaskSet& set,
                          const std::vector<model::TaskIndex>& tasks) {
  ACS_REQUIRE(!tasks.empty(), "a core's task subset must be non-empty");
  std::vector<model::TaskIndex> sorted = tasks;
  std::sort(sorted.begin(), sorted.end());
  std::vector<model::Task> subset;
  subset.reserve(sorted.size());
  for (model::TaskIndex task : sorted) {
    ACS_REQUIRE(task < set.size(), "task index out of range");
    subset.push_back(set.task(task));
  }
  return model::TaskSet(std::move(subset));
}

}  // namespace dvs::mp
