#include "mp/partitioner.h"

#include <algorithm>
#include <utility>

#include "fps/expansion.h"
#include "sim/engine.h"
#include "util/error.h"
#include "util/strings.h"

namespace dvs::mp {
namespace {

/// Worst-case utilisation of one task at the model's top speed.
double TaskUtilization(const model::TaskSet& set, const model::DvsModel& dvs,
                       model::TaskIndex task) {
  const model::Task& t = set.task(task);
  return t.wcec / (static_cast<double>(t.period) * dvs.MaxSpeed());
}

/// Task indices in decreasing-utilisation order (task index breaks ties):
/// the "decreasing" in FFD/WFD, which all built-ins share so packing quality
/// does not depend on the arbitrary input order.
std::vector<model::TaskIndex> DecreasingUtilization(
    const model::TaskSet& set, const model::DvsModel& dvs) {
  std::vector<std::pair<double, model::TaskIndex>> keyed;
  keyed.reserve(set.size());
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    keyed.emplace_back(TaskUtilization(set, dvs, i), i);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  std::vector<model::TaskIndex> order;
  order.reserve(keyed.size());
  for (const auto& [utilization, index] : keyed) {
    order.push_back(index);
  }
  return order;
}

/// Exact admission test: does core `c` stay RM-schedulable at Vmax after
/// adding `task`?  The cheap utilisation filter rejects most misfits before
/// the exact expansion-based test runs.
bool FitsOnCore(const model::TaskSet& set, const model::DvsModel& dvs,
                const Partition& partition, int c, model::TaskIndex task,
                double task_utilization) {
  if (partition.CoreUtilization(set, dvs, c) + task_utilization >
      1.0 + 1e-12) {
    return false;
  }
  std::vector<model::TaskIndex> candidate =
      partition.assignment[static_cast<std::size_t>(c)];
  candidate.push_back(task);
  const model::TaskSet subset = SubTaskSet(set, candidate);
  const fps::FullyPreemptiveSchedule expansion(subset);
  return sim::IsRmSchedulable(expansion, dvs);
}

[[noreturn]] void ThrowNoFit(const std::string& partitioner,
                             const model::TaskSet& set, model::TaskIndex task,
                             int cores) {
  throw util::InfeasibleError(
      "partitioner \"" + partitioner + "\" cannot place task " +
      set.task(task).name + " on any of " + std::to_string(cores) +
      " cores (set: " + set.Describe() + ")");
}

/// Shared driver of the built-ins, which differ only in how they rank the
/// candidate cores: walk tasks in decreasing utilisation and place each on
/// the feasible core with the smallest (score, core index) — admission is
/// tested lazily in rank order, and the index tie-break keeps every
/// assignment deterministic.  `score(partition, core, task_utilization)`.
template <typename ScoreFn>
Partition AssignByScore(const char* name, const model::TaskSet& set,
                        const model::DvsModel& dvs, int cores,
                        const ScoreFn& score) {
  ACS_REQUIRE(cores >= 1, "need at least one core");
  Partition partition;
  partition.assignment.resize(static_cast<std::size_t>(cores));
  std::vector<std::pair<double, int>> ranked(static_cast<std::size_t>(cores));
  for (model::TaskIndex task : DecreasingUtilization(set, dvs)) {
    const double u = TaskUtilization(set, dvs, task);
    for (int c = 0; c < cores; ++c) {
      ranked[static_cast<std::size_t>(c)] = {score(partition, c, u), c};
    }
    std::sort(ranked.begin(), ranked.end());
    bool placed = false;
    for (const auto& [cost, c] : ranked) {
      if (FitsOnCore(set, dvs, partition, c, task, u)) {
        partition.assignment[static_cast<std::size_t>(c)].push_back(task);
        placed = true;
        break;
      }
    }
    if (!placed) {
      ThrowNoFit(name, set, task, cores);
    }
  }
  return partition;
}

/// First-fit decreasing: lowest-index feasible core.
class FirstFitDecreasing final : public Partitioner {
 public:
  Partition Assign(const model::TaskSet& set, const model::DvsModel& dvs,
                   int cores, const model::IdlePower& /*idle*/) const override {
    return AssignByScore(
        "ffd", set, dvs, cores,
        [](const Partition&, int core, double) {
          return static_cast<double>(core);
        });
  }
};

/// Worst-fit decreasing: least-loaded feasible core (lowest index on ties).
class WorstFitDecreasing final : public Partitioner {
 public:
  Partition Assign(const model::TaskSet& set, const model::DvsModel& dvs,
                   int cores, const model::IdlePower& /*idle*/) const override {
    return AssignByScore(
        "wfd", set, dvs, cores,
        [&set, &dvs](const Partition& partition, int core, double) {
          return partition.CoreUtilization(set, dvs, core);
        });
  }
};

/// Energy-aware greedy: feasible core with the smallest marginal
/// convex-energy estimate; powering a previously empty core additionally
/// charges the idle floor (leakage-aware consolidation).
class EnergyGreedy final : public Partitioner {
 public:
  Partition Assign(const model::TaskSet& set, const model::DvsModel& dvs,
                   int cores, const model::IdlePower& idle) const override {
    return AssignByScore(
        "energy-greedy", set, dvs, cores,
        [&set, &dvs, &idle](const Partition& partition, int core, double u) {
          const double load = partition.CoreUtilization(set, dvs, core);
          const bool powers_new_core =
              partition.assignment[static_cast<std::size_t>(core)].empty();
          return CoreEnergyRate(dvs, load + u) - CoreEnergyRate(dvs, load) +
                 (powers_new_core ? idle.power_per_ms : 0.0);
        });
  }
};

}  // namespace

double CoreEnergyRate(const model::DvsModel& dvs, double utilization) {
  if (utilization <= 0.0) {
    return 0.0;
  }
  const double demand = utilization * dvs.MaxSpeed();  // cycles per ms
  // Below the slowest sustainable speed the core runs at vmin and idles the
  // rest of the time; above it the voltage tracks the demand exactly.
  const double voltage = demand <= dvs.MinSpeed()
                             ? dvs.vmin()
                             : dvs.ClampVoltage(dvs.VoltageForSpeed(demand));
  return dvs.Energy(voltage, demand);
}

const PartitionerRegistry& PartitionerRegistry::Builtin() {
  static const PartitionerRegistry registry = [] {
    PartitionerRegistry built;
    RegisterBuiltinPartitioners(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltinPartitioners(PartitionerRegistry& registry) {
  registry.Register("ffd", "first-fit decreasing by utilisation (densest)",
                    std::make_unique<FirstFitDecreasing>());
  registry.Register("wfd",
                    "worst-fit decreasing: least-loaded feasible core "
                    "(load balancing)",
                    std::make_unique<WorstFitDecreasing>());
  registry.Register("energy-greedy",
                    "smallest marginal convex-energy core, idle-power aware",
                    std::make_unique<EnergyGreedy>());
}

}  // namespace dvs::mp
