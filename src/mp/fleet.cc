#include "mp/fleet.h"

#include <algorithm>
#include <optional>

#include "core/eval_workspace.h"
#include "dpm/reallocate.h"
#include "fps/expansion.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/rng.h"
#include "util/error.h"

namespace dvs::mp {

double FleetResult::ImprovementOver(std::size_t method_index,
                                    std::size_t baseline_index) const {
  return core::ImprovementRatio(
      outcomes.at(baseline_index).fleet.measured_energy,
      outcomes.at(method_index).fleet.measured_energy);
}

FleetResult EvaluateFleet(
    const model::TaskSet& set, const model::DvsModel& dvs,
    const Partitioner& partitioner, int cores,
    const std::vector<const core::ScheduleMethod*>& methods,
    const core::ExperimentOptions& options, const model::IdlePower& idle,
    core::EvalWorkspace* workspace, std::uint64_t set_key) {
  ACS_REQUIRE(!methods.empty(), "fleet evaluation needs at least one method");

  FleetResult result;
  result.partition = partitioner.Assign(set, dvs, cores, idle);
  ACS_REQUIRE(result.partition.cores() == cores,
              "partitioner returned " +
                  std::to_string(result.partition.cores()) +
                  " cores for a " + std::to_string(cores) + "-core fleet");
  result.partition.Validate(set);
  result.outcomes.resize(methods.size());

  const bool dpm = options.dpm.enabled;

  // Cross-hyper-period reallocation (core shutdown): consolidate once, run
  // the partitioner's assignment for the first `realloc_after` hyper-periods
  // and the consolidated one for the remainder.  A single span — DPM off,
  // reallocation off, nothing movable, or a mission too short to split —
  // keeps the evaluation loop on the legacy shape with weight exactly 1.
  struct Span {
    const Partition* partition;
    std::int64_t hyper_periods;
  };
  const std::int64_t total_hp = options.hyper_periods;
  dpm::ReallocationResult realloc;
  std::vector<Span> spans;
  if (dpm && options.dpm.reallocate) {
    const std::int64_t after =
        std::max<std::int64_t>(1, options.dpm.realloc_after);
    if (total_hp > after) {
      realloc = dpm::Consolidate(result.partition, set, dvs, idle);
      if (realloc.migrations > 0) {
        realloc.partition.Validate(set);
        spans.push_back(Span{&result.partition, after});
        spans.push_back(Span{&realloc.partition, total_hp - after});
      }
    }
  }
  if (spans.empty()) {
    spans.push_back(Span{&result.partition, total_hp});
  }

  // DPM off: the always-on floor is aggregated here — per powered core over
  // the whole mission — because the simulator charges nothing for idleness
  // on the legacy path.  It belongs to *measured* energy only: the NLP
  // objective never modelled the floor, so predicted energy stays the pure
  // dynamic-energy prediction (regression-pinned by mp_fleet_test).  DPM
  // on: the simulator owns the floor and the sleep ledger per core, so
  // initialising anything here would double-charge.
  const double idle_rate =
      static_cast<double>(result.partition.used_cores()) * idle.power_per_ms;
  for (FleetOutcome& outcome : result.outcomes) {
    if (!dpm) {
      outcome.fleet.measured_energy = idle_rate;
      outcome.fleet.idle_energy = idle_rate;
      outcome.fleet.weighted_cores =
          static_cast<double>(result.partition.used_cores());
    }
    outcome.fleet.migrations = realloc.migrations;
  }

  for (std::size_t s = 0; s < spans.size(); ++s) {
    const Partition& partition = *spans[s].partition;
    const std::int64_t span_hp = spans[s].hyper_periods;
    const double weight =
        spans.size() > 1 ? static_cast<double>(span_hp) /
                               static_cast<double>(total_hp)
                         : 1.0;
    for (int c = 0; c < partition.cores(); ++c) {
      const std::vector<model::TaskIndex>& owned =
          partition.assignment[static_cast<std::size_t>(c)];
      if (owned.empty()) {
        continue;  // power-gated
      }
      obs::Span core_span("core", "mp");
      if (core_span.enabled()) {
        core_span.Arg("core", static_cast<std::int64_t>(c));
        core_span.Arg("tasks", static_cast<std::int64_t>(owned.size()));
        if (s > 0) {
          core_span.Arg("span", static_cast<std::int64_t>(s));
        }
      }
      core::ExperimentOptions core_options = options;
      core_options.hyper_periods = span_hp;
      if (dpm) {
        // One source of truth for the floor: the simulator and this
        // aggregation must agree on it (dpm::Options doc).
        core_options.dpm.idle = idle;
      }
      // Span 0 keeps the legacy per-core stream (byte-identity with the
      // pre-DPM pipeline); later spans fork a fresh stream labelled by the
      // span index, so the post-reallocation hyper-periods draw workloads
      // independent of — but just as reproducible as — the first span's.
      core_options.seed =
          s == 0 ? stats::Rng(options.seed)
                       .ForkWith(static_cast<std::uint64_t>(c))
                       .NextU64()
                 : stats::Rng(options.seed)
                       .ForkWith(static_cast<std::uint64_t>(s))
                       .ForkWith(static_cast<std::uint64_t>(c))
                       .NextU64();

      // One context per core: the WCS/ACS/Vmax-ASAP solves amortise across
      // the methods, and every method sees this core's identical workload
      // stream.  With a workspace the subset's expansion and solves live in
      // its SubsetKey-addressed cache — shared with any other cell that put
      // the same tasks on some core (including the other span of this very
      // cell) — and the solves/simulations reuse the calling thread's
      // scratch buffers.  Workload streams stay keyed by the physical core
      // index, so cached solves never change what a cell simulates.
      std::optional<model::TaskSet> local_subset;
      std::optional<fps::FullyPreemptiveSchedule> local_fps;
      core::EvalWorkspace::PreparedCell* prep = nullptr;
      if (workspace != nullptr) {
        prep = &workspace->PrepareSubset(core::SubsetKey(set_key, owned), set,
                                         owned, dvs, core_options.scheduler);
      } else {
        local_subset.emplace(SubTaskSet(set, owned));
        local_fps.emplace(*local_subset);
      }
      const model::TaskSet& subset =
          prep != nullptr ? prep->set : *local_subset;
      const fps::FullyPreemptiveSchedule& fps =
          prep != nullptr ? prep->fps : *local_fps;
      if (s == 0) {
        result.sub_instances += fps.sub_count();
      }
      // TaskSet validation guarantees a positive hyper-period; the guard
      // keeps the per-ms normalisation from ever dividing by zero
      // regardless.
      const double hyper_period = static_cast<double>(subset.hyper_period());
      ACS_REQUIRE(hyper_period > 0.0, "subset hyper-period must be positive");

      std::optional<core::MethodContext> context;
      if (workspace != nullptr) {
        context.emplace(fps, dvs, core_options.scheduler, *workspace,
                        prep->solves);
      } else {
        context.emplace(fps, dvs, core_options.scheduler);
      }
      for (std::size_t m = 0; m < methods.size(); ++m) {
        const core::MethodOutcome outcome =
            core::EvaluateMethod(*methods[m], *context, core_options);
        FleetOutcome& fleet = result.outcomes[m];
        fleet.per_core.push_back(outcome);
        fleet.fleet.measured_energy +=
            weight * (outcome.measured_energy / hyper_period);
        fleet.fleet.predicted_energy +=
            weight * (outcome.predicted_energy / hyper_period);
        fleet.fleet.deadline_misses += outcome.deadline_misses;
        fleet.fleet.voltage_switches += outcome.voltage_switches;
        fleet.fleet.used_fallback |= outcome.used_fallback;
        fleet.fleet.solver_outer_iterations += outcome.solver_outer_iterations;
        fleet.fleet.solver_inner_iterations += outcome.solver_inner_iterations;
        fleet.fleet.solver_evaluations += outcome.solver_evaluations;
        if (dpm) {
          fleet.fleet.idle_energy +=
              weight * (outcome.idle_energy / hyper_period);
          fleet.fleet.sleep_energy +=
              weight * (outcome.sleep_energy / hyper_period);
          fleet.fleet.sleep_time += outcome.sleep_time;
          fleet.fleet.sleeps += outcome.sleeps;
          // Time-weighted powered-core tally: this core counts for the
          // span's share of the mission, minus the fraction it slept.
          const double span_ms =
              static_cast<double>(span_hp) * hyper_period;
          fleet.fleet.weighted_cores +=
              weight *
              (1.0 - (span_ms > 0.0 ? outcome.sleep_time / span_ms : 0.0));
        }
      }
    }
  }

  if (dpm) {
    // Result-charged telemetry (thread-count invariant: pure functions of
    // the cell).  Migrations are a property of the cell, sleeps and sleep
    // energy of each method's simulation.
    obs::Count(obs::metric::kDpmMigrations, realloc.migrations);
    for (const FleetOutcome& outcome : result.outcomes) {
      obs::Count(obs::metric::kDpmSleeps, outcome.fleet.sleeps);
      obs::Observe(obs::metric::kDpmSleepEnergy, outcome.fleet.sleep_energy);
    }
  }
  return result;
}

}  // namespace dvs::mp
