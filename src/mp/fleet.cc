#include "mp/fleet.h"

#include <optional>

#include "core/eval_workspace.h"
#include "fps/expansion.h"
#include "obs/trace.h"
#include "stats/rng.h"
#include "util/error.h"

namespace dvs::mp {

double FleetResult::ImprovementOver(std::size_t method_index,
                                    std::size_t baseline_index) const {
  return core::ImprovementRatio(
      outcomes.at(baseline_index).fleet.measured_energy,
      outcomes.at(method_index).fleet.measured_energy);
}

FleetResult EvaluateFleet(
    const model::TaskSet& set, const model::DvsModel& dvs,
    const Partitioner& partitioner, int cores,
    const std::vector<const core::ScheduleMethod*>& methods,
    const core::ExperimentOptions& options, const model::IdlePower& idle,
    core::EvalWorkspace* workspace, std::uint64_t set_key) {
  ACS_REQUIRE(!methods.empty(), "fleet evaluation needs at least one method");

  FleetResult result;
  result.partition = partitioner.Assign(set, dvs, cores, idle);
  ACS_REQUIRE(result.partition.cores() == cores,
              "partitioner returned " +
                  std::to_string(result.partition.cores()) +
                  " cores for a " + std::to_string(cores) + "-core fleet");
  result.partition.Validate(set);
  result.outcomes.resize(methods.size());

  const double idle_rate =
      static_cast<double>(result.partition.used_cores()) * idle.power_per_ms;
  for (FleetOutcome& outcome : result.outcomes) {
    outcome.fleet.measured_energy = idle_rate;
    outcome.fleet.predicted_energy = idle_rate;
  }

  for (int c = 0; c < result.partition.cores(); ++c) {
    const std::vector<model::TaskIndex>& owned =
        result.partition.assignment[static_cast<std::size_t>(c)];
    if (owned.empty()) {
      continue;  // power-gated
    }
    obs::Span core_span("core", "mp");
    if (core_span.enabled()) {
      core_span.Arg("core", static_cast<std::int64_t>(c));
      core_span.Arg("tasks", static_cast<std::int64_t>(owned.size()));
    }
    core::ExperimentOptions core_options = options;
    core_options.seed = stats::Rng(options.seed)
                            .ForkWith(static_cast<std::uint64_t>(c))
                            .NextU64();

    // One context per core: the WCS/ACS/Vmax-ASAP solves amortise across
    // the methods, and every method sees this core's identical workload
    // stream.  With a workspace the subset's expansion and solves live in
    // its SubsetKey-addressed cache — shared with any other cell that put
    // the same tasks on some core — and the solves/simulations reuse the
    // calling thread's scratch buffers.  Workload streams stay keyed by the
    // physical core index, so cached solves never change what a cell
    // simulates.
    std::optional<model::TaskSet> local_subset;
    std::optional<fps::FullyPreemptiveSchedule> local_fps;
    core::EvalWorkspace::PreparedCell* prep = nullptr;
    if (workspace != nullptr) {
      prep = &workspace->PrepareSubset(core::SubsetKey(set_key, owned), set,
                                       owned, dvs, core_options.scheduler);
    } else {
      local_subset.emplace(SubTaskSet(set, owned));
      local_fps.emplace(*local_subset);
    }
    const model::TaskSet& subset = prep != nullptr ? prep->set : *local_subset;
    const fps::FullyPreemptiveSchedule& fps =
        prep != nullptr ? prep->fps : *local_fps;
    result.sub_instances += fps.sub_count();
    // TaskSet validation guarantees a positive hyper-period; the guard keeps
    // the per-ms normalisation from ever dividing by zero regardless.
    const double hyper_period = static_cast<double>(subset.hyper_period());
    ACS_REQUIRE(hyper_period > 0.0, "subset hyper-period must be positive");

    std::optional<core::MethodContext> context;
    if (workspace != nullptr) {
      context.emplace(fps, dvs, core_options.scheduler, *workspace,
                      prep->solves);
    } else {
      context.emplace(fps, dvs, core_options.scheduler);
    }
    for (std::size_t m = 0; m < methods.size(); ++m) {
      const core::MethodOutcome outcome =
          core::EvaluateMethod(*methods[m], *context, core_options);
      FleetOutcome& fleet = result.outcomes[m];
      fleet.per_core.push_back(outcome);
      fleet.fleet.measured_energy += outcome.measured_energy / hyper_period;
      fleet.fleet.predicted_energy += outcome.predicted_energy / hyper_period;
      fleet.fleet.deadline_misses += outcome.deadline_misses;
      fleet.fleet.voltage_switches += outcome.voltage_switches;
      fleet.fleet.used_fallback |= outcome.used_fallback;
      fleet.fleet.solver_outer_iterations += outcome.solver_outer_iterations;
      fleet.fleet.solver_inner_iterations += outcome.solver_inner_iterations;
      fleet.fleet.solver_evaluations += outcome.solver_evaluations;
    }
  }
  return result;
}

}  // namespace dvs::mp
