// Per-core pipeline fan-out and fleet-energy aggregation.
//
// EvaluateFleet is the multi-core counterpart of core::EvaluateMethod: it
// partitions the task set, runs the unmodified offline+online pipeline —
// core::MethodContext, fps expansion, NLP solve, greedy simulation —
// independently on every powered core's subset, and folds the per-core
// results into one fleet outcome per method.
//
// Units: a core's MethodOutcome reports energy per *its own* hyper-period,
// and different cores generally have different hyper-periods, so fleet
// figures are normalised to energy per millisecond (average fleet power):
//
//   fleet = sum_c per_core_c / hyper_period_c  +  used_cores * idle.power
//
// The idle term is the always-on per-core floor of model::IdlePower; cores
// that received no task are assumed power-gated and cost nothing, which is
// what makes consolidating partitioners (ffd, energy-greedy with idle > 0)
// meaningfully different from load-balancing ones (wfd).
//
// With the DPM layer on (ExperimentOptions::dpm), the floor moves into the
// per-core simulation — which can then sleep through break-even idle
// intervals (model::SleepState) — and the mission optionally splits into
// two spans around a cross-hyper-period reallocation (dpm::Consolidate):
// the partitioner's assignment for the first realloc_after hyper-periods,
// the consolidated one for the rest, each span weighted by its share of the
// mission.  The fleet outcome then carries the idle/sleep energy breakdown,
// the migration count and a time-weighted powered-core tally.  DPM off
// keeps this file's aggregation byte-identical to the legacy pipeline.
//
// Determinism: core c's workload stream is Rng(options.seed).ForkWith(c),
// a pure function of the experiment seed and the physical core index, and
// every method sees the identical per-core streams — the paper's
// fair-comparison methodology, per core.  A post-reallocation span forks
// Rng(options.seed).ForkWith(span).ForkWith(c) — still a pure function of
// grid coordinates, never of execution order.
#ifndef ACS_MP_FLEET_H
#define ACS_MP_FLEET_H

#include <cstddef>
#include <vector>

#include "core/method_registry.h"
#include "core/pipeline.h"
#include "model/power_model.h"
#include "model/task.h"
#include "mp/partition.h"
#include "mp/partitioner.h"

namespace dvs::mp {

/// One method's fleet result: the aggregate (energy-per-ms units, see
/// above) plus the raw per-core outcomes (per-core-hyper-period units), in
/// powered-core order — under a reallocation split, the first span's cores
/// followed by the second's.
struct FleetOutcome {
  core::MethodOutcome fleet;
  std::vector<core::MethodOutcome> per_core;
};

struct FleetResult {
  Partition partition;
  std::size_t sub_instances = 0;  // summed over powered cores
  std::vector<FleetOutcome> outcomes;  // one per method, in method order

  /// (E_base - E_method) / E_base on fleet measured energy.
  double ImprovementOver(std::size_t method_index,
                         std::size_t baseline_index) const;
};

/// Partitions `set` onto `cores` cores with `partitioner` and evaluates
/// every method on every powered core.  Throws util::InfeasibleError when
/// the partitioner cannot place some task.  `workspace` (optional) is the
/// calling thread's core::EvalWorkspace: every per-core solve and
/// simulation then runs out of its reused buffers, and each core's subset
/// solves are cached under core::SubsetKey(set_key, owned tasks) — cells
/// that assign the same tasks to some core (different partitioners, core
/// counts, sigma or workload seeds on one draw) reuse the solves outright.
/// Bit-identical results either way; `set_key` is the caller's identity for
/// `set` (runner::RunGrid passes the grid SetIndex) and pure cache salt —
/// a colliding key still verifies the task set before reusing anything.
FleetResult EvaluateFleet(
    const model::TaskSet& set, const model::DvsModel& dvs,
    const Partitioner& partitioner, int cores,
    const std::vector<const core::ScheduleMethod*>& methods,
    const core::ExperimentOptions& options,
    const model::IdlePower& idle = {},
    core::EvalWorkspace* workspace = nullptr, std::uint64_t set_key = 0);

}  // namespace dvs::mp

#endif  // ACS_MP_FLEET_H
