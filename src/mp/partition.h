// Partitioned multi-core task assignment (the mp layer's core type).
//
// The mp subsystem lifts the paper's single-processor ACS/WCS machinery onto
// an identical-multiprocessor platform the way the partitioned-DVS
// literature does (Nélis et al., power-aware scheduling upon identical
// multiprocessors): tasks are statically assigned to cores, and each core
// then runs the unmodified per-core pipeline — fps expansion, offline
// ACS/WCS solve, online greedy reclamation — on its own task subset.  No
// migration, so every single-processor guarantee (including the
// sim::VerifyWorstCase audit) applies per core verbatim.
//
// A Partition is the assignment itself: `assignment[c]` lists the task
// indices (into the original TaskSet) owned by core c, each task appearing
// on exactly one core.
#ifndef ACS_MP_PARTITION_H
#define ACS_MP_PARTITION_H

#include <string>
#include <vector>

#include "model/power_model.h"
#include "model/task.h"

namespace dvs::mp {

struct Partition {
  /// assignment[c] = indices into the partitioned TaskSet owned by core c.
  /// Cores may be empty (a valid outcome when the set needs fewer cores).
  std::vector<std::vector<model::TaskIndex>> assignment;

  int cores() const { return static_cast<int>(assignment.size()); }

  /// Number of cores that received at least one task.
  int used_cores() const;

  /// Checks the assignment against `set`: every task index valid and placed
  /// on exactly one core.  Throws InvalidArgumentError on violation.
  void Validate(const model::TaskSet& set) const;

  /// Worst-case utilisation of core `c` at the model's top speed.
  double CoreUtilization(const model::TaskSet& set, const model::DvsModel& dvs,
                         int c) const;

  /// e.g. "core0{T1,T3} core1{T2}".
  std::string Describe(const model::TaskSet& set) const;
};

/// Builds the validated TaskSet a core runs: the subset of `set` selected by
/// `tasks`, in ascending task-index order (preserving the RM priority
/// relation of the original set).  Throws InvalidArgumentError when `tasks`
/// is empty — an idle core has no per-core pipeline to run.
model::TaskSet SubTaskSet(const model::TaskSet& set,
                          const std::vector<model::TaskIndex>& tasks);

}  // namespace dvs::mp

#endif  // ACS_MP_PARTITION_H
