// Cache-affinity cell scheduling: family construction + LPT assignment.
//
// The per-worker core::EvalWorkspace caches per-*task-set* state — the FPS
// expansion, the WCS/ACS/Vmax-ASAP solves, the planned-solve and
// calibration caches — keyed by the grid's SetIndex.  The cursor handout
// (ThreadPool::ParallelFor) scatters a set's sibling cells across workers,
// so each worker re-solves what a sibling's worker already holds.  A
// *family* is the contiguous run of cell indices owned by one SetIndex;
// scheduling whole families onto workers keeps every set's solves on
// exactly one worker's cache (modulo stealing), which is where the
// solve-cache hit-rate gain at 4+ threads comes from.
//
// Assignment is longest-processing-time (LPT) over a per-family cost model
// whose weights were calibrated from the phase-trace telemetry of grid
// runs (the solve/cell wall-time histograms): NLP solve cost grows
// super-linearly with the task count while simulation scales with
// hyper-periods x cells.  The model only has to rank families — imbalance
// is mopped up at runtime by family-granular work stealing
// (ThreadPool::ParallelForFamilies).
//
// Determinism: LPT decides only WHICH worker owns a family; every worker's
// queue keeps its families in ascending id order and cells run in
// ascending order inside a family, so a 1-thread run visits cells in
// exactly the serial order — the golden-bytes guarantee — and any thread
// count produces bit-identical cell results (cells are pure functions of
// (grid, cell_index); see runner/run_grid.h).
#ifndef ACS_RUNNER_FAMILY_H
#define ACS_RUNNER_FAMILY_H

#include <cstddef>
#include <vector>

#include "runner/experiment_grid.h"

namespace dvs::runner {

/// How RunGrid hands cells to workers.
enum class CellScheduling {
  /// Families (one per SetIndex) LPT-assigned to workers, stolen whole.
  kFamilyAffinity,
  /// The legacy atomic-cursor handout, one cell at a time.
  kCursor,
};

/// Cost-model weights, in arbitrary but mutually consistent units
/// (calibrated from solve.wall_us / cell.wall_us traces: one ALM solve of
/// a 6-task set costs roughly 400x one simulated hyper-period).
struct FamilyCostWeights {
  /// Fixed cost of one NLP solve (ALM outer loop + repair).
  double solve_base = 200.0;
  /// Additional solve cost per task (the reduced NLP's variable count —
  /// and with it SPG iteration cost — grows with the expansion).
  double solve_per_task = 40.0;
  /// Cost of simulating one hyper-period of one method.
  double sim_per_hyper_period = 1.0;
  /// Fixed per-cell overhead (task-set draw, context setup, sinks).
  double cell_base = 25.0;
  /// Cost of one scenario calibration (sampling + sorting the draws).
  double calibration = 120.0;
};

/// One family: the contiguous cell-index run of one task-set draw.
struct CellFamily {
  std::size_t id = 0;         // dense, ascending with begin
  std::size_t set_index = 0;  // the owning SetIndex
  std::size_t begin = 0;      // first cell index
  std::size_t end = 0;        // one past the last cell index
  double cost = 0.0;          // modelled cost (see FamilyCostWeights)

  std::size_t CellCount() const { return end - begin; }
};

/// A complete assignment of families to workers.
struct FamilySchedule {
  std::vector<CellFamily> families;  // ascending by begin
  std::vector<std::size_t> owner;    // families[i] runs on owner[i]
  std::vector<double> worker_cost;   // modelled load per worker

  std::size_t TotalCells() const;
  /// Cells assigned to `worker` (before stealing).
  std::size_t WorkerCells(std::size_t worker) const;
};

/// Modelled evaluation cost of one family of `grid` (`set_index` selects
/// the source/replicate/util draw; the per-cell inner axes are implied by
/// the grid shape).
double FamilyCost(const ExperimentGrid& grid, std::size_t set_index,
                  const FamilyCostWeights& weights = {});

/// Builds the family schedule of the shard window [set_begin, set_end):
/// one family per in-window SetIndex, costed with `weights` and
/// LPT-assigned to `workers` workers (largest cost first, least-loaded
/// worker, deterministic tie-breaks: equal costs order by family id,
/// equal loads pick the lowest worker).  `workers` must be >= 1.
FamilySchedule BuildFamilySchedule(const ExperimentGrid& grid,
                                   std::size_t set_begin,
                                   std::size_t set_end, std::size_t workers,
                                   const FamilyCostWeights& weights = {});

}  // namespace dvs::runner

#endif  // ACS_RUNNER_FAMILY_H
