// Declarative experiment-grid descriptor.
//
// An ExperimentGrid is the cartesian product of
//
//   task-set sources x replicates x utilizations x sigma divisors x seeds
//
// where every product point is one *cell*.  Within a cell the grid's
// registry methods are all evaluated on the same task set and identical
// workload realisations (the paper's fair-comparison methodology), so the
// method list is an inner dimension of the cell, not a cell axis — shared
// solves (WCS warm start, Vmax-ASAP) then amortise across methods through
// the core::MethodContext.
//
// Seeding: every cell derives an independent stats::Rng stream from
// (master_seed, cell_index) alone, so a cell's result is a pure function of
// the grid — execution order and thread count cannot change any bit of the
// output (see runner/run_grid.h and the runner determinism test).
#ifndef ACS_RUNNER_EXPERIMENT_GRID_H
#define ACS_RUNNER_EXPERIMENT_GRID_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/method_registry.h"
#include "core/scheduler.h"
#include "model/power_model.h"
#include "model/task.h"
#include "stats/rng.h"
#include "workload/random_taskset.h"

namespace dvs::runner {

/// One task-set axis entry: either a fixed (real-life) set replayed under
/// different workload streams, or a random-generator spec drawn `replicates`
/// times with independent per-cell streams.
struct TaskSetSource {
  std::string label;
  std::optional<model::TaskSet> fixed;
  workload::RandomTaskSetOptions random;  // used when !fixed
  std::int64_t replicates = 1;            // forced to 1 for fixed sets

  std::int64_t Replicates() const { return fixed.has_value() ? 1 : replicates; }
};

TaskSetSource FixedSource(std::string label, model::TaskSet set);
TaskSetSource RandomSource(std::string label,
                           const workload::RandomTaskSetOptions& options,
                           std::int64_t replicates);

/// Position of one cell in the grid (plus its flattened index).
struct CellCoord {
  std::size_t cell_index = 0;
  std::size_t source = 0;     // index into ExperimentGrid::sources
  std::int64_t replicate = 0; // 0 .. Replicates()-1
  std::size_t util_index = 0; // index into utilizations (0 when empty)
  std::size_t sigma_index = 0;
  std::size_t seed_index = 0; // index into workload_seeds
};

struct ExperimentGrid {
  const model::DvsModel* dvs = nullptr;  // non-owning; required
  std::vector<TaskSetSource> sources;
  /// Worst-case utilization overrides for random sources; empty keeps each
  /// source's own value.  Fixed sources ignore this axis.
  std::vector<double> utilizations;
  std::vector<double> sigma_divisors = {6.0};
  /// Workload-stream labels: each entry yields an independent realisation
  /// stream per cell (replaying fixed sets under `k` streams = `k` entries).
  std::vector<std::uint64_t> workload_seeds = {0};
  /// Registry method names evaluated per cell, e.g. {"acs", "wcs"}.
  std::vector<std::string> methods = {"acs", "wcs"};
  /// Improvement reference; must be listed in `methods`.
  std::string baseline = "wcs";
  std::int64_t hyper_periods = 200;
  std::uint64_t master_seed = 20050307;
  core::SchedulerOptions scheduler;

  std::size_t CellCount() const;
  CellCoord Coord(std::size_t cell_index) const;

  /// Index of `baseline` within `methods`.
  std::size_t BaselineIndex() const;

  /// Validates axes and resolves every method name against `registry`;
  /// throws InvalidArgumentError with the offending field on failure.
  void Validate(const core::MethodRegistry& registry) const;

  /// The independent per-cell stream: a pure function of (master_seed,
  /// cell_index).
  stats::Rng CellRng(std::size_t cell_index) const;

  /// The two streams one cell consumes, in derivation order.
  struct CellStreams {
    stats::Rng set_rng;            // task-set generation
    std::uint64_t workload_seed;   // workload realisations
  };
  CellStreams Streams(const CellCoord& coord) const;

  /// Draws (random source) or copies (fixed source) the cell's task set —
  /// bit-identical to what RunGrid evaluates, so benches can recover any
  /// cell's input after the fact.
  model::TaskSet MaterializeTaskSet(const CellCoord& coord) const;
};

}  // namespace dvs::runner

#endif  // ACS_RUNNER_EXPERIMENT_GRID_H
