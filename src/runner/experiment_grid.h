// Declarative experiment-grid descriptor.
//
// An ExperimentGrid is the cartesian product of
//
//   task-set sources x replicates x utilizations x core counts x
//   partitioners x scenarios x sigma divisors x seeds
//
// where every product point is one *cell*.  Within a cell the grid's
// registry methods are all evaluated on the same task set and identical
// workload realisations (the paper's fair-comparison methodology), so the
// method list is an inner dimension of the cell, not a cell axis — shared
// solves (WCS warm start, Vmax-ASAP) then amortise across methods through
// the core::MethodContext.
//
// Seeding: every cell derives its streams from the master seed and its own
// coordinates alone, so a cell's result is a pure function of the grid —
// execution order and thread count cannot change any bit of the output (see
// runner/run_grid.h and the runner determinism test).  The task-set stream
// is keyed by the *set index* — (source, replicate, utilization) only — so
// cells that differ purely in the core-count, partitioner, scenario, sigma
// or workload-seed axes draw bit-identical task sets and those axes compare
// paired, not across a seed lottery.  The scenario axis additionally shares
// the workload-seed derivation: scenarios compare on identical task sets
// AND identical seed labels, differing only in how the stream is
// transformed into per-job cycles (paired-draw seeding).
#ifndef ACS_RUNNER_EXPERIMENT_GRID_H
#define ACS_RUNNER_EXPERIMENT_GRID_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/method_registry.h"
#include "core/scheduler.h"
#include "dpm/options.h"
#include "model/power_model.h"
#include "model/task.h"
#include "mp/partitioner.h"
#include "stats/rng.h"
#include "workload/random_taskset.h"
#include "workload/scenario.h"

namespace dvs::runner {

/// One task-set axis entry: either a fixed (real-life) set replayed under
/// different workload streams, or a random-generator spec drawn `replicates`
/// times with independent per-cell streams.
struct TaskSetSource {
  std::string label;
  std::optional<model::TaskSet> fixed;
  workload::RandomTaskSetOptions random;  // used when !fixed
  std::int64_t replicates = 1;            // forced to 1 for fixed sets

  std::int64_t Replicates() const { return fixed.has_value() ? 1 : replicates; }
};

TaskSetSource FixedSource(std::string label, model::TaskSet set);
TaskSetSource RandomSource(std::string label,
                           const workload::RandomTaskSetOptions& options,
                           std::int64_t replicates);

/// Position of one cell in the grid (plus its flattened index).
struct CellCoord {
  std::size_t cell_index = 0;
  std::size_t source = 0;     // index into ExperimentGrid::sources
  std::int64_t replicate = 0; // 0 .. Replicates()-1
  std::size_t util_index = 0; // index into utilizations (0 when empty)
  std::size_t core_index = 0; // index into core_counts
  std::size_t partitioner_index = 0;  // index into partitioners
  std::size_t scenario_index = 0;     // index into scenarios
  std::size_t sigma_index = 0;
  std::size_t seed_index = 0; // index into workload_seeds
};

struct ExperimentGrid {
  const model::DvsModel* dvs = nullptr;  // non-owning; required
  std::vector<TaskSetSource> sources;
  /// Worst-case utilization overrides for random sources; empty keeps each
  /// source's own value.  Fixed sources ignore this axis.  With multi-core
  /// axes the values may reach (0, max core count): a cell's set is a fleet
  /// demand, partitioned before any per-core pipeline runs.
  std::vector<double> utilizations;
  /// Identical-multiprocessor axes (src/mp).  A cell whose core count
  /// exceeds 1 (or whose grid charges idle power) partitions its task set
  /// with the named mp partitioner and runs the per-core pipeline on every
  /// powered core; its MethodOutcomes are then *fleet* figures in energy-
  /// per-ms units (see mp/fleet.h).  The defaults keep single-core grids
  /// bit-identical to the pre-mp runner.
  std::vector<int> core_counts = {1};
  std::vector<std::string> partitioners = {"ffd"};
  /// Registry the partitioner names resolve against; null selects
  /// mp::PartitionerRegistry::Builtin().  Non-owning (like `dvs`): point it
  /// at a custom registry to plug experiment-specific strategies into the
  /// grid, mirroring how RunGrid takes a custom MethodRegistry.
  const mp::PartitionerRegistry* partitioner_registry = nullptr;
  /// Always-on per-powered-core power floor for multi-core cells.
  model::IdlePower idle_power;
  /// Leakage-aware DPM layer (sleep states, critical-speed floor,
  /// cross-hyper-period reallocation), applied to every cell.  Requires a
  /// non-zero idle_power when enabled (there is no floor to manage
  /// otherwise — Validate enforces it); dpm.idle itself is overwritten per
  /// cell with `idle_power`, the grid's single source of truth for the
  /// floor.  Note the critical-speed floor is realised by wrapping `dvs` in
  /// a dpm::CriticalSpeedFloor at the driver — see dpm/dpm.h.
  dpm::Options dpm;
  /// Voltage-transition overhead charged in every cell's simulation.
  model::TransitionOverhead transition;
  /// Execution-time scenario axis (workload::ScenarioRegistry names).  The
  /// default single "iid-normal" entry keeps every grid bit-identical to
  /// the pre-scenario runner.  Cells differing only on this axis share both
  /// their task-set draw and their workload-seed label (see the header
  /// comment), so scenarios compare paired.
  std::vector<std::string> scenarios = {"iid-normal"};
  /// Registry the scenario names resolve against; null selects
  /// workload::ScenarioRegistry::Builtin().  Non-owning (like `dvs` and
  /// `partitioner_registry`): point it at a custom registry to sweep
  /// experiment-specific processes, e.g. a LoadTraceScenario recording.
  const workload::ScenarioRegistry* scenario_registry = nullptr;
  std::vector<double> sigma_divisors = {6.0};
  /// Warm-start policy of the scenario-conditioned planning arms.  kOff
  /// (default) keeps every cell byte-identical to the pre-warm-start
  /// runner; kNeighbor makes a cell at sigma index k solve the sigma-axis
  /// prefix chain [0..k] in order, each solve seeded from the previous
  /// converged schedule (continuation).  The chain is defined by grid
  /// coordinates alone, so determinism is unaffected; with a shared
  /// workspace, sigma-sibling cells reuse chain prefixes from the solve
  /// cache instead of re-solving them.
  core::WarmStartPolicy warm_start = core::WarmStartPolicy::kOff;
  /// Scenario-conditioned planning knobs (quantile, mixture size,
  /// calibration samples), applied to every cell; only the acs-scenario /
  /// acs-quantile / acs-mixture arms read them.  Not a grid axis: sweeping
  /// planning configurations is done by running sibling grids (the same
  /// master seed keeps their cells paired), exactly like the bench sweeps
  /// sigma-insensitive scenarios.
  core::PlanningOptions planning;
  /// Online expected-case dispatch + drift replanning knobs, applied to
  /// every cell; only the acs-online / acs-online-drift arms read them.
  core::OnlineOptions online;
  /// Workload-stream labels: each entry yields an independent realisation
  /// stream per cell (replaying fixed sets under `k` streams = `k` entries).
  std::vector<std::uint64_t> workload_seeds = {0};
  /// Registry method names evaluated per cell, e.g. {"acs", "wcs"}.
  std::vector<std::string> methods = {"acs", "wcs"};
  /// Improvement reference; must be listed in `methods`.
  std::string baseline = "wcs";
  std::int64_t hyper_periods = 200;
  std::uint64_t master_seed = 20050307;
  core::SchedulerOptions scheduler;

  std::size_t CellCount() const;
  CellCoord Coord(std::size_t cell_index) const;

  /// Number of distinct task-set draws: SetIndex(coord) ranges over
  /// [0, SetCount()).  Because (source, replicate, util) are the grid's
  /// outermost axes, each SetIndex owns one contiguous run of cell indices
  /// — the property the sharded runner splits on (runner::RunOptions).
  std::size_t SetCount() const;

  /// Index of `baseline` within `methods`.
  std::size_t BaselineIndex() const;

  /// True when the cores axis holds any entry above 1.  Deliberately
  /// narrower than MultiCore(): this is the trigger for *fleet-demand task
  /// set draws* (MaterializeTaskSet), while MultiCore() additionally fires
  /// on an idle-power floor alone — an idle-only grid takes the fleet
  /// execution path but must keep drawing the exact pre-mp single-core
  /// sets (the bit-compatibility guarantee).
  bool AnyCoreAboveOne() const;

  /// True when this grid's cells take the multi-core (partitioned fleet)
  /// path: AnyCoreAboveOne() or a non-zero idle-power floor.  The routing
  /// is per grid, not per cell, so a mixed cores axis reports every cell —
  /// m = 1 included — in the same fleet energy-per-ms units.
  bool MultiCore() const;

  /// The effective partitioner registry (`partitioner_registry` or the
  /// built-ins).
  const mp::PartitionerRegistry& Partitioners() const;

  /// The effective scenario registry (`scenario_registry` or the
  /// built-ins).
  const workload::ScenarioRegistry& Scenarios() const;

  /// Validates axes, resolves every method name against `registry` and
  /// every partitioner name against Partitioners(); throws
  /// InvalidArgumentError with the offending field on failure.
  void Validate(const core::MethodRegistry& registry) const;

  /// The independent per-cell stream: a pure function of (master_seed,
  /// cell_index).
  stats::Rng CellRng(std::size_t cell_index) const;

  /// Flattened index of the cell's task-set draw: (source, replicate,
  /// util_index) only.  Cells equal on those coordinates — however they
  /// differ on the core/partitioner/scenario/sigma/workload-seed axes —
  /// share it, and with it their task set.
  std::size_t SetIndex(const CellCoord& coord) const;

  /// The two streams one cell consumes, both keyed by SetIndex (the
  /// workload stream additionally by the cell's seed-axis label).
  struct CellStreams {
    stats::Rng set_rng;            // task-set generation
    std::uint64_t workload_seed;   // workload realisations
  };
  CellStreams Streams(const CellCoord& coord) const;

  /// Draws (random source) or copies (fixed source) the cell's task set —
  /// bit-identical to what RunGrid evaluates, so benches can recover any
  /// cell's input after the fact.
  model::TaskSet MaterializeTaskSet(const CellCoord& coord) const;
};

}  // namespace dvs::runner

#endif  // ACS_RUNNER_EXPERIMENT_GRID_H
