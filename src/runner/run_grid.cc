#include "runner/run_grid.h"

#include <cmath>
#include <utility>

#include "core/solve_store.h"
#include "fps/expansion.h"
#include "mp/fleet.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/family.h"
#include "runner/thread_pool.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/simd.h"

namespace dvs::runner {
namespace {

CellResult RunCell(const ExperimentGrid& grid,
                   const std::vector<const core::ScheduleMethod*>& methods,
                   std::size_t cell_index, core::EvalWorkspace& workspace) {
  CellResult cell;
  cell.coord = grid.Coord(cell_index);
  // Telemetry: the cell span/labels scope every nested solve/simulate
  // record to this cell, and the wall histogram feeds cell.wall_us.
  const double sigma = grid.sigma_divisors[cell.coord.sigma_index];
  const std::string& scenario_name =
      grid.scenarios[cell.coord.scenario_index];
  obs::RunContext run_context;
  run_context.cell = static_cast<std::int64_t>(cell_index);
  run_context.set = static_cast<std::int64_t>(grid.SetIndex(cell.coord));
  run_context.scenario = scenario_name.c_str();
  run_context.sigma = sigma;
  const obs::ScopedRunContext context_scope(run_context);
  obs::ScopedWallTimer cell_timer(obs::metric::kCellWallUs);
  obs::Span span("cell", "grid");
  if (span.enabled()) {
    span.Arg("cell", static_cast<std::int64_t>(cell_index));
    span.Arg("set", run_context.set);
    span.Arg("scenario", scenario_name);
    span.Arg("sigma", sigma);
  }
  try {
    const ExperimentGrid::CellStreams streams = grid.Streams(cell.coord);
    const model::TaskSet set = grid.MaterializeTaskSet(cell.coord);
    cell.hyper_period = set.hyper_period();

    core::ExperimentOptions options;
    options.hyper_periods = grid.hyper_periods;
    options.sigma_divisor = grid.sigma_divisors[cell.coord.sigma_index];
    options.seed = streams.workload_seed;
    options.transition = grid.transition;
    // The cell's execution-time process; the registry entry outlives the
    // grid run, and mp's per-core option copies carry the pointer along.
    options.scenario =
        &grid.Scenarios().Get(grid.scenarios[cell.coord.scenario_index]);
    options.scenario_key = scenario_name;
    options.planning = grid.planning;
    options.online = grid.online;
    options.scheduler = grid.scheduler;
    options.warm_start = grid.warm_start;
    options.dpm = grid.dpm;
    if (grid.warm_start == core::WarmStartPolicy::kNeighbor) {
      // The cell's continuation chain: the sigma-axis prefix through its
      // own divisor, in axis order (see core::WarmStartPolicy::kNeighbor).
      options.sigma_chain.assign(
          grid.sigma_divisors.begin(),
          grid.sigma_divisors.begin() + cell.coord.sigma_index + 1);
    }

    if (!grid.MultiCore()) {
      // Single-core grid: the original per-cell pipeline, bit-identical to
      // the pre-mp runner.  The workspace caches the expansion and the
      // WCS / ACS / Vmax-ASAP solves per SetIndex, so cells differing only
      // on the sigma / workload-seed axes skip straight to simulation —
      // and every method still sees the identical workload stream.  (Cache
      // hits depend on which worker ran the sibling cell, but the solves
      // are deterministic, so results never do.)
      core::EvalWorkspace::PreparedCell& prep =
          workspace.Prepare(grid.SetIndex(cell.coord), set, *grid.dvs,
                            options.scheduler);
      cell.sub_instances = prep.fps.sub_count();
      core::MethodContext context(prep.fps, *grid.dvs, options.scheduler,
                                  workspace, prep.solves);
      cell.outcomes.reserve(methods.size());
      for (const core::ScheduleMethod* method : methods) {
        cell.outcomes.push_back(EvaluateMethod(*method, context, options));
      }
    } else {
      // Multi-core grid: partition, then per-core pipelines; outcomes are
      // fleet figures in energy-per-ms units (mp/fleet.h) for every cell,
      // m = 1 included, so a mixed cores axis compares in one unit.  The
      // per-core subsets vary with the cores/partitioner axes, so only the
      // workspace buffers are shared, not the solve cache.
      const int cores = grid.core_counts[cell.coord.core_index];
      const mp::Partitioner& partitioner = grid.Partitioners().Get(
          grid.partitioners[cell.coord.partitioner_index]);
      const mp::FleetResult fleet = mp::EvaluateFleet(
          set, *grid.dvs, partitioner, cores, methods, options,
          grid.idle_power, &workspace, grid.SetIndex(cell.coord));
      cell.sub_instances = fleet.sub_instances;
      cell.outcomes.reserve(methods.size());
      for (const mp::FleetOutcome& outcome : fleet.outcomes) {
        cell.outcomes.push_back(outcome.fleet);
      }
    }
  } catch (const util::Error& error) {
    cell.outcomes.clear();
    cell.sub_instances = 0;
    cell.hyper_period = 0;  // the documented failed-cell contract
    cell.error = error.what();
    ACS_LOG_WARN << "grid cell " << cell_index << " failed: " << cell.error;
  }
  // Result-charged counters, replayed from the outcomes: identical at any
  // thread count because the outcomes themselves are.
  if (cell.ok()) {
    obs::Count(obs::metric::kCellsEvaluated);
    for (const core::MethodOutcome& outcome : cell.outcomes) {
      obs::Count(obs::metric::kSolverOuter, outcome.solver_outer_iterations);
      obs::Count(obs::metric::kSolverInner, outcome.solver_inner_iterations);
      obs::Count(obs::metric::kSolverEvals, outcome.solver_evaluations);
      obs::Count(obs::metric::kDeadlineMisses, outcome.deadline_misses);
      if (outcome.used_fallback) {
        obs::Count(obs::metric::kFallbacks);
      }
    }
  } else {
    obs::Count(obs::metric::kCellsFailed);
  }
  if (span.enabled()) {
    span.Arg("ok", cell.ok() ? "true" : "false");
  }
  return cell;
}

/// Family-scheduling telemetry, charged on shard 0 after the workers have
/// joined (the quiescent phase, so no ScopedMetricsShard is needed).
void MetricsShardObserveFamilyStats(obs::MetricsRegistry& metrics,
                                    const FamilyStats& stats) {
  metrics.Shard(0).Count(obs::metric::kFamilySteals,
                         static_cast<std::int64_t>(stats.steals));
  for (const std::size_t cells : stats.cells_per_worker) {
    metrics.Shard(0).Observe(obs::metric::kFamilyCellsPerWorker,
                             static_cast<double>(cells));
  }
}

}  // namespace

double CellResult::ImprovementOver(std::size_t method_index,
                                   std::size_t baseline_index) const {
  return core::ImprovementRatio(outcomes.at(baseline_index).measured_energy,
                                outcomes.at(method_index).measured_energy);
}

void ProgressSink::OnCell(const ExperimentGrid& grid, const CellResult& cell) {
  std::lock_guard<std::mutex> lock(mutex_);
  method_energy_.resize(grid.methods.size());
  ++completed_;
  if (!cell.ok()) {
    ++failed_;
    return;
  }
  for (std::size_t m = 0; m < cell.outcomes.size(); ++m) {
    method_energy_[m].Add(cell.outcomes[m].measured_energy);
  }
}

std::size_t ProgressSink::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t ProgressSink::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

stats::OnlineStats ProgressSink::MethodEnergy(std::size_t method_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  // The vector is sized on the first OnCell; polling earlier just reads an
  // empty accumulator.
  return method_index < method_energy_.size() ? method_energy_[method_index]
                                              : stats::OnlineStats{};
}

MethodAggregate GridResult::Aggregate(const ExperimentGrid& grid,
                                      std::size_t method_index,
                                      std::int64_t source_index) const {
  const std::size_t baseline = grid.BaselineIndex();
  MethodAggregate aggregate;
  for (const CellResult& cell : cells) {
    if (cell.skipped || !cell.ok()) {
      continue;
    }
    if (source_index >= 0 &&
        cell.coord.source != static_cast<std::size_t>(source_index)) {
      continue;
    }
    const core::MethodOutcome& outcome = cell.outcomes.at(method_index);
    aggregate.measured_energy.Add(outcome.measured_energy);
    if (method_index != baseline) {
      // Degenerate ratios (zero/non-finite baseline — core::ImprovementRatio)
      // are excluded rather than allowed to poison the running mean.
      const double improvement = cell.ImprovementOver(method_index, baseline);
      if (std::isfinite(improvement)) {
        aggregate.improvement.Add(improvement);
      }
    }
    aggregate.deadline_misses += outcome.deadline_misses;
    aggregate.fallbacks += outcome.used_fallback ? 1 : 0;
  }
  return aggregate;
}

GridResult RunGrid(const ExperimentGrid& grid,
                   const core::MethodRegistry& registry,
                   const RunOptions& options) {
  grid.Validate(registry);
  ACS_REQUIRE(options.shard_count >= 1, "shard count must be at least 1");
  ACS_REQUIRE(options.shard_index < options.shard_count,
              "shard index must be below the shard count");

  std::vector<const core::ScheduleMethod*> methods;
  methods.reserve(grid.methods.size());
  for (const std::string& name : grid.methods) {
    methods.push_back(&registry.Get(name));
  }

  const std::size_t cell_count = grid.CellCount();
  GridResult result;
  result.cells.resize(cell_count);

  // The shard's SetIndex ownership window (the whole grid when unsharded).
  const std::size_t set_count = grid.SetCount();
  const std::size_t set_begin =
      options.shard_index * set_count / options.shard_count;
  const std::size_t set_end =
      (options.shard_index + 1) * set_count / options.shard_count;

  ThreadPool pool(options.threads);
  ACS_LOG_INFO << "RunGrid: " << cell_count << " cells x "
               << grid.methods.size() << " methods on " << pool.size()
               << " threads"
               << (options.shard_count > 1
                       ? " (shard " + std::to_string(options.shard_index) +
                             "/" + std::to_string(options.shard_count) + ")"
                       : "");

  // Telemetry: one metrics shard per worker (sized before any worker runs,
  // so the hot path never grows the shard vector), run-layout gauges on
  // shard 0, and the whole-grid span.  All observation-only.
  obs::MetricsRegistry* const metrics = obs::ActiveMetrics();
  if (metrics != nullptr) {
    metrics->EnsureShards(static_cast<std::size_t>(pool.size()));
    metrics->Shard(0).SetGauge(obs::metric::kThreads,
                               static_cast<double>(pool.size()));
    metrics->Shard(0).SetGauge(obs::metric::kShardCount,
                               static_cast<double>(options.shard_count));
  }
  obs::Span grid_span("grid", "grid");
  if (grid_span.enabled()) {
    grid_span.Arg("cells", static_cast<std::int64_t>(cell_count));
    grid_span.Arg("methods", static_cast<std::int64_t>(grid.methods.size()));
    grid_span.Arg("threads", static_cast<std::int64_t>(pool.size()));
    grid_span.Arg("shard", static_cast<std::int64_t>(options.shard_index));
    grid_span.Arg("shard_count",
                  static_cast<std::int64_t>(options.shard_count));
    grid_span.Arg("simd", util::simd::LevelName(util::simd::Active()));
  }

  // One evaluation workspace per worker: caller-provided ones stay warm
  // across grids (bench --grid-repeats, the CI cold/warm timing step),
  // call-local ones still amortise buffers across this grid's cells.
  std::vector<core::EvalWorkspace> local_workspaces;
  std::vector<core::EvalWorkspace>& workspaces =
      options.workspaces != nullptr ? *options.workspaces : local_workspaces;
  if (workspaces.size() < static_cast<std::size_t>(pool.size())) {
    workspaces.resize(static_cast<std::size_t>(pool.size()));
  }
  // Attach (or detach) the persistent store on every workspace — set
  // unconditionally so a workspace vector reused across RunGrid calls can
  // never keep a stale store pointer alive.
  for (core::EvalWorkspace& workspace : workspaces) {
    workspace.set_solve_store(options.solve_store);
  }

  if (options.scheduling == CellScheduling::kFamilyAffinity) {
    // Cache-affinity handout (runner/family.h): pre-mark the out-of-window
    // cells serially, then schedule whole families onto workers so each
    // task set's solves stay on one worker's cache.
    {
      const obs::ScopedMetricsShard shard_scope(
          metrics != nullptr ? &metrics->Shard(0) : nullptr);
      for (std::size_t cell_index = 0; cell_index < cell_count;
           ++cell_index) {
        const CellCoord coord = grid.Coord(cell_index);
        const std::size_t set_index = grid.SetIndex(coord);
        if (set_index < set_begin || set_index >= set_end) {
          result.cells[cell_index].coord = coord;
          result.cells[cell_index].skipped = true;
          obs::Count(obs::metric::kCellsSkipped);
        }
      }
    }
    const FamilySchedule schedule =
        BuildFamilySchedule(grid, set_begin, set_end,
                            static_cast<std::size_t>(pool.size()),
                            options.family_weights);
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ranges.reserve(schedule.families.size());
    for (const CellFamily& family : schedule.families) {
      ranges.emplace_back(family.begin, family.end);
    }
    if (metrics != nullptr) {
      metrics->Shard(0).SetGauge(obs::metric::kFamilyCount,
                                 static_cast<double>(ranges.size()));
    }
    const FamilyStats stats = pool.ParallelForFamilies(
        ranges, schedule.owner,
        [&](std::size_t worker, std::size_t cell_index) {
          const obs::ScopedMetricsShard shard_scope(
              metrics != nullptr ? &metrics->Shard(worker) : nullptr);
          CellResult& cell = result.cells[cell_index];
          cell = RunCell(grid, methods, cell_index, workspaces[worker]);
          if (options.sink != nullptr) {
            options.sink->OnCell(grid, cell);
          }
        });
    if (metrics != nullptr) {
      MetricsShardObserveFamilyStats(*metrics, stats);
    }
  } else {
    pool.ParallelFor(cell_count, [&](std::size_t worker,
                                     std::size_t cell_index) {
      const obs::ScopedMetricsShard shard_scope(
          metrics != nullptr ? &metrics->Shard(worker) : nullptr);
      CellResult& cell = result.cells[cell_index];
      const CellCoord coord = grid.Coord(cell_index);
      const std::size_t set_index = grid.SetIndex(coord);
      if (set_index < set_begin || set_index >= set_end) {
        cell.coord = coord;
        cell.skipped = true;
        obs::Count(obs::metric::kCellsSkipped);
        return;
      }
      cell = RunCell(grid, methods, cell_index, workspaces[worker]);
      if (options.sink != nullptr) {
        options.sink->OnCell(grid, cell);
      }
    });
  }

  // Flush every workspace's resident solves into the persistent store (the
  // evicted ones were absorbed on the way out); write-back to disk is the
  // caller's call, after however many grids it runs against the store.
  if (options.solve_store != nullptr) {
    for (const core::EvalWorkspace& workspace : workspaces) {
      workspace.AbsorbInto(*options.solve_store);
    }
  }

  for (const CellResult& cell : result.cells) {
    result.failed_cells += (!cell.skipped && !cell.ok()) ? 1 : 0;
  }
  return result;
}

GridResult RunGrid(const ExperimentGrid& grid, const RunOptions& options) {
  return RunGrid(grid, core::MethodRegistry::Builtin(), options);
}

}  // namespace dvs::runner
