#include "runner/csv_sink.h"

#include <cmath>
#include <cstdio>

#include "util/csv.h"
#include "util/error.h"

namespace dvs::runner {
namespace {

std::string FormatG(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

const std::vector<std::string>& CsvSink::Header() {
  // hyper_period is the per-hyper-period -> per-ms conversion factor:
  // single-core grids report energies per hyper-period, multi-core grids
  // per ms (see run_grid.h), and this column is what lets a consumer put
  // rows from both on one scale.
  static const std::vector<std::string> header = {
      "cell_index",      "source",          "replicate",
      "utilization",     "cores",           "partitioner",
      "sigma_divisor",   "workload_seed",   "sub_instances",
      "hyper_period",    "method",          "predicted_energy",
      "measured_energy", "improvement_pct", "deadline_misses",
      "voltage_switches", "used_fallback",  "error"};
  return header;
}

const std::vector<std::string>& CsvSink::HeaderWithScenario() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> columns = Header();
    for (std::size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == "workload_seed") {
        columns.insert(columns.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       "scenario");
        break;
      }
    }
    return columns;
  }();
  return header;
}

const std::vector<std::string>& CsvSink::SolverStatsColumns() {
  static const std::vector<std::string> columns = {
      "solver_outer_iterations", "solver_inner_iterations",
      "solver_evaluations"};
  return columns;
}

const std::vector<std::string>& CsvSink::DpmColumns() {
  static const std::vector<std::string> columns = {
      "idle_energy", "sleep_energy", "dpm_sleeps", "dpm_migrations",
      "weighted_cores"};
  return columns;
}

CsvSink::CsvSink(const std::string& path, bool scenario_column,
                 bool solver_stats_columns, bool dpm_columns)
    : out_(path),
      scenario_column_(scenario_column),
      solver_stats_columns_(solver_stats_columns),
      dpm_columns_(dpm_columns) {
  if (!out_) {
    throw util::Error("cannot open CSV sink file: " + path);
  }
  std::vector<std::string> header =
      scenario_column_ ? HeaderWithScenario() : Header();
  if (solver_stats_columns_) {
    // Between used_fallback and error, per the documented schema.
    header.insert(header.end() - 1, SolverStatsColumns().begin(),
                  SolverStatsColumns().end());
  }
  if (dpm_columns_) {
    // After the solver stats (when present), still before error.
    header.insert(header.end() - 1, DpmColumns().begin(), DpmColumns().end());
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    out_ << (i == 0 ? "" : ",") << util::CsvEscape(header[i]);
  }
  out_ << '\n';
}

void CsvSink::OnCell(const ExperimentGrid& grid, const CellResult& cell) {
  const CellCoord& coord = cell.coord;
  const TaskSetSource& source = grid.sources.at(coord.source);
  // The effective utilisation of the cell: the axis override for random
  // sources, the source's own default otherwise; blank for fixed sets
  // (their demand is whatever the set carries).
  std::string utilization;
  if (!source.fixed.has_value()) {
    utilization = FormatG(grid.utilizations.empty()
                              ? source.random.utilization
                              : grid.utilizations[coord.util_index]);
  }

  std::string prefix;
  prefix += std::to_string(coord.cell_index);
  prefix += ',' + util::CsvEscape(source.label);
  prefix += ',' + std::to_string(coord.replicate);
  prefix += ',' + utilization;
  prefix += ',' + std::to_string(grid.core_counts[coord.core_index]);
  prefix += ',' + util::CsvEscape(grid.partitioners[coord.partitioner_index]);
  prefix += ',' + FormatG(grid.sigma_divisors[coord.sigma_index]);
  prefix += ',' + std::to_string(grid.workload_seeds[coord.seed_index]);
  if (scenario_column_) {
    prefix += ',' + util::CsvEscape(grid.scenarios[coord.scenario_index]);
  }
  prefix += ',' + std::to_string(cell.sub_instances);
  prefix += ',' + std::to_string(cell.hyper_period);

  std::lock_guard<std::mutex> lock(mutex_);
  if (!cell.ok()) {
    out_ << prefix << ",,,,,,,," << (solver_stats_columns_ ? ",,," : "")
         << (dpm_columns_ ? ",,,,," : "") << util::CsvEscape(cell.error)
         << '\n';
    ++rows_;
    out_.flush();
    return;
  }
  const std::size_t baseline = grid.BaselineIndex();
  for (std::size_t m = 0; m < cell.outcomes.size(); ++m) {
    const core::MethodOutcome& outcome = cell.outcomes[m];
    out_ << prefix << ',' << util::CsvEscape(grid.methods[m]) << ','
         << FormatG(outcome.predicted_energy) << ','
         << FormatG(outcome.measured_energy) << ',';
    if (m != baseline) {
      // A degenerate ratio (zero or non-finite baseline energy — see
      // core::ImprovementRatio) leaves the field empty rather than printing
      // "inf"/"nan" a CSV consumer would choke on.
      const double improvement = 100.0 * cell.ImprovementOver(m, baseline);
      if (std::isfinite(improvement)) {
        out_ << FormatG(improvement);
      }
    }
    out_ << ',' << outcome.deadline_misses << ',' << outcome.voltage_switches
         << ',' << (outcome.used_fallback ? 1 : 0);
    if (solver_stats_columns_) {
      out_ << ',' << outcome.solver_outer_iterations << ','
           << outcome.solver_inner_iterations << ','
           << outcome.solver_evaluations;
    }
    if (dpm_columns_) {
      out_ << ',' << FormatG(outcome.idle_energy) << ','
           << FormatG(outcome.sleep_energy) << ',' << outcome.sleeps << ','
           << outcome.migrations << ',' << FormatG(outcome.weighted_cores);
    }
    out_ << ",\n";
    ++rows_;
  }
  out_.flush();
}

std::size_t CsvSink::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

}  // namespace dvs::runner
