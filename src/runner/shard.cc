#include "runner/shard.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace dvs::runner {
namespace {

constexpr std::size_t kNoCell = std::numeric_limits<std::size_t>::max();

/// Leading cell index of one data row (the first comma-terminated field).
std::size_t LeadingCellIndex(const std::string& row, const std::string& path) {
  std::size_t value = 0;
  std::size_t digits = 0;
  for (char c : row) {
    if (c == ',') {
      break;
    }
    if (c < '0' || c > '9') {
      digits = 0;
      break;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
    ++digits;
  }
  if (digits == 0) {
    throw util::Error("shard CSV " + path +
                      " has a row without a leading cell index: " + row);
  }
  return value;
}

}  // namespace

ShardCsv ParseShardCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::Error("cannot open shard CSV: " + path);
  }
  ShardCsv shard;
  std::string line;
  if (!std::getline(in, line)) {
    throw util::Error("shard CSV is empty: " + path);
  }
  shard.header = line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;  // tolerate a trailing blank line
    }
    shard.cells.push_back(LeadingCellIndex(line, path));
    shard.rows.push_back(std::move(line));
  }
  return shard;
}

std::string MergeShardCsvs(const std::vector<ShardCsv>& shards) {
  ACS_REQUIRE(!shards.empty(), "shard merge needs at least one input");
  for (std::size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].header != shards[0].header) {
      throw util::Error("shard CSV headers disagree (shard 0 vs shard " +
                        std::to_string(s) + ") — the inputs were not "
                        "produced by identical grid configurations");
    }
  }

  // (cell_index, shard, row-within-shard): sorting this triple is the
  // stable k-way merge — shard-internal order breaks cell ties, keeping
  // each cell's method rows in emission order.
  struct Key {
    std::size_t cell;
    std::size_t shard;
    std::size_t row;
  };
  std::vector<Key> keys;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::size_t r = 0; r < shards[s].rows.size(); ++r) {
      keys.push_back(Key{shards[s].cells[r], s, r});
    }
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.cell != b.cell) return a.cell < b.cell;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.row < b.row;
  });

  // Coverage checks: a cell's rows must all come from one shard, and the
  // merged cell-index set must be contiguous from 0.
  std::size_t prev_cell = kNoCell;
  std::size_t prev_shard = 0;
  std::size_t next_expected = 0;
  for (const Key& key : keys) {
    if (key.cell == prev_cell) {
      if (key.shard != prev_shard) {
        throw util::Error("cell " + std::to_string(key.cell) +
                          " appears in more than one shard (shards " +
                          std::to_string(prev_shard) + " and " +
                          std::to_string(key.shard) + ") — overlapping "
                          "shard ranges or a duplicated input file");
      }
      continue;
    }
    if (key.cell != next_expected) {
      throw util::Error("merged shards are missing cell " +
                        std::to_string(next_expected) +
                        " — an absent shard file or an incomplete run");
    }
    prev_cell = key.cell;
    prev_shard = key.shard;
    next_expected = key.cell + 1;
  }

  std::ostringstream out;
  out << shards[0].header << '\n';
  for (const Key& key : keys) {
    out << shards[key.shard].rows[key.row] << '\n';
  }
  return out.str();
}

std::size_t MergeShardCsvFiles(const std::vector<std::string>& input_paths,
                               const std::string& output_path) {
  std::vector<ShardCsv> shards;
  shards.reserve(input_paths.size());
  std::size_t rows = 0;
  for (const std::string& path : input_paths) {
    shards.push_back(ParseShardCsv(path));
    rows += shards.back().rows.size();
  }
  const std::string merged = MergeShardCsvs(shards);
  std::ofstream out(output_path);
  if (!out) {
    throw util::Error("cannot open merge output: " + output_path);
  }
  out << merged;
  if (!out) {
    throw util::Error("failed writing merge output: " + output_path);
  }
  return rows;
}

}  // namespace dvs::runner
