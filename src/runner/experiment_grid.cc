#include "runner/experiment_grid.h"

#include <utility>

#include "util/error.h"

namespace dvs::runner {
namespace {

// Fixed sources ignore the utilization override, so the axis would only
// duplicate identical cells for them — it applies to random sources alone.
std::size_t UtilCells(const ExperimentGrid& grid, const TaskSetSource& source) {
  return (source.fixed.has_value() || grid.utilizations.empty())
             ? 1
             : grid.utilizations.size();
}

std::size_t InnerCells(const ExperimentGrid& grid,
                       const TaskSetSource& source) {
  return UtilCells(grid, source) * grid.sigma_divisors.size() *
         grid.workload_seeds.size();
}

}  // namespace

TaskSetSource FixedSource(std::string label, model::TaskSet set) {
  TaskSetSource source;
  source.label = std::move(label);
  source.fixed = std::move(set);
  return source;
}

TaskSetSource RandomSource(std::string label,
                           const workload::RandomTaskSetOptions& options,
                           std::int64_t replicates) {
  TaskSetSource source;
  source.label = std::move(label);
  source.random = options;
  source.replicates = replicates;
  return source;
}

std::size_t ExperimentGrid::CellCount() const {
  std::size_t cells = 0;
  for (const TaskSetSource& source : sources) {
    cells += static_cast<std::size_t>(source.Replicates()) *
             InnerCells(*this, source);
  }
  return cells;
}

CellCoord ExperimentGrid::Coord(std::size_t cell_index) const {
  ACS_REQUIRE(cell_index < CellCount(), "cell index out of range");
  CellCoord coord;
  coord.cell_index = cell_index;

  std::size_t remaining = cell_index;
  std::size_t inner = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    inner = InnerCells(*this, sources[s]);
    const std::size_t block =
        static_cast<std::size_t>(sources[s].Replicates()) * inner;
    if (remaining < block) {
      coord.source = s;
      break;
    }
    remaining -= block;
  }

  coord.replicate = static_cast<std::int64_t>(remaining / inner);
  remaining %= inner;

  const std::size_t utils = UtilCells(*this, sources[coord.source]);
  const std::size_t sigma_seed = sigma_divisors.size() * workload_seeds.size();
  coord.util_index = remaining / sigma_seed;
  remaining %= sigma_seed;
  coord.sigma_index = remaining / workload_seeds.size();
  coord.seed_index = remaining % workload_seeds.size();
  ACS_CHECK(coord.util_index < utils, "grid coordinate decode overflow");
  return coord;
}

std::size_t ExperimentGrid::BaselineIndex() const {
  for (std::size_t i = 0; i < methods.size(); ++i) {
    if (methods[i] == baseline) {
      return i;
    }
  }
  throw util::InvalidArgumentError("grid baseline \"" + baseline +
                                   "\" is not among the grid methods");
}

void ExperimentGrid::Validate(const core::MethodRegistry& registry) const {
  ACS_REQUIRE(dvs != nullptr, "grid needs a DVS model");
  ACS_REQUIRE(!sources.empty(), "grid needs at least one task-set source");
  ACS_REQUIRE(!sigma_divisors.empty(), "grid needs a sigma divisor");
  ACS_REQUIRE(!workload_seeds.empty(), "grid needs a workload seed");
  ACS_REQUIRE(!methods.empty(), "grid needs at least one method");
  ACS_REQUIRE(hyper_periods > 0, "grid hyper_periods must be positive");
  for (const TaskSetSource& source : sources) {
    ACS_REQUIRE(source.fixed.has_value() || source.replicates > 0,
                "random source \"" + source.label +
                    "\" needs a positive replicate count");
  }
  for (double divisor : sigma_divisors) {
    ACS_REQUIRE(divisor > 0.0, "sigma divisors must be positive");
  }
  for (double utilization : utilizations) {
    ACS_REQUIRE(utilization > 0.0 && utilization < 1.0,
                "utilizations must lie in (0, 1)");
  }
  for (const std::string& name : methods) {
    registry.Get(name);  // throws with the full method list on failure
  }
  BaselineIndex();  // throws when the baseline is missing
}

stats::Rng ExperimentGrid::CellRng(std::size_t cell_index) const {
  stats::Rng master(master_seed);
  return master.ForkWith(static_cast<std::uint64_t>(cell_index));
}

ExperimentGrid::CellStreams ExperimentGrid::Streams(
    const CellCoord& coord) const {
  stats::Rng cell_rng = CellRng(coord.cell_index);
  stats::Rng set_rng = cell_rng.Fork();
  const std::uint64_t workload_seed =
      cell_rng.ForkWith(workload_seeds[coord.seed_index]).NextU64();
  return CellStreams{set_rng, workload_seed};
}

model::TaskSet ExperimentGrid::MaterializeTaskSet(
    const CellCoord& coord) const {
  const TaskSetSource& source = sources.at(coord.source);
  if (source.fixed.has_value()) {
    return *source.fixed;
  }
  ACS_REQUIRE(dvs != nullptr, "grid needs a DVS model");
  workload::RandomTaskSetOptions options = source.random;
  if (!utilizations.empty()) {
    options.utilization = utilizations[coord.util_index];
  }
  CellStreams streams = Streams(coord);
  return workload::GenerateRandomTaskSet(options, *dvs, streams.set_rng);
}

}  // namespace dvs::runner
