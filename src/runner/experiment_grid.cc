#include "runner/experiment_grid.h"

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace dvs::runner {
namespace {

// Fixed sources ignore the utilization override, so the axis would only
// duplicate identical cells for them — it applies to random sources alone.
std::size_t UtilCells(const ExperimentGrid& grid, const TaskSetSource& source) {
  return (source.fixed.has_value() || grid.utilizations.empty())
             ? 1
             : grid.utilizations.size();
}

std::size_t InnerCells(const ExperimentGrid& grid,
                       const TaskSetSource& source) {
  return UtilCells(grid, source) * grid.core_counts.size() *
         grid.partitioners.size() * grid.scenarios.size() *
         grid.sigma_divisors.size() * grid.workload_seeds.size();
}

}  // namespace

TaskSetSource FixedSource(std::string label, model::TaskSet set) {
  TaskSetSource source;
  source.label = std::move(label);
  source.fixed = std::move(set);
  return source;
}

TaskSetSource RandomSource(std::string label,
                           const workload::RandomTaskSetOptions& options,
                           std::int64_t replicates) {
  TaskSetSource source;
  source.label = std::move(label);
  source.random = options;
  source.replicates = replicates;
  return source;
}

std::size_t ExperimentGrid::CellCount() const {
  std::size_t cells = 0;
  for (const TaskSetSource& source : sources) {
    cells += static_cast<std::size_t>(source.Replicates()) *
             InnerCells(*this, source);
  }
  return cells;
}

std::size_t ExperimentGrid::SetCount() const {
  std::size_t count = 0;
  for (const TaskSetSource& source : sources) {
    count += static_cast<std::size_t>(source.Replicates()) *
             UtilCells(*this, source);
  }
  return count;
}

CellCoord ExperimentGrid::Coord(std::size_t cell_index) const {
  ACS_REQUIRE(cell_index < CellCount(), "cell index out of range");
  CellCoord coord;
  coord.cell_index = cell_index;

  std::size_t remaining = cell_index;
  std::size_t inner = 0;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    inner = InnerCells(*this, sources[s]);
    const std::size_t block =
        static_cast<std::size_t>(sources[s].Replicates()) * inner;
    if (remaining < block) {
      coord.source = s;
      break;
    }
    remaining -= block;
  }

  coord.replicate = static_cast<std::int64_t>(remaining / inner);
  remaining %= inner;

  const std::size_t utils = UtilCells(*this, sources[coord.source]);
  const std::size_t sigma_seed = sigma_divisors.size() * workload_seeds.size();
  const std::size_t scen_block = scenarios.size() * sigma_seed;
  const std::size_t part_block = partitioners.size() * scen_block;
  const std::size_t core_block = core_counts.size() * part_block;
  coord.util_index = remaining / core_block;
  remaining %= core_block;
  coord.core_index = remaining / part_block;
  remaining %= part_block;
  coord.partitioner_index = remaining / scen_block;
  remaining %= scen_block;
  coord.scenario_index = remaining / sigma_seed;
  remaining %= sigma_seed;
  coord.sigma_index = remaining / workload_seeds.size();
  coord.seed_index = remaining % workload_seeds.size();
  ACS_CHECK(coord.util_index < utils, "grid coordinate decode overflow");
  return coord;
}

const mp::PartitionerRegistry& ExperimentGrid::Partitioners() const {
  return partitioner_registry != nullptr ? *partitioner_registry
                                         : mp::PartitionerRegistry::Builtin();
}

const workload::ScenarioRegistry& ExperimentGrid::Scenarios() const {
  return scenario_registry != nullptr ? *scenario_registry
                                      : workload::ScenarioRegistry::Builtin();
}

bool ExperimentGrid::AnyCoreAboveOne() const {
  for (int cores : core_counts) {
    if (cores > 1) {
      return true;
    }
  }
  return false;
}

bool ExperimentGrid::MultiCore() const {
  return AnyCoreAboveOne() || !idle_power.IsZero();
}

std::size_t ExperimentGrid::BaselineIndex() const {
  for (std::size_t i = 0; i < methods.size(); ++i) {
    if (methods[i] == baseline) {
      return i;
    }
  }
  throw util::InvalidArgumentError("grid baseline \"" + baseline +
                                   "\" is not among the grid methods");
}

void ExperimentGrid::Validate(const core::MethodRegistry& registry) const {
  ACS_REQUIRE(dvs != nullptr, "grid needs a DVS model");
  ACS_REQUIRE(!sources.empty(), "grid needs at least one task-set source");
  ACS_REQUIRE(!sigma_divisors.empty(), "grid needs a sigma divisor");
  ACS_REQUIRE(!workload_seeds.empty(), "grid needs a workload seed");
  ACS_REQUIRE(!methods.empty(), "grid needs at least one method");
  ACS_REQUIRE(hyper_periods > 0, "grid hyper_periods must be positive");
  for (const TaskSetSource& source : sources) {
    ACS_REQUIRE(source.fixed.has_value() || source.replicates > 0,
                "random source \"" + source.label +
                    "\" needs a positive replicate count");
  }
  for (double divisor : sigma_divisors) {
    ACS_REQUIRE(divisor > 0.0, "sigma divisors must be positive");
  }
  ACS_REQUIRE(!core_counts.empty(), "grid needs a core count");
  int max_cores = 0;
  for (int cores : core_counts) {
    ACS_REQUIRE(cores >= 1, "core counts must be at least 1");
    max_cores = std::max(max_cores, cores);
  }
  ACS_REQUIRE(!partitioners.empty(), "grid needs a partitioner");
  for (const std::string& name : partitioners) {
    Partitioners().Get(name);  // throws, listing the registered names
  }
  ACS_REQUIRE(!scenarios.empty(), "grid needs a workload scenario");
  for (const std::string& name : scenarios) {
    Scenarios().Get(name);  // throws, listing the registered names
  }
  ACS_REQUIRE(planning.quantile >= 0.0 && planning.quantile <= 1.0,
              "planning quantile must lie in [0, 1]");
  ACS_REQUIRE(planning.mixture_samples >= 1,
              "planning mixture size must be at least 1");
  ACS_REQUIRE(planning.calibration_samples >= planning.mixture_samples &&
                  planning.calibration_samples >= 2,
              "planning calibration samples must be >= max(2, mixture size)");
  ACS_REQUIRE(idle_power.power_per_ms >= 0.0,
              "idle power must be non-negative");
  ACS_REQUIRE(transition.time_per_volt >= 0.0 &&
                  transition.energy_per_volt >= 0.0,
              "transition overheads must be non-negative");
  if (dpm.enabled) {
    ACS_REQUIRE(!idle_power.IsZero(),
                "DPM needs a non-zero idle power floor to manage");
    ACS_REQUIRE(dpm.sleep.power_per_ms >= 0.0 &&
                    dpm.sleep.enter_latency >= 0.0 &&
                    dpm.sleep.exit_latency >= 0.0 &&
                    dpm.sleep.enter_energy >= 0.0 &&
                    dpm.sleep.exit_energy >= 0.0,
                "sleep-state fields must be non-negative");
    ACS_REQUIRE(dpm.realloc_after >= 1,
                "realloc_after must be at least one hyper-period");
  }
  // A utilization must stay below the fleet's capacity; single-core grids
  // keep the paper's (0, 1) admission.
  for (double utilization : utilizations) {
    ACS_REQUIRE(utilization > 0.0 &&
                    utilization < static_cast<double>(max_cores),
                "utilizations must lie in (0, max core count)");
  }
  for (const std::string& name : methods) {
    registry.Get(name);  // throws with the full method list on failure
  }
  BaselineIndex();  // throws when the baseline is missing
}

stats::Rng ExperimentGrid::CellRng(std::size_t cell_index) const {
  stats::Rng master(master_seed);
  return master.ForkWith(static_cast<std::uint64_t>(cell_index));
}

std::size_t ExperimentGrid::SetIndex(const CellCoord& coord) const {
  std::size_t offset = 0;
  for (std::size_t s = 0; s < coord.source; ++s) {
    offset += static_cast<std::size_t>(sources[s].Replicates()) *
              UtilCells(*this, sources[s]);
  }
  return offset +
         static_cast<std::size_t>(coord.replicate) *
             UtilCells(*this, sources[coord.source]) +
         coord.util_index;
}

ExperimentGrid::CellStreams ExperimentGrid::Streams(
    const CellCoord& coord) const {
  // Exactly the historical derivation (ForkWith(index), one Fork() for the
  // set stream, then the labelled workload fork), keyed by the reduced set
  // index: cells equal up to the core/partitioner/scenario/sigma/seed axes
  // share both streams, so those axes compare paired.  The scenario axis
  // deliberately does not perturb the derivation — scenario cells transform
  // the identical seed through different processes, the paired-draw
  // methodology.  Grids whose inner axes are all singletons have
  // SetIndex == cell_index and draw streams bit-identical to the pre-mp
  // runner.
  stats::Rng base_rng = CellRng(SetIndex(coord));
  stats::Rng set_rng = base_rng.Fork();
  const std::uint64_t workload_seed =
      base_rng.ForkWith(workload_seeds[coord.seed_index]).NextU64();
  return CellStreams{set_rng, workload_seed};
}

model::TaskSet ExperimentGrid::MaterializeTaskSet(
    const CellCoord& coord) const {
  const TaskSetSource& source = sources.at(coord.source);
  if (source.fixed.has_value()) {
    return *source.fixed;
  }
  ACS_REQUIRE(dvs != nullptr, "grid needs a DVS model");
  workload::RandomTaskSetOptions options = source.random;
  if (!utilizations.empty()) {
    options.utilization = utilizations[coord.util_index];
  }
  // Any multi-core cells in the grid make the draw a fleet demand: the
  // partitioner owns admission, and — because the flag is grid-level —
  // cells sharing a SetIndex keep bit-identical draws across the cores
  // axis, unbiased toward single-core-feasible sets.  (Deliberately
  // AnyCoreAboveOne, not MultiCore: see the header.)
  options.multi_core = options.multi_core || AnyCoreAboveOne();
  CellStreams streams = Streams(coord);
  return workload::GenerateRandomTaskSet(options, *dvs, streams.set_rng);
}

}  // namespace dvs::runner
