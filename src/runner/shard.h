// Shard-CSV merging for split grid runs.
//
// A sharded experiment runs the same ExperimentGrid in N processes, each
// with RunOptions{shard_index = i, shard_count = N} and its own CsvSink
// file.  Each shard owns a contiguous SetIndex range (run_grid.h), so its
// CSV holds a disjoint, contiguous slice of the grid's cell indices.
// MergeShardCsvs reassembles the slices into the file a serial unsharded
// run would have produced: headers must agree byte-for-byte, rows are
// merged by their leading cell_index (stable within a shard, so a cell's
// method rows keep their emission order), and the merged cell-index set
// must be exactly 0..max with no duplicates across shards — overlapping or
// missing shards are reported as errors, never silently concatenated.
#ifndef ACS_RUNNER_SHARD_H
#define ACS_RUNNER_SHARD_H

#include <string>
#include <vector>

namespace dvs::runner {

/// One shard file parsed for merging.
struct ShardCsv {
  std::string header;                // the literal header line
  std::vector<std::string> rows;     // data lines, file order
  std::vector<std::size_t> cells;    // leading cell_index per data line
};

/// Parses one shard CSV produced by runner::CsvSink.  Throws util::Error on
/// an unreadable file, an empty file, or a data row without a leading
/// integer cell index.
ShardCsv ParseShardCsv(const std::string& path);

/// Merges shard CSV texts into the unsharded file content: the common
/// header line, then every data row ordered by cell_index (ties keep
/// shard-internal order, which preserves each cell's method-row sequence).
/// Throws util::Error when headers differ, a cell index appears in more
/// than one shard, or the union of cell indices is not contiguous from 0
/// (a missing shard / incomplete run).
std::string MergeShardCsvs(const std::vector<ShardCsv>& shards);

/// Convenience: parse `input_paths`, merge, and write `output_path`.
/// Returns the number of data rows written.
std::size_t MergeShardCsvFiles(const std::vector<std::string>& input_paths,
                               const std::string& output_path);

}  // namespace dvs::runner

#endif  // ACS_RUNNER_SHARD_H
