// Streaming per-cell CSV emission.
//
// CsvSink is a runner::ResultSink that appends one row per (cell, method)
// to a CSV file as cells finish, so a bench run leaves a machine-readable
// artifact of every cell — axes included — instead of stdout tables only.
// Failed cells emit a single row carrying the error message, keeping the
// artifact a complete record of the grid.
//
// Rows stream in completion order, which is nondeterministic under
// multi-threaded runs; the cell_index column is the stable key to sort on
// when reproducibility of the file ordering matters.
#ifndef ACS_RUNNER_CSV_SINK_H
#define ACS_RUNNER_CSV_SINK_H

#include <fstream>
#include <mutex>
#include <string>

#include "runner/run_grid.h"

namespace dvs::runner {

class CsvSink : public ResultSink {
 public:
  /// Opens `path` for writing and emits the header row immediately; throws
  /// util::Error when the file cannot be opened.  `scenario_column` adds a
  /// "scenario" column (after workload_seed) carrying each cell's
  /// execution-time scenario name; `solver_stats_columns` adds the
  /// per-method offline solver counters (solver_outer_iterations,
  /// solver_inner_iterations, solver_evaluations — see core::MethodOutcome)
  /// between used_fallback and error; `dpm_columns` adds the DPM ledger
  /// (idle_energy, sleep_energy, dpm_sleeps, dpm_migrations, weighted_cores)
  /// after the solver stats (still before error).  All default off so
  /// existing sinks keep the historical schema byte-for-byte.
  explicit CsvSink(const std::string& path, bool scenario_column = false,
                   bool solver_stats_columns = false, bool dpm_columns = false);

  /// Thread-safe: rows are formatted and written under an internal mutex.
  void OnCell(const ExperimentGrid& grid, const CellResult& cell) override;

  /// Rows written so far (excluding the header).
  std::size_t rows() const;

  /// The historical column header (no scenario column), shared with tests.
  static const std::vector<std::string>& Header();

  /// The header with the scenario column.
  static const std::vector<std::string>& HeaderWithScenario();

  /// The opt-in solver-stats column names, in emission order.
  static const std::vector<std::string>& SolverStatsColumns();

  /// The opt-in DPM ledger column names, in emission order.
  static const std::vector<std::string>& DpmColumns();

 private:
  mutable std::mutex mutex_;
  std::ofstream out_;
  bool scenario_column_ = false;
  bool solver_stats_columns_ = false;
  bool dpm_columns_ = false;
  std::size_t rows_ = 0;
};

}  // namespace dvs::runner

#endif  // ACS_RUNNER_CSV_SINK_H
