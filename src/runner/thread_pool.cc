#include "runner/thread_pool.h"

#include "util/error.h"

namespace dvs::runner {

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : HardwareThreads()) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = epoch_;
    }
    Drain(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::Drain(std::size_t worker) {
  for (;;) {
    const std::size_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n_) {
      return;
    }
    try {
      (*fn_)(worker, index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error_ == nullptr || index < error_index_) {
        error_ = std::current_exception();
        error_index_ = index;
      }
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelFor(n, [&fn](std::size_t /*worker*/, std::size_t index) {
    fn(index);
  });
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACS_CHECK(fn_ == nullptr, "nested ParallelFor on one ThreadPool");
    fn_ = &fn;
    n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = 0;
    workers_active_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  Drain(0);  // the calling thread is worker 0

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace dvs::runner
