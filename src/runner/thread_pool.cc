#include "runner/thread_pool.h"

#include "util/error.h"

namespace dvs::runner {

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : HardwareThreads()) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = epoch_;
    }
    Drain(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::Drain(std::size_t worker) {
  if (family_mode_) {
    DrainFamilies(worker);
  } else {
    DrainCursor(worker);
  }
}

void ThreadPool::RecordError(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (error_ == nullptr || index < error_index_) {
    error_ = std::current_exception();
    error_index_ = index;
  }
}

void ThreadPool::DrainCursor(std::size_t worker) {
  for (;;) {
    const std::size_t index = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n_) {
      return;
    }
    try {
      (*fn_)(worker, index);
    } catch (...) {
      RecordError(index);
    }
  }
}

void ThreadPool::DrainFamilies(std::size_t worker) {
  for (;;) {
    std::size_t family = kNoFamily;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (!queues_[worker].empty()) {
        // Own families in enqueue (= ascending id) order: the owner walks
        // its window front-to-back, which is what makes one worker's run
        // identical to the serial cell order.
        family = queues_[worker].front();
        queues_[worker].pop_front();
      } else {
        // Steal a whole family from the back of the most-loaded queue —
        // the work furthest from the victim's current locality window.
        std::size_t victim = kNoFamily;
        std::size_t victim_load = 0;
        for (std::size_t w = 0; w < queues_.size(); ++w) {
          if (queues_[w].size() > victim_load) {
            victim_load = queues_[w].size();
            victim = w;
          }
        }
        if (victim != kNoFamily) {
          family = queues_[victim].back();
          queues_[victim].pop_back();
          ++steals_;
        }
      }
    }
    if (family == kNoFamily) {
      return;  // every queue is empty; in-flight families finish elsewhere
    }
    const auto [begin, end] = (*families_)[family];
    for (std::size_t index = begin; index < end; ++index) {
      try {
        (*fn_)(worker, index);
      } catch (...) {
        RecordError(index);
      }
    }
    family_cells_[worker] += end - begin;
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelFor(n, [&fn](std::size_t /*worker*/, std::size_t index) {
    fn(index);
  });
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACS_CHECK(fn_ == nullptr, "nested ParallelFor on one ThreadPool");
    fn_ = &fn;
    family_mode_ = false;
    n_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    error_index_ = 0;
    workers_active_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  Drain(0);  // the calling thread is worker 0

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

FamilyStats ThreadPool::ParallelForFamilies(
    const std::vector<std::pair<std::size_t, std::size_t>>& families,
    const std::vector<std::size_t>& owner,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  ACS_REQUIRE(owner.size() == families.size(),
              "every family needs exactly one owner");
  FamilyStats stats;
  stats.cells_per_worker.assign(static_cast<std::size_t>(threads_), 0);
  if (families.empty()) {
    return stats;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ACS_CHECK(fn_ == nullptr, "nested ParallelFor on one ThreadPool");
    fn_ = &fn;
    family_mode_ = true;
    families_ = &families;
    queues_.assign(static_cast<std::size_t>(threads_), {});
    // Ascending family id per queue: owners drain front-to-back in id
    // order, thieves take from the back.
    for (std::size_t f = 0; f < families.size(); ++f) {
      ACS_REQUIRE(owner[f] < static_cast<std::size_t>(threads_),
                  "family owner must be a pool worker");
      queues_[owner[f]].push_back(f);
    }
    steals_ = 0;
    family_cells_.assign(static_cast<std::size_t>(threads_), 0);
    error_ = nullptr;
    error_index_ = 0;
    workers_active_ = workers_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  Drain(0);  // the calling thread is worker 0

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  family_mode_ = false;
  families_ = nullptr;
  stats.steals = steals_;
  stats.cells_per_worker = family_cells_;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return stats;
}

}  // namespace dvs::runner
