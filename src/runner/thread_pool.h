// Chunked thread pool for embarrassingly parallel experiment grids.
//
// ParallelFor hands indices out one at a time from an atomic cursor — grid
// cells are coarse (each one solves NLPs and simulates hundreds of
// hyper-periods), so self-balancing work stealing from a shared cursor beats
// static chunking and keeps the tail short when cell costs vary wildly.
// The calling thread participates as a worker, so ThreadPool(1) spawns no
// threads and runs everything inline — the serial baseline that parallel
// runs must match bit-for-bit (see runner/run_grid.h).
#ifndef ACS_RUNNER_THREAD_POOL_H
#define ACS_RUNNER_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvs::runner {

class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// <= 0 selects HardwareThreads().
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

  /// Runs fn(i) for every i in [0, n), distributing indices across the pool.
  /// Blocks until all indices complete.  Exceptions thrown by `fn` are
  /// captured; the one from the lowest index is rethrown afterwards, so the
  /// surfaced error does not depend on thread interleaving.  Not re-entrant:
  /// one ParallelFor per pool at a time.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Same, with the executing worker's index (0 = the calling thread,
  /// 1..size()-1 = pool threads) as the first argument — the hook for
  /// per-worker state such as core::EvalWorkspace.  Which worker runs which
  /// index is nondeterministic; callers must not let it influence results.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop(std::size_t worker);
  void Drain(std::size_t worker);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t epoch_ = 0;  // bumped once per ParallelFor
  std::size_t workers_active_ = 0;

  // Current job (valid while a ParallelFor is in flight).
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
  std::size_t error_index_ = 0;
};

}  // namespace dvs::runner

#endif  // ACS_RUNNER_THREAD_POOL_H
