// Chunked thread pool for embarrassingly parallel experiment grids.
//
// ParallelFor hands indices out one at a time from an atomic cursor — grid
// cells are coarse (each one solves NLPs and simulates hundreds of
// hyper-periods), so self-balancing work stealing from a shared cursor beats
// static chunking and keeps the tail short when cell costs vary wildly.
// The calling thread participates as a worker, so ThreadPool(1) spawns no
// threads and runs everything inline — the serial baseline that parallel
// runs must match bit-for-bit (see runner/run_grid.h).
#ifndef ACS_RUNNER_THREAD_POOL_H
#define ACS_RUNNER_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace dvs::runner {

/// What a ParallelForFamilies run observed about its own scheduling.
/// Observation-only — results never depend on it (cells are pure functions
/// of their index) — and, like the prepare hit/miss split, the numbers
/// legitimately vary with thread count and timing.
struct FamilyStats {
  /// Families executed by a worker other than their assigned owner.
  std::size_t steals = 0;
  /// Cells each worker actually executed (indexed by worker).
  std::vector<std::size_t> cells_per_worker;
};

class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// <= 0 selects HardwareThreads().
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return threads_; }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

  /// Runs fn(i) for every i in [0, n), distributing indices across the pool.
  /// Blocks until all indices complete.  Exceptions thrown by `fn` are
  /// captured; the one from the lowest index is rethrown afterwards, so the
  /// surfaced error does not depend on thread interleaving.  Not re-entrant:
  /// one ParallelFor per pool at a time.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Same, with the executing worker's index (0 = the calling thread,
  /// 1..size()-1 = pool threads) as the first argument — the hook for
  /// per-worker state such as core::EvalWorkspace.  Which worker runs which
  /// index is nondeterministic; callers must not let it influence results.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  /// Cache-affinity variant: `families[f]` is a [begin, end) index range
  /// and `owner[f]` the worker (< size()) whose queue it starts on.  Each
  /// worker drains its own queue front-to-back — families were enqueued in
  /// ascending id order, so an owner visits its cells in ascending index
  /// order and a 1-thread pool reproduces the serial order exactly — and an
  /// idle worker steals a whole family from the BACK of the most-loaded
  /// queue (ties: lowest victim index), keeping the steal at the far end of
  /// the victim's locality window.  Calls fn(worker, index) for every index
  /// of every family; exception contract as ParallelFor (lowest index
  /// wins).  Returns what the run observed about its own scheduling.
  FamilyStats ParallelForFamilies(
      const std::vector<std::pair<std::size_t, std::size_t>>& families,
      const std::vector<std::size_t>& owner,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  static constexpr std::size_t kNoFamily = static_cast<std::size_t>(-1);

  void WorkerLoop(std::size_t worker);
  void Drain(std::size_t worker);
  void DrainCursor(std::size_t worker);
  void DrainFamilies(std::size_t worker);
  void RecordError(std::size_t index);

  int threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool shutdown_ = false;
  std::uint64_t epoch_ = 0;  // bumped once per ParallelFor
  std::size_t workers_active_ = 0;

  // Current job (valid while a ParallelFor/ParallelForFamilies is in
  // flight).  `family_mode_` routes Drain; the cursor fields serve the
  // classic handout, the queue fields the family handout.
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  bool family_mode_ = false;
  std::size_t n_ = 0;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  const std::vector<std::pair<std::size_t, std::size_t>>* families_ = nullptr;
  std::mutex queue_mutex_;  // guards queues_ and steals_
  std::vector<std::deque<std::size_t>> queues_;  // per-worker family ids
  std::size_t steals_ = 0;
  std::vector<std::size_t> family_cells_;  // per-worker executed cells
};

}  // namespace dvs::runner

#endif  // ACS_RUNNER_THREAD_POOL_H
