// Parallel grid execution.
//
// RunGrid fans the grid's cells across a chunked ThreadPool.  Every cell is
// a pure function of (grid, cell_index): it derives its own rng stream,
// draws or copies its task set, and evaluates every grid method on
// identical workload realisations through a per-cell core::MethodContext.
// Results land in a vector slot owned by the cell, and aggregates are
// computed afterwards in cell order — so an 8-thread run is bit-identical
// to a 1-thread run, cell by cell and aggregate by aggregate.
//
// Cells of a multi-core grid (any core count > 1, or a non-zero idle-power
// floor — see ExperimentGrid::MultiCore) first partition the cell's task
// set with the grid's mp partitioner and then run the identical per-core
// pipeline on every powered core; their MethodOutcomes are fleet aggregates
// in energy-per-ms units (mp/fleet.h), for every cell of the grid so a
// mixed cores axis compares in one unit.
// The determinism guarantee is unchanged: partitioning is a pure function
// of the cell's task set and per-core workload streams are forked from the
// cell stream by physical core index.
//
// Cells that fail with a util::Error (infeasible set, generator exhaustion,
// a partitioner that cannot place a task) record the message in
// CellResult::error and do not abort the grid; any other exception
// propagates out of RunGrid.
#ifndef ACS_RUNNER_RUN_GRID_H
#define ACS_RUNNER_RUN_GRID_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/eval_workspace.h"
#include "core/method_registry.h"
#include "runner/experiment_grid.h"
#include "runner/family.h"
#include "stats/summary.h"

namespace dvs::core {
class SolveStore;  // core/solve_store.h
}  // namespace dvs::core

namespace dvs::runner {

/// Outcome of one grid cell: one MethodOutcome per grid method (in grid
/// method order), or an error message when the cell failed.
struct CellResult {
  CellCoord coord;
  /// True when a sharded run (RunOptions::shard_count > 1) assigned this
  /// cell to another shard: the cell was not evaluated, carries no
  /// outcomes and no error, and is excluded from aggregates, sinks and the
  /// failed-cell count.
  bool skipped = false;
  std::size_t sub_instances = 0;
  /// Hyper-period of the cell's (whole) task set — the per-hyper-period /
  /// per-ms unit conversion factor, recorded so consumers need not re-draw
  /// the set.  0 on failed cells.
  std::int64_t hyper_period = 0;
  std::vector<core::MethodOutcome> outcomes;
  std::string error;

  bool ok() const { return error.empty(); }

  /// The paper's metric generalised: (E_base - E_method) / E_base on
  /// measured energy.
  double ImprovementOver(std::size_t method_index,
                         std::size_t baseline_index) const;
};

/// Streaming observer: OnCell fires as each cell finishes, from whichever
/// worker thread ran it (implementations synchronise internally; completion
/// order is nondeterministic — anything order-sensitive belongs in the
/// post-hoc aggregates, which are deterministic).
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void OnCell(const ExperimentGrid& grid, const CellResult& cell) = 0;
};

/// Built-in sink: thread-safe progress counter + running per-method energy
/// stats merged via the parallel-combinable stats::OnlineStats.
class ProgressSink : public ResultSink {
 public:
  void OnCell(const ExperimentGrid& grid, const CellResult& cell) override;

  std::size_t completed() const;
  std::size_t failed() const;
  /// Running measured-energy stats for one method (order-insensitive counts;
  /// use GridResult::Aggregate for reproducible moments).
  stats::OnlineStats MethodEnergy(std::size_t method_index) const;

 private:
  mutable std::mutex mutex_;
  std::size_t completed_ = 0;
  std::size_t failed_ = 0;
  std::vector<stats::OnlineStats> method_energy_;
};

/// Deterministic per-method aggregate over the successful cells, merged in
/// cell order.
struct MethodAggregate {
  stats::OnlineStats measured_energy;
  stats::OnlineStats improvement;  // vs the grid baseline; empty for itself
  std::int64_t deadline_misses = 0;
  std::int64_t fallbacks = 0;
};

struct GridResult {
  std::vector<CellResult> cells;  // indexed by cell_index
  std::size_t failed_cells = 0;

  /// Aggregates `method_index` over all successful cells, or over one
  /// source's cells when `source_index` >= 0.
  MethodAggregate Aggregate(const ExperimentGrid& grid,
                            std::size_t method_index,
                            std::int64_t source_index = -1) const;
};

struct RunOptions {
  int threads = 1;              // <= 0 selects ThreadPool::HardwareThreads()
  ResultSink* sink = nullptr;   // optional streaming observer
  /// Per-worker evaluation workspaces (grown to the pool size if short).
  /// Passing the same vector across RunGrid calls keeps solver/sim buffers
  /// — and the per-task-set solve caches — warm between grids; results are
  /// bit-identical with or without it (cache hits additionally require the
  /// same DVS model object and equal scheduler options, so grids differing
  /// in either rebuild instead of reusing).  Null: RunGrid uses call-local
  /// workspaces.  Non-owning; must outlive the call, and every grid's
  /// `dvs` model must outlive the vector (cached solves reference it).
  std::vector<core::EvalWorkspace>* workspaces = nullptr;
  /// Sharding: with shard_count N > 1, shard i of N evaluates only the
  /// cells whose SetIndex falls in [floor(i*S/N), floor((i+1)*S/N)) where
  /// S = grid.SetCount(); every other cell is returned with skipped set.
  /// Splitting on SetIndex (not cell_index) keeps each task set's solve
  /// cache — and a kNeighbor warm-start chain — entirely within one shard,
  /// so a sharded run performs no duplicate solves across processes and
  /// the concatenation of all shards' rows equals the unsharded run's
  /// row set exactly (see runner/shard.h for the CSV merge).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Cell handout policy (see runner/family.h).  The default keeps each
  /// task set's sibling cells — and therefore its cached solves — on one
  /// worker; kCursor restores the legacy one-cell-at-a-time handout.
  /// Results are bit-identical under either policy at any thread count.
  CellScheduling scheduling = CellScheduling::kFamilyAffinity;
  /// Cost-model weights of the family schedule (kFamilyAffinity only).
  FamilyCostWeights family_weights;
  /// Persistent cross-run solve cache (core/solve_store.h).  Attached to
  /// every worker workspace for the duration of the run: Prepare() misses
  /// pre-seed from it, evicted and resident entries are absorbed back into
  /// it when the run ends.  The caller owns the store and decides when to
  /// WriteBack().  Null disables persistence.  Results are bit-identical
  /// with or without it.
  core::SolveStore* solve_store = nullptr;
};

/// Runs every cell of `grid`, resolving methods against `registry`.
GridResult RunGrid(const ExperimentGrid& grid,
                   const core::MethodRegistry& registry,
                   const RunOptions& options = {});

/// Same, against the built-in registry.
GridResult RunGrid(const ExperimentGrid& grid, const RunOptions& options = {});

}  // namespace dvs::runner

#endif  // ACS_RUNNER_RUN_GRID_H
