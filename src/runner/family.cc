#include "runner/family.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace dvs::runner {
namespace {

/// Task count of the set a SetIndex draws (fixed size or the generator's
/// num_tasks) — the solve-cost driver that actually varies across sources.
std::size_t TasksOfSet(const ExperimentGrid& grid, std::size_t set_index) {
  const std::size_t utils =
      grid.utilizations.empty() ? 1 : grid.utilizations.size();
  std::size_t offset = 0;
  for (const TaskSetSource& source : grid.sources) {
    const std::size_t util_cells = source.fixed.has_value() ? 1 : utils;
    const std::size_t span =
        static_cast<std::size_t>(source.Replicates()) * util_cells;
    if (set_index < offset + span) {
      return source.fixed.has_value()
                 ? source.fixed->size()
                 : static_cast<std::size_t>(source.random.num_tasks);
    }
    offset += span;
  }
  throw util::InternalError("set index out of range in TasksOfSet");
}

std::size_t PlanningArmCount(const ExperimentGrid& grid) {
  std::size_t count = 0;
  for (const std::string& method : grid.methods) {
    if (method == "acs-scenario" || method == "acs-quantile" ||
        method == "acs-mixture") {
      ++count;
    }
  }
  return count;
}

}  // namespace

std::size_t FamilySchedule::TotalCells() const {
  std::size_t total = 0;
  for (const CellFamily& family : families) {
    total += family.CellCount();
  }
  return total;
}

std::size_t FamilySchedule::WorkerCells(std::size_t worker) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < families.size(); ++i) {
    if (owner[i] == worker) {
      total += families[i].CellCount();
    }
  }
  return total;
}

double FamilyCost(const ExperimentGrid& grid, std::size_t set_index,
                  const FamilyCostWeights& weights) {
  const std::size_t tasks = TasksOfSet(grid, set_index);
  const std::size_t methods = grid.methods.size();
  const std::size_t planning_arms = PlanningArmCount(grid);
  const std::size_t scenarios = std::max<std::size_t>(1, grid.scenarios.size());
  const std::size_t sigmas =
      std::max<std::size_t>(1, grid.sigma_divisors.size());
  const std::size_t seeds =
      std::max<std::size_t>(1, grid.workload_seeds.size());
  const std::size_t partitioners =
      std::max<std::size_t>(1, grid.partitioners.size());
  const std::size_t core_entries =
      std::max<std::size_t>(1, grid.core_counts.size());
  const std::size_t cells =
      core_entries * partitioners * scenarios * sigmas * seeds;

  // Solves the family's workspace entry performs once and then serves from
  // cache: the shared planning-invariant triple (WCS doubles as the ACS
  // warm start, Vmax-ASAP seeds two baselines) plus one planned solve per
  // (planning arm x scenario x sigma) point.  Multi-core cells repeat the
  // pipeline per powered core and per partitioner-induced subset.
  double core_factor = 0.0;
  for (const int cores : grid.core_counts) {
    core_factor += static_cast<double>(std::max(1, cores));
  }
  core_factor = grid.MultiCore()
                    ? core_factor / static_cast<double>(core_entries) *
                          static_cast<double>(partitioners)
                    : 1.0;
  const double solve_unit =
      weights.solve_base +
      weights.solve_per_task * static_cast<double>(tasks);
  const double shared_solves = 3.0;
  const double planned_solves = static_cast<double>(planning_arms) *
                                static_cast<double>(scenarios) *
                                static_cast<double>(sigmas);
  const double calibrations =
      planning_arms > 0
          ? static_cast<double>(scenarios) * static_cast<double>(sigmas)
          : 0.0;

  return core_factor * (shared_solves + planned_solves) * solve_unit +
         calibrations * weights.calibration +
         static_cast<double>(cells) *
             (weights.cell_base +
              weights.sim_per_hyper_period *
                  static_cast<double>(methods) *
                  static_cast<double>(grid.hyper_periods));
}

FamilySchedule BuildFamilySchedule(const ExperimentGrid& grid,
                                   std::size_t set_begin, std::size_t set_end,
                                   std::size_t workers,
                                   const FamilyCostWeights& weights) {
  ACS_REQUIRE(workers >= 1, "family schedule needs at least one worker");
  const std::size_t set_count = grid.SetCount();
  ACS_REQUIRE(set_begin <= set_end && set_end <= set_count,
              "family window must lie within the grid's set range");

  FamilySchedule schedule;
  schedule.worker_cost.assign(workers, 0.0);
  if (set_begin == set_end) {
    return schedule;
  }

  // Each SetIndex owns one contiguous run of cell indices (the outermost-
  // axes property ExperimentGrid::SetCount documents), and the inner-axis
  // product is uniform across sets.
  const std::size_t cells_per_set = grid.CellCount() / set_count;
  schedule.families.reserve(set_end - set_begin);
  for (std::size_t set_index = set_begin; set_index < set_end; ++set_index) {
    CellFamily family;
    family.id = schedule.families.size();
    family.set_index = set_index;
    family.begin = set_index * cells_per_set;
    family.end = family.begin + cells_per_set;
    family.cost = FamilyCost(grid, set_index, weights);
    schedule.families.push_back(family);
  }

  // LPT: largest modelled cost first (family id breaks ties, so the order
  // is a pure function of the grid), each onto the least-loaded worker
  // (lowest index breaks ties).
  std::vector<std::size_t> order(schedule.families.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ca = schedule.families[a].cost;
    const double cb = schedule.families[b].cost;
    return ca != cb ? ca > cb : a < b;
  });
  schedule.owner.assign(schedule.families.size(), 0);
  for (const std::size_t id : order) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < workers; ++w) {
      if (schedule.worker_cost[w] < schedule.worker_cost[best]) {
        best = w;
      }
    }
    schedule.owner[id] = best;
    schedule.worker_cost[best] += schedule.families[id].cost;
  }
  return schedule;
}

}  // namespace dvs::runner
