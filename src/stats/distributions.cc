#include "stats/distributions.h"

#include <cmath>

#include "util/error.h"

namespace dvs::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;

}  // namespace

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

TruncatedNormal::TruncatedNormal(double mean, double sigma, double lo,
                                 double hi)
    : mean_(mean), sigma_(sigma), lo_(lo), hi_(hi) {
  ACS_REQUIRE(lo <= hi, "TruncatedNormal requires lo <= hi");
  ACS_REQUIRE(sigma >= 0.0, "TruncatedNormal requires sigma >= 0");
  if (lo_ == hi_ || sigma_ == 0.0) {
    degenerate_ = true;
    point_ = std::min(std::max(mean_, lo_), hi_);
    return;
  }
  alpha_ = (lo_ - mean_) / sigma_;
  beta_ = (hi_ - mean_) / sigma_;
  z_ = NormalCdf(beta_) - NormalCdf(alpha_);
  ACS_REQUIRE(z_ > 1e-12,
              "truncation window carries negligible probability mass");
}

double TruncatedNormal::Sample(Rng& rng) const {
  if (degenerate_) {
    return point_;
  }
  // Rejection from the parent normal.  The paper's settings put >= ~2/3 of
  // the mass inside [lo, hi]; guard with an inverse-CDF-free fallback via
  // uniform resampling of the window for pathological parameters.
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double draw = rng.Normal(mean_, sigma_);
    if (draw >= lo_ && draw <= hi_) {
      return draw;
    }
  }
  // Extremely unlikely unless z_ is tiny; fall back to a uniform draw over
  // the window weighted towards the nearest boundary of the parent mean.
  return rng.Uniform(lo_, hi_);
}

double TruncatedNormal::Mean() const {
  if (degenerate_) {
    return point_;
  }
  return mean_ + sigma_ * (NormalPdf(alpha_) - NormalPdf(beta_)) / z_;
}

double TruncatedNormal::Variance() const {
  if (degenerate_) {
    return 0.0;
  }
  const double phi_a = NormalPdf(alpha_);
  const double phi_b = NormalPdf(beta_);
  const double a_term = (std::isinf(alpha_) ? 0.0 : alpha_ * phi_a);
  const double b_term = (std::isinf(beta_) ? 0.0 : beta_ * phi_b);
  const double ratio = (phi_a - phi_b) / z_;
  return sigma_ * sigma_ * (1.0 + (a_term - b_term) / z_ - ratio * ratio);
}

TruncatedPareto::TruncatedPareto(double shape, double lo, double hi)
    : shape_(shape), lo_(lo), hi_(hi), cap_(1.0 + (hi - lo)) {
  ACS_REQUIRE(shape > 0.0, "TruncatedPareto requires shape > 0");
  ACS_REQUIRE(lo <= hi, "TruncatedPareto requires lo <= hi");
  mass_ = 1.0 - std::pow(cap_, -shape_);
}

double TruncatedPareto::Sample(Rng& rng) const {
  if (mass_ <= 0.0) {
    return hi_;  // collapsed window: the single admissible value
  }
  // Inverse CDF of the truncated law: F(y) = (1 - y^-a) / mass on [1, cap].
  const double u = rng.NextDouble();
  const double y = std::pow(1.0 - u * mass_, -1.0 / shape_);
  // Clamp against FP round-off at the cap end.
  return std::min(hi_, lo_ + (y - 1.0));
}

double TruncatedPareto::Mean() const {
  if (mass_ <= 0.0) {
    return hi_;
  }
  // E[y] on the truncated support [1, cap]:
  //   a/(a-1) * (1 - cap^{1-a}) / mass          for a != 1
  //   ln(cap) / mass                            for a == 1
  const double a = shape_;
  const double ey =
      a == 1.0 ? std::log(cap_) / mass_
               : a / (a - 1.0) * (1.0 - std::pow(cap_, 1.0 - a)) / mass_;
  return lo_ + (ey - 1.0);
}

}  // namespace dvs::stats
