#include "stats/distributions.h"

#include <cmath>

#include "util/error.h"

namespace dvs::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;

}  // namespace

double NormalPdf(double x) { return kInvSqrt2Pi * std::exp(-0.5 * x * x); }

double NormalCdf(double x) { return 0.5 * std::erfc(-x * kInvSqrt2); }

TruncatedNormal::TruncatedNormal(double mean, double sigma, double lo,
                                 double hi)
    : mean_(mean), sigma_(sigma), lo_(lo), hi_(hi) {
  ACS_REQUIRE(lo < hi, "TruncatedNormal requires lo < hi");
  ACS_REQUIRE(sigma > 0.0, "TruncatedNormal requires sigma > 0");
  alpha_ = (lo_ - mean_) / sigma_;
  beta_ = (hi_ - mean_) / sigma_;
  z_ = NormalCdf(beta_) - NormalCdf(alpha_);
  ACS_REQUIRE(z_ > 1e-12,
              "truncation window carries negligible probability mass");
}

double TruncatedNormal::Sample(Rng& rng) const {
  // Rejection from the parent normal.  The paper's settings put >= ~2/3 of
  // the mass inside [lo, hi]; guard with an inverse-CDF-free fallback via
  // uniform resampling of the window for pathological parameters.
  for (int attempt = 0; attempt < 256; ++attempt) {
    const double draw = rng.Normal(mean_, sigma_);
    if (draw >= lo_ && draw <= hi_) {
      return draw;
    }
  }
  // Extremely unlikely unless z_ is tiny; fall back to a uniform draw over
  // the window weighted towards the nearest boundary of the parent mean.
  return rng.Uniform(lo_, hi_);
}

double TruncatedNormal::Mean() const {
  return mean_ + sigma_ * (NormalPdf(alpha_) - NormalPdf(beta_)) / z_;
}

double TruncatedNormal::Variance() const {
  const double phi_a = NormalPdf(alpha_);
  const double phi_b = NormalPdf(beta_);
  const double a_term = (std::isinf(alpha_) ? 0.0 : alpha_ * phi_a);
  const double b_term = (std::isinf(beta_) ? 0.0 : beta_ * phi_b);
  const double ratio = (phi_a - phi_b) / z_;
  return sigma_ * sigma_ * (1.0 + (a_term - b_term) / z_ - ratio * ratio);
}

}  // namespace dvs::stats
