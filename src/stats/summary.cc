#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dvs::stats {

void OnlineStats::Add(double sample) {
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  const double delta = sample - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (sample - mean_);
}

double OnlineStats::mean() const {
  ACS_REQUIRE(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  ACS_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double OnlineStats::max() const {
  ACS_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const std::size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.count_) /
           static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  ACS_REQUIRE(!sorted.empty(), "percentile of empty sample");
  ACS_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must lie in [0, 1]");
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double position = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) {
    return sorted.back();
  }
  return sorted[lower] * (1.0 - frac) + sorted[lower + 1] * frac;
}

Summary Summarize(std::vector<double> samples) {
  ACS_REQUIRE(!samples.empty(), "Summarize requires a non-empty sample");
  std::sort(samples.begin(), samples.end());
  OnlineStats acc;
  for (double s : samples) {
    acc.Add(s);
  }
  Summary out;
  out.count = samples.size();
  out.mean = acc.mean();
  out.stddev = acc.stddev();
  out.min = samples.front();
  out.max = samples.back();
  out.median = PercentileSorted(samples, 0.5);
  out.p05 = PercentileSorted(samples, 0.05);
  out.p95 = PercentileSorted(samples, 0.95);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ACS_REQUIRE(lo < hi, "Histogram requires lo < hi");
  ACS_REQUIRE(bins > 0, "Histogram requires at least one bin");
}

void Histogram::Add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  const double frac = (sample - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  ACS_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const {
  ACS_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                   static_cast<double>(counts_.size());
}

}  // namespace dvs::stats
