// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded through SplitMix64 so
// every experiment in the paper reproduction is exactly reproducible from a
// printed 64-bit seed, independent of the standard library implementation.
#ifndef ACS_STATS_RNG_H
#define ACS_STATS_RNG_H

#include <array>
#include <cstdint>

namespace dvs::stats {

/// SplitMix64: fast 64-bit mixer; used for seeding and for hashing seeds of
/// derived streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — 256-bit state, period 2^256 - 1.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi); requires lo < hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via the polar Box-Muller method (cached spare).
  double Normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  /// Derives an independent child stream (distinct hashed seed); used so
  /// that e.g. workload sampling and task-set generation never share state.
  Rng Fork();

  /// Long-jump equivalent: re-seed from a label for named sub-streams.
  Rng ForkWith(std::uint64_t label);

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace dvs::stats

#endif  // ACS_STATS_RNG_H
