#include "stats/rng.h"

#include <cmath>

#include "util/error.h"

namespace dvs::stats {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) {
    word = mixer.Next();
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  ACS_REQUIRE(lo < hi, "Uniform requires lo < hi");
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  ACS_REQUIRE(lo <= hi, "UniformInt requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw = NextU64();
  while (draw >= limit) {
    draw = NextU64();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double sigma) {
  ACS_REQUIRE(sigma >= 0.0, "Normal requires sigma >= 0");
  return mean + sigma * Normal();
}

Rng Rng::Fork() { return Rng(NextU64()); }

Rng Rng::ForkWith(std::uint64_t label) {
  SplitMix64 mixer(NextU64() ^ label);
  return Rng(mixer.Next());
}

}  // namespace dvs::stats
