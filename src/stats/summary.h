// Streaming and batch summary statistics for experiment aggregation.
#ifndef ACS_STATS_SUMMARY_H
#define ACS_STATS_SUMMARY_H

#include <cstddef>
#include <vector>

namespace dvs::stats {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples.  Used to aggregate per-task-set energy improvements.
class OnlineStats {
 public:
  void Add(double sample);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  // sample variance (n-1); 0 when count < 2
  double stddev() const;
  double min() const;
  double max() const;

  /// Merges another accumulator (parallel-combinable).
  void Merge(const OnlineStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch descriptive statistics over a stored sample vector.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

/// Computes a Summary; throws InvalidArgumentError on an empty sample.
Summary Summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample, q in [0, 1].
double PercentileSorted(const std::vector<double>& sorted, double q);

/// Fixed-width histogram for diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double sample);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace dvs::stats

#endif  // ACS_STATS_SUMMARY_H
