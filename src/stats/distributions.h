// Workload distributions used by the paper's experiments.
//
// The paper draws each task instance's actual execution cycles from a normal
// distribution with mean ACEC, truncated to [BCEC, WCEC].  TruncatedNormal
// implements exact rejection sampling from the parent normal (efficient here
// because the paper's parameters keep multiple sigmas inside the window), and
// exposes the analytic mean of the truncated law for test cross-checks.
#ifndef ACS_STATS_DISTRIBUTIONS_H
#define ACS_STATS_DISTRIBUTIONS_H

#include "stats/rng.h"

namespace dvs::stats {

/// Standard normal PDF / CDF (CDF via std::erfc for full-double accuracy).
double NormalPdf(double x);
double NormalCdf(double x);

/// Normal law truncated to [lo, hi].
class TruncatedNormal {
 public:
  /// Requires lo < hi and sigma > 0; mean may lie anywhere (the truncation
  /// window does not need to contain it, although in the paper it does).
  TruncatedNormal(double mean, double sigma, double lo, double hi);

  double Sample(Rng& rng) const;

  /// Analytic mean of the truncated distribution.
  double Mean() const;

  /// Analytic variance of the truncated distribution.
  double Variance() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double parent_mean() const { return mean_; }
  double parent_sigma() const { return sigma_; }

 private:
  double mean_;
  double sigma_;
  double lo_;
  double hi_;
  double alpha_;  // standardised lower bound
  double beta_;   // standardised upper bound
  double z_;      // CDF(beta) - CDF(alpha), probability mass in the window
};

/// Degenerate distribution (always `value`); models fixed workloads
/// (BCEC = WCEC, the paper's ratio = 1 limit).
class PointMass {
 public:
  explicit PointMass(double value) : value_(value) {}
  double Sample(Rng&) const { return value_; }
  double Mean() const { return value_; }

 private:
  double value_;
};

}  // namespace dvs::stats

#endif  // ACS_STATS_DISTRIBUTIONS_H
