// Workload distributions used by the paper's experiments.
//
// The paper draws each task instance's actual execution cycles from a normal
// distribution with mean ACEC, truncated to [BCEC, WCEC].  TruncatedNormal
// implements exact rejection sampling from the parent normal (efficient here
// because the paper's parameters keep multiple sigmas inside the window), and
// exposes the analytic mean of the truncated law for test cross-checks.
#ifndef ACS_STATS_DISTRIBUTIONS_H
#define ACS_STATS_DISTRIBUTIONS_H

#include "stats/rng.h"

namespace dvs::stats {

/// Standard normal PDF / CDF (CDF via std::erfc for full-double accuracy).
double NormalPdf(double x);
double NormalCdf(double x);

/// Normal law truncated to [lo, hi].
class TruncatedNormal {
 public:
  /// Requires lo <= hi and sigma >= 0; mean may lie anywhere (the truncation
  /// window does not need to contain it, although in the paper it does).
  /// Degenerate parameters collapse to a point mass instead of throwing —
  /// lo == hi (a BCEC == WCEC task) yields the single admissible value, and
  /// sigma == 0 yields the parent mean clamped into the window — so callers
  /// need not special-case collapsed workload windows.  Non-degenerate
  /// windows must still carry probability mass (no 40-sigma-away windows).
  TruncatedNormal(double mean, double sigma, double lo, double hi);

  double Sample(Rng& rng) const;

  /// Analytic mean of the truncated distribution.
  double Mean() const;

  /// Analytic variance of the truncated distribution.
  double Variance() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double parent_mean() const { return mean_; }
  double parent_sigma() const { return sigma_; }

  /// True when the law collapsed to a point mass (lo == hi or sigma == 0).
  bool IsDegenerate() const { return degenerate_; }

 private:
  double mean_;
  double sigma_;
  double lo_;
  double hi_;
  double alpha_ = 0.0;  // standardised lower bound
  double beta_ = 0.0;   // standardised upper bound
  double z_ = 1.0;      // CDF(beta) - CDF(alpha), probability mass in window
  bool degenerate_ = false;
  double point_ = 0.0;  // the value when degenerate_
};

/// Pareto law with scale 1 shifted onto [lo, hi] and truncated there: the
/// sampled variate is lo + (y - 1) for y Pareto(shape, x_m = 1) conditioned
/// on y <= 1 + (hi - lo).  The shift tolerates lo == 0 (a BCEC of zero),
/// which the classical Pareto support (x >= x_m > 0) would reject, and the
/// truncation keeps every draw inside the workload window.  A collapsed
/// window (lo == hi) degenerates to a point mass.  Smaller shapes put more
/// mass near hi's tail; the workload scenarios use shape ~1 so a few jobs
/// land near the WCEC while the bulk stays near BCEC.
class TruncatedPareto {
 public:
  /// Requires shape > 0 and lo <= hi.
  TruncatedPareto(double shape, double lo, double hi);

  double Sample(Rng& rng) const;

  /// Analytic mean of the truncated law.
  double Mean() const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double shape() const { return shape_; }

 private:
  double shape_;
  double lo_;
  double hi_;
  double cap_;   // 1 + (hi - lo): upper support of the unshifted law
  double mass_;  // 1 - cap^{-shape}: probability mass below the cap
};

/// Degenerate distribution (always `value`); models fixed workloads
/// (BCEC = WCEC, the paper's ratio = 1 limit).
class PointMass {
 public:
  explicit PointMass(double value) : value_(value) {}
  double Sample(Rng&) const { return value_; }
  double Mean() const { return value_; }

 private:
  double value_;
};

}  // namespace dvs::stats

#endif  // ACS_STATS_DISTRIBUTIONS_H
