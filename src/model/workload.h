// Per-instance actual-workload sampling (paper §4 experimental model).
//
// "the number of execution cycles of each task [varies] between the best
// case (BCEC) and worst case (WCEC) following a normal distribution with
// mean = ACEC".  The sigma constant is lost to OCR; we default to the
// 3-sigma convention sigma = (WCEC - BCEC) / 6 and expose it as a knob
// (see bench_ablation_sigma).
#ifndef ACS_MODEL_WORKLOAD_H
#define ACS_MODEL_WORKLOAD_H

#include <memory>
#include <optional>
#include <vector>

#include "model/task.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace dvs::model {

/// Interface: draws the actual execution cycles of one task instance.
///
/// Statefulness contract: implementations may evolve internal per-task state
/// across draws (Markov phases, AR(1) memory, trace cursors — see
/// workload/scenario.h), held in mutable members behind this const call.
/// A sampler therefore serves exactly one simulation run at a time: the
/// engine draws in release order from a single rng stream, and a fresh
/// sampler per run (core::EvaluateMethod constructs one per evaluation)
/// keeps results a pure function of (task set, scenario, seed).  Sharing
/// one sampler across concurrent simulations is not supported.
class WorkloadSampler {
 public:
  virtual ~WorkloadSampler() = default;

  /// Cycles for the next instance of task `task`; must lie within
  /// [BCEC, WCEC] of that task.
  virtual double SampleCycles(TaskIndex task, stats::Rng& rng) const = 0;
};

/// Factory for one named execution-time process ("scenario"): given a task
/// set, builds the fresh per-run sampler that realises the process on that
/// set's [BCEC, WCEC] windows.  The indirection is what lets the evaluation
/// core (core::EvaluateMethod, mp::EvaluateFleet) swap stochastic processes
/// per experiment cell without depending on the concrete implementations —
/// those live a layer up in workload::ScenarioRegistry.  `sigma_divisor` is
/// the grid's dispersion knob: the i.i.d. normal uses it exactly as the
/// paper does (sigma = span / divisor), other scenarios scale their own
/// widths from it and document how (see workload/scenario.h).
class WorkloadScenario {
 public:
  virtual ~WorkloadScenario() = default;

  virtual std::unique_ptr<WorkloadSampler> MakeSampler(
      const TaskSet& set, double sigma_divisor) const = 0;

  /// False when MakeSampler ignores sigma_divisor (the process has no
  /// dispersion knob — e.g. a fixed tail index or a deterministic replay):
  /// cells differing only in sigma then realise identically, and sweep
  /// drivers use this to skip the duplicates (see bench_scenario_sweep).
  virtual bool UsesSigmaDivisor() const { return true; }
};

/// The paper's truncated-normal workload.
class TruncatedNormalWorkload final : public WorkloadSampler {
 public:
  /// sigma_i = (WCEC_i - BCEC_i) / sigma_divisor.  Tasks with
  /// BCEC == WCEC degenerate to a point mass.
  TruncatedNormalWorkload(const TaskSet& set, double sigma_divisor = 6.0);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

  /// The analytic mean of task `i`'s truncated distribution (slightly
  /// different from ACEC whenever the window is asymmetric).
  double AnalyticMean(TaskIndex task) const;

 private:
  std::vector<std::optional<stats::TruncatedNormal>> dists_;
  std::vector<double> fixed_;  // used when the window collapses
};

/// Deterministic scenarios: every instance takes exactly BCEC / ACEC / WCEC.
/// The WCEC scenario is the adversarial run used to verify deadline
/// guarantees; the ACEC scenario matches the NLP's planning assumption.
enum class FixedScenario { kBest, kAverage, kWorst };

class FixedWorkload final : public WorkloadSampler {
 public:
  FixedWorkload(const TaskSet& set, FixedScenario scenario);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

 private:
  std::vector<double> cycles_;
};

/// Uniform on [BCEC, WCEC] — a heavier-tailed stress variant used by
/// property tests (not part of the paper's setup).
class UniformWorkload final : public WorkloadSampler {
 public:
  explicit UniformWorkload(const TaskSet& set);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

 private:
  std::vector<std::pair<double, double>> windows_;
};

}  // namespace dvs::model

#endif  // ACS_MODEL_WORKLOAD_H
