// Per-instance actual-workload sampling (paper §4 experimental model).
//
// "the number of execution cycles of each task [varies] between the best
// case (BCEC) and worst case (WCEC) following a normal distribution with
// mean = ACEC".  The sigma constant is lost to OCR; we default to the
// 3-sigma convention sigma = (WCEC - BCEC) / 6 and expose it as a knob
// (see bench_ablation_sigma).
#ifndef ACS_MODEL_WORKLOAD_H
#define ACS_MODEL_WORKLOAD_H

#include <memory>
#include <optional>
#include <vector>

#include "model/task.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace dvs::model {

/// Interface: draws the actual execution cycles of one task instance.
class WorkloadSampler {
 public:
  virtual ~WorkloadSampler() = default;

  /// Cycles for the next instance of task `task`; must lie within
  /// [BCEC, WCEC] of that task.
  virtual double SampleCycles(TaskIndex task, stats::Rng& rng) const = 0;
};

/// The paper's truncated-normal workload.
class TruncatedNormalWorkload final : public WorkloadSampler {
 public:
  /// sigma_i = (WCEC_i - BCEC_i) / sigma_divisor.  Tasks with
  /// BCEC == WCEC degenerate to a point mass.
  TruncatedNormalWorkload(const TaskSet& set, double sigma_divisor = 6.0);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

  /// The analytic mean of task `i`'s truncated distribution (slightly
  /// different from ACEC whenever the window is asymmetric).
  double AnalyticMean(TaskIndex task) const;

 private:
  std::vector<std::optional<stats::TruncatedNormal>> dists_;
  std::vector<double> fixed_;  // used when the window collapses
};

/// Deterministic scenarios: every instance takes exactly BCEC / ACEC / WCEC.
/// The WCEC scenario is the adversarial run used to verify deadline
/// guarantees; the ACEC scenario matches the NLP's planning assumption.
enum class FixedScenario { kBest, kAverage, kWorst };

class FixedWorkload final : public WorkloadSampler {
 public:
  FixedWorkload(const TaskSet& set, FixedScenario scenario);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

 private:
  std::vector<double> cycles_;
};

/// Uniform on [BCEC, WCEC] — a heavier-tailed stress variant used by
/// property tests (not part of the paper's setup).
class UniformWorkload final : public WorkloadSampler {
 public:
  explicit UniformWorkload(const TaskSet& set);

  double SampleCycles(TaskIndex task, stats::Rng& rng) const override;

 private:
  std::vector<std::pair<double, double>> windows_;
};

}  // namespace dvs::model

#endif  // ACS_MODEL_WORKLOAD_H
