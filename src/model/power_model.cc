#include "model/power_model.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dvs::model {

double DvsModel::ClampVoltage(double v) const {
  return std::min(std::max(v, vmin()), vmax());
}

double DvsModel::VoltageForWork(double cycles, double window) const {
  ACS_REQUIRE(cycles >= 0.0, "negative cycle count");
  if (cycles == 0.0) {
    return vmin();
  }
  if (window <= 0.0) {
    return vmax();
  }
  return ClampVoltage(VoltageForSpeed(cycles / window));
}

LinearDvsModel::LinearDvsModel(double vmin, double vmax, double ceff,
                               double cycles_per_ms_per_volt)
    : vmin_(vmin), vmax_(vmax), ceff_(ceff), k_(cycles_per_ms_per_volt) {
  ACS_REQUIRE(vmin > 0.0, "vmin must be positive");
  ACS_REQUIRE(vmax > vmin, "vmax must exceed vmin");
  ACS_REQUIRE(ceff > 0.0, "ceff must be positive");
  ACS_REQUIRE(k_ > 0.0, "speed constant must be positive");
}

double LinearDvsModel::SpeedAt(double v) const {
  ACS_REQUIRE(v > 0.0, "voltage must be positive");
  return k_ * v;
}

double LinearDvsModel::VoltageForSpeed(double speed) const {
  ACS_REQUIRE(speed > 0.0, "speed must be positive");
  return speed / k_;
}

double LinearDvsModel::VoltageSlope(double /*speed*/) const { return 1.0 / k_; }

double LinearDvsModel::SpeedSlope(double /*v*/) const { return k_; }

AlphaDvsModel::AlphaDvsModel(double vmin, double vmax, double ceff,
                             double k_delay, double vth, double alpha)
    : vmin_(vmin),
      vmax_(vmax),
      ceff_(ceff),
      k_delay_(k_delay),
      vth_(vth),
      alpha_(alpha) {
  ACS_REQUIRE(vth >= 0.0, "threshold voltage must be non-negative");
  ACS_REQUIRE(vmin > vth, "vmin must exceed the threshold voltage");
  ACS_REQUIRE(vmax > vmin, "vmax must exceed vmin");
  ACS_REQUIRE(ceff > 0.0, "ceff must be positive");
  ACS_REQUIRE(k_delay > 0.0, "delay constant must be positive");
  ACS_REQUIRE(alpha >= 1.0 && alpha <= 2.0, "alpha must lie in [1, 2]");
}

double AlphaDvsModel::SpeedAt(double v) const {
  ACS_REQUIRE(v > vth_, "voltage at or below threshold");
  return std::pow(v - vth_, alpha_) / (k_delay_ * v);
}

double AlphaDvsModel::SpeedSlope(double v) const {
  // d/dV [ (V-Vth)^a / (K V) ]
  //   = (V-Vth)^(a-1) * (a V - (V - Vth)) / (K V^2)
  const double vv = v - vth_;
  return std::pow(vv, alpha_ - 1.0) * (alpha_ * v - vv) / (k_delay_ * v * v);
}

double AlphaDvsModel::VoltageForSpeed(double speed) const {
  ACS_REQUIRE(speed > 0.0, "speed must be positive");
  // SpeedAt is strictly increasing on (vth, inf) for alpha >= 1, so we use
  // bisection-safeguarded Newton.  Bracket: grow the upper bound until the
  // target speed is covered.
  double lo = vth_ + 1e-9;
  double hi = std::max(vmax_, vth_ + 1.0);
  while (SpeedAt(hi) < speed) {
    hi *= 2.0;
    ACS_CHECK(hi < 1e9, "voltage bracket runaway in VoltageForSpeed");
  }
  double v = 0.5 * (lo + hi);
  for (int iter = 0; iter < 128; ++iter) {
    const double f = SpeedAt(v) - speed;
    if (std::fabs(f) <= 1e-12 * std::max(1.0, speed)) {
      return v;
    }
    if (f > 0.0) {
      hi = v;
    } else {
      lo = v;
    }
    const double df = SpeedSlope(v);
    double next = v - f / df;
    if (!(next > lo && next < hi)) {
      next = 0.5 * (lo + hi);  // Newton left the bracket; bisect instead.
    }
    v = next;
  }
  return v;
}

double AlphaDvsModel::VoltageSlope(double speed) const {
  const double v = VoltageForSpeed(speed);
  return 1.0 / SpeedSlope(v);
}

DiscreteDvsModel::DiscreteDvsModel(std::shared_ptr<const DvsModel> base,
                                   std::vector<double> levels)
    : base_(std::move(base)), levels_(std::move(levels)) {
  ACS_REQUIRE(base_ != nullptr, "base model must not be null");
  ACS_REQUIRE(!levels_.empty(), "at least one voltage level is required");
  std::sort(levels_.begin(), levels_.end());
  for (double v : levels_) {
    ACS_REQUIRE(v >= base_->vmin() && v <= base_->vmax(),
                "discrete level outside base model's voltage range");
  }
}

double DiscreteDvsModel::VoltageForSpeed(double speed) const {
  for (double v : levels_) {
    if (base_->SpeedAt(v) >= speed) {
      return v;
    }
  }
  return levels_.back();
}

std::vector<double> DiscreteDvsModel::EvenLevels(const DvsModel& base,
                                                 int count) {
  ACS_REQUIRE(count >= 1, "need at least one level");
  std::vector<double> levels;
  if (count == 1) {
    levels.push_back(base.vmax());
    return levels;
  }
  const double step = (base.vmax() - base.vmin()) / (count - 1);
  for (int i = 0; i < count; ++i) {
    levels.push_back(base.vmin() + step * i);
  }
  levels.back() = base.vmax();
  return levels;
}

}  // namespace dvs::model
