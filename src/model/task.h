// Task and task-set model (paper §2.1).
//
// Frame-based periodic hard real-time system: relative deadline == period,
// first release at t = 0, rate-monotonic fixed priorities (shorter period ->
// higher priority; equal periods share a priority and never preempt each
// other — ties are dispatched by task index).  Execution-cycle demand is
// characterised by best/average/worst-case cycles (BCEC <= ACEC <= WCEC).
#ifndef ACS_MODEL_TASK_H
#define ACS_MODEL_TASK_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/power_model.h"

namespace dvs::model {

/// Index of a task inside its TaskSet.
using TaskIndex = std::size_t;

struct Task {
  std::string name;
  std::int64_t period = 0;  // also the relative deadline (ms, or any unit)
  double wcec = 0.0;        // worst-case execution cycles
  double acec = 0.0;        // average-case execution cycles
  double bcec = 0.0;        // best-case execution cycles

  /// BCEC/WCEC flexibility ratio (paper x-axis); 1 when WCEC == 0.
  double BcecWcecRatio() const { return wcec > 0.0 ? bcec / wcec : 1.0; }
};

/// Immutable, validated collection of tasks.
class TaskSet {
 public:
  /// Validates every task (positive period, 0 <= BCEC <= ACEC <= WCEC,
  /// WCEC > 0) and the hyper-period; throws InvalidArgumentError otherwise.
  explicit TaskSet(std::vector<Task> tasks);

  std::size_t size() const { return tasks_.size(); }
  const Task& task(TaskIndex i) const;
  const std::vector<Task>& tasks() const { return tasks_; }

  /// LCM of all periods.
  std::int64_t hyper_period() const { return hyper_period_; }

  /// Number of instances task `i` releases per hyper-period.
  std::int64_t InstanceCount(TaskIndex i) const;

  /// Total instances across all tasks per hyper-period.
  std::int64_t TotalInstances() const;

  /// True when `a` outranks `b` for dispatching: shorter period first,
  /// task index as the deterministic tie-break.
  bool OutranksForDispatch(TaskIndex a, TaskIndex b) const;

  /// True when `a` preempts a running `b` (strictly shorter period only —
  /// equal-period tasks share a priority, paper §2.1).
  bool CanPreempt(TaskIndex a, TaskIndex b) const;

  /// Worst-case utilisation at the model's top speed:
  /// sum_i WCEC_i / (period_i * SpeedAt(vmax)).
  double Utilization(const DvsModel& model) const;

  /// Same using ACEC — the load the system usually carries.
  double AverageUtilization(const DvsModel& model) const;

  /// Returns a copy with every task's WCEC scaled by `factor` (ACEC/BCEC
  /// scale along, preserving the ratios).
  TaskSet ScaledBy(double factor) const;

  /// One-line description for logs.
  std::string Describe() const;

 private:
  std::vector<Task> tasks_;
  std::int64_t hyper_period_ = 0;
};

/// A single periodic release of a task within the hyper-period.
struct TaskInstance {
  TaskIndex task = 0;
  std::int64_t instance = 0;  // 0-based instance number within hyper-period
  double release = 0.0;
  double deadline = 0.0;
};

/// Enumerates all task instances in one hyper-period, ordered by
/// (release, dispatch rank).
std::vector<TaskInstance> EnumerateInstances(const TaskSet& set);

}  // namespace dvs::model

#endif  // ACS_MODEL_TASK_H
