#include "model/workload.h"

#include "util/error.h"

namespace dvs::model {

TruncatedNormalWorkload::TruncatedNormalWorkload(const TaskSet& set,
                                                 double sigma_divisor) {
  ACS_REQUIRE(sigma_divisor > 0.0, "sigma divisor must be positive");
  dists_.reserve(set.size());
  fixed_.resize(set.size(), 0.0);
  for (TaskIndex i = 0; i < set.size(); ++i) {
    const Task& t = set.task(i);
    const double span = t.wcec - t.bcec;
    if (span <= 0.0) {
      dists_.emplace_back(std::nullopt);
      fixed_[i] = t.wcec;
      continue;
    }
    dists_.emplace_back(
        stats::TruncatedNormal(t.acec, span / sigma_divisor, t.bcec, t.wcec));
  }
}

double TruncatedNormalWorkload::SampleCycles(TaskIndex task,
                                             stats::Rng& rng) const {
  ACS_REQUIRE(task < dists_.size(), "task index out of range");
  if (!dists_[task].has_value()) {
    return fixed_[task];
  }
  return dists_[task]->Sample(rng);
}

double TruncatedNormalWorkload::AnalyticMean(TaskIndex task) const {
  ACS_REQUIRE(task < dists_.size(), "task index out of range");
  if (!dists_[task].has_value()) {
    return fixed_[task];
  }
  return dists_[task]->Mean();
}

FixedWorkload::FixedWorkload(const TaskSet& set, FixedScenario scenario) {
  cycles_.reserve(set.size());
  for (TaskIndex i = 0; i < set.size(); ++i) {
    const Task& t = set.task(i);
    switch (scenario) {
      case FixedScenario::kBest:
        cycles_.push_back(t.bcec);
        break;
      case FixedScenario::kAverage:
        cycles_.push_back(t.acec);
        break;
      case FixedScenario::kWorst:
        cycles_.push_back(t.wcec);
        break;
    }
  }
}

double FixedWorkload::SampleCycles(TaskIndex task, stats::Rng&) const {
  ACS_REQUIRE(task < cycles_.size(), "task index out of range");
  return cycles_[task];
}

UniformWorkload::UniformWorkload(const TaskSet& set) {
  windows_.reserve(set.size());
  for (TaskIndex i = 0; i < set.size(); ++i) {
    const Task& t = set.task(i);
    windows_.emplace_back(t.bcec, t.wcec);
  }
}

double UniformWorkload::SampleCycles(TaskIndex task, stats::Rng& rng) const {
  ACS_REQUIRE(task < windows_.size(), "task index out of range");
  const auto [lo, hi] = windows_[task];
  if (hi <= lo) {
    return hi;
  }
  return rng.Uniform(lo, hi);
}

}  // namespace dvs::model
