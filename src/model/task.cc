#include "model/task.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/math.h"

namespace dvs::model {

TaskSet::TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {
  ACS_REQUIRE(!tasks_.empty(), "task set must not be empty");
  std::vector<std::int64_t> periods;
  periods.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const Task& t = tasks_[i];
    ACS_REQUIRE(t.period > 0,
                "task " + std::to_string(i) + " has non-positive period");
    ACS_REQUIRE(t.wcec > 0.0,
                "task " + std::to_string(i) + " has non-positive WCEC");
    ACS_REQUIRE(t.bcec >= 0.0,
                "task " + std::to_string(i) + " has negative BCEC");
    ACS_REQUIRE(t.bcec <= t.acec && t.acec <= t.wcec,
                "task " + std::to_string(i) +
                    " must satisfy BCEC <= ACEC <= WCEC");
    periods.push_back(t.period);
  }
  hyper_period_ = util::LcmAll(periods);
}

const Task& TaskSet::task(TaskIndex i) const {
  ACS_REQUIRE(i < tasks_.size(), "task index out of range");
  return tasks_[i];
}

std::int64_t TaskSet::InstanceCount(TaskIndex i) const {
  return hyper_period_ / task(i).period;
}

std::int64_t TaskSet::TotalInstances() const {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    total += InstanceCount(i);
  }
  return total;
}

bool TaskSet::OutranksForDispatch(TaskIndex a, TaskIndex b) const {
  const Task& ta = task(a);
  const Task& tb = task(b);
  if (ta.period != tb.period) {
    return ta.period < tb.period;
  }
  return a < b;
}

bool TaskSet::CanPreempt(TaskIndex a, TaskIndex b) const {
  return task(a).period < task(b).period;
}

double TaskSet::Utilization(const DvsModel& model) const {
  const double max_speed = model.MaxSpeed();
  double u = 0.0;
  for (const Task& t : tasks_) {
    u += t.wcec / (static_cast<double>(t.period) * max_speed);
  }
  return u;
}

double TaskSet::AverageUtilization(const DvsModel& model) const {
  const double max_speed = model.MaxSpeed();
  double u = 0.0;
  for (const Task& t : tasks_) {
    u += t.acec / (static_cast<double>(t.period) * max_speed);
  }
  return u;
}

TaskSet TaskSet::ScaledBy(double factor) const {
  ACS_REQUIRE(factor > 0.0, "scale factor must be positive");
  std::vector<Task> scaled = tasks_;
  for (Task& t : scaled) {
    t.wcec *= factor;
    t.acec *= factor;
    t.bcec *= factor;
  }
  return TaskSet(std::move(scaled));
}

std::string TaskSet::Describe() const {
  std::ostringstream out;
  out << tasks_.size() << " tasks, hyper-period " << hyper_period_ << " [";
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (i > 0) out << ", ";
    out << tasks_[i].name << "(P=" << tasks_[i].period
        << ", W=" << tasks_[i].wcec << ")";
  }
  out << "]";
  return out.str();
}

std::vector<TaskInstance> EnumerateInstances(const TaskSet& set) {
  std::vector<TaskInstance> instances;
  instances.reserve(static_cast<std::size_t>(set.TotalInstances()));
  for (TaskIndex i = 0; i < set.size(); ++i) {
    const Task& t = set.task(i);
    const std::int64_t count = set.InstanceCount(i);
    for (std::int64_t k = 0; k < count; ++k) {
      TaskInstance inst;
      inst.task = i;
      inst.instance = k;
      inst.release = static_cast<double>(k * t.period);
      inst.deadline = static_cast<double>((k + 1) * t.period);
      instances.push_back(inst);
    }
  }
  std::sort(instances.begin(), instances.end(),
            [&set](const TaskInstance& a, const TaskInstance& b) {
              if (a.release != b.release) {
                return a.release < b.release;
              }
              if (a.task != b.task) {
                return set.OutranksForDispatch(a.task, b.task);
              }
              return a.instance < b.instance;
            });
  return instances;
}

}  // namespace dvs::model
