// Variable-voltage processor models.
//
// The paper assumes a continuously variable-voltage CPU.  Its motivational
// example uses the simplification "clock cycle time inversely proportional to
// the supply voltage" (LinearDvsModel); its energy/delay preliminaries quote
// the classical alpha-power law t_cyc = K*V/(V - Vth)^alpha (AlphaDvsModel).
// Both are implemented behind one interface so the scheduler, the NLP
// formulation and the runtime simulator are model-agnostic.  A discrete-level
// wrapper (DiscreteDvsModel) models processors exposing a finite set of
// operating points, quantising requested speeds upward so deadlines hold.
//
// Conventions: time in milliseconds, speed in cycles per millisecond, energy
// in units of Ceff * V^2 per cycle (arbitrary but consistent; the paper only
// reports ratios).
#ifndef ACS_MODEL_POWER_MODEL_H
#define ACS_MODEL_POWER_MODEL_H

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

namespace dvs::model {

/// Abstract DVS processor.
class DvsModel {
 public:
  virtual ~DvsModel() = default;

  /// Supply-voltage range (volts); vmin > 0, vmax > vmin.
  virtual double vmin() const = 0;
  virtual double vmax() const = 0;

  /// Effective switching capacitance (energy scale factor).
  virtual double ceff() const = 0;

  /// Execution speed in cycles/ms at voltage `v` (v within [vmin, vmax]).
  virtual double SpeedAt(double v) const = 0;

  /// Inverse of SpeedAt.  `speed` must lie in (0, SpeedAt(vmax)]; values
  /// below SpeedAt(vmin) return voltages below vmin — callers clamp with
  /// ClampVoltage to decide between "run slower" and "run at vmin and idle".
  virtual double VoltageForSpeed(double speed) const = 0;

  /// d VoltageForSpeed / d speed — used by the NLP gradient.
  virtual double VoltageSlope(double speed) const = 0;

  /// d SpeedAt / d voltage — used by the NLP gradient (chain through the
  /// cycle time).  Inverse of VoltageSlope at corresponding points.
  virtual double SpeedSlope(double v) const = 0;

  // --- Derived conveniences -------------------------------------------------

  /// Seconds... milliseconds per cycle at voltage v.
  double CycleTime(double v) const { return 1.0 / SpeedAt(v); }

  /// Fastest achievable speed (cycles/ms).
  double MaxSpeed() const { return SpeedAt(vmax()); }

  /// Slowest sustainable speed (cycles/ms).
  double MinSpeed() const { return SpeedAt(vmin()); }

  /// Energy of one cycle at voltage v: ceff * v^2.
  double EnergyPerCycle(double v) const { return ceff() * v * v; }

  /// Energy of `cycles` cycles at voltage v.
  double Energy(double v, double cycles) const {
    return EnergyPerCycle(v) * cycles;
  }

  /// Clamps a voltage into the legal range.
  double ClampVoltage(double v) const;

  /// Voltage needed to run `cycles` within `window` ms, clamped to range.
  /// A non-positive window returns vmax (degenerate dispatch; the caller is
  /// responsible for feasibility checking).
  double VoltageForWork(double cycles, double window) const;
};

/// f = k * V: the motivational example's model ("cycle time inversely
/// proportional to supply voltage").
class LinearDvsModel final : public DvsModel {
 public:
  /// `cycles_per_ms_per_volt` is the proportionality constant k;
  /// speed(V) = k * V.
  LinearDvsModel(double vmin, double vmax, double ceff,
                 double cycles_per_ms_per_volt);

  double vmin() const override { return vmin_; }
  double vmax() const override { return vmax_; }
  double ceff() const override { return ceff_; }
  double SpeedAt(double v) const override;
  double VoltageForSpeed(double speed) const override;
  double VoltageSlope(double speed) const override;
  double SpeedSlope(double v) const override;

  double k() const { return k_; }

 private:
  double vmin_;
  double vmax_;
  double ceff_;
  double k_;
};

/// Alpha-power law: t_cyc(V) = K * V / (V - Vth)^alpha, 1 < alpha <= 2.
/// Speed is strictly increasing in V for V > Vth, so VoltageForSpeed is a
/// well-posed monotone inversion (safeguarded Newton).
class AlphaDvsModel final : public DvsModel {
 public:
  AlphaDvsModel(double vmin, double vmax, double ceff, double k_delay,
                double vth, double alpha);

  double vmin() const override { return vmin_; }
  double vmax() const override { return vmax_; }
  double ceff() const override { return ceff_; }
  double SpeedAt(double v) const override;
  double VoltageForSpeed(double speed) const override;
  double VoltageSlope(double speed) const override;
  double SpeedSlope(double v) const override;

  double vth() const { return vth_; }
  double alpha() const { return alpha_; }
  double k_delay() const { return k_delay_; }

 private:
  double vmin_;
  double vmax_;
  double ceff_;
  double k_delay_;
  double vth_;
  double alpha_;
};

/// Finite operating points over an underlying continuous model.  Requested
/// speeds round *up* to the next level so every deadline guarantee of the
/// continuous analysis still holds (the processor just finishes early).
class DiscreteDvsModel final : public DvsModel {
 public:
  /// `levels` are supply voltages; they are sorted and must lie within the
  /// base model's range.  At least one level is required.
  DiscreteDvsModel(std::shared_ptr<const DvsModel> base,
                   std::vector<double> levels);

  double vmin() const override { return levels_.front(); }
  double vmax() const override { return levels_.back(); }
  double ceff() const override { return base_->ceff(); }
  double SpeedAt(double v) const override { return base_->SpeedAt(v); }

  /// Returns the smallest level whose speed covers `speed` (vmax when even
  /// the top level is too slow — callers detect overload separately).
  double VoltageForSpeed(double speed) const override;

  /// Piecewise-constant quantisation has zero slope almost everywhere.
  double VoltageSlope(double) const override { return 0.0; }

  /// Underlying physics still governs speed-vs-voltage between levels.
  double SpeedSlope(double v) const override { return base_->SpeedSlope(v); }

  const std::vector<double>& levels() const { return levels_; }
  const DvsModel& base() const { return *base_; }

  /// Builds `count` evenly spaced levels across the base model's range.
  static std::vector<double> EvenLevels(const DvsModel& base, int count);

 private:
  std::shared_ptr<const DvsModel> base_;
  std::vector<double> levels_;
};

/// Voltage-transition overhead (ignored by the paper's formulation; the
/// simulator can charge it to quantify the assumption — see the ablation
/// bench).  Both costs scale with |delta V|.
struct TransitionOverhead {
  double time_per_volt = 0.0;    // ms of stall per volt of change
  double energy_per_volt = 0.0;  // energy per volt of change

  bool IsZero() const { return time_per_volt == 0.0 && energy_per_volt == 0.0; }
};

/// Always-on per-core power floor (leakage + uncore), the term that makes
/// the core count an energy trade-off in the multi-core aggregation: DVS
/// lowers the dynamic energy per core while every powered core keeps paying
/// this floor for the whole mission time (Huang et al., leakage-aware
/// reallocation).  Units: energy per ms per core, in the same ceff*V^2 scale
/// as the dynamic energy.
struct IdlePower {
  double power_per_ms = 0.0;

  bool IsZero() const { return power_per_ms == 0.0; }

  /// Energy the floor costs one core over `duration` ms.
  double Energy(double duration) const { return power_per_ms * duration; }
};

/// One processor sleep state (the DPM layer's table entry, beside the
/// IdlePower floor): the power drawn while asleep plus the latency and
/// energy of the enter/exit transitions.  A core commits a *timed* sleep
/// across a known idle interval — the wake-up timer fires exit_latency
/// before the interval ends, so a committed sleep can never push the next
/// dispatch late (deadline-safe by construction); the engine only commits
/// when the interval beats BreakEvenTime.  Units match IdlePower (energy
/// per ms in the ceff*V^2 scale).
struct SleepState {
  double power_per_ms = 0.0;   // drawn while asleep (< the awake floor)
  double enter_latency = 0.0;  // ms to enter the state
  double exit_latency = 0.0;   // ms to wake from it
  double enter_energy = 0.0;   // charged per committed transition
  double exit_energy = 0.0;

  bool IsZero() const {
    return power_per_ms == 0.0 && enter_latency == 0.0 &&
           exit_latency == 0.0 && enter_energy == 0.0 && exit_energy == 0.0;
  }

  double TransitionLatency() const { return enter_latency + exit_latency; }
  double TransitionEnergy() const { return enter_energy + exit_energy; }

  /// Shortest idle interval worth sleeping through under the awake floor
  /// `idle`: the interval must cover both transitions and the floor energy
  /// saved must pay for the transition energy net of the sleep power drawn
  /// while transitioning.  +infinity when the state never pays (floor <=
  /// sleep power), so Worthwhile is false for every finite interval.
  double BreakEvenTime(const IdlePower& idle) const {
    const double saved_per_ms = idle.power_per_ms - power_per_ms;
    if (saved_per_ms <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    const double amortize =
        (TransitionEnergy() - power_per_ms * TransitionLatency()) /
        saved_per_ms;
    return std::max(TransitionLatency(), amortize);
  }

  /// True when sleeping through a `gap`-ms idle interval costs less than
  /// idling it at the floor (and the interval covers both transitions).
  bool Worthwhile(double gap, const IdlePower& idle) const {
    return gap >= BreakEvenTime(idle);
  }

  /// Energy of a committed sleep across a `gap`-ms interval: both
  /// transitions plus sleep-power residency.  Requires
  /// gap >= TransitionLatency().
  double Energy(double gap) const {
    return TransitionEnergy() + power_per_ms * (gap - TransitionLatency());
  }
};

}  // namespace dvs::model

#endif  // ACS_MODEL_POWER_MODEL_H
