#include "sim/static_schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace dvs::sim {

StaticSchedule::StaticSchedule(const fps::FullyPreemptiveSchedule& fps,
                               std::vector<double> end_times,
                               std::vector<double> worst_budgets)
    : end_times_(std::move(end_times)),
      worst_budgets_(std::move(worst_budgets)) {
  ACS_REQUIRE(end_times_.size() == fps.sub_count(),
              "end-time array does not match the sub-instance count");
  ACS_REQUIRE(worst_budgets_.size() == fps.sub_count(),
              "budget array does not match the sub-instance count");
  for (std::size_t u = 0; u < worst_budgets_.size(); ++u) {
    ACS_REQUIRE(worst_budgets_[u] >= -1e-9, "negative worst-case budget");
    worst_budgets_[u] = std::max(0.0, worst_budgets_[u]);
  }
}

double StaticSchedule::end_time(std::size_t order) const {
  ACS_REQUIRE(order < end_times_.size(), "order index out of range");
  return end_times_[order];
}

double StaticSchedule::worst_budget(std::size_t order) const {
  ACS_REQUIRE(order < worst_budgets_.size(), "order index out of range");
  return worst_budgets_[order];
}

FeasibilityReport VerifyWorstCase(const fps::FullyPreemptiveSchedule& fps,
                                  const StaticSchedule& schedule,
                                  const model::DvsModel& dvs, double tol) {
  FeasibilityReport report;
  report.worst_slack = std::numeric_limits<double>::infinity();
  const double ct_max = dvs.CycleTime(dvs.vmax());

  const auto fail = [&report](const std::string& message) {
    if (report.feasible) {
      report.feasible = false;
      report.detail = message;
    }
  };

  double finish = 0.0;
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    const double e = schedule.end_time(u);
    const double w = schedule.worst_budget(u);

    if (e < sub.seg_begin - tol || e > sub.seg_end + tol) {
      std::ostringstream msg;
      msg << "end-time of sub " << u << " (" << e << ") outside segment ["
          << sub.seg_begin << ", " << sub.seg_end << "]";
      fail(msg.str());
    }

    // Zero-budget sub-instances execute nothing at runtime; their end-times
    // are inert bookkeeping, so the chain check only applies to positive
    // budgets.
    if (w <= tol) {
      continue;
    }
    // Worst-case start: the previous positive-budget sub-instance is
    // stretched by the greedy dispatcher to finish exactly at its scheduled
    // end-time, so the chain anchors on the end-times themselves.
    const double start = std::max(finish, sub.release());
    const double needed = start + w * ct_max;
    const double slack = e - needed;
    report.worst_slack = std::min(report.worst_slack, slack);
    if (slack < -tol) {
      std::ostringstream msg;
      msg << "worst-case chain misses end-time of sub " << u
          << ": needs until " << needed << " > e " << e;
      fail(msg.str());
    }
    finish = e;
  }

  // Budget conservation per instance.
  const model::TaskSet& set = fps.task_set();
  for (const fps::InstanceRecord& rec : fps.instances()) {
    double total = 0.0;
    for (std::size_t order : rec.subs) {
      total += schedule.worst_budget(order);
    }
    const double wcec = set.task(rec.info.task).wcec;
    if (std::fabs(total - wcec) > tol * std::max(1.0, wcec)) {
      std::ostringstream msg;
      msg << "budgets of " << set.task(rec.info.task).name << "["
          << rec.info.instance << "] sum to " << total << ", expected WCEC "
          << wcec;
      fail(msg.str());
    }
  }
  return report;
}

std::vector<double> ComputeWorstStarts(const fps::FullyPreemptiveSchedule& fps,
                                       const StaticSchedule& schedule,
                                       const model::DvsModel& dvs) {
  std::vector<double> starts(fps.sub_count(), 0.0);
  (void)dvs;  // the chain anchors on end-times; the model is kept for API
              // symmetry with VerifyWorstCase
  double finish = 0.0;
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    starts[u] = std::max(finish, sub.release());
    if (schedule.worst_budget(u) > 0.0) {
      finish = schedule.end_time(u);
    }
  }
  return starts;
}

}  // namespace dvs::sim
