#include "sim/policy.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace dvs::sim {

DispatchDecision GreedyReclaimPolicy::Dispatch(
    const DispatchContext& ctx) const {
  DispatchDecision decision;
  if (!allow_early_start_ && ctx.local_time < ctx.sub_release) {
    decision.not_before = ctx.sub_release;
    decision.voltage = dvs_->vmax();
    return decision;
  }
  const double window = ctx.sub_end_time - ctx.local_time;
  if (window <= 0.0 || ctx.budget_remaining <= 0.0) {
    // Degenerate dispatch: a zero-width (or overrun) window at a
    // hyper-period wrap, or a sub whose budget is already spent while the
    // instance still holds cycles.  There is no span to stretch over, so
    // run flat out — never divide the stretch ratio by a non-positive
    // window or hand a zero budget to the voltage solve.
    decision.voltage = dvs_->vmax();
    return decision;
  }
  decision.voltage = dvs_->VoltageForWork(ctx.budget_remaining, window);
  return decision;
}

ExpectedCasePolicy::ExpectedCasePolicy(
    const fps::FullyPreemptiveSchedule& fps, const StaticSchedule& schedule,
    const model::DvsModel& dvs,
    const std::vector<std::vector<double>>& sorted_draws, std::int64_t bins,
    const std::vector<double>* task_scale)
    : dvs_(&dvs), bins_(static_cast<std::size_t>(std::max<std::int64_t>(
                      1, std::min<std::int64_t>(bins, 64)))) {
  const model::TaskSet& set = fps.task_set();
  ACS_REQUIRE(sorted_draws.size() == set.size(),
              "ExpectedCasePolicy needs one calibrated draw vector per task");

  // Per-sub worst-case prefix: cycles of the parent instance consumed
  // before each sub under the static schedule's budgets.  Conditions the
  // survival weights on realised progress at dispatch time.
  budgets_.resize(fps.sub_count(), 0.0);
  done_before_.resize(fps.sub_count(), 0.0);
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    double before = 0.0;
    for (std::size_t order : fps.instance(p).subs) {
      budgets_[order] = schedule.worst_budget(order);
      done_before_[order] = before;
      before += budgets_[order];
    }
  }

  // Per-task survival grids over [BCEC, WCEC]: survival_[i][k] is the
  // fraction of calibrated draws strictly above the k-th grid point.
  // Dispatch interpolates linearly, so grid resolution only smooths the
  // profile, never breaks feasibility.
  constexpr std::size_t kGridPoints = 129;
  scale_.assign(set.size(), 1.0);
  if (task_scale != nullptr) {
    ACS_REQUIRE(task_scale->size() == set.size(),
                "task_scale must have one entry per task");
    for (std::size_t i = 0; i < set.size(); ++i) {
      scale_[i] = std::max(1e-9, (*task_scale)[i]);
    }
  }
  grid_lo_.resize(set.size(), 0.0);
  grid_step_.resize(set.size(), 0.0);
  survival_.assign(set.size(), std::vector<double>(kGridPoints, 0.0));
  for (std::size_t i = 0; i < set.size(); ++i) {
    const model::Task& task = set.task(i);
    grid_lo_[i] = task.bcec;
    grid_step_[i] = (task.wcec - task.bcec) /
                    static_cast<double>(kGridPoints - 1);
    const std::vector<double>& sorted = sorted_draws[i];
    for (std::size_t k = 0; k < kGridPoints; ++k) {
      const double x = task.bcec + grid_step_[i] * static_cast<double>(k);
      if (sorted.empty()) {
        // No calibration data: assume the worst (always reaches WCEC), which
        // degrades to the greedy stretch profile.
        survival_[i][k] = x < task.wcec ? 1.0 : 0.0;
        continue;
      }
      // First index with sorted[idx] > x; the tail fraction is survival.
      const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
      survival_[i][k] =
          static_cast<double>(sorted.end() - it) /
          static_cast<double>(sorted.size());
    }
  }

  weight_.resize(bins_, 0.0);
  speed_.resize(bins_, 0.0);
  pinned_.resize(bins_, 0);
}

double ExpectedCasePolicy::Survival(model::TaskIndex task,
                                    double cycles) const {
  // Drift stretch: the adaptor models the shifted law as f * X, so
  // Pr[f X > c] = Pr[X > c / f] evaluated on the base grid.
  const double x = cycles / scale_[task];
  const std::vector<double>& grid = survival_[task];
  const double step = grid_step_[task];
  if (step <= 0.0) {
    // Degenerate BCEC == WCEC task: deterministic workload.
    return x < grid_lo_[task] ? 1.0 : 0.0;
  }
  const double pos = (x - grid_lo_[task]) / step;
  if (pos <= 0.0) {
    return grid.front();
  }
  if (pos >= static_cast<double>(grid.size() - 1)) {
    return grid.back();
  }
  const std::size_t k = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(k);
  return grid[k] + frac * (grid[k + 1] - grid[k]);
}

DispatchDecision ExpectedCasePolicy::Dispatch(
    const DispatchContext& ctx) const {
  DispatchDecision decision;
  // Same release gate as GreedyReclaimPolicy: before its segment start the
  // static plan assigns the processor elsewhere; starting early would break
  // the feasibility argument.
  if (ctx.local_time < ctx.sub_release) {
    decision.not_before = ctx.sub_release;
    decision.voltage = dvs_->vmax();
    return decision;
  }
  const double window = ctx.sub_end_time - ctx.local_time;
  const double budget = ctx.budget_remaining;
  if (window <= 0.0 || budget <= 0.0) {
    decision.voltage = dvs_->vmax();  // degenerate window: no room to shape
    return decision;
  }

  const double smin = dvs_->MinSpeed();
  const double smax = dvs_->MaxSpeed();
  if (budget / smax >= window) {
    // Even flat-out barely (or doesn't) fit: the whole window runs at Vmax,
    // exactly the greedy clamp.
    decision.voltage = dvs_->vmax();
    return decision;
  }

  // Condition on realised progress: the parent instance has consumed its
  // worst-case prefix up to this sub plus whatever this sub already ran.
  const double consumed =
      done_before_[ctx.sub_order] + (budgets_[ctx.sub_order] - budget);
  const double bin_w = budget / static_cast<double>(bins_);
  double total_weight = 0.0;
  for (std::size_t j = 0; j < bins_; ++j) {
    weight_[j] = Survival(
        ctx.task, consumed + (static_cast<double>(j) + 0.5) * bin_w);
    total_weight += weight_[j];
  }
  if (weight_[0] <= 0.0 || total_weight <= 0.0) {
    // Progress is already past every calibrated draw: expected marginal
    // energy is ~0 everywhere, so fall back to the greedy stretch.
    decision.voltage = dvs_->VoltageForWork(budget, window);
    return decision;
  }
  ++dp_dispatches_;

  // Water-filling over the PACE rule s_j ∝ S_j^{-1/3}: bins with zero
  // weight cost nothing at any speed, so they run at MaxSpeed to donate
  // window time; bins whose unconstrained optimum leaves [smin, smax] are
  // pinned to the violated bound and the rest re-normalised.  Each pass
  // pins at least one bin, so the loop runs at most bins_ passes.
  double pinned_time = 0.0;
  for (std::size_t j = 0; j < bins_; ++j) {
    if (weight_[j] <= 0.0) {
      pinned_[j] = 1;
      speed_[j] = smax;
      pinned_time += bin_w / smax;
    } else {
      pinned_[j] = 0;
    }
  }
  while (true) {
    double cbrt_sum = 0.0;
    std::size_t free_bins = 0;
    for (std::size_t j = 0; j < bins_; ++j) {
      if (pinned_[j] == 0) {
        cbrt_sum += std::cbrt(weight_[j]);
        ++free_bins;
      }
    }
    if (free_bins == 0) {
      break;
    }
    const double free_time = window - pinned_time;
    if (free_time <= 0.0) {
      // Pinned bins ate the window (can only happen within float noise of
      // the feasibility check above): run everything else flat out.
      for (std::size_t j = 0; j < bins_; ++j) {
        if (pinned_[j] == 0) {
          pinned_[j] = 1;
          speed_[j] = smax;
        }
      }
      break;
    }
    const double scale = bin_w * cbrt_sum / free_time;
    bool repinned = false;
    // Pin max-speed violations first: they *consume* window time, so
    // resolving them before min-speed pins keeps every pass feasible.
    for (std::size_t j = 0; j < bins_; ++j) {
      if (pinned_[j] == 0 && scale / std::cbrt(weight_[j]) > smax) {
        pinned_[j] = 1;
        speed_[j] = smax;
        pinned_time += bin_w / smax;
        repinned = true;
      }
    }
    if (repinned) {
      continue;
    }
    for (std::size_t j = 0; j < bins_; ++j) {
      if (pinned_[j] == 0 && scale / std::cbrt(weight_[j]) < smin) {
        pinned_[j] = 1;
        speed_[j] = smin;
        pinned_time += bin_w / smin;
        repinned = true;
      }
    }
    if (repinned) {
      continue;
    }
    for (std::size_t j = 0; j < bins_; ++j) {
      if (pinned_[j] == 0) {
        speed_[j] = scale / std::cbrt(weight_[j]);
      }
    }
    break;
  }

  // Run the first bin's speed and cap the slice at the end of the
  // equal-speed prefix, so a flat profile dispatches once while a shaped
  // one re-dispatches exactly at its breakpoints.
  double cap = bin_w;
  for (std::size_t j = 1; j < bins_; ++j) {
    if (std::fabs(speed_[j] - speed_[0]) > 1e-12) {
      break;
    }
    cap += bin_w;
  }
  decision.voltage = dvs_->ClampVoltage(dvs_->VoltageForSpeed(speed_[0]));
  if (cap < budget) {
    decision.cycle_cap = cap;
  }
  return decision;
}

DispatchDecision VmaxPolicy::Dispatch(const DispatchContext&) const {
  DispatchDecision decision;
  decision.voltage = dvs_->vmax();
  return decision;
}

StaticOnlyPolicy::StaticOnlyPolicy(const fps::FullyPreemptiveSchedule& fps,
                                   const StaticSchedule& schedule,
                                   const model::DvsModel& dvs)
    : dvs_(&dvs) {
  const std::vector<double> starts = ComputeWorstStarts(fps, schedule, dvs);
  voltages_.resize(fps.sub_count(), dvs.vmin());
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const double window = schedule.end_time(u) - starts[u];
    voltages_[u] = dvs.VoltageForWork(schedule.worst_budget(u), window);
  }
}

DispatchDecision AnyPolicy::Dispatch(const DispatchContext& ctx) const {
  if (external_ != nullptr) {
    return external_->Dispatch(ctx);
  }
  return std::visit(
      [&ctx](const auto& policy) -> DispatchDecision {
        if constexpr (std::is_same_v<std::decay_t<decltype(policy)>,
                                     std::monostate>) {
          ACS_REQUIRE(false, "AnyPolicy holds no policy");
          return {};
        } else {
          return policy.Dispatch(ctx);
        }
      },
      builtin_);
}

DispatchDecision StaticOnlyPolicy::Dispatch(const DispatchContext& ctx) const {
  ACS_REQUIRE(ctx.sub_order < voltages_.size(),
              "sub-instance index out of range in StaticOnlyPolicy");
  DispatchDecision decision;
  // No early start, no reclamation: execute inside the planned window only.
  const double planned_release = ctx.sub_release;
  if (ctx.local_time < planned_release) {
    decision.not_before = planned_release;
  }
  decision.voltage = voltages_[ctx.sub_order];
  return decision;
}

}  // namespace dvs::sim
