#include "sim/policy.h"

#include <algorithm>

#include "util/error.h"

namespace dvs::sim {

DispatchDecision GreedyReclaimPolicy::Dispatch(
    const DispatchContext& ctx) const {
  DispatchDecision decision;
  if (!allow_early_start_ && ctx.local_time < ctx.sub_release) {
    decision.not_before = ctx.sub_release;
    decision.voltage = dvs_->vmax();
    return decision;
  }
  const double window = ctx.sub_end_time - ctx.local_time;
  decision.voltage = dvs_->VoltageForWork(ctx.budget_remaining, window);
  return decision;
}

DispatchDecision VmaxPolicy::Dispatch(const DispatchContext&) const {
  DispatchDecision decision;
  decision.voltage = dvs_->vmax();
  return decision;
}

StaticOnlyPolicy::StaticOnlyPolicy(const fps::FullyPreemptiveSchedule& fps,
                                   const StaticSchedule& schedule,
                                   const model::DvsModel& dvs)
    : dvs_(&dvs) {
  const std::vector<double> starts = ComputeWorstStarts(fps, schedule, dvs);
  voltages_.resize(fps.sub_count(), dvs.vmin());
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const double window = schedule.end_time(u) - starts[u];
    voltages_[u] = dvs.VoltageForWork(schedule.worst_budget(u), window);
  }
}

DispatchDecision AnyPolicy::Dispatch(const DispatchContext& ctx) const {
  if (external_ != nullptr) {
    return external_->Dispatch(ctx);
  }
  return std::visit(
      [&ctx](const auto& policy) -> DispatchDecision {
        if constexpr (std::is_same_v<std::decay_t<decltype(policy)>,
                                     std::monostate>) {
          ACS_REQUIRE(false, "AnyPolicy holds no policy");
          return {};
        } else {
          return policy.Dispatch(ctx);
        }
      },
      builtin_);
}

DispatchDecision StaticOnlyPolicy::Dispatch(const DispatchContext& ctx) const {
  ACS_REQUIRE(ctx.sub_order < voltages_.size(),
              "sub-instance index out of range in StaticOnlyPolicy");
  DispatchDecision decision;
  // No early start, no reclamation: execute inside the planned window only.
  const double planned_release = ctx.sub_release;
  if (ctx.local_time < planned_release) {
    decision.not_before = planned_release;
  }
  decision.voltage = voltages_[ctx.sub_order];
  return decision;
}

}  // namespace dvs::sim
