// Static (offline) voltage schedule representation and its worst-case
// feasibility checker.
//
// A StaticSchedule assigns every sub-instance of the fully preemptive
// schedule a scheduled end-time e_u and a worst-case workload budget w_u.
// These two arrays are exactly what the offline phase hands to the online
// DVS dispatcher (paper §3: "only the end-time and the worst-case workload
// variables will be passed to the online DVS phase").
#ifndef ACS_SIM_STATIC_SCHEDULE_H
#define ACS_SIM_STATIC_SCHEDULE_H

#include <string>
#include <vector>

#include "fps/expansion.h"
#include "model/power_model.h"

namespace dvs::sim {

class StaticSchedule {
 public:
  /// `end_times` and `worst_budgets` are indexed by total-order position and
  /// must match `fps.sub_count()`.
  StaticSchedule(const fps::FullyPreemptiveSchedule& fps,
                 std::vector<double> end_times,
                 std::vector<double> worst_budgets);

  std::size_t size() const { return end_times_.size(); }
  double end_time(std::size_t order) const;
  double worst_budget(std::size_t order) const;
  const std::vector<double>& end_times() const { return end_times_; }
  const std::vector<double>& worst_budgets() const { return worst_budgets_; }

 private:
  std::vector<double> end_times_;
  std::vector<double> worst_budgets_;
};

/// Result of the independent worst-case feasibility audit.
struct FeasibilityReport {
  bool feasible = true;
  std::string detail;          // first violation, if any
  double worst_slack = 0.0;    // min over u of (e_u - worst-case finish_u)
};

/// Simulates the all-WCEC chain at Vmax through the total order and checks
/// the three invariants that make a static schedule safe at runtime:
///   1. chain:   max(finish_{u-1}, r_u) + w_u * t_cyc(Vmax) <= e_u
///   2. window:  seg_begin_u <= e_u <= seg_end_u
///   3. budget:  sum_k w_{I,k} == WCEC_I for every instance I
/// This is deliberately independent of the NLP solver — it is the oracle the
/// property tests trust.
FeasibilityReport VerifyWorstCase(const fps::FullyPreemptiveSchedule& fps,
                                  const StaticSchedule& schedule,
                                  const model::DvsModel& dvs,
                                  double tol = 1e-6);

/// Worst-case start time of each sub-instance (the chain's
/// max(finish_{u-1}, r_u) values) — used by the no-reclamation static
/// policy, which must fix voltages offline.
std::vector<double> ComputeWorstStarts(const fps::FullyPreemptiveSchedule& fps,
                                       const StaticSchedule& schedule,
                                       const model::DvsModel& dvs);

}  // namespace dvs::sim

#endif  // ACS_SIM_STATIC_SCHEDULE_H
