#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/gantt.h"
#include "util/strings.h"

namespace dvs::sim {

std::string AuditTrace(const Trace& trace, const model::TaskSet& set,
                       const model::DvsModel& dvs, double tol) {
  const auto& slices = trace.slices();
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const ExecutionSlice& s = slices[i];
    std::ostringstream msg;
    if (s.end < s.begin - tol) {
      msg << "slice " << i << " has negative duration";
      return msg.str();
    }
    if (i > 0 && s.begin < slices[i - 1].end - tol) {
      msg << "slice " << i << " overlaps its predecessor (" << s.begin
          << " < " << slices[i - 1].end << ")";
      return msg.str();
    }
    if (s.task >= set.size()) {
      msg << "slice " << i << " references unknown task " << s.task;
      return msg.str();
    }
    const double period = static_cast<double>(set.task(s.task).period);
    const double release = period * static_cast<double>(s.instance);
    const double deadline = release + period;
    if (s.begin < release - tol || s.end > deadline + tol) {
      msg << "slice " << i << " of " << set.task(s.task).name << "["
          << s.instance << "] runs outside its window [" << release << ", "
          << deadline << "]: [" << s.begin << ", " << s.end << "]";
      return msg.str();
    }
    if (s.voltage < dvs.vmin() - tol || s.voltage > dvs.vmax() + tol) {
      msg << "slice " << i << " voltage " << s.voltage << " outside ["
          << dvs.vmin() << ", " << dvs.vmax() << "]";
      return msg.str();
    }
    const double expected_cycles = dvs.SpeedAt(s.voltage) * s.Duration();
    if (std::fabs(expected_cycles - s.cycles) >
        tol * std::max(1.0, expected_cycles)) {
      msg << "slice " << i << " cycle count " << s.cycles
          << " inconsistent with speed * duration " << expected_cycles;
      return msg.str();
    }
  }
  return {};
}

std::string RenderTraceGantt(const Trace& trace, const model::TaskSet& set,
                             double horizon, int width) {
  // Group bars per task first: GanttChart::AddRow references invalidate on
  // the next AddRow, so each row must be complete when it is added.
  std::vector<std::vector<util::GanttBar>> bars(set.size());
  for (const ExecutionSlice& s : trace.slices()) {
    if (s.begin >= horizon) {
      break;
    }
    util::GanttBar bar;
    bar.begin = s.begin;
    bar.end = std::min(s.end, horizon);
    bar.fill = '#';
    bar.annotation = util::FormatDouble(s.voltage, 1) + "V";
    bars[s.task].push_back(bar);
  }
  util::GanttChart chart(0.0, horizon, width);
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    chart.AddRow(set.task(i).name).bars = std::move(bars[i]);
  }
  return chart.Render();
}

}  // namespace dvs::sim
