// Execution traces: what actually ran, when, at which voltage.
//
// Traces are optional (they cost memory proportional to slice count) and are
// consumed by tests (invariant audits), by the examples (ASCII Gantt of the
// paper's Figures 1-2) and by debugging.
#ifndef ACS_SIM_TRACE_H
#define ACS_SIM_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/task.h"

namespace dvs::sim {

/// One maximal interval of uninterrupted execution.
struct ExecutionSlice {
  model::TaskIndex task = 0;
  std::int64_t instance = 0;  // global instance number (across hyper-periods)
  int sub_k = 0;              // sub-instance within the parent
  double begin = 0.0;         // global time
  double end = 0.0;
  double voltage = 0.0;
  double cycles = 0.0;

  double Duration() const { return end - begin; }
};

class Trace {
 public:
  void Add(ExecutionSlice slice) { slices_.push_back(slice); }
  const std::vector<ExecutionSlice>& slices() const { return slices_; }
  std::size_t size() const { return slices_.size(); }
  void Clear() { slices_.clear(); }

 private:
  std::vector<ExecutionSlice> slices_;
};

/// Structural audit of a trace against its task set:
///  - slices are time-ordered and non-overlapping (single processor),
///  - every slice lies inside its instance's [release, deadline] window,
///  - voltages lie within the model's range.
/// Returns an empty string when clean, else a description of the first
/// violation.
std::string AuditTrace(const Trace& trace, const model::TaskSet& set,
                       const model::DvsModel& dvs, double tol = 1e-6);

/// Renders the first `horizon` time units as an ASCII Gantt chart, one row
/// per task (used by the motivation example to reproduce Figs. 1-2).
std::string RenderTraceGantt(const Trace& trace, const model::TaskSet& set,
                             double horizon, int width = 72);

}  // namespace dvs::sim

#endif  // ACS_SIM_TRACE_H
