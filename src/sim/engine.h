// Discrete-event preemptive execution engine.
//
// Simulates the frame-based RM system of paper §2.1 for a number of
// hyper-periods: releases are the only preemption points, the
// highest-dispatch-rank active instance runs, and the voltage of every
// execution slice comes from the pluggable DvsPolicy.  Actual per-instance
// workloads are drawn from a WorkloadSampler at release time, so the same
// engine measures the average-case scenario, the adversarial all-WCEC
// scenario and any registered execution-time process
// (workload::ScenarioRegistry).  The job-draw path has a fixed contract:
// releases activate in global release order and each consumes the sampler
// exactly once against the engine's rng stream, so stateful samplers
// (Markov phases, AR(1) memory, trace cursors) see a deterministic job
// sequence — one sampler per simulation run, per model/workload.h.
//
// Sub-instance bookkeeping: every active instance walks the sub-instance
// list of its parent (from the fully preemptive expansion); a sub-instance
// is "used up" when its worst-case budget has been consumed, which triggers
// a re-dispatch (the paper's per-sub-instance voltage computation).
#ifndef ACS_SIM_ENGINE_H
#define ACS_SIM_ENGINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fps/expansion.h"
#include "model/power_model.h"
#include "model/workload.h"
#include "sim/policy.h"
#include "sim/static_schedule.h"
#include "sim/trace.h"
#include "stats/rng.h"

namespace dvs::sim {

struct SimOptions {
  std::int64_t hyper_periods = 1;
  bool record_trace = false;
  /// Optional voltage-transition overhead (energy and stall time); zero by
  /// default, matching the paper's assumption.
  model::TransitionOverhead transition;
  /// DPM sleep accounting: when `dpm` is set (and the idle floor is
  /// positive), the engine charges `idle_power` across the whole mission
  /// time and consolidates idle intervals — an interval beating the sleep
  /// state's break-even is slept through (timed wake, so dispatch times are
  /// untouched and the schedule is bit-identical to the DPM-off run; only
  /// the energy ledger changes).  Off by default: the legacy path charges
  /// nothing for idleness (the fleet layer's per-core floor accounting).
  bool dpm = false;
  model::IdlePower idle_power;
  model::SleepState sleep;
};

struct SimResult {
  double total_energy = 0.0;
  std::vector<double> per_task_energy;
  std::int64_t deadline_misses = 0;
  std::int64_t completed_instances = 0;
  double busy_time = 0.0;
  double idle_time = 0.0;
  double stall_time = 0.0;          // transition overhead stalls
  double transition_energy = 0.0;   // included in total_energy
  std::int64_t dispatches = 0;      // execution slices started
  std::int64_t preemptions = 0;     // running instance displaced by another
  std::int64_t voltage_switches = 0;
  double makespan = 0.0;            // completion time of the last instance
  /// DPM ledger (all zero unless SimOptions::dpm): floor energy paid while
  /// awake (busy or idle — the always-on IdlePower over the mission minus
  /// slept time), sleep-state energy (transitions + residency), time spent
  /// in committed sleeps and their count.  idle_energy + sleep_energy are
  /// both included in total_energy.
  double idle_energy = 0.0;
  double sleep_energy = 0.0;
  double sleep_time = 0.0;
  std::int64_t sleeps = 0;
  std::string first_miss;           // description of the first deadline miss
  Trace trace;                      // populated when record_trace is set
  /// Per-task realised workload bookkeeping, accumulated at activation (one
  /// entry per sampler draw): the raw material of the drift detector's
  /// per-task EWMA (core::EvaluateMethod's adaptive arms).
  std::vector<double> sampled_cycles;        // sum of drawn cycles
  std::vector<std::int64_t> sampled_counts;  // draws per task

  /// Energy per simulated hyper-period (the paper's reported quantity).
  /// Guarded: a non-positive count (a failed or skipped run) reports zero
  /// instead of dividing by it.
  double EnergyPerHyperPeriod(std::int64_t hyper_periods) const {
    return hyper_periods > 0
               ? total_energy / static_cast<double>(hyper_periods)
               : 0.0;
  }
};

/// Reusable buffers for Simulate — the sub-instance tables, release stream,
/// active set and the result object itself.  One workspace per thread (see
/// core::EvalWorkspace); after the first simulation the steady-state engine
/// path performs no heap allocations (deadline-miss reporting and trace
/// recording excepted).  Results are bit-identical with or without one.
struct EngineWorkspace {
  /// Pre-resolved sub-instance data, flattened across parent instances
  /// (parent p's table spans [sub_begin[p], sub_begin[p + 1])).
  struct SubRef {
    std::size_t order = 0;
    double seg_begin = 0.0;
    double seg_end = 0.0;
    double end_time = 0.0;
    double budget = 0.0;
  };

  /// One released-but-unfinished instance.
  struct ActiveInstance {
    model::TaskIndex task = 0;
    std::size_t parent = 0;            // InstanceRecord index (within HP)
    std::int64_t global_instance = 0;  // across hyper-periods
    double hp_base = 0.0;              // global time of this HP's start
    double release_global = 0.0;
    double deadline_global = 0.0;
    double remaining = 0.0;            // actual cycles left
    std::size_t sub_pos = 0;           // cursor into the parent's sub table
    double consumed_in_sub = 0.0;      // budget used within the current sub
  };

  std::vector<SubRef> sub_refs;
  std::vector<std::size_t> sub_begin;
  std::vector<std::size_t> release_order;
  std::vector<ActiveInstance> active;
  SimResult result;  // written by the workspace Simulate overload
};

/// Runs the simulation.  `schedule` supplies the per-sub-instance end-times
/// and worst-case budgets consumed by the policy; `rng` drives workload
/// sampling (pass a forked stream for reproducibility).
SimResult Simulate(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule,
                   const model::DvsModel& dvs, const DvsPolicy& policy,
                   const model::WorkloadSampler& sampler, stats::Rng& rng,
                   const SimOptions& options = {});

/// Same, dispatching an AnyPolicy: built-ins run a loop specialised to the
/// concrete policy type (no virtual call per slice), external plugins take
/// the virtual path.
SimResult Simulate(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule,
                   const model::DvsModel& dvs, const AnyPolicy& policy,
                   const model::WorkloadSampler& sampler, stats::Rng& rng,
                   const SimOptions& options = {});

/// Allocation-free steady-state path: simulates into `workspace.result`
/// reusing every buffer, and returns a reference to it (valid until the
/// workspace's next use).
const SimResult& Simulate(const fps::FullyPreemptiveSchedule& fps,
                          const StaticSchedule& schedule,
                          const model::DvsModel& dvs, const AnyPolicy& policy,
                          const model::WorkloadSampler& sampler,
                          stats::Rng& rng, const SimOptions& options,
                          EngineWorkspace& workspace);

/// Builds the canonical "everything at Vmax, as soon as possible" schedule:
/// budgets follow the worst-case RM execution at top speed through the
/// fully preemptive total order; end-times are the resulting finish times.
/// Doubles as (a) the exact RM-schedulability test — throws InfeasibleError
/// when some instance cannot absorb its WCEC by its deadline — and (b) the
/// warm start of the WCS/ACS optimisers.
StaticSchedule BuildVmaxAsapSchedule(const fps::FullyPreemptiveSchedule& fps,
                                     const model::DvsModel& dvs);

/// True when the task set passes the exact RM test at Vmax.
bool IsRmSchedulable(const fps::FullyPreemptiveSchedule& fps,
                     const model::DvsModel& dvs);

}  // namespace dvs::sim

#endif  // ACS_SIM_ENGINE_H
