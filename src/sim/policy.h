// Online DVS policies (the runtime half of the paper's scheme).
//
// The engine owns all execution state and asks the policy, at every dispatch
// or resume, which voltage to run at — and optionally whether the instance
// should be deferred.  The paper's runtime is GreedyReclaimPolicy: voltage
// such that the current sub-instance's *remaining worst-case budget* finishes
// exactly at its scheduled end-time; slack from early completion therefore
// flows to whatever runs next ("greedy slack distribution").
#ifndef ACS_SIM_POLICY_H
#define ACS_SIM_POLICY_H

#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "fps/expansion.h"
#include "model/power_model.h"
#include "sim/static_schedule.h"

namespace dvs::sim {

/// Everything a policy may look at when dispatching.  Times are in local
/// hyper-period coordinates (the schedule repeats every hyper-period).
struct DispatchContext {
  model::TaskIndex task = 0;
  std::size_t sub_order = 0;        // current sub-instance (total order index)
  double budget_remaining = 0.0;    // worst-case cycles left in this sub
  double local_time = 0.0;          // now, modulo hyper-period
  double sub_end_time = 0.0;        // scheduled e_u (local)
  double sub_release = 0.0;         // segment start (local)
  double instance_deadline = 0.0;   // absolute deadline (local)
};

struct DispatchDecision {
  double voltage = 0.0;
  /// When set and > now, the engine keeps the instance parked until this
  /// local time (used by the conservative no-early-start variant).
  std::optional<double> not_before;
};

class DvsPolicy {
 public:
  virtual ~DvsPolicy() = default;
  virtual DispatchDecision Dispatch(const DispatchContext& ctx) const = 0;
};

/// The paper's online phase: stretch the remaining worst-case budget of the
/// current sub-instance to its scheduled end-time; clamp into the voltage
/// range.  Every sub-instance is gated at its segment start (its release):
/// before that boundary the static plan assigns the processor to *other*
/// tasks' sub-instances, so slack from early completion flows to the next
/// sub-instance in the total order — the paper's greedy slack distribution
/// and the premise of its constraint (11).
///
/// `allow_early_start = true` removes the gate: an instance rolls straight
/// into its next segment's budget at a stretched (low) voltage.  That hogs
/// the processor through windows the offline plan reserved for lower-
/// priority tasks and CAN MISS DEADLINES; it exists purely as the
/// bench_ablation_policy counterfactual quantifying why the gate matters.
class GreedyReclaimPolicy final : public DvsPolicy {
 public:
  explicit GreedyReclaimPolicy(const model::DvsModel& dvs,
                               bool allow_early_start = false)
      : dvs_(&dvs), allow_early_start_(allow_early_start) {}

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
  bool allow_early_start_;
};

/// No DVS at all: always run at Vmax (the energy ceiling reference).
class VmaxPolicy final : public DvsPolicy {
 public:
  explicit VmaxPolicy(const model::DvsModel& dvs) : dvs_(&dvs) {}

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
};

/// Static voltages only, no online reclamation: each sub-instance runs at
/// the voltage the offline schedule planned for the *worst-case* start, even
/// when it actually starts early.  Quantifies how much of the win comes from
/// the static end-times versus the online slack pass-through.
class StaticOnlyPolicy final : public DvsPolicy {
 public:
  StaticOnlyPolicy(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule, const model::DvsModel& dvs);

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
  std::vector<double> voltages_;  // per sub-instance, fixed offline
};

/// The built-in policies as a closed variant.  The engine dispatches these
/// without virtual calls: it visits the variant *once* per simulation and
/// runs a loop specialised to the concrete policy type, so the per-slice
/// Dispatch call inlines (see sim/engine.cc).  kNone marks an AnyPolicy
/// holding an external plugin instead.
using BuiltinPolicy = std::variant<std::monostate, GreedyReclaimPolicy,
                                   VmaxPolicy, StaticOnlyPolicy>;

/// A policy by value: either one of the built-ins (variant fast path) or an
/// owned external DvsPolicy plugin (virtual dispatch, the extension point).
/// Built-in construction is implicit so method implementations write
/// `sim::GreedyReclaimPolicy(dvs)` where they previously wrote
/// `std::make_unique<sim::GreedyReclaimPolicy>(dvs)` — no heap, no vtable.
class AnyPolicy {
 public:
  AnyPolicy(GreedyReclaimPolicy policy) : builtin_(std::move(policy)) {}
  AnyPolicy(VmaxPolicy policy) : builtin_(std::move(policy)) {}
  AnyPolicy(StaticOnlyPolicy policy) : builtin_(std::move(policy)) {}

  /// External plugin path; accepts unique_ptr to any DvsPolicy subclass so
  /// existing `std::make_unique<MyPolicy>(...)` call sites keep compiling.
  template <typename P,
            typename = std::enable_if_t<std::is_base_of_v<DvsPolicy, P>>>
  AnyPolicy(std::unique_ptr<P> policy) : external_(std::move(policy)) {}

  bool IsBuiltin() const { return external_ == nullptr; }

  /// The builtin variant (monostate iff !IsBuiltin()).
  const BuiltinPolicy& builtin() const { return builtin_; }

  /// The external plugin; requires !IsBuiltin().
  const DvsPolicy& external() const { return *external_; }

  /// Convenience dispatch through whichever representation is held — used
  /// outside the engine's hot loop (the engine specialises instead).
  DispatchDecision Dispatch(const DispatchContext& ctx) const;

 private:
  BuiltinPolicy builtin_;
  std::unique_ptr<const DvsPolicy> external_;
};

}  // namespace dvs::sim

#endif  // ACS_SIM_POLICY_H
