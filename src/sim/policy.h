// Online DVS policies (the runtime half of the paper's scheme).
//
// The engine owns all execution state and asks the policy, at every dispatch
// or resume, which voltage to run at — and optionally whether the instance
// should be deferred.  The paper's runtime is GreedyReclaimPolicy: voltage
// such that the current sub-instance's *remaining worst-case budget* finishes
// exactly at its scheduled end-time; slack from early completion therefore
// flows to whatever runs next ("greedy slack distribution").
#ifndef ACS_SIM_POLICY_H
#define ACS_SIM_POLICY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "fps/expansion.h"
#include "model/power_model.h"
#include "sim/static_schedule.h"

namespace dvs::sim {

/// Everything a policy may look at when dispatching.  Times are in local
/// hyper-period coordinates (the schedule repeats every hyper-period).
struct DispatchContext {
  model::TaskIndex task = 0;
  std::size_t sub_order = 0;        // current sub-instance (total order index)
  double budget_remaining = 0.0;    // worst-case cycles left in this sub
  double local_time = 0.0;          // now, modulo hyper-period
  double sub_end_time = 0.0;        // scheduled e_u (local)
  double sub_release = 0.0;         // segment start (local)
  double instance_deadline = 0.0;   // absolute deadline (local)
};

struct DispatchDecision {
  double voltage = 0.0;
  /// When set and > now, the engine keeps the instance parked until this
  /// local time (used by the conservative no-early-start variant).
  std::optional<double> not_before;
  /// When set, the engine ends the slice after at most this many cycles and
  /// re-dispatches (even though the sub-instance's budget is not exhausted).
  /// Lets a policy run a piecewise speed profile *within* one sub-instance
  /// (ExpectedCasePolicy's per-bin speeds); unset preserves the legacy
  /// run-to-budget slicing bit-for-bit.
  std::optional<double> cycle_cap;
};

class DvsPolicy {
 public:
  virtual ~DvsPolicy() = default;
  virtual DispatchDecision Dispatch(const DispatchContext& ctx) const = 0;
};

/// The paper's online phase: stretch the remaining worst-case budget of the
/// current sub-instance to its scheduled end-time; clamp into the voltage
/// range.  Every sub-instance is gated at its segment start (its release):
/// before that boundary the static plan assigns the processor to *other*
/// tasks' sub-instances, so slack from early completion flows to the next
/// sub-instance in the total order — the paper's greedy slack distribution
/// and the premise of its constraint (11).
///
/// `allow_early_start = true` removes the gate: an instance rolls straight
/// into its next segment's budget at a stretched (low) voltage.  That hogs
/// the processor through windows the offline plan reserved for lower-
/// priority tasks and CAN MISS DEADLINES; it exists purely as the
/// bench_ablation_policy counterfactual quantifying why the gate matters.
class GreedyReclaimPolicy final : public DvsPolicy {
 public:
  explicit GreedyReclaimPolicy(const model::DvsModel& dvs,
                               bool allow_early_start = false)
      : dvs_(&dvs), allow_early_start_(allow_early_start) {}

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
  bool allow_early_start_;
};

/// No DVS at all: always run at Vmax (the energy ceiling reference).
class VmaxPolicy final : public DvsPolicy {
 public:
  explicit VmaxPolicy(const model::DvsModel& dvs) : dvs_(&dvs) {}

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
};

/// Static voltages only, no online reclamation: each sub-instance runs at
/// the voltage the offline schedule planned for the *worst-case* start, even
/// when it actually starts early.  Quantifies how much of the win comes from
/// the static end-times versus the online slack pass-through.
class StaticOnlyPolicy final : public DvsPolicy {
 public:
  StaticOnlyPolicy(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule, const model::DvsModel& dvs);

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

 private:
  const model::DvsModel* dvs_;
  std::vector<double> voltages_;  // per sub-instance, fixed offline
};

/// Expected-case online DVS (the Berten/Chang/Kuo-style "online half" of the
/// adaptive stack): at every dispatch the policy splits the current
/// sub-instance's remaining worst-case budget into `bins` equal cycle bins,
/// weights each bin by the calibrated probability the instance actually
/// *reaches* it (the survival function of the scenario's realised per-task
/// law), and picks per-bin speeds minimising expected energy subject to the
/// same worst-case window constraint GreedyReclaimPolicy enforces:
///
///   min  sum_j S_j * w * s_j^2      (E = ceff v^2 cycles, s ∝ v)
///   s.t. sum_j w / s_j <= window,   s_j in [MinSpeed, MaxSpeed]
///
/// whose interior optimum is s_j ∝ S_j^{-1/3} (the classic PACE speed rule);
/// range clamps are resolved by water-filling (pin violated bins, re-
/// normalise the rest).  Because the worst-case time budget is preserved
/// exactly, the policy inherits greedy-reclaim's zero-miss guarantee; it
/// merely *orders* the work slow-to-fast so instances that finish near the
/// calibrated mean never pay for the tail.  The dispatch returns the first
/// bin's speed plus a cycle_cap at the end of the equal-speed prefix, so the
/// engine re-dispatches at profile breakpoints and the profile re-conditions
/// on realised progress as the instance advances.
///
/// All tables (per-sub worst-case prefix cycles, per-task survival grids)
/// are precomputed at construction; Dispatch touches only fixed-size
/// scratch, so the engine's hot loop stays allocation-free.  `task_scale`
/// (optional) stretches task i's calibrated law by scale[i] — the drift
/// adaptor's cheap mid-run re-conditioning knob (Pr[f·X > x] = Pr[X > x/f]).
class ExpectedCasePolicy final : public DvsPolicy {
 public:
  ExpectedCasePolicy(const fps::FullyPreemptiveSchedule& fps,
                     const StaticSchedule& schedule,
                     const model::DvsModel& dvs,
                     const std::vector<std::vector<double>>& sorted_draws,
                     std::int64_t bins,
                     const std::vector<double>* task_scale = nullptr);

  DispatchDecision Dispatch(const DispatchContext& ctx) const override;

  /// Dispatches that went through the DP profile (vs degenerate fallbacks).
  std::int64_t dp_dispatches() const { return dp_dispatches_; }

 private:
  double Survival(model::TaskIndex task, double cycles) const;

  const model::DvsModel* dvs_;
  std::size_t bins_;
  std::vector<double> budgets_;      // per sub: worst-case budget
  std::vector<double> done_before_;  // per sub: parent cycles before it
  std::vector<double> scale_;        // per task: drift stretch factor
  std::vector<double> grid_lo_;      // per task: survival grid origin (BCEC)
  std::vector<double> grid_step_;    // per task: survival grid spacing
  std::vector<std::vector<double>> survival_;  // per task: P(X > grid point)
  // Dispatch-time scratch, sized once at construction (hot loop stays
  // allocation-free).  The policy is used by a single simulation at a time
  // (the engine contract), so mutable scratch is safe.
  mutable std::vector<double> weight_;
  mutable std::vector<double> speed_;
  mutable std::vector<char> pinned_;
  mutable std::int64_t dp_dispatches_ = 0;
};

/// The built-in policies as a closed variant.  The engine dispatches these
/// without virtual calls: it visits the variant *once* per simulation and
/// runs a loop specialised to the concrete policy type, so the per-slice
/// Dispatch call inlines (see sim/engine.cc).  kNone marks an AnyPolicy
/// holding an external plugin instead.
using BuiltinPolicy =
    std::variant<std::monostate, GreedyReclaimPolicy, VmaxPolicy,
                 StaticOnlyPolicy, ExpectedCasePolicy>;

/// A policy by value: either one of the built-ins (variant fast path) or an
/// owned external DvsPolicy plugin (virtual dispatch, the extension point).
/// Built-in construction is implicit so method implementations write
/// `sim::GreedyReclaimPolicy(dvs)` where they previously wrote
/// `std::make_unique<sim::GreedyReclaimPolicy>(dvs)` — no heap, no vtable.
class AnyPolicy {
 public:
  AnyPolicy(GreedyReclaimPolicy policy) : builtin_(std::move(policy)) {}
  AnyPolicy(VmaxPolicy policy) : builtin_(std::move(policy)) {}
  AnyPolicy(StaticOnlyPolicy policy) : builtin_(std::move(policy)) {}
  AnyPolicy(ExpectedCasePolicy policy) : builtin_(std::move(policy)) {}

  /// External plugin path; accepts unique_ptr to any DvsPolicy subclass so
  /// existing `std::make_unique<MyPolicy>(...)` call sites keep compiling.
  template <typename P,
            typename = std::enable_if_t<std::is_base_of_v<DvsPolicy, P>>>
  AnyPolicy(std::unique_ptr<P> policy) : external_(std::move(policy)) {}

  bool IsBuiltin() const { return external_ == nullptr; }

  /// The builtin variant (monostate iff !IsBuiltin()).
  const BuiltinPolicy& builtin() const { return builtin_; }

  /// The external plugin; requires !IsBuiltin().
  const DvsPolicy& external() const { return *external_; }

  /// Convenience dispatch through whichever representation is held — used
  /// outside the engine's hot loop (the engine specialises instead).
  DispatchDecision Dispatch(const DispatchContext& ctx) const;

 private:
  BuiltinPolicy builtin_;
  std::unique_ptr<const DvsPolicy> external_;
};

}  // namespace dvs::sim

#endif  // ACS_SIM_POLICY_H
