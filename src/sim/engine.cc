#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/logging.h"

namespace dvs::sim {
namespace {

constexpr double kCycleEps = 1e-6;   // cycles considered "zero"
constexpr double kTimeEps = 1e-9;    // simultaneous-event tolerance
constexpr double kInf = std::numeric_limits<double>::infinity();

struct ActiveInstance {
  model::TaskIndex task = 0;
  std::size_t parent = 0;           // InstanceRecord index (within HP)
  std::int64_t global_instance = 0; // across hyper-periods
  double hp_base = 0.0;             // global time of this hyper-period start
  double release_global = 0.0;
  double deadline_global = 0.0;
  double remaining = 0.0;           // actual cycles left
  std::size_t sub_pos = 0;          // cursor into parent's sub list
  double consumed_in_sub = 0.0;     // budget used within the current sub
};

/// Pre-resolved sub-instance data per parent instance.
struct SubRef {
  std::size_t order = 0;
  double seg_begin = 0.0;
  double seg_end = 0.0;
  double end_time = 0.0;
  double budget = 0.0;
};

}  // namespace

SimResult Simulate(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule,
                   const model::DvsModel& dvs, const DvsPolicy& policy,
                   const model::WorkloadSampler& sampler, stats::Rng& rng,
                   const SimOptions& options) {
  ACS_REQUIRE(options.hyper_periods > 0, "need at least one hyper-period");

  const model::TaskSet& set = fps.task_set();
  const double hyper = static_cast<double>(set.hyper_period());

  // Pre-resolve sub-instance tables per parent instance.
  std::vector<std::vector<SubRef>> sub_tables(fps.instance_count());
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    const fps::InstanceRecord& rec = fps.instance(p);
    sub_tables[p].reserve(rec.subs.size());
    for (std::size_t order : rec.subs) {
      const fps::SubInstance& sub = fps.sub(order);
      sub_tables[p].push_back(SubRef{order, sub.seg_begin, sub.seg_end,
                                     schedule.end_time(order),
                                     schedule.worst_budget(order)});
    }
  }

  // Release stream: instances of one hyper-period sorted by release.
  std::vector<std::size_t> release_order(fps.instance_count());
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    release_order[p] = p;
  }
  std::sort(release_order.begin(), release_order.end(),
            [&fps](std::size_t a, std::size_t b) {
              return fps.instance(a).info.release <
                     fps.instance(b).info.release;
            });

  SimResult result;
  result.per_task_energy.assign(set.size(), 0.0);

  std::vector<ActiveInstance> active;
  std::int64_t hp_index = 0;
  std::size_t stream_pos = 0;  // within release_order for current HP

  const auto next_release_global = [&]() -> double {
    if (hp_index >= options.hyper_periods) {
      return kInf;
    }
    return static_cast<double>(hp_index) * hyper +
           fps.instance(release_order[stream_pos]).info.release;
  };

  double now = 0.0;
  const auto activate_due = [&]() {
    while (hp_index < options.hyper_periods) {
      const double due = next_release_global();
      if (due > now + kTimeEps) {
        return;
      }
      const std::size_t p = release_order[stream_pos];
      const fps::InstanceRecord& rec = fps.instance(p);
      ActiveInstance inst;
      inst.task = rec.info.task;
      inst.parent = p;
      inst.global_instance =
          hp_index * set.InstanceCount(rec.info.task) + rec.info.instance;
      inst.hp_base = static_cast<double>(hp_index) * hyper;
      inst.release_global = inst.hp_base + rec.info.release;
      inst.deadline_global = inst.hp_base + rec.info.deadline;
      const double wcec = set.task(inst.task).wcec;
      double cycles = sampler.SampleCycles(inst.task, rng);
      ACS_CHECK(cycles >= -kCycleEps && cycles <= wcec * (1.0 + 1e-9),
                "sampled workload outside [0, WCEC]");
      inst.remaining = std::clamp(cycles, 0.0, wcec);
      active.push_back(inst);
      ++stream_pos;
      if (stream_pos == release_order.size()) {
        stream_pos = 0;
        ++hp_index;
      }
    }
  };

  // Cursor advance: skip sub-instances whose budget is exhausted (or zero).
  const auto advance_cursor = [&](ActiveInstance& inst) {
    const auto& table = sub_tables[inst.parent];
    while (inst.sub_pos + 1 < table.size() &&
           inst.consumed_in_sub >= table[inst.sub_pos].budget - kCycleEps) {
      ++inst.sub_pos;
      inst.consumed_in_sub = 0.0;
    }
  };

  const auto dispatch_rank_less = [&](const ActiveInstance& a,
                                      const ActiveInstance& b) {
    if (a.task != b.task) {
      if (set.task(a.task).period != set.task(b.task).period) {
        return set.task(a.task).period < set.task(b.task).period;
      }
      return a.task < b.task;
    }
    return a.global_instance < b.global_instance;
  };

  double last_voltage = -1.0;
  std::size_t last_running = std::numeric_limits<std::size_t>::max();
  std::int64_t last_running_instance = -1;
  model::TaskIndex last_running_task = 0;
  bool last_still_active = false;

  const double sim_horizon_guard =
      static_cast<double>(options.hyper_periods + 2) * hyper;

  while (true) {
    activate_due();
    if (active.empty()) {
      if (hp_index >= options.hyper_periods) {
        break;  // all releases issued, nothing left to run
      }
      const double due = next_release_global();
      result.idle_time += due - now;
      now = due;
      continue;
    }
    ACS_CHECK(now <= sim_horizon_guard,
              "simulation ran away — schedule badly overloaded");

    // Pick the highest-rank runnable instance, honouring policy deferrals.
    std::sort(active.begin(), active.end(), dispatch_rank_less);
    std::size_t chosen = active.size();
    DispatchDecision decision;
    double wake = kInf;
    for (std::size_t i = 0; i < active.size(); ++i) {
      ActiveInstance& inst = active[i];
      advance_cursor(inst);
      const auto& table = sub_tables[inst.parent];
      const SubRef& sub = table[inst.sub_pos];
      DispatchContext ctx;
      ctx.task = inst.task;
      ctx.sub_order = sub.order;
      ctx.budget_remaining = std::max(0.0, sub.budget - inst.consumed_in_sub);
      ctx.local_time = now - inst.hp_base;
      ctx.sub_end_time = sub.end_time;
      ctx.sub_release = sub.seg_begin;
      ctx.instance_deadline = inst.deadline_global - inst.hp_base;
      const DispatchDecision d = policy.Dispatch(ctx);
      if (d.not_before.has_value() &&
          *d.not_before > ctx.local_time + kTimeEps) {
        wake = std::min(wake, inst.hp_base + *d.not_before);
        continue;
      }
      chosen = i;
      decision = d;
      break;
    }

    if (chosen == active.size()) {
      // Everybody deferred: jump to the earliest wake or release.
      const double due = std::min(next_release_global(), wake);
      ACS_CHECK(std::isfinite(due), "deadlock: all instances deferred");
      result.idle_time += due - now;
      now = due;
      continue;
    }

    ActiveInstance& inst = active[chosen];
    const auto& table = sub_tables[inst.parent];
    const SubRef& sub = table[inst.sub_pos];
    const double voltage = dvs.ClampVoltage(decision.voltage);
    const double speed = dvs.SpeedAt(voltage);

    // Voltage-transition accounting (optional overhead model).
    if (last_voltage >= 0.0 && std::fabs(voltage - last_voltage) > 1e-12) {
      ++result.voltage_switches;
      if (!options.transition.IsZero()) {
        const double dv = std::fabs(voltage - last_voltage);
        const double stall = options.transition.time_per_volt * dv;
        result.transition_energy += options.transition.energy_per_volt * dv;
        result.total_energy += options.transition.energy_per_volt * dv;
        result.stall_time += stall;
        now += stall;
        activate_due();
      }
    }
    last_voltage = voltage;

    // Preemption accounting: a different instance displaced the previous
    // runner while it still had work.
    if (last_still_active &&
        (inst.task != last_running_task ||
         inst.global_instance != last_running_instance)) {
      bool previous_alive = false;
      for (const ActiveInstance& other : active) {
        if (other.task == last_running_task &&
            other.global_instance == last_running_instance) {
          previous_alive = true;
          break;
        }
      }
      if (previous_alive) {
        ++result.preemptions;
      }
    }
    (void)last_running;

    // Slice horizon: completion, budget exhaustion, next release, wakes.
    const double budget_rem = std::max(0.0, sub.budget - inst.consumed_in_sub);
    const bool last_sub = inst.sub_pos + 1 >= table.size();
    double dt = inst.remaining / speed;
    if (!last_sub && budget_rem < inst.remaining) {
      dt = std::min(dt, budget_rem / speed);
    }
    double slice_end = now + dt;
    slice_end = std::min(slice_end, next_release_global());
    slice_end = std::min(slice_end, wake);
    const double slice_dt = std::max(0.0, slice_end - now);

    if (slice_dt > 0.0) {
      double cycles = speed * slice_dt;
      cycles = std::min(cycles, inst.remaining);
      const double energy = dvs.Energy(voltage, cycles);
      result.total_energy += energy;
      result.per_task_energy[inst.task] += energy;
      result.busy_time += slice_dt;
      ++result.dispatches;
      if (options.record_trace) {
        ExecutionSlice slice;
        slice.task = inst.task;
        slice.instance = inst.global_instance;
        slice.sub_k = static_cast<int>(inst.sub_pos);
        slice.begin = now;
        slice.end = slice_end;
        slice.voltage = voltage;
        slice.cycles = cycles;
        result.trace.Add(slice);
      }
      inst.remaining -= cycles;
      inst.consumed_in_sub += cycles;
      now = slice_end;
    }

    last_running_task = inst.task;
    last_running_instance = inst.global_instance;
    last_still_active = true;

    if (inst.remaining <= kCycleEps) {
      // Instance complete.
      ++result.completed_instances;
      result.makespan = std::max(result.makespan, now);
      if (now > inst.deadline_global + 1e-6) {
        ++result.deadline_misses;
        if (result.first_miss.empty()) {
          std::ostringstream msg;
          msg << set.task(inst.task).name << "[" << inst.global_instance
              << "] finished at " << now << " past deadline "
              << inst.deadline_global;
          result.first_miss = msg.str();
        }
      }
      last_still_active = false;
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(chosen));
      continue;
    }
    // Otherwise: budget exhausted (cursor advances on the next pass), a
    // release arrived (activation at loop head may preempt), or a deferred
    // instance woke up.  All handled by the next iteration.
  }

  return result;
}

StaticSchedule BuildVmaxAsapSchedule(const fps::FullyPreemptiveSchedule& fps,
                                     const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  const double ct_max = dvs.CycleTime(dvs.vmax());

  // Remaining WCEC per parent instance.
  std::vector<double> remaining(fps.instance_count(), 0.0);
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    remaining[p] = set.task(fps.instance(p).info.task).wcec;
  }

  std::vector<double> end_times(fps.sub_count(), 0.0);
  std::vector<double> budgets(fps.sub_count(), 0.0);
  const std::vector<double>& end_cap = fps.effective_end_bounds();

  double finish = 0.0;  // worst-case RM chain at Vmax
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    const double start = std::max(finish, sub.release());
    // Capacity is bounded by the monotone end-time cap, not just the
    // segment end, so the resulting end-times are non-decreasing through
    // the total order (required by the offline chain constraints).
    const double capacity_time = std::max(0.0, end_cap[u] - start);
    const double capacity_cycles = capacity_time / ct_max;
    const double w = std::min(remaining[sub.parent], capacity_cycles);
    budgets[u] = w;
    const double end = start + w * ct_max;
    end_times[u] = std::clamp(end, sub.seg_begin, end_cap[u]);
    remaining[sub.parent] -= w;
    if (w > 0.0) {
      finish = end_times[u];
    }
  }

  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    if (remaining[p] > kCycleEps) {
      const fps::InstanceRecord& rec = fps.instance(p);
      std::ostringstream msg;
      msg << "task set not RM-schedulable at Vmax: "
          << set.task(rec.info.task).name << "[" << rec.info.instance
          << "] cannot place " << remaining[p]
          << " worst-case cycles before its deadline " << rec.info.deadline;
      throw util::InfeasibleError(msg.str());
    }
  }
  return StaticSchedule(fps, std::move(end_times), std::move(budgets));
}

bool IsRmSchedulable(const fps::FullyPreemptiveSchedule& fps,
                     const model::DvsModel& dvs) {
  try {
    BuildVmaxAsapSchedule(fps, dvs);
    return true;
  } catch (const util::InfeasibleError&) {
    return false;
  }
}

}  // namespace dvs::sim
