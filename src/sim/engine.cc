#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/logging.h"

namespace dvs::sim {
namespace {

constexpr double kCycleEps = 1e-6;   // cycles considered "zero"
constexpr double kTimeEps = 1e-9;    // simultaneous-event tolerance
constexpr double kInf = std::numeric_limits<double>::infinity();

using ActiveInstance = EngineWorkspace::ActiveInstance;
using SubRef = EngineWorkspace::SubRef;

/// Resets a (possibly reused) result to its just-constructed state while
/// keeping vector/string/trace capacity.
void ResetResult(SimResult& result, std::size_t task_count) {
  result.total_energy = 0.0;
  result.per_task_energy.assign(task_count, 0.0);
  result.deadline_misses = 0;
  result.completed_instances = 0;
  result.busy_time = 0.0;
  result.idle_time = 0.0;
  result.stall_time = 0.0;
  result.transition_energy = 0.0;
  result.dispatches = 0;
  result.preemptions = 0;
  result.voltage_switches = 0;
  result.makespan = 0.0;
  result.idle_energy = 0.0;
  result.sleep_energy = 0.0;
  result.sleep_time = 0.0;
  result.sleeps = 0;
  result.first_miss.clear();
  result.trace.Clear();
  result.sampled_cycles.assign(task_count, 0.0);
  result.sampled_counts.assign(task_count, 0);
}

/// The engine loop, templated on the policy type so built-in policies
/// dispatch without a virtual call per slice.  Identical logic for every
/// instantiation; `Policy` only needs `Dispatch(const DispatchContext&)`.
template <typename Policy>
void SimulateLoop(const fps::FullyPreemptiveSchedule& fps,
                  const StaticSchedule& schedule, const model::DvsModel& dvs,
                  const Policy& policy, const model::WorkloadSampler& sampler,
                  stats::Rng& rng, const SimOptions& options,
                  EngineWorkspace& ws) {
  ACS_REQUIRE(options.hyper_periods > 0, "need at least one hyper-period");

  const model::TaskSet& set = fps.task_set();
  const double hyper = static_cast<double>(set.hyper_period());

  // Pre-resolve sub-instance tables per parent instance (flattened: parent
  // p's table spans [sub_begin[p], sub_begin[p + 1]) of sub_refs).
  ws.sub_refs.clear();
  ws.sub_begin.clear();
  ws.sub_refs.reserve(fps.sub_count());
  ws.sub_begin.reserve(fps.instance_count() + 1);
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    ws.sub_begin.push_back(ws.sub_refs.size());
    for (std::size_t order : fps.instance(p).subs) {
      const fps::SubInstance& sub = fps.sub(order);
      ws.sub_refs.push_back(SubRef{order, sub.seg_begin, sub.seg_end,
                                   schedule.end_time(order),
                                   schedule.worst_budget(order)});
    }
  }
  ws.sub_begin.push_back(ws.sub_refs.size());

  // Release stream: instances of one hyper-period sorted by release.
  std::vector<std::size_t>& release_order = ws.release_order;
  release_order.resize(fps.instance_count());
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    release_order[p] = p;
  }
  std::sort(release_order.begin(), release_order.end(),
            [&fps](std::size_t a, std::size_t b) {
              return fps.instance(a).info.release <
                     fps.instance(b).info.release;
            });

  SimResult& result = ws.result;
  ResetResult(result, set.size());

  std::vector<ActiveInstance>& active = ws.active;
  active.clear();
  std::int64_t hp_index = 0;
  std::size_t stream_pos = 0;  // within release_order for current HP

  const auto next_release_global = [&]() -> double {
    if (hp_index >= options.hyper_periods) {
      return kInf;
    }
    return static_cast<double>(hp_index) * hyper +
           fps.instance(release_order[stream_pos]).info.release;
  };

  double now = 0.0;
  const auto activate_due = [&]() {
    while (hp_index < options.hyper_periods) {
      const double due = next_release_global();
      if (due > now + kTimeEps) {
        return;
      }
      const std::size_t p = release_order[stream_pos];
      const fps::InstanceRecord& rec = fps.instance(p);
      ActiveInstance inst;
      inst.task = rec.info.task;
      inst.parent = p;
      inst.global_instance =
          hp_index * set.InstanceCount(rec.info.task) + rec.info.instance;
      inst.hp_base = static_cast<double>(hp_index) * hyper;
      inst.release_global = inst.hp_base + rec.info.release;
      inst.deadline_global = inst.hp_base + rec.info.deadline;
      const double wcec = set.task(inst.task).wcec;
      double cycles = sampler.SampleCycles(inst.task, rng);
      ACS_CHECK(cycles >= -kCycleEps && cycles <= wcec * (1.0 + 1e-9),
                "sampled workload outside [0, WCEC]");
      inst.remaining = std::clamp(cycles, 0.0, wcec);
      result.sampled_cycles[inst.task] += inst.remaining;
      ++result.sampled_counts[inst.task];
      active.push_back(inst);
      ++stream_pos;
      if (stream_pos == release_order.size()) {
        stream_pos = 0;
        ++hp_index;
      }
    }
  };

  // Cursor advance: skip sub-instances whose budget is exhausted (or zero).
  const auto advance_cursor = [&](ActiveInstance& inst) {
    const SubRef* table = ws.sub_refs.data() + ws.sub_begin[inst.parent];
    const std::size_t table_size =
        ws.sub_begin[inst.parent + 1] - ws.sub_begin[inst.parent];
    while (inst.sub_pos + 1 < table_size &&
           inst.consumed_in_sub >= table[inst.sub_pos].budget - kCycleEps) {
      ++inst.sub_pos;
      inst.consumed_in_sub = 0.0;
    }
  };

  const auto dispatch_rank_less = [&](const ActiveInstance& a,
                                      const ActiveInstance& b) {
    if (a.task != b.task) {
      if (set.task(a.task).period != set.task(b.task).period) {
        return set.task(a.task).period < set.task(b.task).period;
      }
      return a.task < b.task;
    }
    return a.global_instance < b.global_instance;
  };

  double last_voltage = -1.0;
  std::int64_t last_running_instance = -1;
  model::TaskIndex last_running_task = 0;
  bool last_still_active = false;

  const double sim_horizon_guard =
      static_cast<double>(options.hyper_periods + 2) * hyper;

  // DPM idle consolidation: contiguous idle intervals are bracketed by
  // idle_begin (set at the first idle jump, reset at the next dispatch), so
  // back-to-back jumps — empty set, then a policy deferral — merge into one
  // interval.  An interval beating the sleep state's break-even is slept
  // through with a timed wake at its end; since the engine already knows the
  // dispatch that ends the interval, sleeping never moves it (deadline-safe
  // by construction) — only the energy ledger changes, after the loop.
  const bool dpm = options.dpm && options.idle_power.power_per_ms > 0.0;
  double idle_begin = -1.0;
  const auto dpm_mark_idle = [&]() {
    if (dpm && idle_begin < 0.0) {
      idle_begin = now;
    }
  };
  const auto dpm_close_idle = [&](double idle_end) {
    if (!dpm || idle_begin < 0.0) {
      return;
    }
    const double gap = idle_end - idle_begin;
    if (gap > 0.0 && options.sleep.Worthwhile(gap, options.idle_power)) {
      ++result.sleeps;
      result.sleep_time += gap;
      result.sleep_energy += options.sleep.Energy(gap);
    }
    idle_begin = -1.0;
  };

  while (true) {
    activate_due();
    if (active.empty()) {
      if (hp_index >= options.hyper_periods) {
        break;  // all releases issued, nothing left to run
      }
      const double due = next_release_global();
      dpm_mark_idle();
      result.idle_time += due - now;
      now = due;
      continue;
    }
    ACS_CHECK(now <= sim_horizon_guard,
              "simulation ran away — schedule badly overloaded");

    // Pick the highest-rank runnable instance, honouring policy deferrals.
    std::sort(active.begin(), active.end(), dispatch_rank_less);
    std::size_t chosen = active.size();
    DispatchDecision decision;
    double wake = kInf;
    for (std::size_t i = 0; i < active.size(); ++i) {
      ActiveInstance& inst = active[i];
      advance_cursor(inst);
      const SubRef& sub = ws.sub_refs[ws.sub_begin[inst.parent] + inst.sub_pos];
      DispatchContext ctx;
      ctx.task = inst.task;
      ctx.sub_order = sub.order;
      ctx.budget_remaining = std::max(0.0, sub.budget - inst.consumed_in_sub);
      ctx.local_time = now - inst.hp_base;
      ctx.sub_end_time = sub.end_time;
      ctx.sub_release = sub.seg_begin;
      ctx.instance_deadline = inst.deadline_global - inst.hp_base;
      const DispatchDecision d = policy.Dispatch(ctx);
      if (d.not_before.has_value() &&
          *d.not_before > ctx.local_time + kTimeEps) {
        wake = std::min(wake, inst.hp_base + *d.not_before);
        continue;
      }
      chosen = i;
      decision = d;
      break;
    }

    if (chosen == active.size()) {
      // Everybody deferred: jump to the earliest wake or release.
      const double due = std::min(next_release_global(), wake);
      ACS_CHECK(std::isfinite(due), "deadlock: all instances deferred");
      dpm_mark_idle();
      result.idle_time += due - now;
      now = due;
      continue;
    }

    dpm_close_idle(now);

    double voltage = dvs.ClampVoltage(decision.voltage);

    // Voltage-transition accounting (optional overhead model).  References
    // into `active` are taken only after this block: the activation inside
    // it may grow the vector and invalidate them (`chosen` stays valid —
    // activation appends without reordering).
    if (last_voltage >= 0.0 && std::fabs(voltage - last_voltage) > 1e-12) {
      ++result.voltage_switches;
      if (!options.transition.IsZero()) {
        if (options.transition.time_per_volt > 0.0) {
          // The stall advances the clock after the policy chose a voltage
          // for the pre-stall window, so a slice sized to just meet its
          // deadline would land late by up to the stall.  Ratchet the
          // voltage up against its own stall until it covers the post-stall
          // window; the required voltage is monotone in the stall and
          // clamped at vmax, so a few passes reach the fixed point.
          const double remaining_cycles = active[chosen].remaining;
          const double deadline = active[chosen].deadline_global;
          for (int pass = 0; pass < 4; ++pass) {
            const double stall = options.transition.time_per_volt *
                                 std::fabs(voltage - last_voltage);
            const double required = dvs.ClampVoltage(dvs.VoltageForWork(
                remaining_cycles, deadline - (now + stall)));
            if (required <= voltage + 1e-12) {
              break;
            }
            voltage = required;
          }
        }
        const double dv = std::fabs(voltage - last_voltage);
        const double stall = options.transition.time_per_volt * dv;
        result.transition_energy += options.transition.energy_per_volt * dv;
        result.total_energy += options.transition.energy_per_volt * dv;
        result.stall_time += stall;
        now += stall;
        activate_due();
      }
    }
    last_voltage = voltage;
    const double speed = dvs.SpeedAt(voltage);

    ActiveInstance& inst = active[chosen];
    const SubRef& sub = ws.sub_refs[ws.sub_begin[inst.parent] + inst.sub_pos];
    const bool last_sub =
        ws.sub_begin[inst.parent] + inst.sub_pos + 1 >=
        ws.sub_begin[inst.parent + 1];

    // Preemption accounting: a different instance displaced the previous
    // runner while it still had work.
    if (last_still_active &&
        (inst.task != last_running_task ||
         inst.global_instance != last_running_instance)) {
      bool previous_alive = false;
      for (const ActiveInstance& other : active) {
        if (other.task == last_running_task &&
            other.global_instance == last_running_instance) {
          previous_alive = true;
          break;
        }
      }
      if (previous_alive) {
        ++result.preemptions;
      }
    }

    // Slice horizon: completion, budget exhaustion, next release, wakes.
    const double budget_rem = std::max(0.0, sub.budget - inst.consumed_in_sub);
    double dt = inst.remaining / speed;
    if (!last_sub && budget_rem < inst.remaining) {
      dt = std::min(dt, budget_rem / speed);
    }
    if (decision.cycle_cap.has_value()) {
      // Policy-imposed profile breakpoint: end the slice after the capped
      // cycles and re-dispatch.  The floor keeps a vanishing cap from
      // stalling the clock (progress is at least kCycleEps cycles).
      dt = std::min(dt, std::max(*decision.cycle_cap, kCycleEps) / speed);
    }
    double slice_end = now + dt;
    slice_end = std::min(slice_end, next_release_global());
    slice_end = std::min(slice_end, wake);
    const double slice_dt = std::max(0.0, slice_end - now);

    if (slice_dt > 0.0) {
      double cycles = speed * slice_dt;
      cycles = std::min(cycles, inst.remaining);
      const double energy = dvs.Energy(voltage, cycles);
      result.total_energy += energy;
      result.per_task_energy[inst.task] += energy;
      result.busy_time += slice_dt;
      ++result.dispatches;
      if (options.record_trace) {
        ExecutionSlice slice;
        slice.task = inst.task;
        slice.instance = inst.global_instance;
        slice.sub_k = static_cast<int>(inst.sub_pos);
        slice.begin = now;
        slice.end = slice_end;
        slice.voltage = voltage;
        slice.cycles = cycles;
        result.trace.Add(slice);
      }
      inst.remaining -= cycles;
      inst.consumed_in_sub += cycles;
      now = slice_end;
    }

    last_running_task = inst.task;
    last_running_instance = inst.global_instance;
    last_still_active = true;

    if (inst.remaining <= kCycleEps) {
      // Instance complete.
      ++result.completed_instances;
      result.makespan = std::max(result.makespan, now);
      if (now > inst.deadline_global + 1e-6) {
        ++result.deadline_misses;
        if (result.first_miss.empty()) {
          std::ostringstream msg;
          msg << set.task(inst.task).name << "[" << inst.global_instance
              << "] finished at " << now << " past deadline "
              << inst.deadline_global;
          result.first_miss = msg.str();
        }
      }
      last_still_active = false;
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(chosen));
      continue;
    }
    // Otherwise: budget exhausted (cursor advances on the next pass), a
    // release arrived (activation at loop head may preempt), or a deferred
    // instance woke up.  All handled by the next iteration.
  }

  if (dpm) {
    // The mission spans whole hyper-periods even after the last completion;
    // the remainder is one final idle interval.  The floor is paid for the
    // full mission except while asleep; sleep residency and transitions are
    // ledgered separately.  DPM never touches dispatch times, so everything
    // above this point is bit-identical to the DPM-off run.
    const double mission_end =
        static_cast<double>(options.hyper_periods) * hyper;
    if (now < mission_end) {
      dpm_mark_idle();
      result.idle_time += mission_end - now;
      now = mission_end;
    }
    dpm_close_idle(now);
    const double mission = std::max(now, mission_end);
    result.idle_energy =
        options.idle_power.power_per_ms * (mission - result.sleep_time);
    result.total_energy += result.idle_energy + result.sleep_energy;
  }
}

}  // namespace

SimResult Simulate(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule,
                   const model::DvsModel& dvs, const DvsPolicy& policy,
                   const model::WorkloadSampler& sampler, stats::Rng& rng,
                   const SimOptions& options) {
  EngineWorkspace ws;
  SimulateLoop(fps, schedule, dvs, policy, sampler, rng, options, ws);
  return std::move(ws.result);
}

SimResult Simulate(const fps::FullyPreemptiveSchedule& fps,
                   const StaticSchedule& schedule,
                   const model::DvsModel& dvs, const AnyPolicy& policy,
                   const model::WorkloadSampler& sampler, stats::Rng& rng,
                   const SimOptions& options) {
  EngineWorkspace ws;
  Simulate(fps, schedule, dvs, policy, sampler, rng, options, ws);
  return std::move(ws.result);
}

const SimResult& Simulate(const fps::FullyPreemptiveSchedule& fps,
                          const StaticSchedule& schedule,
                          const model::DvsModel& dvs, const AnyPolicy& policy,
                          const model::WorkloadSampler& sampler,
                          stats::Rng& rng, const SimOptions& options,
                          EngineWorkspace& workspace) {
  if (policy.IsBuiltin()) {
    std::visit(
        [&](const auto& concrete) {
          if constexpr (std::is_same_v<std::decay_t<decltype(concrete)>,
                                       std::monostate>) {
            ACS_REQUIRE(false, "AnyPolicy holds no policy");
          } else {
            SimulateLoop(fps, schedule, dvs, concrete, sampler, rng, options,
                         workspace);
          }
        },
        policy.builtin());
  } else {
    SimulateLoop(fps, schedule, dvs, policy.external(), sampler, rng, options,
                 workspace);
  }
  return workspace.result;
}

StaticSchedule BuildVmaxAsapSchedule(const fps::FullyPreemptiveSchedule& fps,
                                     const model::DvsModel& dvs) {
  const model::TaskSet& set = fps.task_set();
  const double ct_max = dvs.CycleTime(dvs.vmax());

  // Remaining WCEC per parent instance.
  std::vector<double> remaining(fps.instance_count(), 0.0);
  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    remaining[p] = set.task(fps.instance(p).info.task).wcec;
  }

  std::vector<double> end_times(fps.sub_count(), 0.0);
  std::vector<double> budgets(fps.sub_count(), 0.0);
  const std::vector<double>& end_cap = fps.effective_end_bounds();

  double finish = 0.0;  // worst-case RM chain at Vmax
  for (std::size_t u = 0; u < fps.sub_count(); ++u) {
    const fps::SubInstance& sub = fps.sub(u);
    const double start = std::max(finish, sub.release());
    // Capacity is bounded by the monotone end-time cap, not just the
    // segment end, so the resulting end-times are non-decreasing through
    // the total order (required by the offline chain constraints).
    const double capacity_time = std::max(0.0, end_cap[u] - start);
    const double capacity_cycles = capacity_time / ct_max;
    const double w = std::min(remaining[sub.parent], capacity_cycles);
    budgets[u] = w;
    const double end = start + w * ct_max;
    end_times[u] = std::clamp(end, sub.seg_begin, end_cap[u]);
    remaining[sub.parent] -= w;
    if (w > 0.0) {
      finish = end_times[u];
    }
  }

  for (std::size_t p = 0; p < fps.instance_count(); ++p) {
    if (remaining[p] > kCycleEps) {
      const fps::InstanceRecord& rec = fps.instance(p);
      std::ostringstream msg;
      msg << "task set not RM-schedulable at Vmax: "
          << set.task(rec.info.task).name << "[" << rec.info.instance
          << "] cannot place " << remaining[p]
          << " worst-case cycles before its deadline " << rec.info.deadline;
      throw util::InfeasibleError(msg.str());
    }
  }
  return StaticSchedule(fps, std::move(end_times), std::move(budgets));
}

bool IsRmSchedulable(const fps::FullyPreemptiveSchedule& fps,
                     const model::DvsModel& dvs) {
  try {
    BuildVmaxAsapSchedule(fps, dvs);
    return true;
  } catch (const util::InfeasibleError&) {
    return false;
  }
}

}  // namespace dvs::sim
