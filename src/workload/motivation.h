// The paper's motivational example (§2.2, Table 1, Figs. 1-2).
//
// The OCR lost most of Table 1, but every surviving number pins the
// parameters uniquely (see DESIGN.md):
//   * three equal tasks sharing a 20 ms frame,
//   * clock "inversely proportional to supply voltage" -> LinearDvsModel,
//   * worst-case demand of exactly 20 V*ms per task
//     (so the WCEC-optimal uniform schedule {6.7, 13.3, 20} ms runs at 3 V,
//      the alternative schedule {10, 15, 20} ms starts at 2 V and needs 4 V
//      in the worst case),
//   * ACEC = WCEC/2 (greedy runtime finish times 3.3 / 8.3 / 14.1 ms,
//     24% average-case improvement, 33% worst-case penalty).
// We realise 20 V*ms as WCEC = 20e6 cycles on a 1e6 cycles/ms/V processor.
#ifndef ACS_WORKLOAD_MOTIVATION_H
#define ACS_WORKLOAD_MOTIVATION_H

#include <vector>

#include "model/power_model.h"
#include "model/task.h"

namespace dvs::workload {

/// Three equal tasks, 20 ms period, WCEC 2e7 cycles, ACEC 1e7, BCEC 5e6.
model::TaskSet MotivationTaskSet();

/// 0.5 V - 4 V linear processor, 1e6 cycles/ms per volt, ceff = 1.
model::LinearDvsModel MotivationModel();

/// End-times of the paper's Fig. 1 static WCEC-optimal schedule:
/// {20/3, 40/3, 20} ms.
std::vector<double> MotivationWcsEndTimes();

/// End-times of the paper's Fig. 2 alternative schedule: {10, 15, 20} ms.
std::vector<double> MotivationAcsEndTimes();

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_MOTIVATION_H
