// Named execution-time scenarios and their registry (third client of
// util::NamedRegistry, after core::MethodRegistry and
// mp::PartitionerRegistry).
//
// The paper's experiments draw every job's actual execution cycles i.i.d.
// from one truncated normal, but the advantage of average-case-aware DVS
// depends on *how* actual times vary under the WCEC — burstiness, modality
// and job-to-job correlation each change how much reclaimable slack the
// online phase sees and how well the offline ACEC plan matches reality
// (Berten et al., "Managing Varying Worst Case Execution Times on DVS
// Platforms").  A Scenario names one such stochastic process; experiment
// grids sweep scenarios exactly like methods and partitioners.
//
// Clamping contract: every sampler draws within task i's [BCEC_i, WCEC_i],
// so feasibility analysis (VerifyWorstCase, the RM admission test, the NLP
// budget constraints) is untouched by the scenario axis — scenarios change
// the *realisation* of work, never its worst-case envelope.  The engine
// asserts the safety-relevant upper bound (<= WCEC) per draw; the lower
// bound is this subsystem's contract, exercised per built-in by
// workload_scenario_test.
//
// sigma_divisor: the normal-based scenarios (iid-normal, bimodal, bursty,
// correlated) scale their dispersion from it; heavy-tail's tail index and
// trace's replay are properties of the process and ignore it — those two
// report model::WorkloadScenario::UsesSigmaDivisor() == false, and sweep
// drivers (bench_scenario_sweep) use the flag to skip the duplicate sigma
// cells such scenarios would otherwise compute.
//
// Built-ins (see ScenarioRegistry::Builtin):
//
//   iid-normal  the paper's process: i.i.d. truncated normal, mean ACEC,
//               sigma = span / sigma_divisor — byte-compatible with the
//               pre-scenario TruncatedNormalWorkload default
//   bimodal     cache-hit/miss mixture: 3/4 of jobs from a narrow mode near
//               BCEC + 0.2 span, 1/4 from a narrow mode near WCEC
//   bursty      two-state Markov-modulated process: a light phase drawing
//               near BCEC alternates with sticky heavy phases near WCEC
//               (mean sojourns of 10 and 5 jobs per task)
//   heavy-tail  truncated Pareto (shape 1.1) in normalised fraction space
//               (scale-free over the window): most jobs near BCEC,
//               occasional near-WCEC stragglers
//   correlated  AR(1) across successive jobs of one task (rho = 0.8) with
//               the i.i.d. scenario's stationary dispersion
//   trace       deterministic replay of recorded per-job workload fractions
//               (this entry replays a built-in synthetic trace; load a real
//               one from CSV with LoadTraceScenario)
//
// All scenarios derive every draw from the engine-supplied rng stream and
// per-task state reset at sampler construction, so paired-seed runs remain
// bit-reproducible per (task set, scenario, seed).
#ifndef ACS_WORKLOAD_SCENARIO_H
#define ACS_WORKLOAD_SCENARIO_H

#include <memory>
#include <string>
#include <vector>

#include "model/workload.h"
#include "util/named_registry.h"

namespace dvs::workload {

/// Name -> scenario map: util::NamedRegistry with this domain's error
/// wording; same contract as the method/partitioner registries (populate
/// before sharing across threads, const lookups after).
class ScenarioRegistry : public util::NamedRegistry<model::WorkloadScenario> {
 public:
  /// The immutable registry of the built-ins listed above.
  static const ScenarioRegistry& Builtin();

  ScenarioRegistry() : NamedRegistry("scenario", "workload scenario",
                                     "scenarios") {}
};

/// Populates `registry` with the built-ins of ScenarioRegistry::Builtin.
/// Experiment drivers that add custom processes (a loaded trace, a plugged
/// distribution) start from this and Register() on top.
void RegisterBuiltinScenarios(ScenarioRegistry& registry);

/// Trace-replay scenario over normalised per-job workload *fractions*:
/// job j of task i executes BCEC_i + f * (WCEC_i - BCEC_i) cycles, where f
/// walks `fractions` cyclically from a per-task phase offset (task index),
/// so equal-window tasks do not run in lockstep.  Fractions are clamped to
/// [0, 1]; normalisation is what lets one recorded trace replay against any
/// task set, including the random-set grid axes.  Requires a non-empty
/// fraction list.
std::unique_ptr<model::WorkloadScenario> MakeTraceScenario(
    std::vector<double> fractions);

/// Loads MakeTraceScenario input from a CSV file: one fraction per row
/// (first column; further columns ignored), '#' comments and blank lines
/// skipped, an optional non-numeric header row skipped.  Throws util::Error
/// when the file cannot be read or yields no fractions.
std::unique_ptr<model::WorkloadScenario> LoadTraceScenario(
    const std::string& path);

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_SCENARIO_H
