#include "workload/presets.h"

#include "util/error.h"

namespace dvs::workload {

model::LinearDvsModel DefaultModel() {
  return model::LinearDvsModel(/*vmin=*/0.5, /*vmax=*/4.0, /*ceff=*/1.0,
                               /*cycles_per_ms_per_volt=*/1.0);
}

void ApplyBcecRatio(model::Task& task, double bcec_wcec_ratio) {
  ACS_REQUIRE(bcec_wcec_ratio >= 0.0 && bcec_wcec_ratio <= 1.0,
              "BCEC/WCEC ratio must lie in [0, 1]");
  task.bcec = bcec_wcec_ratio * task.wcec;
  task.acec = 0.5 * (task.bcec + task.wcec);
}

model::TaskSet ScaleToUtilization(std::vector<model::Task> tasks,
                                  const model::DvsModel& dvs, double target) {
  // Targets >= 1 describe multi-core fleet demands (src/mp); single-core
  // admission is the generator's / the partitioner's job, not this scaler's.
  ACS_REQUIRE(target > 0.0, "utilisation target must be positive");
  ACS_REQUIRE(!tasks.empty(), "no tasks to scale");
  const double max_speed = dvs.MaxSpeed();
  double raw = 0.0;
  for (const model::Task& t : tasks) {
    raw += t.wcec / (static_cast<double>(t.period) * max_speed);
  }
  ACS_REQUIRE(raw > 0.0, "tasks carry no workload");
  const double scale = target / raw;
  for (model::Task& t : tasks) {
    t.wcec *= scale;
    t.acec *= scale;
    t.bcec *= scale;
  }
  return model::TaskSet(std::move(tasks));
}

}  // namespace dvs::workload
