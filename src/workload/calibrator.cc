#include "workload/calibrator.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "stats/rng.h"
#include "util/error.h"

namespace dvs::workload {

double Calibration::Quantile(model::TaskIndex task, double p) const {
  ACS_REQUIRE(task < sorted.size(), "task index out of range");
  ACS_REQUIRE(p >= 0.0 && p <= 1.0, "quantile must lie in [0, 1]");
  const std::vector<double>& samples = sorted[task];
  ACS_REQUIRE(!samples.empty(), "calibration holds no samples");
  // Nearest-rank: the smallest sample with empirical CDF >= p.  Exact on
  // stored doubles (no interpolation), so quantile planning points are
  // always values the scenario actually produced.
  const double rank = std::ceil(p * static_cast<double>(samples.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0,
                 static_cast<double>(samples.size() - 1)));
  return samples[index];
}

std::vector<double> Calibration::QuantileVector(double p) const {
  std::vector<double> point;
  point.reserve(sorted.size());
  for (model::TaskIndex i = 0; i < sorted.size(); ++i) {
    point.push_back(Quantile(i, p));
  }
  return point;
}

std::vector<std::vector<double>> Calibration::SampleVectors(
    std::int64_t k) const {
  ACS_REQUIRE(k >= 1, "mixture needs at least one sample vector");
  ACS_REQUIRE(k <= samples_per_task,
              "mixture size exceeds the calibration sample count");
  std::vector<std::vector<double>> vectors;
  vectors.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < k; ++j) {
    // Midpoint-strided draw indices: (2j+1) * N / (2k) spreads the k joint
    // draws evenly through the run, so sticky processes (bursty phases,
    // AR(1) excursions) contribute both their regimes.
    const std::size_t index =
        static_cast<std::size_t>(((2 * j + 1) * samples_per_task) / (2 * k));
    std::vector<double> vec;
    vec.reserve(draws.size());
    for (const std::vector<double>& task_draws : draws) {
      vec.push_back(task_draws[index]);
    }
    vectors.push_back(std::move(vec));
  }
  return vectors;
}

ScenarioCalibrator::ScenarioCalibrator(const model::WorkloadScenario* scenario,
                                       double sigma_divisor,
                                       const CalibratorOptions& options)
    : scenario_(scenario), sigma_divisor_(sigma_divisor), options_(options) {
  ACS_REQUIRE(options_.samples_per_task >= 2,
              "calibration needs at least two samples per task");
  ACS_REQUIRE(options_.threads >= 1,
              "calibration thread count must be at least 1");
}

Calibration ScenarioCalibrator::Calibrate(const model::TaskSet& set,
                                          std::uint64_t seed) const {
  const std::size_t tasks = set.size();
  const std::int64_t n = options_.samples_per_task;

  Calibration cal;
  cal.samples_per_task = n;
  cal.mean.assign(tasks, 0.0);
  cal.stddev.assign(tasks, 0.0);
  cal.draws.assign(tasks, {});
  cal.sorted.assign(tasks, {});

  // One task's calibration is a pure function of (scenario, sigma, set,
  // seed, task): its own sampler instance (so stateful per-task samplers
  // start from their reset state and never interleave with other tasks'
  // queries) and its own ForkWith(task)-derived stream.  That independence
  // is the whole thread-invariance argument — the loop body below runs
  // identically wherever it is scheduled.
  const auto calibrate_task = [&](model::TaskIndex task) {
    std::unique_ptr<model::WorkloadSampler> sampler =
        scenario_ != nullptr
            ? scenario_->MakeSampler(set, sigma_divisor_)
            : std::make_unique<model::TruncatedNormalWorkload>(
                  set, sigma_divisor_);
    stats::Rng rng =
        stats::Rng(seed).ForkWith(static_cast<std::uint64_t>(task));
    const model::Task& spec = set.task(task);

    std::vector<double>& draws = cal.draws[task];
    draws.resize(static_cast<std::size_t>(n));
    double sum = 0.0;
    for (std::int64_t j = 0; j < n; ++j) {
      const double cycles = std::clamp(sampler->SampleCycles(task, rng),
                                       spec.bcec, spec.wcec);
      draws[static_cast<std::size_t>(j)] = cycles;
      sum += cycles;
    }
    const double mean = sum / static_cast<double>(n);
    double sq = 0.0;
    for (double cycles : draws) {
      const double d = cycles - mean;
      sq += d * d;
    }
    cal.mean[task] = mean;
    cal.stddev[task] = std::sqrt(sq / static_cast<double>(n - 1));
    cal.sorted[task] = draws;
    std::sort(cal.sorted[task].begin(), cal.sorted[task].end());
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(options_.threads), std::max<std::size_t>(
              tasks, 1)));
  if (workers <= 1 || tasks <= 1) {
    for (model::TaskIndex task = 0; task < tasks; ++task) {
      calibrate_task(task);
    }
    return cal;
  }

  // Static round-robin split of the task axis; each worker writes only its
  // own tasks' slots, so no synchronisation is needed and the result is the
  // serial one by construction.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (std::size_t task = static_cast<std::size_t>(w); task < tasks;
           task += static_cast<std::size_t>(workers)) {
        calibrate_task(task);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
  return cal;
}

}  // namespace dvs::workload
