#include "workload/gap.h"

#include "util/error.h"
#include "workload/presets.h"

namespace dvs::workload {

model::TaskSet GapTaskSet(const GapOptions& options,
                          const model::DvsModel& dvs) {
  struct Spec {
    const char* name;
    std::int64_t period;  // milliseconds
    double wcet;          // relative worst-case demand (pre-scaling)
  };
  static constexpr Spec kSpecs[] = {
      {"aircraft_flight_data", 25, 2.0},
      {"steering", 25, 3.0},
      {"radar_tracking", 50, 5.0},
      {"target_tracking", 50, 5.0},       // 59 ms server rounded to 50 ms
      {"hud_display", 100, 8.0},
      {"tracking_filter", 200, 10.0},
      {"nav_update", 200, 15.0},
      {"nav_status", 1000, 50.0},
      {"bit_status", 1000, 100.0},
  };

  std::vector<model::Task> tasks;
  tasks.reserve(std::size(kSpecs));
  for (const Spec& spec : kSpecs) {
    model::Task task;
    task.name = spec.name;
    task.period = spec.period;
    task.wcec = spec.wcet;
    ApplyBcecRatio(task, options.bcec_wcec_ratio);
    tasks.push_back(std::move(task));
  }
  // Single-processor reconstructions: keep the (0, 1) admission that
  // ScaleToUtilization itself no longer enforces (fleet targets are legal
  // there for src/mp).
  ACS_REQUIRE(options.utilization > 0.0 && options.utilization < 1.0,
              "gap utilisation must lie in (0, 1)");
  return ScaleToUtilization(std::move(tasks), dvs, options.utilization);
}

}  // namespace dvs::workload
