// Offline scenario calibration: deterministic Monte-Carlo estimation of the
// per-task realised execution-time distribution of one workload scenario.
//
// The ACS NLP plans at a single per-task workload point; the paper fixes it
// at ACEC, the mean of its i.i.d. truncated normal.  For any other
// execution-time process (workload/scenario.h) the realised per-task mean —
// and the shape around it — drifts away from ACEC, so scenario-conditioned
// planning arms (core "acs-scenario" / "acs-quantile" / "acs-mixture") need
// calibrated per-task moments, quantiles and representative sample vectors.
// ScenarioCalibrator produces them by sampling the scenario offline:
//
//   - one sampler *per task*, each queried for that task only, so stateful
//     processes (Markov phases, AR(1) memory, trace cursors) expose their
//     per-task marginal law without cross-task stream coupling;
//   - one independent rng stream per task, derived as
//     Rng(seed).ForkWith(task) — a pure function of (seed, task), which is
//     what makes multi-threaded calibration bit-identical to serial
//     calibration (threads only change which worker draws a task's stream,
//     never the stream itself);
//   - every draw clamped to the task's [BCEC, WCEC] window (the sampler
//     contract already guarantees it; the clamp makes the planning-point
//     invariant locally checkable).
//
// Determinism contract: Calibrate(set, seed) is a pure function of
// (scenario, sigma_divisor, samples_per_task, set, seed) — same inputs,
// bit-identical Calibration, whatever the thread count or call order.
// Experiment drivers derive `seed` from the same SetIndex-keyed stream that
// seeds evaluation (core::CalibrationSeed), so calibration is paired with
// the cell it plans for while drawing from an independent fork.
#ifndef ACS_WORKLOAD_CALIBRATOR_H
#define ACS_WORKLOAD_CALIBRATOR_H

#include <cstdint>
#include <vector>

#include "model/task.h"
#include "model/workload.h"

namespace dvs::workload {

/// The calibrated per-task picture of one (scenario, sigma_divisor, set,
/// seed) tuple.  Per-task vectors are indexed by model::TaskIndex.
struct Calibration {
  std::int64_t samples_per_task = 0;
  std::vector<double> mean;    // empirical mean of the realised cycles
  std::vector<double> stddev;  // empirical standard deviation
  /// Per-task draws in draw order (row = task) — the raw material of
  /// SampleVectors, kept so mixture vectors reflect actual joint draws of
  /// one draw index rather than artificial comonotone quantile stacks.
  std::vector<std::vector<double>> draws;
  /// Per-task draws sorted ascending — the quantile store.
  std::vector<std::vector<double>> sorted;

  /// Nearest-rank empirical quantile of task `task` at p in [0, 1].
  double Quantile(model::TaskIndex task, double p) const;

  /// Per-task quantile vector at `p` (a ready planning point).
  std::vector<double> QuantileVector(double p) const;

  /// `k` per-task sample vectors spread evenly through the draw order:
  /// vector j holds every task's draw at index (2j+1) * N / (2k).  Each
  /// vector is one joint draw across tasks, so mixture planning averages
  /// over realisations the scenario actually produces.  Requires
  /// 1 <= k <= samples_per_task.
  std::vector<std::vector<double>> SampleVectors(std::int64_t k) const;
};

/// Calibration knobs (top-level so the constructor can default it; nested
/// classes cannot default-argument their own enclosing scope).
struct CalibratorOptions {
  /// Draws per task.  2048 puts the standard error of a mean estimate at
  /// ~2% of the dispersion — well inside the NLP's sensitivity — while
  /// keeping calibration orders of magnitude cheaper than one solve.
  std::int64_t samples_per_task = 2048;
  /// Worker threads splitting the task axis; results are bit-identical
  /// for every value (per-task streams, see the header comment).
  int threads = 1;
};

class ScenarioCalibrator {
 public:
  /// `scenario` may be null: calibration then targets the paper's default
  /// i.i.d. truncated normal (the same resolution rule as
  /// core::MakeRunSampler), so planning arms behave identically whether the
  /// default process is spelled "nullptr" or "iid-normal".  Non-owning; the
  /// pointee must outlive the calibrator.
  ScenarioCalibrator(const model::WorkloadScenario* scenario,
                     double sigma_divisor, const CalibratorOptions& options = {});

  /// Pure function of (scenario, sigma_divisor, options, set, seed); see
  /// the determinism contract above.
  Calibration Calibrate(const model::TaskSet& set, std::uint64_t seed) const;

 private:
  const model::WorkloadScenario* scenario_;
  double sigma_divisor_;
  CalibratorOptions options_;
};

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_CALIBRATOR_H
