// GAP — Generic Avionics Platform task set (Locke, Vogel, Mesler),
// the second real-life application of paper §4 / Fig. 6 (right).
//
// Reconstruction note (DESIGN.md): we use the avionics period ladder quoted
// throughout the DVS literature (25..1000 ms), rounding the 59 ms aperiodic
// weapon-release server to 50 ms — the conventional simplification that
// keeps the hyper-period at 1000 ms (the exact 59 ms period would blow the
// hyper-period, and the paper's own 1000-sub-instance cap implies the same
// rounding).  WCEC is rescaled to the requested utilisation; see the CNC
// header for why the improvement ratio is insensitive to absolute WCETs.
#ifndef ACS_WORKLOAD_GAP_H
#define ACS_WORKLOAD_GAP_H

#include "model/power_model.h"
#include "model/task.h"

namespace dvs::workload {

struct GapOptions {
  double utilization = 0.7;
  double bcec_wcec_ratio = 0.5;
};

/// Builds the 9-task GAP avionics set (periods in milliseconds).
model::TaskSet GapTaskSet(const GapOptions& options,
                          const model::DvsModel& dvs);

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_GAP_H
