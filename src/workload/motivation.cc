#include "workload/motivation.h"

namespace dvs::workload {

model::TaskSet MotivationTaskSet() {
  std::vector<model::Task> tasks;
  for (int i = 1; i <= 3; ++i) {
    model::Task task;
    task.name = "task" + std::to_string(i);
    task.period = 20;     // ms — the shared frame
    task.wcec = 20.0e6;   // cycles: 20 V*ms at 1e6 cycles/ms/V
    task.acec = 10.0e6;
    task.bcec = 5.0e6;
    tasks.push_back(std::move(task));
  }
  return model::TaskSet(std::move(tasks));
}

model::LinearDvsModel MotivationModel() {
  return model::LinearDvsModel(/*vmin=*/0.5, /*vmax=*/4.0, /*ceff=*/1.0,
                               /*cycles_per_ms_per_volt=*/1.0e6);
}

std::vector<double> MotivationWcsEndTimes() {
  return {20.0 / 3.0, 40.0 / 3.0, 20.0};
}

std::vector<double> MotivationAcsEndTimes() { return {10.0, 15.0, 20.0}; }

}  // namespace dvs::workload
