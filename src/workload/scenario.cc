#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "stats/distributions.h"
#include "util/error.h"
#include "util/strings.h"

namespace dvs::workload {
namespace {

/// One task's workload window.  span == 0 (BCEC == WCEC) collapses every
/// scenario to the fixed WCEC draw, mirroring TruncatedNormalWorkload.
struct Window {
  double bcec = 0.0;
  double wcec = 0.0;
  double acec = 0.0;
  double span = 0.0;
};

std::vector<Window> Windows(const model::TaskSet& set) {
  std::vector<Window> windows;
  windows.reserve(set.size());
  for (model::TaskIndex i = 0; i < set.size(); ++i) {
    const model::Task& t = set.task(i);
    windows.push_back(Window{t.bcec, t.wcec, t.acec, t.wcec - t.bcec});
  }
  return windows;
}

double Clamp01(double f) { return std::min(1.0, std::max(0.0, f)); }

// ----------------------------------------------------------------- bimodal --

/// Cache-hit/miss mixture: 3/4 of jobs from a narrow mode near BCEC, 1/4
/// from a narrow mode near WCEC.  Mode width span / (2 * sigma_divisor) —
/// half the i.i.d. scenario's sigma, so the modes stay separated.
class BimodalWorkload final : public model::WorkloadSampler {
 public:
  BimodalWorkload(const model::TaskSet& set, double sigma_divisor) {
    for (const Window& w : Windows(set)) {
      const double sigma = w.span / (2.0 * sigma_divisor);
      hit_.emplace_back(w.bcec + 0.2 * w.span, sigma, w.bcec, w.wcec);
      miss_.emplace_back(w.wcec - 0.1 * w.span, sigma, w.bcec, w.wcec);
    }
  }

  double SampleCycles(model::TaskIndex task, stats::Rng& rng) const override {
    ACS_REQUIRE(task < hit_.size(), "task index out of range");
    const bool hit = rng.NextDouble() < kHitProbability;
    return (hit ? hit_[task] : miss_[task]).Sample(rng);
  }

  static constexpr double kHitProbability = 0.75;

 private:
  std::vector<stats::TruncatedNormal> hit_;
  std::vector<stats::TruncatedNormal> miss_;
};

// ------------------------------------------------------------------ bursty --

/// Two-state Markov-modulated process per task: a light phase drawing near
/// BCEC + 0.25 span alternates with sticky heavy phases near BCEC + 0.85
/// span.  P(light -> heavy) = 0.1 and P(heavy -> light) = 0.2 per job, so
/// phases last 10 / 5 jobs on average — long enough that the online
/// reclamation sees sustained slack droughts, not i.i.d. noise.
class BurstyWorkload final : public model::WorkloadSampler {
 public:
  BurstyWorkload(const model::TaskSet& set, double sigma_divisor) {
    for (const Window& w : Windows(set)) {
      const double sigma = w.span / (2.0 * sigma_divisor);
      light_.emplace_back(w.bcec + 0.25 * w.span, sigma, w.bcec, w.wcec);
      heavy_.emplace_back(w.bcec + 0.85 * w.span, sigma, w.bcec, w.wcec);
    }
    heavy_phase_.assign(light_.size(), 0);
  }

  double SampleCycles(model::TaskIndex task, stats::Rng& rng) const override {
    ACS_REQUIRE(task < light_.size(), "task index out of range");
    const bool heavy = heavy_phase_[task] != 0;
    const double cycles = (heavy ? heavy_[task] : light_[task]).Sample(rng);
    const double u = rng.NextDouble();
    if (heavy ? u < kHeavyToLight : u < kLightToHeavy) {
      heavy_phase_[task] = heavy ? 0 : 1;
    }
    return cycles;
  }

  static constexpr double kLightToHeavy = 0.1;
  static constexpr double kHeavyToLight = 0.2;

 private:
  std::vector<stats::TruncatedNormal> light_;
  std::vector<stats::TruncatedNormal> heavy_;
  mutable std::vector<unsigned char> heavy_phase_;  // per-run state
};

// -------------------------------------------------------------- heavy-tail --

/// Truncated Pareto in *fraction* space: a workload fraction f is drawn
/// from TruncatedPareto(shape, [0, kCap - 1]) / (kCap - 1) and mapped to
/// BCEC + f span, so the process is scale-free — the same distribution of
/// fractions whatever the window's magnitude (unlike a Pareto in absolute
/// cycles, whose shape would silently change when ScaleToUtilization or
/// the utilization axis rescales the task set).  With shape 1.1 and cap
/// 100, ~94% of jobs land within a ninth of the window above BCEC and a
/// few per thousand straggle past the midpoint toward WCEC.  The tail
/// index is a property of the process (not the dispersion knob), so
/// sigma_divisor is ignored.
class HeavyTailWorkload final : public model::WorkloadSampler {
 public:
  explicit HeavyTailWorkload(const model::TaskSet& set)
      : fraction_(kShape, 0.0, kCap - 1.0) {
    windows_ = Windows(set);
  }

  double SampleCycles(model::TaskIndex task, stats::Rng& rng) const override {
    ACS_REQUIRE(task < windows_.size(), "task index out of range");
    const Window& w = windows_[task];
    const double f = fraction_.Sample(rng) / (kCap - 1.0);
    return w.span > 0.0 ? w.bcec + f * w.span : w.wcec;
  }

  static constexpr double kShape = 1.1;
  static constexpr double kCap = 100.0;

 private:
  std::vector<Window> windows_;
  stats::TruncatedPareto fraction_;
};

// -------------------------------------------------------------- correlated --

/// AR(1) across successive jobs of one task, in workload-fraction space:
///   f_j = mu + rho (f_{j-1} - mu) + N(0, sigma_f),  x_j = BCEC + f_j span
/// with mu = (ACEC - BCEC) / span, rho = 0.8 and sigma_f chosen so the
/// stationary standard deviation equals the i.i.d. scenario's 1 /
/// sigma_divisor (in fraction units) — same long-run dispersion, opposite
/// short-run predictability.  Fractions clamp to [0, 1], which keeps every
/// draw inside the window (and is exactly the truncation the i.i.d. law
/// applies by rejection).
class CorrelatedWorkload final : public model::WorkloadSampler {
 public:
  CorrelatedWorkload(const model::TaskSet& set, double sigma_divisor)
      : innovation_sigma_((1.0 / sigma_divisor) *
                          std::sqrt(1.0 - kRho * kRho)) {
    windows_ = Windows(set);
    mu_.reserve(windows_.size());
    prev_.reserve(windows_.size());
    for (const Window& w : windows_) {
      const double mu = w.span > 0.0 ? (w.acec - w.bcec) / w.span : 0.0;
      mu_.push_back(Clamp01(mu));
      prev_.push_back(Clamp01(mu));
    }
  }

  double SampleCycles(model::TaskIndex task, stats::Rng& rng) const override {
    ACS_REQUIRE(task < windows_.size(), "task index out of range");
    const Window& w = windows_[task];
    if (w.span <= 0.0) {
      return w.wcec;
    }
    const double f =
        Clamp01(mu_[task] + kRho * (prev_[task] - mu_[task]) +
                rng.Normal(0.0, innovation_sigma_));
    prev_[task] = f;
    return w.bcec + f * w.span;
  }

  static constexpr double kRho = 0.8;

 private:
  std::vector<Window> windows_;
  std::vector<double> mu_;
  double innovation_sigma_;
  mutable std::vector<double> prev_;  // per-run AR(1) state
};

// ------------------------------------------------------------------- trace --

/// Deterministic replay of normalised per-job fractions (see scenario.h).
class TraceWorkload final : public model::WorkloadSampler {
 public:
  TraceWorkload(const model::TaskSet& set,
                std::shared_ptr<const std::vector<double>> fractions)
      : fractions_(std::move(fractions)) {
    windows_ = Windows(set);
    cursor_.reserve(windows_.size());
    for (model::TaskIndex i = 0; i < windows_.size(); ++i) {
      cursor_.push_back(i % fractions_->size());  // per-task phase offset
    }
  }

  double SampleCycles(model::TaskIndex task, stats::Rng&) const override {
    ACS_REQUIRE(task < windows_.size(), "task index out of range");
    const Window& w = windows_[task];
    std::size_t& cursor = cursor_[task];
    const double f = (*fractions_)[cursor];
    cursor = (cursor + 1) % fractions_->size();
    return w.span > 0.0 ? w.bcec + f * w.span : w.wcec;
  }

 private:
  std::vector<Window> windows_;
  std::shared_ptr<const std::vector<double>> fractions_;
  mutable std::vector<std::size_t> cursor_;  // per-run replay positions
};

// --------------------------------------------------------------- factories --

class IidNormalScenario final : public model::WorkloadScenario {
 public:
  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double sigma_divisor) const override {
    return std::make_unique<model::TruncatedNormalWorkload>(set,
                                                            sigma_divisor);
  }
};

class BimodalScenario final : public model::WorkloadScenario {
 public:
  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double sigma_divisor) const override {
    return std::make_unique<BimodalWorkload>(set, sigma_divisor);
  }
};

class BurstyScenario final : public model::WorkloadScenario {
 public:
  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double sigma_divisor) const override {
    return std::make_unique<BurstyWorkload>(set, sigma_divisor);
  }
};

class HeavyTailScenario final : public model::WorkloadScenario {
 public:
  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double /*sigma_divisor*/) const override {
    return std::make_unique<HeavyTailWorkload>(set);
  }

  bool UsesSigmaDivisor() const override { return false; }
};

class CorrelatedScenario final : public model::WorkloadScenario {
 public:
  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double sigma_divisor) const override {
    return std::make_unique<CorrelatedWorkload>(set, sigma_divisor);
  }
};

class TraceScenario final : public model::WorkloadScenario {
 public:
  explicit TraceScenario(std::vector<double> fractions) {
    ACS_REQUIRE(!fractions.empty(),
                "trace scenario needs at least one workload fraction");
    for (double& f : fractions) {
      f = Clamp01(f);
    }
    fractions_ = std::make_shared<const std::vector<double>>(
        std::move(fractions));
  }

  std::unique_ptr<model::WorkloadSampler> MakeSampler(
      const model::TaskSet& set, double /*sigma_divisor*/) const override {
    return std::make_unique<TraceWorkload>(set, fractions_);
  }

  bool UsesSigmaDivisor() const override { return false; }

 private:
  std::shared_ptr<const std::vector<double>> fractions_;
};

/// The built-in "trace" entry's synthetic recording: a fixed 16-job pattern
/// mixing near-best, mid and near-worst jobs, so the replay path exercises
/// the whole window without needing a file.  Real recordings come in via
/// LoadTraceScenario.
std::vector<double> BuiltinTraceFractions() {
  return {0.08, 0.45, 0.92, 0.30, 0.64, 0.15, 0.78, 0.50,
          0.22, 0.99, 0.40, 0.02, 0.70, 0.35, 0.85, 0.55};
}

}  // namespace

const ScenarioRegistry& ScenarioRegistry::Builtin() {
  static const ScenarioRegistry registry = [] {
    ScenarioRegistry built;
    RegisterBuiltinScenarios(built);
    return built;
  }();
  return registry;
}

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  registry.Register("iid-normal",
                    "i.i.d. truncated normal (the paper's process)",
                    std::make_unique<IidNormalScenario>());
  registry.Register("bimodal", "cache-hit/miss mixture of two narrow modes",
                    std::make_unique<BimodalScenario>());
  registry.Register("bursty",
                    "two-state Markov-modulated light/heavy phases",
                    std::make_unique<BurstyScenario>());
  registry.Register("heavy-tail",
                    "truncated Pareto: rare near-WCEC stragglers",
                    std::make_unique<HeavyTailScenario>());
  registry.Register("correlated", "AR(1) across successive jobs of a task",
                    std::make_unique<CorrelatedScenario>());
  registry.Register("trace",
                    "deterministic replay of recorded workload fractions",
                    std::make_unique<TraceScenario>(BuiltinTraceFractions()));
}

std::unique_ptr<model::WorkloadScenario> MakeTraceScenario(
    std::vector<double> fractions) {
  return std::make_unique<TraceScenario>(std::move(fractions));
}

std::unique_ptr<model::WorkloadScenario> LoadTraceScenario(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw util::Error("cannot open trace CSV: " + path);
  }
  std::vector<double> fractions;
  std::string line;
  bool first_row = true;
  while (std::getline(in, line)) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    const std::string field(util::Trim(util::Split(trimmed, ',').front()));
    char* end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end == field.c_str() || *end != '\0') {
      if (first_row) {
        first_row = false;  // header row
        continue;
      }
      throw util::Error("trace CSV " + path + ": unparsable fraction \"" +
                        field + "\"");
    }
    first_row = false;
    // The file-format boundary rejects out-of-range values outright (FP
    // noise excepted): a recording in absolute cycles would otherwise
    // clamp every job to fraction 1.0 and silently replay all-WCEC.
    if (value < -1e-9 || value > 1.0 + 1e-9) {
      throw util::Error("trace CSV " + path + ": fraction " + field +
                        " outside [0, 1] — recordings must be normalised "
                        "(0 = BCEC, 1 = WCEC), not absolute cycles");
    }
    fractions.push_back(value);
  }
  if (fractions.empty()) {
    throw util::Error("trace CSV " + path + " yields no workload fractions");
  }
  return MakeTraceScenario(std::move(fractions));
}

}  // namespace dvs::workload
