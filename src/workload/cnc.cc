#include "workload/cnc.h"

#include "util/error.h"
#include "workload/presets.h"

namespace dvs::workload {

model::TaskSet CncTaskSet(const CncOptions& options,
                          const model::DvsModel& dvs) {
  struct Spec {
    const char* name;
    std::int64_t period;  // microseconds
    double wcet;          // relative worst-case demand (pre-scaling)
  };
  // Servo control loops at 600 us, interpolators at 1200 us, command and
  // status handling at 2400 us, housekeeping/display at 4800 us.
  static constexpr Spec kSpecs[] = {
      {"x_servo", 600, 35.0},   {"y_servo", 600, 40.0},
      {"x_interp", 1200, 80.0}, {"y_interp", 1200, 100.0},
      {"command", 2400, 120.0}, {"status", 2400, 120.0},
      {"panel", 4800, 400.0},   {"display", 4800, 400.0},
  };

  std::vector<model::Task> tasks;
  tasks.reserve(std::size(kSpecs));
  for (const Spec& spec : kSpecs) {
    model::Task task;
    task.name = spec.name;
    task.period = spec.period;
    task.wcec = spec.wcet;  // rescaled below; units cancel
    ApplyBcecRatio(task, options.bcec_wcec_ratio);
    tasks.push_back(std::move(task));
  }
  // Single-processor reconstructions: keep the (0, 1) admission that
  // ScaleToUtilization itself no longer enforces (fleet targets are legal
  // there for src/mp).
  ACS_REQUIRE(options.utilization > 0.0 && options.utilization < 1.0,
              "cnc utilisation must lie in (0, 1)");
  return ScaleToUtilization(std::move(tasks), dvs, options.utilization);
}

}  // namespace dvs::workload
