// Shared experiment presets: the default DVS processor used by the paper
// reproduction benches, and the BCEC/ACEC convention.
#ifndef ACS_WORKLOAD_PRESETS_H
#define ACS_WORKLOAD_PRESETS_H

#include "model/power_model.h"
#include "model/task.h"

namespace dvs::workload {

/// Default experiment processor: the paper's linear model (f proportional
/// to V) with the motivational example's 0.5 V - 4 V range, ceff = 1 and
/// unit speed constant (1 cycle per time-unit per volt).  Energy is then in
/// "V^2 * cycles" units; the paper reports only ratios, which are invariant
/// to these scales.
model::LinearDvsModel DefaultModel();

/// Applies the paper's workload convention to a WCEC: BCEC = ratio * WCEC,
/// ACEC = (BCEC + WCEC)/2 (the mean of the truncated-normal window).
void ApplyBcecRatio(model::Task& task, double bcec_wcec_ratio);

/// Rescales a task list so worst-case utilisation at Vmax equals `target`.
/// Targets >= 1 are legal and describe a multi-core fleet demand (src/mp).
/// Returns the validated TaskSet.
model::TaskSet ScaleToUtilization(std::vector<model::Task> tasks,
                                  const model::DvsModel& dvs, double target);

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_PRESETS_H
