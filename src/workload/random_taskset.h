// The paper's random task-set generator (§4).
//
// "For a given number of tasks, one hundred random task sets were
// constructed and each task set results in maximum one thousand
// sub-instances. ... The WCEC of a particular task instance was adjusted
// such that the processor utilisation is about 70% when all the tasks are
// running at the maximum speed."
//
// The paper's period/deadline distribution is lost to OCR ("chosen from a
// uniform distribution between 10 and [..]"); we draw periods uniformly from
// the divisors of 2000 inside [10, 1000], which (a) matches the surviving
// "between 10 and ..." text, (b) caps the hyper-period at 2000 and with it
// the sub-instance count near the paper's 1000 limit, and (c) produces the
// semi-harmonic mixes typical of the cited DVS literature.  Documented as a
// substitution in DESIGN.md.
#ifndef ACS_WORKLOAD_RANDOM_TASKSET_H
#define ACS_WORKLOAD_RANDOM_TASKSET_H

#include <cstdint>
#include <vector>

#include "model/power_model.h"
#include "model/task.h"
#include "stats/rng.h"

namespace dvs::workload {

struct RandomTaskSetOptions {
  int num_tasks = 6;
  double bcec_wcec_ratio = 0.5;   // paper x-axis: 0.1 / 0.5 / 0.9
  /// Worst-case utilisation at Vmax.  Values below 1 reproduce the paper's
  /// single-processor sets (exact RM admission at Vmax); values >= 1 imply
  /// `multi_core` below.
  double utilization = 0.7;       // paper: "about 70%"
  /// Marks the draw as a *multi-core* fleet demand (the mp layer's
  /// partitioned experiments): the single-core RM test is skipped — per-core
  /// feasibility is the partitioner's admission problem — and draws where
  /// any single task alone exceeds one core are rejected instead.  Forced on
  /// when utilization >= 1; set it explicitly for multi-core experiments at
  /// per-core-scale utilisation so the draw is not biased toward
  /// single-core-feasible sets.
  bool multi_core = false;
  /// Cap on the fully preemptive expansion (paper: 1000).  For multi-core
  /// sets the cap is applied pro rata: the whole-set expansion may reach
  /// max_sub_instances * ceil(utilization), keeping the eventual per-core
  /// expansions near the single-core cap.
  std::size_t max_sub_instances = 1000;
  int max_attempts = 500;         // rejection-sampling budget
};

/// Candidate periods: divisors of 2000 in [10, 1000].
const std::vector<std::int64_t>& CandidatePeriods();

/// Draws one task set: random periods, random workload shares scaled to the
/// target utilisation, paper BCEC/ACEC convention.  Rejects candidates whose
/// fully preemptive expansion exceeds `max_sub_instances` or that fail the
/// exact RM-schedulability test at Vmax; throws SolverError when
/// `max_attempts` draws all fail.
model::TaskSet GenerateRandomTaskSet(const RandomTaskSetOptions& options,
                                     const model::DvsModel& dvs,
                                     stats::Rng& rng);

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_RANDOM_TASKSET_H
