// CNC controller task set (Kim, Ryu, Hong, Saksena, Choi, Shin — RTSS'96),
// the first real-life application of paper §4 / Fig. 6 (right).
//
// Reconstruction note (DESIGN.md): the paper does not reprint the CNC WCETs
// and the original table is not redistributable here, so we reconstruct the
// 8-task controller with its characteristic harmonic period ladder
// (600/1200/2400/4800 us) and servo-dominated workload mix; WCEC is then
// rescaled to the requested utilisation exactly as the paper rescales its
// random sets.  The ACS-vs-WCS improvement depends on the preemption
// structure and the BCEC/WCEC ratio, both preserved, not on the absolute
// microsecond values, which cancel in the reported ratio.
#ifndef ACS_WORKLOAD_CNC_H
#define ACS_WORKLOAD_CNC_H

#include "model/power_model.h"
#include "model/task.h"

namespace dvs::workload {

struct CncOptions {
  double utilization = 0.7;      // worst-case utilisation at Vmax
  double bcec_wcec_ratio = 0.5;  // paper sweeps 0.1 / 0.5 / 0.9
};

/// Builds the 8-task CNC controller set (periods in microseconds).
model::TaskSet CncTaskSet(const CncOptions& options,
                          const model::DvsModel& dvs);

}  // namespace dvs::workload

#endif  // ACS_WORKLOAD_CNC_H
