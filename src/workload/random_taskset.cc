#include "workload/random_taskset.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "fps/expansion.h"
#include "sim/engine.h"
#include "util/error.h"
#include "workload/presets.h"

namespace dvs::workload {

const std::vector<std::int64_t>& CandidatePeriods() {
  static const std::vector<std::int64_t> periods = {
      10, 20, 25, 40, 50, 100, 125, 200, 250, 500, 1000};
  return periods;
}

model::TaskSet GenerateRandomTaskSet(const RandomTaskSetOptions& options,
                                     const model::DvsModel& dvs,
                                     stats::Rng& rng) {
  ACS_REQUIRE(options.num_tasks >= 1, "need at least one task");
  ACS_REQUIRE(options.utilization > 0.0,
              "utilisation must be positive");
  ACS_REQUIRE(options.utilization < static_cast<double>(options.num_tasks),
              "utilisation must stay below the task count (each task must "
              "fit on one core)");

  const bool multi_core = options.multi_core || options.utilization >= 1.0;
  const std::size_t sub_cap =
      multi_core ? options.max_sub_instances *
                       static_cast<std::size_t>(
                           std::ceil(std::max(options.utilization, 1.0)))
                 : options.max_sub_instances;
  const std::vector<std::int64_t>& candidates = CandidatePeriods();

  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    std::vector<model::Task> tasks;
    tasks.reserve(static_cast<std::size_t>(options.num_tasks));
    for (int i = 0; i < options.num_tasks; ++i) {
      model::Task task;
      task.name = "T" + std::to_string(i + 1);
      task.period = candidates[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(candidates.size()) - 1))];
      // Workload share before utilisation scaling: uniform weight, expressed
      // as cycles so longer-period tasks naturally carry more work.
      task.wcec = rng.Uniform(1.0, 10.0) * static_cast<double>(task.period);
      ApplyBcecRatio(task, options.bcec_wcec_ratio);
      tasks.push_back(std::move(task));
    }

    model::TaskSet set =
        ScaleToUtilization(std::move(tasks), dvs, options.utilization);

    const fps::FullyPreemptiveSchedule expansion(set);
    if (expansion.sub_count() > sub_cap) {
      continue;
    }
    if (multi_core) {
      // Per-core admission belongs to the partitioner; here only reject sets
      // with a task no single core could ever carry at Vmax.
      const double max_speed = dvs.MaxSpeed();
      bool oversized = false;
      for (const model::Task& task : set.tasks()) {
        if (task.wcec > static_cast<double>(task.period) * max_speed) {
          oversized = true;
          break;
        }
      }
      if (oversized) {
        continue;
      }
    } else if (!sim::IsRmSchedulable(expansion, dvs)) {
      continue;
    }
    return set;
  }
  throw util::SolverError(
      "random task-set generation exhausted its attempt budget (" +
      std::to_string(options.max_attempts) + " draws); parameters: n=" +
      std::to_string(options.num_tasks) +
      " U=" + std::to_string(options.utilization));
}

}  // namespace dvs::workload
