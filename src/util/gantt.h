// ASCII Gantt-chart renderer.
//
// Renders labelled horizontal bars over a shared time axis — used to print
// static schedules (paper Figs. 1-4) and simulator execution traces in the
// examples.  Purely presentational: quantises to a character grid.
#ifndef ACS_UTIL_GANTT_H
#define ACS_UTIL_GANTT_H

#include <string>
#include <vector>

namespace dvs::util {

struct GanttBar {
  double begin = 0.0;
  double end = 0.0;
  char fill = '#';           // glyph used inside the bar
  std::string annotation;    // optional short text drawn inside the bar
};

struct GanttRow {
  std::string label;
  std::vector<GanttBar> bars;
};

class GanttChart {
 public:
  /// `width` is the number of character cells for the [t_begin, t_end] span.
  GanttChart(double t_begin, double t_end, int width = 72);

  /// Adds a row and returns a reference to it.  The reference is
  /// invalidated by the next AddRow call — fill each row completely before
  /// adding the next one.
  GanttRow& AddRow(std::string label);

  /// Renders all rows plus a time axis with `ticks` evenly spaced labels.
  std::string Render(int ticks = 5) const;

 private:
  int CellOf(double t) const;

  double t_begin_;
  double t_end_;
  int width_;
  std::vector<GanttRow> rows_;
};

}  // namespace dvs::util

#endif  // ACS_UTIL_GANTT_H
