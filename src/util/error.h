// Error hierarchy and invariant-checking macros for the ACS library.
//
// All library-detected failures throw a subclass of util::Error so callers
// can distinguish "the caller handed us garbage" (InvalidArgumentError),
// "the model admits no feasible schedule" (InfeasibleError), "the numeric
// solver gave up" (SolverError), and "an internal invariant broke"
// (InternalError).  Examples and benches catch util::Error at their top
// level and report; tests assert on the concrete type.
#ifndef ACS_UTIL_ERROR_H
#define ACS_UTIL_ERROR_H

#include <stdexcept>
#include <string>

namespace dvs::util {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The caller supplied an argument that violates a documented precondition.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// The scheduling problem has no feasible solution (e.g. the task set is not
/// RM-schedulable at Vmax, or a static schedule cannot absorb the WCEC).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// A numeric solver failed to converge or was driven outside its domain.
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// An internal invariant was violated — always a library bug.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

[[noreturn]] void ThrowInvalidArgument(const char* file, int line,
                                       const std::string& message);
[[noreturn]] void ThrowInternal(const char* file, int line,
                                const std::string& message);

}  // namespace dvs::util

/// Precondition check: throws InvalidArgumentError when `cond` is false.
#define ACS_REQUIRE(cond, message)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::dvs::util::ThrowInvalidArgument(__FILE__, __LINE__,               \
                                        std::string("requirement `" #cond \
                                                    "` failed: ") +       \
                                            (message));                   \
    }                                                                     \
  } while (false)

/// Internal invariant check: throws InternalError when `cond` is false.
#define ACS_CHECK(cond, message)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dvs::util::ThrowInternal(                                           \
          __FILE__, __LINE__,                                               \
          std::string("invariant `" #cond "` failed: ") + (message));       \
    }                                                                       \
  } while (false)

#endif  // ACS_UTIL_ERROR_H
