// Minimal leveled logger.
//
// The library is quiet by default (kWarn); benches and examples raise the
// level via --verbose or Logger::set_level, and the ACS_LOG_LEVEL
// environment variable pre-sets the level at first use (unknown names are
// ignored).  Logging goes through a single global logger so tests can
// capture or silence output deterministically.
//
// The default sink format — "[level] message\n" to std::clog — is a
// byte-stable contract (tests pin it).  Opt-in decorations layer on top:
// an ISO-8601 UTC timestamp prefix (set_timestamps), a thread-id tag
// (set_thread_ids), and a JSONL structured mode (LogFormat::kJsonl) that
// emits one {"level", "msg", ...} object per line for log shippers.
#ifndef ACS_UTIL_LOGGING_H
#define ACS_UTIL_LOGGING_H

#include <atomic>
#include <iosfwd>
#include <mutex>
#include <sstream>
#include <string>

namespace dvs::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the canonical lower-case name ("trace", "debug", ...).
const char* LogLevelName(LogLevel level);

/// Parses a level name; throws InvalidArgumentError on unknown names.
LogLevel ParseLogLevel(const std::string& name);

/// Sink line shape: classic "[level] message" or one JSON object per line.
enum class LogFormat { kPlain, kJsonl };

/// The level ACS_LOG_LEVEL selects: ParseLogLevel on non-null `value`,
/// falling back to `fallback` when the value is null or unknown.  Pure so
/// tests can cover the env-init path without mutating the environment.
LogLevel LogLevelFromEnvValue(const char* value, LogLevel fallback);

/// Process-wide logger.  Thread-safe: sink writes are serialised under a
/// mutex (runner::RunGrid workers log concurrently), and the level is
/// atomic so the ACS_LOG fast path stays lock-free.
class Logger {
 public:
  static Logger& Instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Redirects output (default: std::clog).  Pass nullptr to restore.
  void set_stream(std::ostream* stream);

  /// Opt-in decorations (see file comment); all default off, keeping the
  /// plain format byte-stable.
  void set_format(LogFormat format);
  LogFormat format() const;
  void set_timestamps(bool enabled);
  void set_thread_ids(bool enabled);

  bool Enabled(LogLevel level) const { return level >= this->level(); }
  void Write(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  mutable std::mutex mutex_;  // guards stream/format state and sink writes
  std::ostream* stream_;
  LogFormat format_ = LogFormat::kPlain;
  bool timestamps_ = false;
  bool thread_ids_ = false;
};

/// Stream-style log statement builder; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream buffer_;
};

}  // namespace dvs::util

#define ACS_LOG(level)                                              \
  if (!::dvs::util::Logger::Instance().Enabled(level)) {            \
  } else                                                            \
    ::dvs::util::LogLine(level)

#define ACS_LOG_TRACE ACS_LOG(::dvs::util::LogLevel::kTrace)
#define ACS_LOG_DEBUG ACS_LOG(::dvs::util::LogLevel::kDebug)
#define ACS_LOG_INFO ACS_LOG(::dvs::util::LogLevel::kInfo)
#define ACS_LOG_WARN ACS_LOG(::dvs::util::LogLevel::kWarn)
#define ACS_LOG_ERROR ACS_LOG(::dvs::util::LogLevel::kError)

#endif  // ACS_UTIL_LOGGING_H
