#include "util/error.h"

#include <sstream>

namespace dvs::util {
namespace {

std::string Decorate(const char* file, int line, const std::string& message) {
  std::ostringstream out;
  out << file << ':' << line << ": " << message;
  return out.str();
}

}  // namespace

void ThrowInvalidArgument(const char* file, int line,
                          const std::string& message) {
  throw InvalidArgumentError(Decorate(file, line, message));
}

void ThrowInternal(const char* file, int line, const std::string& message) {
  throw InternalError(Decorate(file, line, message));
}

}  // namespace dvs::util
