// Minimal streaming JSON writer and recursive-descent parser (no external
// deps).
//
// The writer serves the machine-readable bench reports (--bench-json) and
// the observability artifacts (run manifests, Chrome traces): a small tree
// of objects/arrays with string/number/bool leaves.  It tracks nesting and
// comma placement; keys and string values are escaped per RFC 8259
// (quotes, backslashes, control characters).  Numbers use %.17g, enough
// digits to round-trip an IEEE double; non-finite doubles (NaN, +/-Inf)
// have no JSON spelling and serialise as null — bare `nan`/`inf` tokens
// would make the whole document unparseable.
//
// The parser (ParseJson -> JsonValue) reads the same dialect back for the
// telemetry merge paths (tools/merge_results combining per-shard manifests
// and traces) and for tests validating emitted documents.  It is strict
// RFC 8259 minus one concession: \uXXXX escapes decode the code unit into
// UTF-8 without surrogate-pair combining, which the repository's writers
// never emit.
#ifndef ACS_UTIL_JSON_H
#define ACS_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dvs::util {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Key of the next value; must be inside an object.
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(const char* value);
  /// Finite doubles as %.17g; NaN and +/-Inf as null (JSON has no
  /// non-finite number tokens).
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// The document so far.  Callers are responsible for having closed every
  /// container they opened.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true while the next element needs a
  /// leading comma.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// JSON string escaping (adds no surrounding quotes).
std::string JsonEscape(const std::string& text);

/// One parsed JSON value.  Object member order is preserved (so merged
/// documents re-serialise deterministically); duplicate keys keep every
/// occurrence, with Find returning the first.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  /// First member named `key`, or nullptr (also when not an object).
  const JsonValue* Find(const std::string& key) const;

  /// Find + type/presence checks; throws util::Error naming the key when it
  /// is missing or of the wrong kind.
  const JsonValue& At(const std::string& key) const;
  const std::string& StringAt(const std::string& key) const;
  double NumberAt(const std::string& key) const;
};

/// Parses one JSON document (the whole text; trailing non-whitespace is an
/// error).  Throws util::Error with a byte offset on malformed input.
JsonValue ParseJson(const std::string& text);

}  // namespace dvs::util

#endif  // ACS_UTIL_JSON_H
