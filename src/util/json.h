// Minimal streaming JSON writer (no parsing, no external deps).
//
// Serves the machine-readable bench reports (--bench-json): benches emit a
// small tree of objects/arrays with string/number/bool leaves.  The writer
// tracks nesting and comma placement; keys and string values are escaped
// per RFC 8259 (quotes, backslashes, control characters).  Numbers use
// %.17g, enough digits to round-trip an IEEE double.
#ifndef ACS_UTIL_JSON_H
#define ACS_UTIL_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace dvs::util {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Key of the next value; must be inside an object.
  JsonWriter& Key(const std::string& key);

  JsonWriter& Value(const std::string& value);
  JsonWriter& Value(const char* value);
  JsonWriter& Value(double value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(bool value);

  /// The document so far.  Callers are responsible for having closed every
  /// container they opened.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true while the next element needs a
  /// leading comma.
  std::vector<bool> needs_comma_;
  bool pending_key_ = false;
};

/// JSON string escaping (adds no surrounding quotes).
std::string JsonEscape(const std::string& text);

}  // namespace dvs::util

#endif  // ACS_UTIL_JSON_H
