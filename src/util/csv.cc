#include "util/csv.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace dvs::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ACS_REQUIRE(!header_.empty(), "CSV table needs at least one column");
}

CsvTable& CsvTable::NewRow() {
  if (!rows_.empty()) {
    CheckRowWidth();
  }
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

CsvTable& CsvTable::Add(std::string value) {
  ACS_REQUIRE(!rows_.empty(), "call NewRow() before Add()");
  ACS_REQUIRE(rows_.back().size() < header_.size(),
              "row has more cells than the header has columns");
  rows_.back().push_back(std::move(value));
  return *this;
}

CsvTable& CsvTable::Add(const char* value) { return Add(std::string(value)); }

CsvTable& CsvTable::Add(double value, int decimals) {
  return Add(FormatDouble(value, decimals));
}

CsvTable& CsvTable::Add(std::int64_t value) {
  return Add(std::to_string(value));
}

CsvTable& CsvTable::Add(int value) { return Add(std::to_string(value)); }

CsvTable& CsvTable::Add(std::size_t value) { return Add(std::to_string(value)); }

void CsvTable::CheckRowWidth() const {
  ACS_CHECK(rows_.back().size() == header_.size(),
            "CSV row width does not match header width");
}

std::string CsvTable::ToString() const {
  std::ostringstream out;
  Write(out);
  return out.str();
}

std::ostream& CsvTable::Write(std::ostream& out) const {
  if (!rows_.empty()) {
    CheckRowWidth();
  }
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i > 0) out << ',';
    out << CsvEscape(header_[i]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << CsvEscape(row[i]);
    }
    out << '\n';
  }
  return out;
}

void CsvTable::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw Error("cannot open CSV output file: " + path);
  }
  Write(file);
  if (!file) {
    throw Error("failed writing CSV output file: " + path);
  }
}

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace dvs::util
