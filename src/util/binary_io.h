// Explicit little-endian binary serialization primitives.
//
// The persistent solve cache (core/solve_store.h) stores solver outputs
// whose whole value is bit-exactness, so its on-disk format is defined at
// the byte level rather than via in-memory struct layout: fixed-width
// little-endian integers and IEEE-754 doubles written through their
// std::memcpy'd bit patterns.  A file written on any supported platform
// reads back bit-identically on any other, and no padding, endianness or
// struct-layout assumption ever leaks into the format.
//
// BinaryReader is bounds-checked: every primitive throws util::Error on
// truncation instead of reading past the buffer, so a corrupted or
// truncated cache file degrades to a rejected entry, never to undefined
// behaviour.
#ifndef ACS_UTIL_BINARY_IO_H
#define ACS_UTIL_BINARY_IO_H

#include <cstdint>
#include <string>
#include <vector>

namespace dvs::util {

class BinaryWriter {
 public:
  void U8(std::uint8_t value);
  void U32(std::uint32_t value);
  void U64(std::uint64_t value);
  void I64(std::int64_t value);
  /// Exact bit pattern (NaN payloads and signed zeros round-trip).
  void F64(double value);
  /// Length-prefixed (U64) raw bytes.
  void Str(const std::string& value);
  void VecF64(const std::vector<double>& values);
  void VecVecF64(const std::vector<std::vector<double>>& values);
  /// Raw bytes, no length prefix (composing nested payloads).
  void Raw(const std::string& bytes);

  const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

class BinaryReader {
 public:
  /// Non-owning view; `data` must outlive the reader.
  BinaryReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit BinaryReader(const std::string& data)
      : BinaryReader(data.data(), data.size()) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  double F64();
  std::string Str();
  std::vector<double> VecF64();
  std::vector<std::vector<double>> VecVecF64();

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  /// Advances past `n` bytes, throwing util::Error on truncation.
  const char* Take(std::size_t n);

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// FNV-1a over a byte string — the solve store's payload checksum (same
/// function family as core::SubsetKey and PlanningPoint::Fingerprint).
std::uint64_t Fnv1a(const std::string& bytes);

}  // namespace dvs::util

#endif  // ACS_UTIL_BINARY_IO_H
