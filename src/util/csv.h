// CSV emission for experiment results.
//
// CsvTable accumulates typed rows in memory and renders RFC-4180-style CSV
// (quoting only when needed).  Benches write one table per figure/table of
// the paper so results can be re-plotted externally.
#ifndef ACS_UTIL_CSV_H
#define ACS_UTIL_CSV_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dvs::util {

/// A single CSV cell; stored as text with type-aware formatting helpers.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Starts a new row; subsequent Add* calls fill it left to right.
  CsvTable& NewRow();
  CsvTable& Add(std::string value);
  CsvTable& Add(const char* value);
  CsvTable& Add(double value, int decimals = 6);
  CsvTable& Add(std::int64_t value);
  CsvTable& Add(int value);
  CsvTable& Add(std::size_t value);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the full table (header + rows) as CSV text.
  std::string ToString() const;

  /// Writes CSV to a stream; returns the stream for chaining.
  std::ostream& Write(std::ostream& out) const;

  /// Writes CSV to a file; throws util::Error on I/O failure.
  void WriteFile(const std::string& path) const;

 private:
  void CheckRowWidth() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes one CSV field per RFC 4180 (quotes when it contains , " or \n).
std::string CsvEscape(const std::string& field);

}  // namespace dvs::util

#endif  // ACS_UTIL_CSV_H
