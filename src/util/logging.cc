#include "util/logging.h"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <thread>

#include "util/error.h"
#include "util/json.h"

namespace dvs::util {
namespace {

/// ISO-8601 UTC second resolution, e.g. "2026-02-14T09:31:07Z".
std::string Iso8601Now() {
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buffer[24];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buffer;
}

std::string ThreadIdString() {
  std::ostringstream out;
  out << std::this_thread::get_id();
  return out.str();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel ParseLogLevel(const std::string& name) {
  for (LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) {
      return level;
    }
  }
  throw InvalidArgumentError("unknown log level: " + name);
}

LogLevel LogLevelFromEnvValue(const char* value, LogLevel fallback) {
  if (value == nullptr) {
    return fallback;
  }
  try {
    return ParseLogLevel(value);
  } catch (const InvalidArgumentError&) {
    // An env typo must not abort the program; keep the compiled default.
    return fallback;
  }
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : stream_(&std::clog) {
  level_.store(
      LogLevelFromEnvValue(std::getenv("ACS_LOG_LEVEL"), LogLevel::kWarn),
      std::memory_order_relaxed);
}

void Logger::set_stream(std::ostream* stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream != nullptr ? stream : &std::clog;
}

void Logger::set_format(LogFormat format) {
  std::lock_guard<std::mutex> lock(mutex_);
  format_ = format;
}

LogFormat Logger::format() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return format_;
}

void Logger::set_timestamps(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  timestamps_ = enabled;
}

void Logger::set_thread_ids(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_ids_ = enabled;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (!Enabled(level)) {
    return;
  }
  // One formatted line per lock hold: concurrent workers' lines interleave
  // whole, never mid-line.
  std::lock_guard<std::mutex> lock(mutex_);
  if (format_ == LogFormat::kJsonl) {
    (*stream_) << '{';
    if (timestamps_) {
      (*stream_) << "\"ts\":\"" << Iso8601Now() << "\",";
    }
    (*stream_) << "\"level\":\"" << LogLevelName(level) << '"';
    if (thread_ids_) {
      (*stream_) << ",\"tid\":\"" << ThreadIdString() << '"';
    }
    (*stream_) << ",\"msg\":\"" << JsonEscape(message) << "\"}\n";
    return;
  }
  // Plain: decorations prefix the historical "[level] message" line, which
  // stays byte-identical when both are off (the default).
  if (timestamps_) {
    (*stream_) << Iso8601Now() << ' ';
  }
  (*stream_) << '[' << LogLevelName(level) << ']';
  if (thread_ids_) {
    (*stream_) << " [tid " << ThreadIdString() << ']';
  }
  (*stream_) << ' ' << message << '\n';
}

LogLine::~LogLine() { Logger::Instance().Write(level_, buffer_.str()); }

}  // namespace dvs::util
