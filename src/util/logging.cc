#include "util/logging.h"

#include <iostream>

#include "util/error.h"

namespace dvs::util {

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

LogLevel ParseLogLevel(const std::string& name) {
  for (LogLevel level :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) {
      return level;
    }
  }
  throw InvalidArgumentError("unknown log level: " + name);
}

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() : stream_(&std::clog) {}

void Logger::set_stream(std::ostream* stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  stream_ = stream != nullptr ? stream : &std::clog;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (!Enabled(level)) {
    return;
  }
  // One formatted line per lock hold: concurrent workers' lines interleave
  // whole, never mid-line.
  std::lock_guard<std::mutex> lock(mutex_);
  (*stream_) << '[' << LogLevelName(level) << "] " << message << '\n';
}

LogLine::~LogLine() { Logger::Instance().Write(level_, buffer_.str()); }

}  // namespace dvs::util
