#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ACS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace dvs::util::simd {
namespace {

// -1 = unresolved; otherwise the Level value.
std::atomic<int> g_level{-1};

Level ResolveInitial() {
  const char* env = std::getenv("ACS_SIMD");
  if (env != nullptr) {
    Level parsed;
    if (ParseLevel(env, &parsed)) {
      return parsed;
    }
  }
  return Detect();
}

Level Clamp(Level level) { return std::min(level, Detect()); }

// ---- Scalar kernels --------------------------------------------------------
// These replicate the historical loops exactly: same operations, same
// accumulation order, so the scalar dispatch level is bit-identical to the
// pre-SIMD tree.

double DotScalar(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

double SumScalar(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i];
  }
  return acc;
}

double NormInfScalar(const double* a, std::size_t n) {
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    best = std::max(best, std::fabs(a[i]));
  }
  return best;
}

void AxpyScalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void AddScalarImpl(const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += x[i];
  }
}

void ScaleScalar(double alpha, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] *= alpha;
  }
}

void SubtractScalar(const double* a, const double* b, double* out,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

void AddScaledScalar(const double* a, double alpha, const double* b,
                     double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] + alpha * b[i];
  }
}

void ClampBoxScalar(const double* lo, const double* hi, double* x,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::min(std::max(x[i], lo[i]), hi[i]);
  }
}

double StepAndSlopeScalar(const double* x, const double* grad,
                          const double* trial, double* direction,
                          std::size_t n) {
  double slope = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    direction[i] = trial[i] - x[i];
    slope += grad[i] * direction[i];
  }
  return slope;
}

void SpectralPairScalar(double lambda, const double* direction,
                        const double* grad, const double* trial_grad,
                        std::size_t n, double* sts, double* sty) {
  double acc_ss = 0.0;
  double acc_sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double s = lambda * direction[i];
    const double y = trial_grad[i] - grad[i];
    acc_ss += s * s;
    acc_sy += s * y;
  }
  *sts = acc_ss;
  *sty = acc_sy;
}

double BoxCriterionScalar(const double* x, const double* grad,
                          const double* lo, const double* hi,
                          const double* mask, std::size_t n,
                          double threshold) {
  double criterion = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] == 0.0) {
      continue;
    }
    const double projected = std::min(std::max(x[i] - grad[i], lo[i]), hi[i]);
    criterion = std::max(criterion, std::fabs(projected - x[i]));
    if (criterion > threshold) {
      return criterion;
    }
  }
  return criterion;
}

void PackedRows3Scalar(const double* constant, const double* coeff3,
                       const std::int32_t* idx3, const double* x, double* out,
                       std::size_t rows) {
  const double* c0 = coeff3;
  const double* c1 = coeff3 + rows;
  const double* c2 = coeff3 + 2 * rows;
  const std::int32_t* i0 = idx3;
  const std::int32_t* i1 = idx3 + rows;
  const std::int32_t* i2 = idx3 + 2 * rows;
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = constant[r];
    acc += c0[r] * x[i0[r]];
    acc += c1[r] * x[i1[r]];
    acc += c2[r] * x[i2[r]];
    out[r] = acc;
  }
}

// ---- AVX2 kernels ----------------------------------------------------------
// Per-function target attributes keep the rest of the binary plain x86-64.
// No FMA: explicit mul+add only, so elementwise kernels are bit-identical
// to scalar; only the reductions change association (four lanes folded in
// lane order, then the tail in index order).

#if ACS_SIMD_X86

__attribute__((target("avx2"))) inline double HsumOrdered(__m256d v) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, v);
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
}

__attribute__((target("avx2"))) double DotAvx2(const double* a,
                                               const double* b,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d va = _mm256_loadu_pd(a + i);
    const __m256d vb = _mm256_loadu_pd(b + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
  }
  double total = HsumOrdered(acc);
  for (; i < n; ++i) {
    total += a[i] * b[i];
  }
  return total;
}

__attribute__((target("avx2"))) double SumAvx2(const double* a,
                                               std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(a + i));
  }
  double total = HsumOrdered(acc);
  for (; i < n; ++i) {
    total += a[i];
  }
  return total;
}

__attribute__((target("avx2"))) double NormInfAvx2(const double* a,
                                                   std::size_t n) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  __m256d best = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    best = _mm256_max_pd(best,
                         _mm256_and_pd(_mm256_loadu_pd(a + i), abs_mask));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, best);
  double out = std::max(std::max(lane[0], lane[1]),
                        std::max(lane[2], lane[3]));
  for (; i < n; ++i) {
    out = std::max(out, std::fabs(a[i]));
  }
  return out;
}

__attribute__((target("avx2"))) void AxpyAvx2(double alpha, const double* x,
                                              double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

__attribute__((target("avx2"))) void AddAvx2(const double* x, double* y,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), _mm256_loadu_pd(x + i)));
  }
  for (; i < n; ++i) {
    y[i] += x[i];
  }
}

__attribute__((target("avx2"))) void ScaleAvx2(double alpha, double* x,
                                               std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) {
    x[i] *= alpha;
  }
}

__attribute__((target("avx2"))) void SubtractAvx2(const double* a,
                                                  const double* b, double* out,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) {
    out[i] = a[i] - b[i];
  }
}

__attribute__((target("avx2"))) void AddScaledAvx2(const double* a,
                                                   double alpha,
                                                   const double* b,
                                                   double* out,
                                                   std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(out + i, _mm256_add_pd(_mm256_loadu_pd(a + i), prod));
  }
  for (; i < n; ++i) {
    out[i] = a[i] + alpha * b[i];
  }
}

__attribute__((target("avx2"))) void ClampBoxAvx2(const double* lo,
                                                  const double* hi, double* x,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d clamped =
        _mm256_min_pd(_mm256_max_pd(_mm256_loadu_pd(x + i),
                                    _mm256_loadu_pd(lo + i)),
                      _mm256_loadu_pd(hi + i));
    _mm256_storeu_pd(x + i, clamped);
  }
  for (; i < n; ++i) {
    x[i] = std::min(std::max(x[i], lo[i]), hi[i]);
  }
}

__attribute__((target("avx2"))) double StepAndSlopeAvx2(const double* x,
                                                        const double* grad,
                                                        const double* trial,
                                                        double* direction,
                                                        std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(trial + i), _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(direction + i, d);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(grad + i), d));
  }
  double slope = HsumOrdered(acc);
  for (; i < n; ++i) {
    direction[i] = trial[i] - x[i];
    slope += grad[i] * direction[i];
  }
  return slope;
}

__attribute__((target("avx2"))) void SpectralPairAvx2(
    double lambda, const double* direction, const double* grad,
    const double* trial_grad, std::size_t n, double* sts, double* sty) {
  const __m256d vl = _mm256_set1_pd(lambda);
  __m256d acc_ss = _mm256_setzero_pd();
  __m256d acc_sy = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_mul_pd(vl, _mm256_loadu_pd(direction + i));
    const __m256d y = _mm256_sub_pd(_mm256_loadu_pd(trial_grad + i),
                                    _mm256_loadu_pd(grad + i));
    acc_ss = _mm256_add_pd(acc_ss, _mm256_mul_pd(s, s));
    acc_sy = _mm256_add_pd(acc_sy, _mm256_mul_pd(s, y));
  }
  double out_ss = HsumOrdered(acc_ss);
  double out_sy = HsumOrdered(acc_sy);
  for (; i < n; ++i) {
    const double s = lambda * direction[i];
    const double y = trial_grad[i] - grad[i];
    out_ss += s * s;
    out_sy += s * y;
  }
  *sts = out_ss;
  *sty = out_sy;
}

__attribute__((target("avx2"))) double BoxCriterionAvx2(
    const double* x, const double* grad, const double* lo, const double* hi,
    const double* mask, std::size_t n, double threshold) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d vthreshold = _mm256_set1_pd(threshold);
  __m256d best = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d probe = _mm256_sub_pd(vx, _mm256_loadu_pd(grad + i));
    const __m256d projected =
        _mm256_min_pd(_mm256_max_pd(probe, _mm256_loadu_pd(lo + i)),
                      _mm256_loadu_pd(hi + i));
    const __m256d disp =
        _mm256_mul_pd(_mm256_and_pd(_mm256_sub_pd(projected, vx), abs_mask),
                      _mm256_loadu_pd(mask + i));
    best = _mm256_max_pd(best, disp);
    if (_mm256_movemask_pd(_mm256_cmp_pd(best, vthreshold, _CMP_GT_OQ)) !=
        0) {
      // Decision fixed ("not converged"): fold and return the lower bound.
      alignas(32) double lane[4];
      _mm256_store_pd(lane, best);
      return std::max(std::max(lane[0], lane[1]),
                      std::max(lane[2], lane[3]));
    }
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, best);
  double criterion =
      std::max(std::max(lane[0], lane[1]), std::max(lane[2], lane[3]));
  for (; i < n; ++i) {
    if (mask[i] == 0.0) {
      continue;
    }
    const double projected = std::min(std::max(x[i] - grad[i], lo[i]), hi[i]);
    criterion = std::max(criterion, std::fabs(projected - x[i]));
    if (criterion > threshold) {
      return criterion;
    }
  }
  return criterion;
}

__attribute__((target("avx2"))) void PackedRows3Avx2(
    const double* constant, const double* coeff3, const std::int32_t* idx3,
    const double* x, double* out, std::size_t rows) {
  const double* c0 = coeff3;
  const double* c1 = coeff3 + rows;
  const double* c2 = coeff3 + 2 * rows;
  const std::int32_t* i0 = idx3;
  const std::int32_t* i1 = idx3 + rows;
  const std::int32_t* i2 = idx3 + 2 * rows;
  std::size_t r = 0;
  for (; r + 4 <= rows; r += 4) {
    __m256d acc = _mm256_loadu_pd(constant + r);
    const __m256d g0 = _mm256_i32gather_pd(
        x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(i0 + r)), 8);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(c0 + r), g0));
    const __m256d g1 = _mm256_i32gather_pd(
        x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(i1 + r)), 8);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(c1 + r), g1));
    const __m256d g2 = _mm256_i32gather_pd(
        x, _mm_loadu_si128(reinterpret_cast<const __m128i*>(i2 + r)), 8);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(c2 + r), g2));
    _mm256_storeu_pd(out + r, acc);
  }
  for (; r < rows; ++r) {
    double acc = constant[r];
    acc += c0[r] * x[i0[r]];
    acc += c1[r] * x[i1[r]];
    acc += c2[r] * x[i2[r]];
    out[r] = acc;
  }
}

#endif  // ACS_SIMD_X86

bool Avx2Active() {
#if ACS_SIMD_X86
  return Active() == Level::kAvx2;
#else
  return false;
#endif
}

}  // namespace

Level Detect() {
#if ACS_SIMD_X86
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  if (has_avx2) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level Active() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    const Level resolved = ResolveInitial();
    g_level.store(static_cast<int>(resolved), std::memory_order_relaxed);
    return resolved;
  }
  return static_cast<Level>(level);
}

void SetLevel(Level level) {
  g_level.store(static_cast<int>(Clamp(level)), std::memory_order_relaxed);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseLevel(const std::string& text, Level* out) {
  if (text == "scalar") {
    *out = Level::kScalar;
    return true;
  }
  if (text == "avx2") {
    *out = Clamp(Level::kAvx2);
    return true;
  }
  if (text == "auto") {
    *out = Detect();
    return true;
  }
  return false;
}

double Dot(const double* a, const double* b, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    return DotAvx2(a, b, n);
  }
#endif
  return DotScalar(a, b, n);
}

double Sum(const double* a, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    return SumAvx2(a, n);
  }
#endif
  return SumScalar(a, n);
}

double NormInf(const double* a, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    return NormInfAvx2(a, n);
  }
#endif
  return NormInfScalar(a, n);
}

void Axpy(double alpha, const double* x, double* y, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    AxpyAvx2(alpha, x, y, n);
    return;
  }
#endif
  AxpyScalar(alpha, x, y, n);
}

void Add(const double* x, double* y, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    AddAvx2(x, y, n);
    return;
  }
#endif
  AddScalarImpl(x, y, n);
}

void Scale(double alpha, double* x, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    ScaleAvx2(alpha, x, n);
    return;
  }
#endif
  ScaleScalar(alpha, x, n);
}

void Subtract(const double* a, const double* b, double* out, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    SubtractAvx2(a, b, out, n);
    return;
  }
#endif
  SubtractScalar(a, b, out, n);
}

void AddScaled(const double* a, double alpha, const double* b, double* out,
               std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    AddScaledAvx2(a, alpha, b, out, n);
    return;
  }
#endif
  AddScaledScalar(a, alpha, b, out, n);
}

void ClampBox(const double* lo, const double* hi, double* x, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    ClampBoxAvx2(lo, hi, x, n);
    return;
  }
#endif
  ClampBoxScalar(lo, hi, x, n);
}

double StepAndSlope(const double* x, const double* grad, const double* trial,
                    double* direction, std::size_t n) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    return StepAndSlopeAvx2(x, grad, trial, direction, n);
  }
#endif
  return StepAndSlopeScalar(x, grad, trial, direction, n);
}

void SpectralPair(double lambda, const double* direction, const double* grad,
                  const double* trial_grad, std::size_t n, double* sts,
                  double* sty) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    SpectralPairAvx2(lambda, direction, grad, trial_grad, n, sts, sty);
    return;
  }
#endif
  SpectralPairScalar(lambda, direction, grad, trial_grad, n, sts, sty);
}

double BoxCriterion(const double* x, const double* grad, const double* lo,
                    const double* hi, const double* mask, std::size_t n,
                    double threshold) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    return BoxCriterionAvx2(x, grad, lo, hi, mask, n, threshold);
  }
#endif
  return BoxCriterionScalar(x, grad, lo, hi, mask, n, threshold);
}

void PackedRows3(const double* constant, const double* coeff3,
                 const std::int32_t* idx3, const double* x, double* out,
                 std::size_t rows) {
#if ACS_SIMD_X86
  if (Avx2Active()) {
    PackedRows3Avx2(constant, coeff3, idx3, x, out, rows);
    return;
  }
#endif
  PackedRows3Scalar(constant, coeff3, idx3, x, out, rows);
}

}  // namespace dvs::util::simd
