// Generic name -> strategy registry.
//
// core::MethodRegistry and mp::PartitionerRegistry grew the same ~80 lines
// of machinery independently (ordered entries, duplicate rejection,
// unknown-name errors listing the registered names); this template is that
// machinery once.  The concrete registries stay as thin subclasses so their
// public APIs — and their error-message wording — are unchanged.
//
// Contract (same as both originals): populate with Register() before
// sharing across threads; lookups on a fully built registry are const and
// thread-safe.
#ifndef ACS_UTIL_NAMED_REGISTRY_H
#define ACS_UTIL_NAMED_REGISTRY_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

namespace dvs::util {

/// `noun` names one entry in Register() errors ("method"), `unknown_noun`
/// in Get() errors ("schedule method"), `plural` labels the recovery list
/// ("methods").
template <typename T>
class NamedRegistry {
 public:
  NamedRegistry(std::string noun, std::string unknown_noun, std::string plural)
      : noun_(std::move(noun)),
        unknown_noun_(std::move(unknown_noun)),
        plural_(std::move(plural)) {}

  NamedRegistry(NamedRegistry&&) = default;
  NamedRegistry& operator=(NamedRegistry&&) = default;

  /// Registers an item; throws InvalidArgumentError on duplicate or empty
  /// names and null items.
  void Register(std::string name, std::string description,
                std::unique_ptr<const T> item) {
    ACS_REQUIRE(!name.empty(), noun_ + " name must be non-empty");
    ACS_REQUIRE(item != nullptr, noun_ + " must be non-null");
    ACS_REQUIRE(!Contains(name), "duplicate " + noun_ + " name: " + name);
    entries_.push_back(
        Entry{std::move(name), std::move(description), std::move(item)});
  }

  bool Contains(const std::string& name) const {
    for (const Entry& entry : entries_) {
      if (entry.name == name) {
        return true;
      }
    }
    return false;
  }

  /// Throws InvalidArgumentError naming the unknown entry and listing the
  /// registered ones.
  const T& Get(const std::string& name) const { return *Find(name).item; }

  const std::string& Description(const std::string& name) const {
    return Find(name).description;
  }

  /// Registered names, in registration order.
  std::vector<std::string> Names() const {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      names.push_back(entry.name);
    }
    return names;
  }

 private:
  struct Entry {
    std::string name;
    std::string description;
    std::unique_ptr<const T> item;
  };

  const Entry& Find(const std::string& name) const {
    for (const Entry& entry : entries_) {
      if (entry.name == name) {
        return entry;
      }
    }
    throw InvalidArgumentError("unknown " + unknown_noun_ + " \"" + name +
                               "\"; registered " + plural_ + ": " +
                               Join(Names(), ", "));
  }

  std::string noun_;
  std::string unknown_noun_;
  std::string plural_;
  std::vector<Entry> entries_;
};

}  // namespace dvs::util

#endif  // ACS_UTIL_NAMED_REGISTRY_H
