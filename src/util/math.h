// Numeric helpers: exact integer gcd/lcm for hyper-period computation and
// tolerance-based floating-point comparisons used throughout the scheduler.
#ifndef ACS_UTIL_MATH_H
#define ACS_UTIL_MATH_H

#include <cstdint>
#include <vector>

namespace dvs::util {

/// Greatest common divisor of two positive integers.
std::int64_t Gcd(std::int64_t a, std::int64_t b);

/// Least common multiple; throws InvalidArgumentError on overflow or
/// non-positive inputs.
std::int64_t Lcm(std::int64_t a, std::int64_t b);

/// LCM of a list (the hyper-period of a task set); throws on empty input.
std::int64_t LcmAll(const std::vector<std::int64_t>& values);

/// |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
bool AlmostEqual(double a, double b, double abs_tol = 1e-9,
                 double rel_tol = 1e-9);

/// a <= b + tolerance (one-sided comparison for constraint checking).
bool LessOrAlmostEqual(double a, double b, double tol = 1e-9);

/// Clamps `value` into [lo, hi]; requires lo <= hi.
double Clamp(double value, double lo, double hi);

/// `count` evenly spaced samples covering [lo, hi] inclusive; count >= 2.
std::vector<double> Linspace(double lo, double hi, int count);

/// Relative difference |a-b| / max(|a|,|b|,eps) — used in gradient checks.
double RelativeDifference(double a, double b, double eps = 1e-12);

}  // namespace dvs::util

#endif  // ACS_UTIL_MATH_H
