// Runtime-dispatched SIMD kernels for the solver hot loops.
//
// Every kernel has two implementations selected by a process-wide dispatch
// level: a scalar one that replicates the historical loops operation for
// operation (so the scalar level is bit-identical to the pre-SIMD tree and
// keeps the golden CSVs byte-stable), and an AVX2 one compiled with a
// per-function target attribute (no global -mavx2, so the binary still runs
// on plain x86-64; NEON boxes fall back to scalar).  The AVX2 reductions
// (Dot, Sum, StepAndSlope, SpectralPair) accumulate in four lanes and fold
// them in a fixed order — deterministic run to run and thread count to
// thread count, but a different FP association than the scalar loop, which
// is why vector dispatch is an explicit level and not an always-on fast
// path: callers that promise byte-stable output pin the scalar level.
//
// Level resolution: the first Active() call reads ACS_SIMD
// ("scalar" | "avx2" | "auto"); unset or "auto" picks the best level the
// CPU supports.  Requests above hardware support clamp down, never error.
// SetLevel/ScopedLevel re-pin at runtime (tests and benchmarks); the level
// is process-global and read with relaxed atomics — set it before spawning
// worker threads.
#ifndef ACS_UTIL_SIMD_H
#define ACS_UTIL_SIMD_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace dvs::util::simd {

enum class Level : int {
  kScalar = 0,
  kAvx2 = 1,
};

/// Best level this CPU (and build) supports.
Level Detect();

/// The current dispatch level (lazily resolved from ACS_SIMD / Detect()).
Level Active();

/// Pins the dispatch level; requests above Detect() clamp down.
void SetLevel(Level level);

const char* LevelName(Level level);

/// Parses "scalar" / "avx2" / "auto" (case-sensitive).  "auto" resolves to
/// Detect(); an explicit level above hardware support clamps down.  Returns
/// false on any other text.
bool ParseLevel(const std::string& text, Level* out);

/// RAII level pin for tests: forces `level` for the enclosing scope.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : saved_(Active()) { SetLevel(level); }
  ~ScopedLevel() { SetLevel(saved_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  Level saved_;
};

// ---- Kernels ---------------------------------------------------------------
// All kernels tolerate n == 0 and aliasing-free pointers; `out`/`y` may not
// alias the inputs unless stated.  Scalar level accumulates in index order.

/// sum a[i] * b[i].
double Dot(const double* a, const double* b, std::size_t n);

/// sum a[i] (index order at scalar level).
double Sum(const double* a, std::size_t n);

/// max |a[i]| (order-free; identical at every level).
double NormInf(const double* a, std::size_t n);

/// y[i] += alpha * x[i].
void Axpy(double alpha, const double* x, double* y, std::size_t n);

/// y[i] += x[i].
void Add(const double* x, double* y, std::size_t n);

/// x[i] *= alpha.
void Scale(double alpha, double* x, std::size_t n);

/// out[i] = a[i] - b[i].
void Subtract(const double* a, const double* b, double* out, std::size_t n);

/// out[i] = a[i] + alpha * b[i].
void AddScaled(const double* a, double alpha, const double* b, double* out,
               std::size_t n);

/// x[i] = min(max(x[i], lo[i]), hi[i]) — the branchless box clamp.
void ClampBox(const double* lo, const double* hi, double* x, std::size_t n);

/// direction[i] = trial[i] - x[i]; returns sum grad[i] * direction[i]
/// (the SPG fused direction-and-slope pass).
double StepAndSlope(const double* x, const double* grad, const double* trial,
                    double* direction, std::size_t n);

/// Barzilai-Borwein pair: s = lambda * direction, y = trial_grad - grad;
/// *sts = sum s*s, *sty = sum s*y.
void SpectralPair(double lambda, const double* direction, const double* grad,
                  const double* trial_grad, std::size_t n, double* sts,
                  double* sty);

/// Box-coordinate SPG criterion sweep:
///   max over i of |min(max(x[i] - grad[i], lo[i]), hi[i]) - x[i]| * mask[i]
/// where mask[i] is 1.0 for box coordinates and 0.0 for excluded (simplex-
/// owned) ones.  May return early with any sound lower bound once the
/// running max exceeds `threshold` (the caller's converged/not-converged
/// decision is identical either way).
double BoxCriterion(const double* x, const double* grad, const double* lo,
                    const double* hi, const double* mask, std::size_t n,
                    double threshold);

/// Batched 3-term linear rows, slot-major padded layout: slot t of row r is
/// coeff3[t * rows + r] * x[idx3[t * rows + r]]; rows with fewer terms pad
/// with coeff 0 / index 0.  out[r] = constant[r] + slot0 + slot1 + slot2.
/// The AVX2 path gathers four rows per step.
void PackedRows3(const double* constant, const double* coeff3,
                 const std::int32_t* idx3, const double* x, double* out,
                 std::size_t rows);

}  // namespace dvs::util::simd

#endif  // ACS_UTIL_SIMD_H
