#include "util/binary_io.h"

#include <cstring>

#include "util/error.h"

namespace dvs::util {
namespace {

/// Sanity cap on length prefixes: a corrupted length field must fail fast
/// instead of attempting a multi-gigabyte allocation.  Generous next to any
/// real cache payload (the largest vectors are calibration draw matrices,
/// a few MiB).
constexpr std::uint64_t kMaxLength = 1ULL << 32;

}  // namespace

void BinaryWriter::U8(std::uint8_t value) {
  out_.push_back(static_cast<char>(value));
}

void BinaryWriter::U32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void BinaryWriter::U64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void BinaryWriter::I64(std::int64_t value) {
  U64(static_cast<std::uint64_t>(value));
}

void BinaryWriter::F64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 double expected");
  std::memcpy(&bits, &value, sizeof(bits));
  U64(bits);
}

void BinaryWriter::Str(const std::string& value) {
  U64(value.size());
  out_.append(value);
}

void BinaryWriter::VecF64(const std::vector<double>& values) {
  U64(values.size());
  for (double value : values) {
    F64(value);
  }
}

void BinaryWriter::VecVecF64(const std::vector<std::vector<double>>& values) {
  U64(values.size());
  for (const std::vector<double>& row : values) {
    VecF64(row);
  }
}

void BinaryWriter::Raw(const std::string& bytes) { out_.append(bytes); }

const char* BinaryReader::Take(std::size_t n) {
  if (n > size_ - offset_) {
    throw Error("binary payload truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(offset_) + " of " +
                std::to_string(size_));
  }
  const char* at = data_ + offset_;
  offset_ += n;
  return at;
}

std::uint8_t BinaryReader::U8() {
  return static_cast<std::uint8_t>(*Take(1));
}

std::uint32_t BinaryReader::U32() {
  const char* at = Take(4);
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(at[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t BinaryReader::U64() {
  const char* at = Take(8);
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(at[i]))
             << (8 * i);
  }
  return value;
}

std::int64_t BinaryReader::I64() {
  return static_cast<std::int64_t>(U64());
}

double BinaryReader::F64() {
  const std::uint64_t bits = U64();
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string BinaryReader::Str() {
  const std::uint64_t length = U64();
  if (length > kMaxLength) {
    throw Error("binary payload corrupt: string length " +
                std::to_string(length));
  }
  const char* at = Take(static_cast<std::size_t>(length));
  return std::string(at, static_cast<std::size_t>(length));
}

std::vector<double> BinaryReader::VecF64() {
  const std::uint64_t length = U64();
  if (length > kMaxLength / sizeof(double)) {
    throw Error("binary payload corrupt: vector length " +
                std::to_string(length));
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(length));
  for (std::uint64_t i = 0; i < length; ++i) {
    values.push_back(F64());
  }
  return values;
}

std::vector<std::vector<double>> BinaryReader::VecVecF64() {
  const std::uint64_t rows = U64();
  if (rows > kMaxLength / sizeof(double)) {
    throw Error("binary payload corrupt: matrix row count " +
                std::to_string(rows));
  }
  std::vector<std::vector<double>> values;
  values.reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows; ++i) {
    values.push_back(VecF64());
  }
  return values;
}

std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char byte : bytes) {
    hash ^= static_cast<unsigned char>(byte);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace dvs::util
