// Tiny declarative CLI parser for benches and examples.
//
// Supports `--name=value`, `--name value` and boolean `--flag` forms plus an
// auto-generated --help.  Unknown flags are errors: every experiment knob is
// spelled out so runs are self-documenting.
#ifndef ACS_UTIL_CLI_H
#define ACS_UTIL_CLI_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dvs::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers options; `help` appears in --help output.
  void AddFlag(const std::string& name, bool* target, const std::string& help);
  void AddInt(const std::string& name, std::int64_t* target,
              const std::string& help);
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Parses argv.  Returns false when --help was requested (usage already
  /// printed); throws InvalidArgumentError on malformed input.
  bool Parse(int argc, const char* const* argv);

  std::string Usage() const;

  /// The program name given at construction (e.g. "bench_fig6a_random").
  const std::string& program() const { return program_; }

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
  };

  void Register(const std::string& name, Kind kind, void* target,
                const std::string& help, std::string default_text);
  void Assign(const std::string& name, Option& option,
              const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace dvs::util

#endif  // ACS_UTIL_CLI_H
