#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.h"

namespace dvs::util {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  ACS_REQUIRE(!needs_comma_.empty(), "EndObject without open container");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  ACS_REQUIRE(!needs_comma_.empty(), "EndArray without open container");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  ACS_REQUIRE(!needs_comma_.empty(), "Key outside an object");
  if (needs_comma_.back()) {
    out_ += ',';
  }
  needs_comma_.back() = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string(value));
}

JsonWriter& JsonWriter::Value(double value) {
  // %.17g spells NaN/Inf as bare `nan`/`inf` tokens, which no JSON parser
  // accepts — the whole document would be lost to one bad metric.  JSON has
  // no non-finite numbers, so emit null and let readers decide.
  if (!std::isfinite(value)) {
    return Null();
  }
  BeforeValue();
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* value = Find(key);
  ACS_REQUIRE(value != nullptr, "JSON object has no key \"" + key + "\"");
  return *value;
}

const std::string& JsonValue::StringAt(const std::string& key) const {
  const JsonValue& value = At(key);
  ACS_REQUIRE(value.IsString(), "JSON key \"" + key + "\" is not a string");
  return value.string;
}

double JsonValue::NumberAt(const std::string& key) const {
  const JsonValue& value = At(key);
  ACS_REQUIRE(value.IsNumber(), "JSON key \"" + key + "\" is not a number");
  return value.number;
}

namespace {

/// Recursive-descent parser over the whole text; positions are byte
/// offsets for error messages.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    Require(pos_ == text_.size(), "trailing content after JSON document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw Error("JSON parse error at byte " + std::to_string(pos_) + ": " +
                message);
  }

  void Require(bool ok, const char* message) const {
    if (!ok) {
      Fail(message);
    }
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    Require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    Require(pos_ < text_.size() && text_[pos_] == c,
            "unexpected character");
    ++pos_;
  }

  bool Literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    const char c = Peek();
    JsonValue value;
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        value.kind = JsonValue::Kind::kString;
        value.string = ParseString();
        return value;
      case 't':
        Require(Literal("true"), "invalid literal");
        value.kind = JsonValue::Kind::kBool;
        value.bool_value = true;
        return value;
      case 'f':
        Require(Literal("false"), "invalid literal");
        value.kind = JsonValue::Kind::kBool;
        value.bool_value = false;
        return value;
      case 'n':
        Require(Literal("null"), "invalid literal");
        value.kind = JsonValue::Kind::kNull;
        return value;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipWhitespace();
      Require(Peek() == '"', "expected object key");
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      value.object.emplace_back(std::move(key), ParseValue());
      SkipWhitespace();
      const char next = Peek();
      ++pos_;
      if (next == '}') {
        return value;
      }
      Require(next == ',', "expected ',' or '}' in object");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(ParseValue());
      SkipWhitespace();
      const char next = Peek();
      ++pos_;
      if (next == ']') {
        return value;
      }
      Require(next == ',', "expected ',' or ']' in array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      Require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      Require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          Require(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid hex digit in \\u escape");
            }
          }
          // Encode the code unit as UTF-8 (no surrogate combining — the
          // repository's writers only \u-escape control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("unknown escape");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Require(pos_ > begin, "expected a value");
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = begin;
      Fail("malformed number \"" + token + "\"");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace dvs::util
