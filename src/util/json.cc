#include "util/json.h"

#include <cstdio>

#include "util/error.h"

namespace dvs::util {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  ACS_REQUIRE(!needs_comma_.empty(), "EndObject without open container");
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  ACS_REQUIRE(!needs_comma_.empty(), "EndArray without open container");
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  ACS_REQUIRE(!needs_comma_.empty(), "Key outside an object");
  if (needs_comma_.back()) {
    out_ += ',';
  }
  needs_comma_.back() = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* value) {
  return Value(std::string(value));
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out_ += buffer;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

}  // namespace dvs::util
