#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace dvs::util {

std::int64_t Gcd(std::int64_t a, std::int64_t b) {
  ACS_REQUIRE(a > 0 && b > 0, "Gcd requires positive operands");
  while (b != 0) {
    const std::int64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

std::int64_t Lcm(std::int64_t a, std::int64_t b) {
  ACS_REQUIRE(a > 0 && b > 0, "Lcm requires positive operands");
  const std::int64_t g = Gcd(a, b);
  const std::int64_t a_over_g = a / g;
  ACS_REQUIRE(a_over_g <= std::numeric_limits<std::int64_t>::max() / b,
              "Lcm overflow");
  return a_over_g * b;
}

std::int64_t LcmAll(const std::vector<std::int64_t>& values) {
  ACS_REQUIRE(!values.empty(), "LcmAll requires a non-empty list");
  std::int64_t acc = values.front();
  for (std::size_t i = 1; i < values.size(); ++i) {
    acc = Lcm(acc, values[i]);
  }
  return acc;
}

bool AlmostEqual(double a, double b, double abs_tol, double rel_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

bool LessOrAlmostEqual(double a, double b, double tol) {
  return a <= b + tol;
}

double Clamp(double value, double lo, double hi) {
  ACS_REQUIRE(lo <= hi, "Clamp requires lo <= hi");
  return std::min(std::max(value, lo), hi);
}

std::vector<double> Linspace(double lo, double hi, int count) {
  ACS_REQUIRE(count >= 2, "Linspace requires count >= 2");
  std::vector<double> points(static_cast<std::size_t>(count));
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    points[static_cast<std::size_t>(i)] = lo + step * i;
  }
  points.back() = hi;
  return points;
}

double RelativeDifference(double a, double b, double eps) {
  const double scale = std::max({std::fabs(a), std::fabs(b), eps});
  return std::fabs(a - b) / scale;
}

}  // namespace dvs::util
