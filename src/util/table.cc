#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace dvs::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ACS_REQUIRE(!header_.empty(), "table needs at least one column");
}

TextTable& TextTable::AddRow(std::vector<std::string> cells) {
  ACS_REQUIRE(cells.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << PadRight(cells[c], widths[c]);
      out << (c + 1 < cells.size() ? " | " : " |");
    }
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

}  // namespace dvs::util
