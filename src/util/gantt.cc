#include "util/gantt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace dvs::util {

GanttChart::GanttChart(double t_begin, double t_end, int width)
    : t_begin_(t_begin), t_end_(t_end), width_(width) {
  ACS_REQUIRE(t_end > t_begin, "Gantt chart needs a positive time span");
  ACS_REQUIRE(width >= 10, "Gantt chart needs at least 10 columns");
}

GanttRow& GanttChart::AddRow(std::string label) {
  rows_.push_back(GanttRow{std::move(label), {}});
  return rows_.back();
}

int GanttChart::CellOf(double t) const {
  const double frac = (t - t_begin_) / (t_end_ - t_begin_);
  const int cell = static_cast<int>(std::lround(frac * width_));
  return std::clamp(cell, 0, width_);
}

std::string GanttChart::Render(int ticks) const {
  std::size_t label_width = 0;
  for (const auto& row : rows_) {
    label_width = std::max(label_width, row.label.size());
  }

  std::ostringstream out;
  for (const auto& row : rows_) {
    std::string lane(static_cast<std::size_t>(width_), '.');
    for (const auto& bar : row.bars) {
      const int begin = CellOf(bar.begin);
      const int end = std::max(CellOf(bar.end), begin);
      for (int c = begin; c < end; ++c) {
        lane[static_cast<std::size_t>(c)] = bar.fill;
      }
      if (begin == end && begin < width_) {
        // Zero-width bar: mark the instant so it stays visible.
        lane[static_cast<std::size_t>(begin)] = '|';
      }
      if (!bar.annotation.empty()) {
        const int room = end - begin;
        if (room >= static_cast<int>(bar.annotation.size()) + 2) {
          const int at = begin + 1;
          for (std::size_t i = 0; i < bar.annotation.size(); ++i) {
            lane[static_cast<std::size_t>(at) + i] = bar.annotation[i];
          }
        }
      }
    }
    out << PadRight(row.label, label_width) << " |" << lane << "|\n";
  }

  // Time axis.
  out << std::string(label_width, ' ') << " +" << std::string(width_, '-')
      << "+\n";
  std::string axis(static_cast<std::size_t>(width_) + label_width + 3, ' ');
  out << std::string(label_width, ' ') << "  ";
  std::string tick_line(static_cast<std::size_t>(width_) + 1, ' ');
  std::ostringstream labels;
  ticks = std::max(ticks, 2);
  for (int k = 0; k < ticks; ++k) {
    const double t =
        t_begin_ + (t_end_ - t_begin_) * k / static_cast<double>(ticks - 1);
    const int cell = CellOf(t);
    const std::string text = FormatDouble(t, 1);
    int at = std::clamp(cell - static_cast<int>(text.size()) / 2, 0,
                        width_ - static_cast<int>(text.size()) + 1);
    for (std::size_t i = 0; i < text.size(); ++i) {
      const std::size_t pos = static_cast<std::size_t>(at) + i;
      if (pos < tick_line.size()) {
        tick_line[pos] = text[i];
      }
    }
  }
  out << tick_line << '\n';
  return out.str();
}

}  // namespace dvs::util
