#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dvs::util {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> fields;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = text.find(sep, begin);
    if (end == std::string_view::npos) {
      fields.emplace_back(text.substr(begin));
      break;
    }
    fields.emplace_back(text.substr(begin, end - begin));
    begin = end + 1;
  }
  return fields;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(text.front())) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(text.back())) {
    text.remove_suffix(1);
  }
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals) + "%";
}

std::string PadLeft(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) {
    out.insert(out.begin(), width - out.size(), ' ');
  }
  return out;
}

std::string PadRight(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) {
    out.append(width - out.size(), ' ');
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace dvs::util
