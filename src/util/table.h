// ASCII table renderer used by benches to print the paper's tables/series in
// a human-readable layout (the CSV twin of each table is machine-readable).
#ifndef ACS_UTIL_TABLE_H
#define ACS_UTIL_TABLE_H

#include <string>
#include <vector>

namespace dvs::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  TextTable& AddRow(std::vector<std::string> cells);

  /// Renders with column-aligned cells, a header rule and outer padding.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvs::util

#endif  // ACS_UTIL_TABLE_H
