#include "util/cli.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace dvs::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::Register(const std::string& name, Kind kind, void* target,
                         const std::string& help, std::string default_text) {
  ACS_REQUIRE(!name.empty() && name[0] != '-',
              "option names are registered without leading dashes");
  ACS_REQUIRE(options_.find(name) == options_.end(),
              "duplicate option: " + name);
  ACS_REQUIRE(target != nullptr, "option target must not be null");
  options_[name] = Option{kind, target, help, std::move(default_text)};
  order_.push_back(name);
}

void ArgParser::AddFlag(const std::string& name, bool* target,
                        const std::string& help) {
  Register(name, Kind::kFlag, target, help, *target ? "true" : "false");
}

void ArgParser::AddInt(const std::string& name, std::int64_t* target,
                       const std::string& help) {
  Register(name, Kind::kInt, target, help, std::to_string(*target));
}

void ArgParser::AddDouble(const std::string& name, double* target,
                          const std::string& help) {
  Register(name, Kind::kDouble, target, help, FormatDouble(*target, 4));
}

void ArgParser::AddString(const std::string& name, std::string* target,
                          const std::string& help) {
  Register(name, Kind::kString, target, help,
           target->empty() ? "\"\"" : *target);
}

void ArgParser::Assign(const std::string& name, Option& option,
                       const std::string& value) {
  switch (option.kind) {
    case Kind::kFlag: {
      const std::string lower = ToLower(value);
      if (lower == "true" || lower == "1" || lower == "yes") {
        *static_cast<bool*>(option.target) = true;
      } else if (lower == "false" || lower == "0" || lower == "no") {
        *static_cast<bool*>(option.target) = false;
      } else {
        throw InvalidArgumentError("bad boolean for --" + name + ": " + value);
      }
      return;
    }
    case Kind::kInt: {
      char* end = nullptr;
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        throw InvalidArgumentError("bad integer for --" + name + ": " + value);
      }
      *static_cast<std::int64_t*>(option.target) = parsed;
      return;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        throw InvalidArgumentError("bad number for --" + name + ": " + value);
      }
      *static_cast<double*>(option.target) = parsed;
      return;
    }
    case Kind::kString:
      *static_cast<std::string*>(option.target) = value;
      return;
  }
}

bool ArgParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::cout << Usage();
      return false;
    }
    if (!StartsWith(token, "--")) {
      throw InvalidArgumentError("unexpected positional argument: " + token);
    }
    token.erase(0, 2);
    std::string name = token;
    std::optional<std::string> value;
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      value = token.substr(eq + 1);
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw InvalidArgumentError("unknown option --" + name + "\n" + Usage());
    }
    Option& option = it->second;
    if (!value.has_value()) {
      if (option.kind == Kind::kFlag) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          throw InvalidArgumentError("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    Assign(name, option, *value);
  }
  return true;
}

std::string ArgParser::Usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const std::string& name : order_) {
    const Option& option = options_.at(name);
    out << "  --" << PadRight(name, 24) << option.help
        << " (default: " << option.default_text << ")\n";
  }
  out << "  --" << PadRight("help", 24) << "show this message\n";
  return out.str();
}

}  // namespace dvs::util
