// Small string helpers shared by the CSV writer, CLI parser and renderers.
#ifndef ACS_UTIL_STRINGS_H
#define ACS_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace dvs::util {

/// Splits `text` at every occurrence of `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style double formatting with a fixed number of decimals.
std::string FormatDouble(double value, int decimals);

/// Formats `value` as a percentage ("12.3%") with the given decimals.
std::string FormatPercent(double fraction, int decimals = 1);

/// Left/right-pads `text` with spaces to at least `width` characters.
std::string PadLeft(std::string_view text, std::size_t width);
std::string PadRight(std::string_view text, std::size_t width);

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view text);

}  // namespace dvs::util

#endif  // ACS_UTIL_STRINGS_H
