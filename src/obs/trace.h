// Hierarchical phase-span tracing with Chrome trace_event export.
//
// A TraceRecorder collects RAII Span timings into per-thread buffers:
// each thread registers its buffer once (mutex held only for that
// registration) and appends events lock-free afterwards, so tracing a
// multi-thread grid run costs two steady_clock reads plus a vector push
// per span.  When no recorder is installed a Span constructor is a single
// relaxed atomic load — the near-zero off path the golden-bytes tests and
// the release-perf-gate overhead assertion pin down.
//
// Span nesting follows the call stack (grid -> cell -> solve -> alm /
// calibrate / warm-link / simulate), which the Chrome trace_event "X"
// complete-event format reconstructs from timestamps alone: the export
// (WriteChromeTrace) loads directly into chrome://tracing or Perfetto as a
// per-thread flamegraph.  Spans carry string key/value args (cache hit or
// miss, SIMD dispatch level, cell coordinates) rendered into the event's
// "args" object.
//
// MergeChromeTraces recombines per-shard trace files (tools/merge_results)
// into one document, assigning each shard its own pid so a sharded run
// views as one process group per shard.
#ifndef ACS_OBS_TRACE_H
#define ACS_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dvs::obs {

/// One completed span ("X" complete event in the Chrome trace format).
struct TraceEvent {
  const char* name = "";      // static-storage span name
  const char* category = "";  // static-storage category
  double ts_us = 0.0;         // start, µs since the recorder epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;      // registration-order thread index
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The installed recorder, or nullptr.  A relaxed atomic so the Span
  /// off path never fences; install before spawning workers.
  static TraceRecorder* Active();
  static void Install(TraceRecorder* recorder);

  /// Microseconds since this recorder's construction.
  double NowUs() const;

  /// Appends to the calling thread's buffer (registers it on first use).
  void Append(TraceEvent event);

  /// Every recorded event, thread buffers concatenated in registration
  /// order.  Call after the writing threads have joined.
  std::vector<TraceEvent> Events() const;

  std::size_t event_count() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]} with one "X" event
  /// per span (ts/dur in µs, `pid`, registration-order tid) plus
  /// thread_name metadata.  Loads in chrome://tracing and Perfetto.
  std::string RenderChromeTrace(std::uint32_t pid = 0) const;
  void WriteChromeTrace(const std::string& path, std::uint32_t pid = 0) const;

 private:
  struct ThreadLog {
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  ThreadLog& LogForThisThread();

  const std::uint64_t generation_;  // distinguishes recorder reincarnations
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;        // guards registration + reads
  std::vector<ThreadLog*> logs_;    // owned; stable addresses for writers
};

/// RAII phase timer.  Near-zero when no recorder is installed: the
/// constructor is one relaxed load, the destructor one branch.
class Span {
 public:
  explicit Span(const char* name, const char* category = "run");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool enabled() const { return recorder_ != nullptr; }

  /// String/integer/float annotations (no-ops when disabled).
  void Arg(const char* key, std::string value);
  void Arg(const char* key, std::int64_t value);
  void Arg(const char* key, double value);

 private:
  TraceRecorder* recorder_;
  TraceEvent event_;
};

/// Merges per-shard Chrome trace documents (the JSON texts) into one:
/// events concatenate with each input's events re-homed to pid = its index
/// in `shard_pids` (typically the shard index).  Throws util::Error when a
/// document does not parse or has no traceEvents array.
std::string MergeChromeTraces(const std::vector<std::string>& traces,
                              const std::vector<std::uint32_t>& shard_pids);

/// Thread-local grid-run labels the convergence recorder and spans read:
/// RunGrid's workers scope the current cell around each evaluation so
/// deeper layers (core solves) can attribute records without threading
/// context through every call signature.
struct RunContext {
  std::int64_t cell = -1;
  std::int64_t set = -1;
  const char* scenario = nullptr;  // registry name; outlives the run
  double sigma = 0.0;
};

RunContext& CurrentRunContext();

/// RAII setter (restores the previous context on destruction).
class ScopedRunContext {
 public:
  explicit ScopedRunContext(const RunContext& context);
  ~ScopedRunContext();
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  RunContext previous_;
};

}  // namespace dvs::obs

#endif  // ACS_OBS_TRACE_H
