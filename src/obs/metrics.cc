#include "obs/metrics.h"

#include <algorithm>

#include "util/error.h"

namespace dvs::obs {
namespace {

/// The calling thread's active shard (set by ScopedMetricsShard).
thread_local MetricsShard* t_shard = nullptr;

/// The installed registry.  Plain pointer with the Logger contract: set it
/// before spawning workers, clear it after joining them.
MetricsRegistry* g_metrics = nullptr;

/// Fixed wall-time bucket bounds (µs): cells span ~100µs (cache-served)
/// to seconds (cold planning chains), solves ~1ms to ~1s.
std::vector<double> WallBoundsUs() {
  return {100.0, 1e3, 1e4, 1e5, 1e6, 1e7};
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

MetricsRegistry::MetricsRegistry() {
  // Builtins in obs::metric id order — append-only; obs_metrics_test pins
  // the id -> name mapping so persisted manifests stay comparable.
  AddCounter("grid.cells_evaluated");
  AddCounter("grid.cells_failed");
  AddCounter("grid.cells_skipped");
  AddCounter("solve.wcs_solves");
  AddCounter("solve.acs_solves");
  AddCounter("solve.planned_solves");
  AddCounter("solve.cache_hits");
  AddCounter("prepare.cache_hits");
  AddCounter("prepare.cache_misses");
  AddCounter("calibrate.runs");
  AddCounter("calibrate.cache_hits");
  AddCounter("solver.outer_iterations");
  AddCounter("solver.inner_iterations");
  AddCounter("solver.evaluations");
  AddCounter("sim.deadline_misses");
  AddCounter("solve.fallbacks");
  AddGauge("run.threads");
  AddGauge("run.shard_count");
  AddHistogram("cell.wall_us", WallBoundsUs());
  AddHistogram("solve.wall_us", WallBoundsUs());
  AddCounter("prepare.evictions");
  AddGauge("prepare.resident_bytes");
  AddCounter("persist.cache_hits");
  AddCounter("persist.cache_misses");
  AddCounter("persist.verify_rejects");
  AddCounter("persist.write_backs");
  AddCounter("family.steals");
  AddGauge("family.count");
  // Per-worker family load: one observation per worker per grid run, so
  // bucket bounds are cell counts, not wall times.
  AddHistogram("family.cells_per_worker",
               {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6});
  AddCounter("drift.replans");
  AddCounter("online.dp_dispatches");
  AddCounter("prepare.oversized_rejects");
  AddCounter("dpm.sleeps");
  AddCounter("dpm.migrations");
  // Fleet sleep energy per cell-method, in per-ms fleet-power units —
  // typically a small fraction of the idle floor.
  AddHistogram("dpm.sleep_energy", {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});
  ACS_REQUIRE(definitions_.size() == metric::kBuiltinCount,
              "builtin metric count drifted from obs::metric ids");
}

MetricId MetricsRegistry::Add(std::string name, MetricKind kind,
                              std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    ACS_REQUIRE(bounds[i - 1] < bounds[i],
                "histogram bounds must be strictly increasing: " + name);
  }
  definitions_.push_back(Definition{std::move(name), kind, std::move(bounds)});
  return static_cast<MetricId>(definitions_.size() - 1);
}

MetricId MetricsRegistry::AddCounter(std::string name) {
  return Add(std::move(name), MetricKind::kCounter, {});
}

MetricId MetricsRegistry::AddGauge(std::string name) {
  return Add(std::move(name), MetricKind::kGauge, {});
}

MetricId MetricsRegistry::AddHistogram(std::string name,
                                       std::vector<double> bounds) {
  return Add(std::move(name), MetricKind::kHistogram, std::move(bounds));
}

std::size_t MetricsRegistry::MetricCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return definitions_.size();
}

const std::string& MetricsRegistry::MetricName(MetricId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ACS_REQUIRE(id < definitions_.size(), "metric id out of range");
  return definitions_[id].name;
}

void MetricsRegistry::EnsureShards(std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (shards_.size() < count) {
    auto shard = std::make_unique<MetricsShard>();
    shard->registry_ = this;
    shards_.push_back(std::move(shard));
  }
}

void MetricsShard::EnsureCapacity(MetricId id) {
  // Owner-thread-only growth; definitions are read under the registry
  // mutex because another thread may be registering a metric concurrently.
  std::lock_guard<std::mutex> lock(registry_->mutex_);
  const std::size_t count = registry_->definitions_.size();
  ACS_REQUIRE(id < count, "metric id out of range");
  counters_.resize(count, 0);
  gauges_.resize(count, 0.0);
  gauge_set_.resize(count, false);
  histograms_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const MetricsRegistry::Definition& def = registry_->definitions_[i];
    if (def.kind == MetricKind::kHistogram && histograms_[i].buckets.empty()) {
      histograms_[i].bounds = def.bounds;
      histograms_[i].buckets.assign(def.bounds.size() + 1, 0);
    }
  }
}

void MetricsShard::Count(MetricId id, std::int64_t delta) {
  if (id >= counters_.size()) {
    EnsureCapacity(id);
  }
  counters_[id] += delta;
}

void MetricsShard::SetGauge(MetricId id, double value) {
  if (id >= gauges_.size()) {
    EnsureCapacity(id);
  }
  gauges_[id] = value;
  gauge_set_[id] = true;
}

void MetricsShard::Observe(MetricId id, double value) {
  if (id >= histograms_.size()) {
    EnsureCapacity(id);
  }
  HistogramData& hist = histograms_[id];
  if (hist.buckets.empty()) {
    // Registered after this shard's last capacity growth; re-sync shapes.
    EnsureCapacity(id);
  }
  // First bucket with value <= bound; otherwise the overflow bucket.
  std::size_t bucket = hist.buckets.size() - 1;
  for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
    if (value <= hist.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++hist.buckets[bucket];
  hist.sum += value;
  hist.min = hist.count == 0 ? value : std::min(hist.min, value);
  hist.max = hist.count == 0 ? value : std::max(hist.max, value);
  ++hist.count;
}

std::vector<AggregatedMetric> MetricsRegistry::Aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<AggregatedMetric> out;
  out.reserve(definitions_.size());
  for (std::size_t id = 0; id < definitions_.size(); ++id) {
    const Definition& def = definitions_[id];
    AggregatedMetric agg;
    agg.name = def.name;
    agg.kind = def.kind;
    agg.bounds = def.bounds;
    if (def.kind == MetricKind::kHistogram) {
      agg.buckets.assign(def.bounds.size() + 1, 0);
    }
    bool gauge_seen = false;
    for (const std::unique_ptr<MetricsShard>& shard : shards_) {
      switch (def.kind) {
        case MetricKind::kCounter:
          if (id < shard->counters_.size()) {
            agg.count += shard->counters_[id];
          }
          break;
        case MetricKind::kGauge:
          if (id < shard->gauge_set_.size() && shard->gauge_set_[id]) {
            agg.value = gauge_seen ? std::max(agg.value, shard->gauges_[id])
                                   : shard->gauges_[id];
            gauge_seen = true;
          }
          break;
        case MetricKind::kHistogram:
          if (id < shard->histograms_.size() &&
              shard->histograms_[id].count > 0) {
            const MetricsShard::HistogramData& hist = shard->histograms_[id];
            for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
              agg.buckets[b] += hist.buckets[b];
            }
            agg.value += hist.sum;
            agg.min = agg.count == 0 ? hist.min : std::min(agg.min, hist.min);
            agg.max = agg.count == 0 ? hist.max : std::max(agg.max, hist.max);
            agg.count += hist.count;
          }
          break;
      }
    }
    out.push_back(std::move(agg));
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<MetricsShard>& shard : shards_) {
    std::fill(shard->counters_.begin(), shard->counters_.end(), 0);
    std::fill(shard->gauges_.begin(), shard->gauges_.end(), 0.0);
    shard->gauge_set_.assign(shard->gauge_set_.size(), false);
    for (MetricsShard::HistogramData& hist : shard->histograms_) {
      std::fill(hist.buckets.begin(), hist.buckets.end(), 0);
      hist.count = 0;
      hist.sum = hist.min = hist.max = 0.0;
    }
  }
}

MetricsRegistry* ActiveMetrics() { return g_metrics; }

void InstallMetrics(MetricsRegistry* registry) { g_metrics = registry; }

MetricsShard* ActiveShard() { return t_shard; }

ScopedMetricsShard::ScopedMetricsShard(MetricsShard* shard)
    : previous_(t_shard) {
  t_shard = shard;
}

ScopedMetricsShard::~ScopedMetricsShard() { t_shard = previous_; }

void Count(MetricId id, std::int64_t delta) {
  if (MetricsShard* shard = t_shard) {
    shard->Count(id, delta);
  }
}

void SetGauge(MetricId id, double value) {
  if (MetricsShard* shard = t_shard) {
    shard->SetGauge(id, value);
  }
}

void Observe(MetricId id, double value) {
  if (MetricsShard* shard = t_shard) {
    shard->Observe(id, value);
  }
}

ScopedWallTimer::ScopedWallTimer(MetricId id) : id_(id), shard_(t_shard) {
  if (shard_ != nullptr) {
    begin_ = std::chrono::steady_clock::now();
  }
}

ScopedWallTimer::~ScopedWallTimer() {
  if (shard_ != nullptr) {
    const std::chrono::duration<double, std::micro> elapsed =
        std::chrono::steady_clock::now() - begin_;
    shard_->Observe(id_, elapsed.count());
  }
}

}  // namespace dvs::obs
