#include "obs/convergence.h"

#include "obs/trace.h"
#include "util/error.h"
#include "util/json.h"

namespace dvs::obs {
namespace {

std::atomic<ConvergenceRecorder*> g_convergence{nullptr};

}  // namespace

ConvergenceRecorder::ConvergenceRecorder(const std::string& path)
    : out_(path) {
  if (!out_) {
    throw util::Error("cannot open convergence output file: " + path);
  }
}

ConvergenceRecorder::~ConvergenceRecorder() {
  if (g_convergence.load(std::memory_order_relaxed) == this) {
    g_convergence.store(nullptr, std::memory_order_relaxed);
  }
}

ConvergenceRecorder* ConvergenceRecorder::Active() {
  return g_convergence.load(std::memory_order_relaxed);
}

void ConvergenceRecorder::Install(ConvergenceRecorder* recorder) {
  g_convergence.store(recorder, std::memory_order_relaxed);
}

std::size_t ConvergenceRecorder::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

void ConvergenceRecorder::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
}

std::uint64_t ConvergenceRecorder::NextSolveId() {
  return next_solve_.fetch_add(1, std::memory_order_relaxed);
}

void ConvergenceRecorder::WriteLine(const std::string& line) {
  // One whole line per lock hold — concurrent solves interleave at line
  // granularity, keeping the file valid JSONL.
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  ++records_;
}

ConvergenceScope::ConvergenceScope(const char* phase)
    : recorder_(ConvergenceRecorder::Active()), phase_(phase) {
  if (recorder_ == nullptr) {
    return;
  }
  solve_id_ = recorder_->NextSolveId();
  const RunContext& context = CurrentRunContext();
  cell_ = context.cell;
  set_ = context.set;
  scenario_ = context.scenario;
  sigma_ = context.sigma;
}

opt::SolveObserver* ConvergenceScope::observer() {
  return recorder_ != nullptr ? this : nullptr;
}

namespace {

/// Shared record prefix: identity + labels, in a fixed key order.
void WriteCommon(util::JsonWriter& json, std::uint64_t solve_id,
                 const char* phase, const char* event_kind, std::int64_t cell,
                 std::int64_t set, const char* scenario, double sigma) {
  json.BeginObject();
  json.Key("solve").Value(solve_id);
  json.Key("phase").Value(phase);
  json.Key("event").Value(event_kind);
  if (cell >= 0) {
    json.Key("cell").Value(cell);
  }
  if (set >= 0) {
    json.Key("set").Value(set);
  }
  if (scenario != nullptr) {
    json.Key("scenario").Value(scenario);
  }
  if (sigma > 0.0) {
    json.Key("sigma").Value(sigma);
  }
}

}  // namespace

void ConvergenceScope::OnSpgIteration(const opt::SpgIterationEvent& event) {
  util::JsonWriter json;
  WriteCommon(json, solve_id_, phase_, "spg", cell_, set_, scenario_, sigma_);
  json.Key("iter").Value(static_cast<std::uint64_t>(event.iteration));
  json.Key("f").Value(event.value);
  json.Key("criterion").Value(event.criterion);
  json.Key("step").Value(event.step);
  json.Key("step_length").Value(event.step_length);
  json.Key("backtracks").Value(static_cast<std::uint64_t>(event.backtracks));
  json.Key("evals").Value(static_cast<std::uint64_t>(event.evaluations));
  json.EndObject();
  recorder_->WriteLine(json.str());
}

void ConvergenceScope::OnAlmOuter(const opt::AlmOuterEvent& event) {
  util::JsonWriter json;
  WriteCommon(json, solve_id_, phase_, "alm", cell_, set_, scenario_, sigma_);
  json.Key("outer").Value(static_cast<std::uint64_t>(event.outer));
  json.Key("violation").Value(event.violation);
  json.Key("penalty").Value(event.penalty);
  json.Key("inner_tol").Value(event.inner_tolerance);
  json.Key("inner_iters")
      .Value(static_cast<std::uint64_t>(event.inner_iterations));
  json.Key("inner_status").Value(opt::SolveStatusName(event.inner_status));
  json.Key("evals").Value(static_cast<std::uint64_t>(event.evaluations));
  json.EndObject();
  recorder_->WriteLine(json.str());
}

}  // namespace dvs::obs
