// Solver convergence traces: per-iteration SPG/ALM records to JSONL.
//
// A ConvergenceRecorder owns an append-only JSONL sink; when installed
// (process-global, Logger contract), core::SolveWith opens one
// ConvergenceScope per actual NLP solve, which snapshots the thread's
// RunContext labels (cell, set, scenario, sigma — see obs/trace.h), draws
// a process-unique solve id, and exposes an opt::SolveObserver that writes
// one record per accepted SPG iteration ("spg") and one per ALM outer
// cycle ("alm").  Records from concurrent workers interleave whole-line
// (single mutex per line), so the file is always valid JSONL; the solve id
// plus labels let a plot group lines per solve regardless of interleaving.
//
// Cost model: with no recorder installed, ConvergenceScope construction is
// one relaxed atomic load and observer() returns nullptr, so the solvers
// skip the hooks entirely — the observation-only invariant (identical
// solver trajectory, byte-identical golden CSVs) holds by construction.
#ifndef ACS_OBS_CONVERGENCE_H
#define ACS_OBS_CONVERGENCE_H

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "opt/spg.h"

namespace dvs::obs {

class ConvergenceRecorder {
 public:
  /// Opens `path` for writing (truncating); throws util::Error on failure.
  explicit ConvergenceRecorder(const std::string& path);
  ~ConvergenceRecorder();
  ConvergenceRecorder(const ConvergenceRecorder&) = delete;
  ConvergenceRecorder& operator=(const ConvergenceRecorder&) = delete;

  static ConvergenceRecorder* Active();
  static void Install(ConvergenceRecorder* recorder);

  std::size_t records() const;
  void Flush();

 private:
  friend class ConvergenceScope;

  std::uint64_t NextSolveId();
  void WriteLine(const std::string& line);

  mutable std::mutex mutex_;  // guards the stream and the record count
  std::ofstream out_;
  std::atomic<std::uint64_t> next_solve_{0};
  std::size_t records_ = 0;
};

/// One solve's observation scope (see file comment).  `phase` is a
/// static-storage label ("wcs" | "acs" | "planned" | ...).
class ConvergenceScope final : private opt::SolveObserver {
 public:
  explicit ConvergenceScope(const char* phase);

  /// The observer to install into AlmOptions/SpgOptions, or nullptr when
  /// no recorder is active (the off fast path).
  opt::SolveObserver* observer();

 private:
  void OnSpgIteration(const opt::SpgIterationEvent& event) override;
  void OnAlmOuter(const opt::AlmOuterEvent& event) override;

  ConvergenceRecorder* recorder_;
  const char* phase_;
  std::uint64_t solve_id_ = 0;
  // Labels snapshotted from the thread's RunContext at construction.
  std::int64_t cell_ = -1;
  std::int64_t set_ = -1;
  const char* scenario_ = nullptr;
  double sigma_ = 0.0;
};

}  // namespace dvs::obs

#endif  // ACS_OBS_CONVERGENCE_H
