#include "obs/manifest.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <thread>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/json.h"
#include "util/simd.h"

// Build identity injected by CMake onto this translation unit only (so a
// new commit re-compiles one file, not the library).
#ifndef ACS_GIT_SHA
#define ACS_GIT_SHA "unknown"
#endif
#ifndef ACS_BUILD_TYPE
#define ACS_BUILD_TYPE "unknown"
#endif

namespace dvs::obs {
namespace {

constexpr char kSchema[] = "acs.run_manifest/1";

void WriteBuildSection(util::JsonWriter& json) {
  json.Key("build").BeginObject();
  json.Key("git_sha").Value(BuildGitSha());
  json.Key("compiler").Value(BuildCompiler());
  json.Key("build_type").Value(BuildTypeName());
  json.Key("simd").Value(util::simd::LevelName(util::simd::Active()));
  json.EndObject();
}

void WriteMetricsSection(util::JsonWriter& json,
                         const std::vector<AggregatedMetric>& metrics) {
  json.Key("metrics").BeginObject();
  json.Key("counters").BeginObject();
  for (const AggregatedMetric& m : metrics) {
    if (m.kind == MetricKind::kCounter) {
      json.Key(m.name).Value(static_cast<std::int64_t>(m.count));
    }
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const AggregatedMetric& m : metrics) {
    if (m.kind == MetricKind::kGauge) {
      json.Key(m.name).Value(m.value);
    }
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const AggregatedMetric& m : metrics) {
    if (m.kind != MetricKind::kHistogram) {
      continue;
    }
    json.Key(m.name).BeginObject();
    json.Key("bounds").BeginArray();
    for (double bound : m.bounds) {
      json.Value(bound);
    }
    json.EndArray();
    json.Key("buckets").BeginArray();
    for (std::int64_t bucket : m.buckets) {
      json.Value(bucket);
    }
    json.EndArray();
    json.Key("count").Value(static_cast<std::int64_t>(m.count));
    json.Key("sum").Value(m.value);
    json.Key("min").Value(m.min);
    json.Key("max").Value(m.max);
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

/// Re-serialises a parsed JSON value (used by the merge to copy sections it
/// only validates, preserving member order).
void WriteValue(util::JsonWriter& json, const util::JsonValue& value) {
  switch (value.kind) {
    case util::JsonValue::Kind::kNull:
      json.Null();
      break;
    case util::JsonValue::Kind::kBool:
      json.Value(value.bool_value);
      break;
    case util::JsonValue::Kind::kNumber:
      json.Value(value.number);
      break;
    case util::JsonValue::Kind::kString:
      json.Value(value.string);
      break;
    case util::JsonValue::Kind::kArray:
      json.BeginArray();
      for (const util::JsonValue& element : value.array) {
        WriteValue(json, element);
      }
      json.EndArray();
      break;
    case util::JsonValue::Kind::kObject:
      json.BeginObject();
      for (const auto& [key, member] : value.object) {
        json.Key(key);
        WriteValue(json, member);
      }
      json.EndObject();
      break;
  }
}

/// Canonical text of a subtree for equality checks in the merge.
std::string Canonical(const util::JsonValue& value) {
  util::JsonWriter json;
  WriteValue(json, value);
  return json.str();
}

/// A folded measurement must be a finite number.  Shards serialise
/// non-finite values as null (util::JsonWriter), and folding a null (which
/// parses as 0) or an overflowed Inf into the sums and maxes below would
/// silently poison the merged document — better to refuse the merge and
/// name the culprit.
double FoldableNumber(const util::JsonValue& value, const std::string& what,
                      std::size_t index) {
  if (!value.IsNumber() || !std::isfinite(value.number)) {
    throw util::Error("manifest " + std::to_string(index) + ": " + what +
                      " is not a finite number (non-finite metrics "
                      "serialise as null and cannot be folded)");
  }
  return value.number;
}

const util::JsonValue& Section(const util::JsonValue& doc,
                               const std::string& key, std::size_t index) {
  const util::JsonValue* found = doc.Find(key);
  if (found == nullptr) {
    throw util::Error("manifest " + std::to_string(index) +
                      " is missing \"" + key + "\"");
  }
  return *found;
}

}  // namespace

std::string BuildGitSha() { return ACS_GIT_SHA; }

std::string BuildCompiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string BuildTypeName() { return ACS_BUILD_TYPE; }

std::string RenderManifest(const RunManifest& manifest,
                           const MetricsRegistry* metrics) {
  util::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value(kSchema);
  json.Key("tool").Value(manifest.tool);
  WriteBuildSection(json);
  json.Key("run").BeginObject();
  json.Key("master_seed").Value(static_cast<std::uint64_t>(manifest.master_seed));
  json.Key("threads").Value(static_cast<std::int64_t>(manifest.threads));
  json.Key("hardware_threads")
      .Value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.Key("shard_count")
      .Value(static_cast<std::uint64_t>(manifest.shard_count));
  json.Key("wall_ms").Value(manifest.wall_ms);
  json.EndObject();
  json.Key("shards").BeginArray();
  json.Value(static_cast<std::uint64_t>(manifest.shard_index));
  json.EndArray();
  json.Key("config").BeginObject();
  for (const auto& [key, value] : manifest.config) {
    json.Key(key).Value(value);
  }
  json.EndObject();
  if (metrics != nullptr) {
    WriteMetricsSection(json, metrics->Aggregate());
  }
  json.EndObject();
  return json.str();
}

void WriteManifest(const std::string& path, const RunManifest& manifest,
                   const MetricsRegistry* metrics) {
  std::ofstream out(path);
  if (!out) {
    throw util::Error("cannot open manifest output file: " + path);
  }
  out << RenderManifest(manifest, metrics) << '\n';
}

std::string MergeManifests(const std::vector<std::string>& texts) {
  if (texts.empty()) {
    throw util::Error("no manifests to merge");
  }
  std::vector<util::JsonValue> docs;
  docs.reserve(texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    docs.push_back(util::ParseJson(texts[i]));
    if (docs.back().StringAt("schema") != kSchema) {
      throw util::Error("manifest " + std::to_string(i) +
                        " has unsupported schema \"" +
                        docs.back().StringAt("schema") + "\"");
    }
  }

  // Everything that identifies the run must agree across the shards; a
  // mismatch means the inputs came from different runs (or different
  // binaries) and merging them would fabricate a result.
  const util::JsonValue& first = docs.front();
  const std::string tool = first.StringAt("tool");
  const std::string build = Canonical(Section(first, "build", 0));
  const std::string config = Canonical(Section(first, "config", 0));
  const double master_seed = first.At("run").NumberAt("master_seed");
  const double shard_count_raw = first.At("run").NumberAt("shard_count");
  const auto shard_count = static_cast<std::size_t>(shard_count_raw);
  for (std::size_t i = 1; i < docs.size(); ++i) {
    const util::JsonValue& doc = docs[i];
    if (doc.StringAt("tool") != tool) {
      throw util::Error("manifest conflict: tool \"" + doc.StringAt("tool") +
                        "\" vs \"" + tool + "\"");
    }
    if (Canonical(Section(doc, "build", i)) != build) {
      throw util::Error("manifest conflict: shard builds differ (manifest " +
                        std::to_string(i) + ")");
    }
    if (Canonical(Section(doc, "config", i)) != config) {
      throw util::Error("manifest conflict: shard configs differ (manifest " +
                        std::to_string(i) + ")");
    }
    if (doc.At("run").NumberAt("master_seed") != master_seed) {
      throw util::Error("manifest conflict: master_seed differs (manifest " +
                        std::to_string(i) + ")");
    }
    if (doc.At("run").NumberAt("shard_count") != shard_count_raw) {
      throw util::Error("manifest conflict: shard_count differs (manifest " +
                        std::to_string(i) + ")");
    }
  }

  // Shard coverage: every index 0..shard_count-1 exactly once.  A repeated
  // index is a double merge (the same shard fed in twice, or an
  // already-merged document fed back in alongside one of its inputs).
  std::vector<bool> seen(shard_count, false);
  std::vector<std::size_t> covered;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    // An empty list is legal: a shard whose cell range came out empty (a
    // shard count above the grid's set count) still writes a manifest, and
    // its measurements still fold below.  Only the list's *shape* is
    // validated here; full coverage is enforced after the loop.
    const util::JsonValue& shards = Section(docs[i], "shards", i);
    if (!shards.IsArray()) {
      throw util::Error("manifest " + std::to_string(i) +
                        " has a non-array \"shards\" entry");
    }
    for (const util::JsonValue& entry : shards.array) {
      if (!entry.IsNumber() ||
          static_cast<std::size_t>(entry.number) >= shard_count) {
        throw util::Error("manifest " + std::to_string(i) +
                          " covers an out-of-range shard index");
      }
      const auto index = static_cast<std::size_t>(entry.number);
      if (seen[index]) {
        throw util::Error("double merge: shard " + std::to_string(index) +
                          " appears in more than one manifest");
      }
      seen[index] = true;
      covered.push_back(index);
    }
  }
  for (std::size_t index = 0; index < shard_count; ++index) {
    if (!seen[index]) {
      throw util::Error("missing shard: no manifest covers shard " +
                        std::to_string(index) + " of " +
                        std::to_string(shard_count));
    }
  }
  std::sort(covered.begin(), covered.end());

  // Fold the per-shard measurements: wall times and counters sum, threads
  // and gauges take the max, histogram buckets sum element-wise.
  double wall_ms = 0.0;
  double threads = 0.0;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  struct Histogram {
    std::string name;
    std::vector<double> bounds;
    std::vector<double> buckets;
    double count = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::vector<Histogram> histograms;
  bool any_metrics = false;
  for (std::size_t i = 0; i < docs.size(); ++i) {
    const util::JsonValue& run = docs[i].At("run");
    wall_ms += run.NumberAt("wall_ms");
    threads = std::max(threads, run.NumberAt("threads"));
    const util::JsonValue* metrics = docs[i].Find("metrics");
    if (metrics == nullptr) {
      continue;
    }
    any_metrics = true;
    for (const auto& [name, value] : metrics->At("counters").object) {
      const double number =
          FoldableNumber(value, "counter \"" + name + "\"", i);
      auto it = std::find_if(counters.begin(), counters.end(),
                             [&](const auto& c) { return c.first == name; });
      if (it == counters.end()) {
        counters.emplace_back(name, number);
      } else {
        it->second += number;
      }
    }
    for (const auto& [name, value] : metrics->At("gauges").object) {
      const double number = FoldableNumber(value, "gauge \"" + name + "\"", i);
      auto it = std::find_if(gauges.begin(), gauges.end(),
                             [&](const auto& g) { return g.first == name; });
      if (it == gauges.end()) {
        gauges.emplace_back(name, number);
      } else {
        it->second = std::max(it->second, number);
      }
    }
    for (const auto& [name, value] : metrics->At("histograms").object) {
      auto it = std::find_if(histograms.begin(), histograms.end(),
                             [&](const Histogram& h) { return h.name == name; });
      if (it == histograms.end()) {
        histograms.emplace_back();
        it = histograms.end() - 1;
        it->name = name;
        for (const util::JsonValue& bound : value.At("bounds").array) {
          it->bounds.push_back(bound.number);
        }
        it->buckets.assign(it->bounds.size() + 1, 0.0);
        it->min = value.NumberAt("min");
        it->max = value.NumberAt("max");
      }
      const util::JsonValue& buckets = value.At("buckets");
      if (buckets.array.size() != it->buckets.size()) {
        throw util::Error("manifest conflict: histogram \"" + name +
                          "\" bucket layouts differ");
      }
      const std::string what = "histogram \"" + name + "\"";
      for (std::size_t b = 0; b < buckets.array.size(); ++b) {
        it->buckets[b] += FoldableNumber(buckets.array[b], what + " bucket", i);
      }
      const double count = FoldableNumber(value.At("count"), what + " count", i);
      if (count > 0.0) {
        const double mn = FoldableNumber(value.At("min"), what + " min", i);
        const double mx = FoldableNumber(value.At("max"), what + " max", i);
        if (it->count == 0.0) {
          it->min = mn;
          it->max = mx;
        } else {
          it->min = std::min(it->min, mn);
          it->max = std::max(it->max, mx);
        }
      }
      it->count += count;
      it->sum += FoldableNumber(value.At("sum"), what + " sum", i);
    }
  }

  util::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value(kSchema);
  json.Key("tool").Value(tool);
  json.Key("build");
  WriteValue(json, Section(first, "build", 0));
  json.Key("run").BeginObject();
  json.Key("master_seed").Value(master_seed);
  json.Key("threads").Value(threads);
  json.Key("hardware_threads")
      .Value(first.At("run").NumberAt("hardware_threads"));
  json.Key("shard_count").Value(shard_count_raw);
  json.Key("wall_ms").Value(wall_ms);
  json.EndObject();
  json.Key("shards").BeginArray();
  for (std::size_t index : covered) {
    json.Value(static_cast<std::uint64_t>(index));
  }
  json.EndArray();
  json.Key("config");
  WriteValue(json, Section(first, "config", 0));
  if (any_metrics) {
    json.Key("metrics").BeginObject();
    json.Key("counters").BeginObject();
    for (const auto& [name, value] : counters) {
      json.Key(name).Value(value);
    }
    json.EndObject();
    json.Key("gauges").BeginObject();
    for (const auto& [name, value] : gauges) {
      json.Key(name).Value(value);
    }
    json.EndObject();
    json.Key("histograms").BeginObject();
    for (const Histogram& h : histograms) {
      json.Key(h.name).BeginObject();
      json.Key("bounds").BeginArray();
      for (double bound : h.bounds) {
        json.Value(bound);
      }
      json.EndArray();
      json.Key("buckets").BeginArray();
      for (double bucket : h.buckets) {
        json.Value(bucket);
      }
      json.EndArray();
      json.Key("count").Value(h.count);
      json.Key("sum").Value(h.sum);
      json.Key("min").Value(h.min);
      json.Key("max").Value(h.max);
      json.EndObject();
    }
    json.EndObject();
    json.EndObject();
  }
  json.EndObject();
  return json.str();
}

}  // namespace dvs::obs
