#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "util/error.h"
#include "util/json.h"

namespace dvs::obs {
namespace {

/// The installed recorder.  Relaxed atomics: the Span off path is a single
/// load, and installation happens before workers spawn (Logger contract).
std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Monotonic recorder ids so a thread's cached buffer pointer can never
/// alias a new recorder allocated at the same address.
std::atomic<std::uint64_t> g_generation{1};

/// Per-thread cache of the registered buffer for the current recorder.
struct ThreadCache {
  std::uint64_t generation = 0;
  void* log = nullptr;
};
thread_local ThreadCache t_trace;

thread_local RunContext t_run_context;

}  // namespace

TraceRecorder::TraceRecorder()
    : generation_(g_generation.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::~TraceRecorder() {
  if (g_recorder.load(std::memory_order_relaxed) == this) {
    g_recorder.store(nullptr, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (ThreadLog* log : logs_) {
    delete log;
  }
}

TraceRecorder* TraceRecorder::Active() {
  return g_recorder.load(std::memory_order_relaxed);
}

void TraceRecorder::Install(TraceRecorder* recorder) {
  g_recorder.store(recorder, std::memory_order_relaxed);
}

double TraceRecorder::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadLog& TraceRecorder::LogForThisThread() {
  if (t_trace.generation == generation_) {
    return *static_cast<ThreadLog*>(t_trace.log);
  }
  // First event from this thread on this recorder: register a buffer.
  std::lock_guard<std::mutex> lock(mutex_);
  auto* log = new ThreadLog;
  log->tid = static_cast<std::uint32_t>(logs_.size());
  logs_.push_back(log);
  t_trace.generation = generation_;
  t_trace.log = log;
  return *log;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadLog& log = LogForThisThread();
  event.tid = log.tid;
  log.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const ThreadLog* log : logs_) {
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const ThreadLog* log : logs_) {
    count += log->events.size();
  }
  return count;
}

std::string TraceRecorder::RenderChromeTrace(std::uint32_t pid) const {
  const std::vector<TraceEvent> events = Events();
  util::JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  std::uint32_t max_tid = 0;
  for (const TraceEvent& event : events) {
    max_tid = std::max(max_tid, event.tid);
    json.BeginObject();
    json.Key("name").Value(event.name);
    json.Key("cat").Value(event.category);
    json.Key("ph").Value("X");
    json.Key("ts").Value(event.ts_us);
    json.Key("dur").Value(event.dur_us);
    json.Key("pid").Value(static_cast<std::int64_t>(pid));
    json.Key("tid").Value(static_cast<std::int64_t>(event.tid));
    if (!event.args.empty()) {
      json.Key("args").BeginObject();
      for (const auto& [key, value] : event.args) {
        json.Key(key).Value(value);
      }
      json.EndObject();
    }
    json.EndObject();
  }
  // thread_name metadata so Perfetto labels the rows (worker 0 is the
  // calling thread — the ThreadPool convention).
  if (!events.empty()) {
    for (std::uint32_t tid = 0; tid <= max_tid; ++tid) {
      json.BeginObject();
      json.Key("name").Value("thread_name");
      json.Key("ph").Value("M");
      json.Key("pid").Value(static_cast<std::int64_t>(pid));
      json.Key("tid").Value(static_cast<std::int64_t>(tid));
      json.Key("args").BeginObject();
      json.Key("name").Value("worker-" + std::to_string(tid));
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").Value("ms");
  json.EndObject();
  return json.str();
}

void TraceRecorder::WriteChromeTrace(const std::string& path,
                                     std::uint32_t pid) const {
  std::ofstream out(path);
  if (!out) {
    throw util::Error("cannot open trace output file: " + path);
  }
  out << RenderChromeTrace(pid) << '\n';
}

Span::Span(const char* name, const char* category)
    : recorder_(TraceRecorder::Active()) {
  if (recorder_ == nullptr) {
    return;
  }
  event_.name = name;
  event_.category = category;
  event_.ts_us = recorder_->NowUs();
}

Span::~Span() {
  if (recorder_ == nullptr) {
    return;
  }
  event_.dur_us = recorder_->NowUs() - event_.ts_us;
  recorder_->Append(std::move(event_));
}

void Span::Arg(const char* key, std::string value) {
  if (recorder_ != nullptr) {
    event_.args.emplace_back(key, std::move(value));
  }
}

void Span::Arg(const char* key, std::int64_t value) {
  if (recorder_ != nullptr) {
    event_.args.emplace_back(key, std::to_string(value));
  }
}

void Span::Arg(const char* key, double value) {
  if (recorder_ != nullptr) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    event_.args.emplace_back(key, buffer);
  }
}

std::string MergeChromeTraces(const std::vector<std::string>& traces,
                              const std::vector<std::uint32_t>& shard_pids) {
  ACS_REQUIRE(traces.size() == shard_pids.size(),
              "one pid per trace document is required");
  util::JsonWriter json;
  json.BeginObject();
  json.Key("traceEvents").BeginArray();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const util::JsonValue doc = util::ParseJson(traces[i]);
    const util::JsonValue* events = doc.Find("traceEvents");
    ACS_REQUIRE(events != nullptr && events->IsArray(),
                "trace document " + std::to_string(i) +
                    " has no traceEvents array");
    for (const util::JsonValue& event : events->array) {
      ACS_REQUIRE(event.IsObject(),
                  "trace document " + std::to_string(i) +
                      " has a non-object traceEvent");
      json.BeginObject();
      bool wrote_pid = false;
      for (const auto& [key, value] : event.object) {
        if (key == "pid") {
          // Re-home the event to its shard's process group.
          json.Key("pid").Value(
              static_cast<std::int64_t>(shard_pids[i]));
          wrote_pid = true;
          continue;
        }
        json.Key(key);
        switch (value.kind) {
          case util::JsonValue::Kind::kString:
            json.Value(value.string);
            break;
          case util::JsonValue::Kind::kNumber:
            json.Value(value.number);
            break;
          case util::JsonValue::Kind::kBool:
            json.Value(value.bool_value);
            break;
          case util::JsonValue::Kind::kObject:
            json.BeginObject();
            for (const auto& [akey, avalue] : value.object) {
              json.Key(akey);
              // Trace args are flat strings/numbers by construction.
              if (avalue.IsString()) {
                json.Value(avalue.string);
              } else if (avalue.IsNumber()) {
                json.Value(avalue.number);
              } else {
                json.Value(false);
              }
            }
            json.EndObject();
            break;
          default:
            json.Value(false);
            break;
        }
      }
      if (!wrote_pid) {
        json.Key("pid").Value(static_cast<std::int64_t>(shard_pids[i]));
      }
      json.EndObject();
    }
  }
  json.EndArray();
  json.Key("displayTimeUnit").Value("ms");
  json.EndObject();
  return json.str();
}

RunContext& CurrentRunContext() { return t_run_context; }

ScopedRunContext::ScopedRunContext(const RunContext& context)
    : previous_(t_run_context) {
  t_run_context = context;
}

ScopedRunContext::~ScopedRunContext() { t_run_context = previous_; }

}  // namespace dvs::obs
