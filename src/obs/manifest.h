// Run manifests: one JSON document per RunGrid/bench invocation recording
// what ran, where, and what the metrics saw.
//
// Schema "acs.run_manifest/1":
//
//   {
//     "schema":  "acs.run_manifest/1",
//     "tool":    program name,
//     "build":   { git_sha, compiler, build_type, simd },
//     "run":     { master_seed, threads, hardware_threads,
//                  shard_count, wall_ms },
//     "shards":  [shard indices this document covers],
//     "config":  { flat string map of the grid/bench configuration },
//     "metrics": { counters: {name: n}, gauges: {name: x},
//                  histograms: {name: {bounds, buckets, count, sum,
//                                      min, max}} }
//   }
//
// MergeManifests combines per-shard documents into the one an unsharded
// run would have written: tool/build/config/master_seed/shard_count must
// agree (conflicts are hard errors, mirroring runner::MergeShardCsvs),
// shard coverage must be exactly 0..shard_count-1 with no duplicates
// (double-merge detection), wall times sum, counters sum, gauges max.
#ifndef ACS_OBS_MANIFEST_H
#define ACS_OBS_MANIFEST_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dvs::obs {

class MetricsRegistry;

/// Build identity baked in at configure time (CMake passes ACS_GIT_SHA /
/// ACS_BUILD_TYPE to manifest.cc; the compiler comes from __VERSION__).
std::string BuildGitSha();
std::string BuildCompiler();
std::string BuildTypeName();

struct RunManifest {
  std::string tool;
  std::uint64_t master_seed = 0;
  std::int64_t threads = 1;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  double wall_ms = 0.0;
  /// Flat configuration key/value pairs, serialised in this order.
  std::vector<std::pair<std::string, std::string>> config;
};

/// Renders the manifest JSON; `metrics` (optional) contributes the
/// aggregated "metrics" section.
std::string RenderManifest(const RunManifest& manifest,
                           const MetricsRegistry* metrics);

/// Renders and writes to `path`; throws util::Error on an unwritable path.
void WriteManifest(const std::string& path, const RunManifest& manifest,
                   const MetricsRegistry* metrics);

/// Merges per-shard manifest documents (see file comment).  Throws
/// util::Error on a conflict, duplicate shard coverage, or incomplete
/// coverage.
std::string MergeManifests(const std::vector<std::string>& texts);

}  // namespace dvs::obs

#endif  // ACS_OBS_MANIFEST_H
