// Lock-free per-thread metrics for grid runs.
//
// A MetricsRegistry names a fixed-plus-extensible set of counters, gauges
// and histograms and owns one MetricsShard per worker thread, mirroring the
// EvalWorkspace ownership model of runner::RunGrid: every shard is written
// by exactly one worker through a thread-local pointer (ScopedMetricsShard),
// so the hot path is a plain non-atomic add — no locks, no contended cache
// lines — and TSan-clean by construction.  Aggregate() folds the shards in
// index order after the grid joins its workers, so the merged totals are
// deterministic for any thread count.
//
// Determinism caveat the tests pin down: counters charged from *results*
// (cells evaluated, solver iterations replayed from MethodOutcome, deadline
// misses) are identical at any thread count because the results themselves
// are; counters observing *work scheduling* (which worker's cache served a
// solve, prepare hits vs misses) legitimately vary with the thread count —
// only invariants like hits + misses stay fixed.  The telemetry layer is
// observation-only either way: no metric feeds back into any computation.
//
// Installation is process-global (like util::Logger): a bench or tool
// installs its registry with InstallMetrics, RunGrid sizes the shards to
// its pool and scopes one per worker, and the free Count/SetGauge/Observe
// helpers no-op on a single thread-local branch when nothing is installed
// (the near-zero off path the golden-bytes tests rely on).
#ifndef ACS_OBS_METRICS_H
#define ACS_OBS_METRICS_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dvs::obs {

/// Index into a registry's metric definitions.  Builtin ids (obs::metric)
/// are stable compile-time constants; AddCounter/AddGauge/AddHistogram
/// append after them.
using MetricId = std::uint32_t;

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

class MetricsRegistry;

/// One worker's private slice of every metric.  All mutation goes through
/// the owning thread; the registry reads shards only after the workers have
/// joined (Aggregate) or before they start (Reset).
class MetricsShard {
 public:
  void Count(MetricId id, std::int64_t delta = 1);
  void SetGauge(MetricId id, double value);
  /// Histogram observation; also feeds count/sum/min/max.
  void Observe(MetricId id, double value);

 private:
  friend class MetricsRegistry;

  struct HistogramData {
    std::vector<double> bounds;         // copied from the definition so the
                                        // hot path never locks the registry
    std::vector<std::int64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Grows the per-metric slots to the registry's current definition count
  /// (owner-thread only; reads definitions under the registry mutex).
  void EnsureCapacity(MetricId id);

  MetricsRegistry* registry_ = nullptr;
  std::vector<std::int64_t> counters_;   // slot per metric id (0 for others)
  std::vector<double> gauges_;
  std::vector<bool> gauge_set_;
  std::vector<HistogramData> histograms_;
};

/// One metric folded across every shard.
struct AggregatedMetric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t count = 0;   // counter total / histogram observation count
  double value = 0.0;       // gauge: max over set shards; histogram: sum
  double min = 0.0;         // histogram only
  double max = 0.0;         // histogram only
  std::vector<double> bounds;          // histogram bucket upper bounds
  std::vector<std::int64_t> buckets;   // bounds.size() + 1 (overflow last)
};

class MetricsRegistry {
 public:
  /// Registers the builtin metric set (obs::metric ids, in id order).
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricId AddCounter(std::string name);
  MetricId AddGauge(std::string name);
  /// `bounds` are strictly increasing bucket upper bounds: a value v lands
  /// in the first bucket with v <= bounds[i], or the overflow bucket.
  MetricId AddHistogram(std::string name, std::vector<double> bounds);

  std::size_t MetricCount() const;
  const std::string& MetricName(MetricId id) const;

  /// Grows the shard set to at least `count` (call before the workers
  /// start; existing shards keep their tallies).
  void EnsureShards(std::size_t count);
  std::size_t ShardCount() const { return shards_.size(); }
  MetricsShard& Shard(std::size_t index) { return *shards_[index]; }

  /// Deterministic fold: shards in index order, metrics in id order.
  /// Counters and histogram buckets sum; gauges take the max over shards
  /// that set them.  Call only after the writing threads have joined.
  std::vector<AggregatedMetric> Aggregate() const;

  /// Zeroes every shard (between repeats; writers must be quiescent).
  void Reset();

 private:
  friend class MetricsShard;

  struct Definition {
    std::string name;
    MetricKind kind;
    std::vector<double> bounds;  // histogram only
  };

  MetricId Add(std::string name, MetricKind kind, std::vector<double> bounds);

  // Definitions are append-only behind the mutex (registration may race a
  // shard growing its slots); shards are unique_ptrs so growing the vector
  // never moves a shard under its owning thread.
  std::vector<Definition> definitions_;
  std::vector<std::unique_ptr<MetricsShard>> shards_;
  mutable std::mutex mutex_;
};

/// Builtin metric ids, registered by the MetricsRegistry constructor in
/// exactly this order (obs_metrics_test pins the names).  The solver.*
/// counters are charged per cell from MethodOutcome — deterministic at any
/// thread count; the *.cache_* counters observe scheduling.
namespace metric {
inline constexpr MetricId kCellsEvaluated = 0;   // grid.cells_evaluated
inline constexpr MetricId kCellsFailed = 1;      // grid.cells_failed
inline constexpr MetricId kCellsSkipped = 2;     // grid.cells_skipped
inline constexpr MetricId kWcsSolves = 3;        // solve.wcs_solves
inline constexpr MetricId kAcsSolves = 4;        // solve.acs_solves
inline constexpr MetricId kPlannedSolves = 5;    // solve.planned_solves
inline constexpr MetricId kSolveCacheHits = 6;   // solve.cache_hits
inline constexpr MetricId kPrepareHits = 7;      // prepare.cache_hits
inline constexpr MetricId kPrepareMisses = 8;    // prepare.cache_misses
inline constexpr MetricId kCalibrations = 9;     // calibrate.runs
inline constexpr MetricId kCalibrationHits = 10;  // calibrate.cache_hits
inline constexpr MetricId kSolverOuter = 11;     // solver.outer_iterations
inline constexpr MetricId kSolverInner = 12;     // solver.inner_iterations
inline constexpr MetricId kSolverEvals = 13;     // solver.evaluations
inline constexpr MetricId kDeadlineMisses = 14;  // sim.deadline_misses
inline constexpr MetricId kFallbacks = 15;       // solve.fallbacks
inline constexpr MetricId kThreads = 16;         // run.threads (gauge)
inline constexpr MetricId kShardCount = 17;      // run.shard_count (gauge)
inline constexpr MetricId kCellWallUs = 18;      // cell.wall_us (histogram)
inline constexpr MetricId kSolveWallUs = 19;     // solve.wall_us (histogram)
inline constexpr MetricId kPrepareEvictions = 20;   // prepare.evictions
inline constexpr MetricId kPreparedBytes = 21;      // prepare.resident_bytes
                                                    // (gauge)
inline constexpr MetricId kPersistHits = 22;        // persist.cache_hits
inline constexpr MetricId kPersistMisses = 23;      // persist.cache_misses
inline constexpr MetricId kPersistRejects = 24;     // persist.verify_rejects
inline constexpr MetricId kPersistWriteBacks = 25;  // persist.write_backs
inline constexpr MetricId kFamilySteals = 26;       // family.steals
inline constexpr MetricId kFamilyCount = 27;        // family.count (gauge)
inline constexpr MetricId kFamilyCellsPerWorker = 28;  // family.cells_per_
                                                       // worker (histogram)
inline constexpr MetricId kDriftReplans = 29;       // drift.replans
inline constexpr MetricId kOnlineDpDispatches = 30;  // online.dp_dispatches
inline constexpr MetricId kPrepareOversized = 31;   // prepare.oversized_
                                                    // rejects
inline constexpr MetricId kDpmSleeps = 32;          // dpm.sleeps
inline constexpr MetricId kDpmMigrations = 33;      // dpm.migrations
inline constexpr MetricId kDpmSleepEnergy = 34;     // dpm.sleep_energy
                                                    // (histogram)
inline constexpr std::size_t kBuiltinCount = 35;
}  // namespace metric

/// The installed registry, or nullptr.  Installation is not synchronised
/// with concurrent readers — install before spawning workers, uninstall
/// after joining them (the Logger contract).
MetricsRegistry* ActiveMetrics();
void InstallMetrics(MetricsRegistry* registry);

/// The calling thread's active shard, or nullptr (the off fast path).
MetricsShard* ActiveShard();

/// Scopes the calling thread's shard pointer (RAII, nestable).  RunGrid
/// workers install their worker-indexed shard around each cell.
class ScopedMetricsShard {
 public:
  explicit ScopedMetricsShard(MetricsShard* shard);
  ~ScopedMetricsShard();
  ScopedMetricsShard(const ScopedMetricsShard&) = delete;
  ScopedMetricsShard& operator=(const ScopedMetricsShard&) = delete;

 private:
  MetricsShard* previous_;
};

/// Free helpers: single thread-local load + branch when telemetry is off.
void Count(MetricId id, std::int64_t delta = 1);
void SetGauge(MetricId id, double value);
void Observe(MetricId id, double value);

/// Observes the scope's wall time (µs) into histogram `id` on destruction.
/// When the calling thread has no shard the constructor skips even the
/// clock read — zero cost on the off path.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(MetricId id);
  ~ScopedWallTimer();
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  MetricId id_;
  MetricsShard* shard_;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace dvs::obs

#endif  // ACS_OBS_METRICS_H
