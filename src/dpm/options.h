// DPM (dynamic power management) configuration, threaded from the grid /
// ExperimentOptions down to the simulator and the fleet evaluator.
//
// Everything here is inert unless `enabled` is set: core::EvaluateMethod
// only copies the sleep/idle description into sim::SimOptions when enabled,
// and mp::EvaluateFleet only consolidates cores or charges the sim-level
// floor when enabled — the DPM-off paths stay byte-identical to the
// pre-DPM pipeline (pinned by the golden CSVs and prop_invariants_test).
//
// The critical-speed floor is NOT applied here: it is a property of the
// model the whole run evaluates under, so the driver wraps its DvsModel in
// a dpm::CriticalSpeedFloor (dpm/dpm.h) and hands the grid the wrapped
// model.  Keeping the wrapper driver-owned gives it a stable identity for
// the solve caches (core::EvalWorkspace records models by pointer).
#ifndef ACS_DPM_OPTIONS_H
#define ACS_DPM_OPTIONS_H

#include <cstdint>

#include "model/power_model.h"

namespace dvs::dpm {

struct Options {
  /// Master switch: off keeps every consumer on its legacy path.
  bool enabled = false;

  /// Awake per-core power floor the sleep state competes with.  The fleet
  /// evaluator overwrites it with its own idle-power argument so the
  /// simulator and the aggregation always agree on one floor; standalone
  /// core::EvaluateMethod callers fill it directly.
  model::IdlePower idle;

  /// The sleep state committed across break-even idle intervals (resolve a
  /// named preset with dpm::ResolveSleepState, or hand-build one).
  model::SleepState sleep;

  /// Critical-speed floor request, as a fraction of the model's top speed:
  /// 0 derives the critical speed from the model and the idle floor
  /// (dpm::CriticalSpeed), > 0 forces the given fraction, < 0 disables the
  /// floor entirely.  Consumed by dpm::CriticalSpeedFloor — see the header
  /// comment for why the driver applies it, not this struct.
  double critical_speed = 0.0;

  /// Cross-hyper-period reallocation (core shutdown): after `realloc_after`
  /// hyper-periods mp::EvaluateFleet migrates tasks off the least-utilised
  /// cores (exact RM admission preserved) and runs the remaining
  /// hyper-periods on the consolidated partition.
  bool reallocate = false;
  std::int64_t realloc_after = 1;
};

}  // namespace dvs::dpm

#endif  // ACS_DPM_OPTIONS_H
