// Cross-hyper-period task reallocation (core shutdown).
//
// A partitioner places tasks before any hyper-period runs; with an idle
// floor, a lightly-loaded core then pays the floor for the whole mission
// even though its tasks would fit elsewhere.  Consolidate() is the
// leakage-aware reallocation pass (Huang et al.): repeatedly try to empty
// the least-utilised powered core by migrating its tasks onto the other
// powered cores — accepting a move only when every receiving core stays
// *exactly* RM-schedulable at Vmax (the same admission test the
// partitioners use) — until no core can be emptied.  mp::EvaluateFleet
// runs the original partition for `Options::realloc_after` hyper-periods
// and the consolidated one for the remainder, which is what turns the
// powered-core count into a time-weighted quantity.
//
// Deterministic: victims are scanned in ascending utilisation (core index
// breaks ties), each victim's tasks move in decreasing utilisation onto the
// most-loaded feasible receiver (tightest packing; index breaks ties), and
// a successful emptying restarts the scan against the new loads.  A pure
// function of (partition, set, model) — no randomness, no execution-order
// dependence.
#ifndef ACS_DPM_REALLOCATE_H
#define ACS_DPM_REALLOCATE_H

#include <cstdint>

#include "model/power_model.h"
#include "model/task.h"
#include "mp/partition.h"

namespace dvs::dpm {

struct ReallocationResult {
  mp::Partition partition;       // the consolidated assignment
  std::int64_t migrations = 0;   // tasks whose core changed
  int emptied_cores = 0;         // cores shut down by the pass
};

/// Consolidates `partition` as described above.  Emptying a core is
/// additionally gated on a closed-form energy estimate: packing the
/// victim's work onto faster receivers costs cubically more dynamic power,
/// so a move commits only when that penalty (stretched-to-deadline WCS
/// rates) stays strictly below the `idle` floor the shut-down core stops
/// paying.  With a zero floor nothing ever moves.  Returns the input
/// partition unchanged (0 migrations) when nothing can move; never powers a
/// previously empty core, and the result always passes
/// Partition::Validate(set) with every core exactly RM-schedulable at Vmax.
ReallocationResult Consolidate(const mp::Partition& partition,
                               const model::TaskSet& set,
                               const model::DvsModel& dvs,
                               const model::IdlePower& idle);

}  // namespace dvs::dpm

#endif  // ACS_DPM_REALLOCATE_H
