#include "dpm/dpm.h"

#include <algorithm>

#include "util/error.h"

namespace dvs::dpm {
namespace {

/// Total energy per cycle at speed `s` under an always-on floor.
double EnergyPerCycle(const model::DvsModel& dvs, double s, double leak) {
  const double v = dvs.ClampVoltage(dvs.VoltageForSpeed(s));
  return dvs.ceff() * v * v + leak / s;
}

}  // namespace

double CriticalSpeed(const model::DvsModel& dvs, double leak_power_per_ms) {
  const double lo_bound = dvs.MinSpeed();
  const double hi_bound = dvs.MaxSpeed();
  if (leak_power_per_ms <= 0.0) {
    return lo_bound;
  }
  // Fixed-iteration ternary search: the objective is unimodal (convex for
  // the linear and alpha-power models; the discrete wrapper's staircase is
  // still unimodal in the quantised voltage), and 200 thirds shrink the
  // bracket far below double resolution, so the result is a deterministic
  // pure function of (model, leak).
  double lo = lo_bound;
  double hi = hi_bound;
  for (int i = 0; i < 200; ++i) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (EnergyPerCycle(dvs, m1, leak_power_per_ms) <=
        EnergyPerCycle(dvs, m2, leak_power_per_ms)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return 0.5 * (lo + hi);
}

CriticalSpeedModel::CriticalSpeedModel(const model::DvsModel& base,
                                       double floor_voltage)
    : base_(&base),
      floor_voltage_(std::clamp(floor_voltage, base.vmin(), base.vmax())) {}

CriticalSpeedFloor::CriticalSpeedFloor(const model::DvsModel& base,
                                       const Options& options)
    : base_(&base) {
  if (!options.enabled || options.critical_speed < 0.0) {
    return;
  }
  const double target =
      options.critical_speed > 0.0
          ? options.critical_speed * base.MaxSpeed()
          : CriticalSpeed(base, options.idle.power_per_ms);
  if (target <= base.MinSpeed()) {
    return;  // the base range already respects the critical speed
  }
  const double floor_voltage =
      base.ClampVoltage(base.VoltageForSpeed(target));
  if (floor_voltage <= base.vmin()) {
    return;
  }
  floored_.emplace(base, floor_voltage);
  speed_floor_ = base.SpeedAt(floor_voltage);
}

model::SleepState ResolveSleepState(const std::string& name,
                                    const model::IdlePower& idle) {
  const double p = idle.power_per_ms;
  model::SleepState state;
  if (name == "ideal") {
    return state;  // all-zero: free instant power gating
  }
  if (name == "shallow") {
    state.power_per_ms = 0.3 * p;
    state.enter_latency = 0.1;
    state.exit_latency = 0.1;
    state.enter_energy = 0.05 * p;
    state.exit_energy = 0.05 * p;
    return state;
  }
  if (name == "deep") {
    state.power_per_ms = 0.02 * p;
    state.enter_latency = 0.5;
    state.exit_latency = 0.5;
    state.enter_energy = 0.5 * p;
    state.exit_energy = 0.5 * p;
    return state;
  }
  std::string known;
  for (const std::string& preset : SleepStateNames()) {
    known += known.empty() ? preset : ", " + preset;
  }
  throw util::InvalidArgumentError("unknown sleep state \"" + name +
                                   "\" (known: " + known + ")");
}

const std::vector<std::string>& SleepStateNames() {
  static const std::vector<std::string> names = {"ideal", "shallow", "deep"};
  return names;
}

}  // namespace dvs::dpm
