#include "dpm/reallocate.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "fps/expansion.h"
#include "sim/engine.h"

namespace dvs::dpm {
namespace {

double TaskUtilization(const model::TaskSet& set, const model::DvsModel& dvs,
                       model::TaskIndex task) {
  const model::Task& t = set.task(task);
  return t.wcec / (static_cast<double>(t.period) * dvs.MaxSpeed());
}

/// Closed-form steady-state dynamic power (energy/ms) of one core carrying
/// worst-case utilisation `utilization`: the demand rate u*MaxSpeed run at
/// the slowest sustaining speed (clamped into the model's range).  This is
/// the stretched-to-deadline WCS estimate the energy gate below compares —
/// deliberately worst-case, so a committed consolidation can only look
/// better under measured (ACS) workloads.
double EstimatedCorePower(const model::DvsModel& dvs, double utilization) {
  if (utilization <= 0.0) {
    return 0.0;
  }
  const double rate = utilization * dvs.MaxSpeed();
  const double speed =
      std::min(std::max(rate, dvs.MinSpeed()), dvs.MaxSpeed());
  return rate * dvs.EnergyPerCycle(dvs.VoltageForSpeed(speed));
}

/// Exact admission test, mirroring the partitioners': cheap utilisation
/// filter first, then RM schedulability at Vmax on the expanded subset.
bool FitsOnCore(const model::TaskSet& set, const model::DvsModel& dvs,
                const mp::Partition& partition, int c, model::TaskIndex task,
                double task_utilization) {
  if (partition.CoreUtilization(set, dvs, c) + task_utilization >
      1.0 + 1e-12) {
    return false;
  }
  std::vector<model::TaskIndex> candidate =
      partition.assignment[static_cast<std::size_t>(c)];
  candidate.push_back(task);
  const model::TaskSet subset = mp::SubTaskSet(set, candidate);
  const fps::FullyPreemptiveSchedule expansion(subset);
  return sim::IsRmSchedulable(expansion, dvs);
}

/// Tries to empty core `victim`, moving each of its tasks (decreasing
/// utilisation) onto the most-loaded feasible core in `receivers`.  Commits
/// into `partition` and returns the number of tasks moved on success;
/// leaves `partition` untouched and returns 0 when any task fails to place.
std::int64_t TryEmpty(const model::TaskSet& set, const model::DvsModel& dvs,
                      const model::IdlePower& idle, mp::Partition& partition,
                      int victim, const std::vector<int>& receivers) {
  mp::Partition trial = partition;
  std::vector<model::TaskIndex> tasks =
      std::move(trial.assignment[static_cast<std::size_t>(victim)]);
  trial.assignment[static_cast<std::size_t>(victim)].clear();
  std::sort(tasks.begin(), tasks.end(),
            [&set, &dvs](model::TaskIndex a, model::TaskIndex b) {
              const double ua = TaskUtilization(set, dvs, a);
              const double ub = TaskUtilization(set, dvs, b);
              return ua != ub ? ua > ub : a < b;
            });
  for (model::TaskIndex task : tasks) {
    const double u = TaskUtilization(set, dvs, task);
    // Most-loaded feasible receiver (best-fit: pack tight so the remaining
    // cores stay as empty as possible); core index breaks ties.
    std::vector<std::pair<double, int>> ranked;
    ranked.reserve(receivers.size());
    for (int c : receivers) {
      ranked.emplace_back(-trial.CoreUtilization(set, dvs, c), c);
    }
    std::sort(ranked.begin(), ranked.end());
    bool placed = false;
    for (const auto& [key, c] : ranked) {
      if (FitsOnCore(set, dvs, trial, c, task, u)) {
        trial.assignment[static_cast<std::size_t>(c)].push_back(task);
        placed = true;
        break;
      }
    }
    if (!placed) {
      return 0;
    }
  }
  // Energy gate: emptying the victim saves its idle floor but packs its
  // work onto faster (cubically more expensive) receivers.  Commit only
  // when the estimated fleet rate strictly drops — below the critical-speed
  // regime the dynamic penalty is small (often zero, when every core is
  // vmin-clamped) and the floor saving wins; at moderate loads the gate
  // correctly refuses, so reallocation can never cost energy by estimate.
  double dynamic_before =
      EstimatedCorePower(dvs, partition.CoreUtilization(set, dvs, victim));
  double dynamic_after = 0.0;
  for (int c : receivers) {
    dynamic_before +=
        EstimatedCorePower(dvs, partition.CoreUtilization(set, dvs, c));
    dynamic_after +=
        EstimatedCorePower(dvs, trial.CoreUtilization(set, dvs, c));
  }
  if (dynamic_after >= dynamic_before + idle.power_per_ms - 1e-12) {
    return 0;
  }
  const std::int64_t moved = static_cast<std::int64_t>(tasks.size());
  partition = std::move(trial);
  return moved;
}

}  // namespace

ReallocationResult Consolidate(const mp::Partition& partition,
                               const model::TaskSet& set,
                               const model::DvsModel& dvs,
                               const model::IdlePower& idle) {
  ReallocationResult result;
  result.partition = partition;

  bool moved_any = true;
  while (moved_any) {
    moved_any = false;
    // Powered cores in ascending utilisation (index breaks ties): the
    // cheapest core to empty first.
    std::vector<std::pair<double, int>> victims;
    for (int c = 0; c < result.partition.cores(); ++c) {
      if (!result.partition.assignment[static_cast<std::size_t>(c)].empty()) {
        victims.emplace_back(result.partition.CoreUtilization(set, dvs, c), c);
      }
    }
    if (victims.size() < 2) {
      break;  // nothing to consolidate onto
    }
    std::sort(victims.begin(), victims.end());
    for (const auto& [utilization, victim] : victims) {
      std::vector<int> receivers;
      for (const auto& [other_u, other] : victims) {
        if (other != victim) {
          receivers.push_back(other);
        }
      }
      std::sort(receivers.begin(), receivers.end());
      const std::int64_t moved =
          TryEmpty(set, dvs, idle, result.partition, victim, receivers);
      if (moved > 0) {
        result.migrations += moved;
        ++result.emptied_cores;
        moved_any = true;
        break;  // loads changed; rescan victims against the new partition
      }
    }
  }
  return result;
}

}  // namespace dvs::dpm
