// Leakage-aware DPM primitives: critical speed, the voltage-floor model
// wrapper, and named sleep-state presets.
//
// Critical speed is the classical leakage-aware DVS observation (Huang et
// al., leakage-aware reallocation): with an always-on power floor, the
// energy of one cycle is ceff*V(s)^2 (dynamic) + P_floor/s (the floor paid
// while the cycle executes), which is minimised at a strictly positive
// speed — below it, slowing down *increases* total energy.  With DPM on,
// the NLP's box constraint and every simulator dispatch clamp should never
// choose a speed below it; both read DvsModel::vmin()/ClampVoltage, so one
// wrapper that raises vmin floors the whole pipeline at once.
//
// Identity and caching: CriticalSpeedModel is a distinct DvsModel object,
// so the in-process solve caches (core::EvalWorkspace, model-by-pointer)
// can never serve a floored solve to an unfloored run or vice versa, and
// core::DescribeModel does not recognise the wrapper (tag 0), so the
// persistent solve store simply skips DPM-floored solves instead of ever
// aliasing them with the base model's.  The driver must keep the wrapper
// alive for the whole run (CriticalSpeedFloor is the owner type for that).
#ifndef ACS_DPM_DPM_H
#define ACS_DPM_DPM_H

#include <optional>
#include <string>
#include <vector>

#include "dpm/options.h"
#include "model/power_model.h"

namespace dvs::dpm {

/// The speed (cycles/ms) minimising total energy per cycle —
/// ceff*V(s)^2 + leak_power_per_ms/s — over the model's speed range.
/// Deterministic fixed-iteration ternary search (the objective is unimodal
/// for every shipped model).  A non-positive leak power returns MinSpeed
/// (no floor: without leakage, slower is always at least as good).
double CriticalSpeed(const model::DvsModel& dvs, double leak_power_per_ms);

/// DvsModel wrapper raising vmin to `floor_voltage` (clamped into the base
/// range).  Everything else delegates, so MaxSpeed, task-set generation and
/// Vmax admission are untouched — only the lower box bound of the NLP and
/// the vmin-side dispatch clamps move.
class CriticalSpeedModel final : public model::DvsModel {
 public:
  CriticalSpeedModel(const model::DvsModel& base, double floor_voltage);

  double vmin() const override { return floor_voltage_; }
  double vmax() const override { return base_->vmax(); }
  double ceff() const override { return base_->ceff(); }
  double SpeedAt(double v) const override { return base_->SpeedAt(v); }
  double VoltageForSpeed(double speed) const override {
    return base_->VoltageForSpeed(speed);
  }
  double VoltageSlope(double speed) const override {
    return base_->VoltageSlope(speed);
  }
  double SpeedSlope(double v) const override { return base_->SpeedSlope(v); }

  const model::DvsModel& base() const { return *base_; }

 private:
  const model::DvsModel* base_;  // non-owning; must outlive the wrapper
  double floor_voltage_;
};

/// Resolves and owns the critical-speed floor for one run.  Hand the grid
/// `&floor.model()` and keep this object alive for as long as any workspace
/// may hold solves cached under it (the model-identity contract of
/// core::EvalWorkspace / runner::ExperimentGrid::dvs).  When DPM is off,
/// the floor is disabled (options.critical_speed < 0) or the resolved floor
/// does not rise above the base vmin, model() is the base itself.
class CriticalSpeedFloor {
 public:
  CriticalSpeedFloor(const model::DvsModel& base, const Options& options);

  const model::DvsModel& model() const {
    return floored_.has_value() ? static_cast<const model::DvsModel&>(*floored_)
                                : *base_;
  }
  bool active() const { return floored_.has_value(); }
  /// The resolved speed floor in cycles/ms (0 when inactive).
  double speed_floor() const { return speed_floor_; }

 private:
  const model::DvsModel* base_;
  std::optional<CriticalSpeedModel> floored_;
  double speed_floor_ = 0.0;
};

/// Named sleep-state presets, resolved against the run's idle floor so the
/// same name behaves sensibly at any power scale:
///   "ideal"    zero-cost power gating (break-even 0; the savings bound)
///   "shallow"  30% floor residency, 0.2 ms round trip, cheap transitions
///   "deep"     2% floor residency, 1 ms round trip, one floor-ms per
///              transition pair (break-even ~1 ms)
/// Throws util::InvalidArgumentError on unknown names, listing the presets.
model::SleepState ResolveSleepState(const std::string& name,
                                    const model::IdlePower& idle);

/// The preset names, in registration order (CLI help text).
const std::vector<std::string>& SleepStateNames();

}  // namespace dvs::dpm

#endif  // ACS_DPM_DPM_H
