// Fully preemptive schedule expansion (paper §3.1, Figs. 3-4).
//
// Every task instance in the hyper-period is split at every release of a
// strictly-higher-priority task inside its [release, deadline] window.  The
// resulting sub-instances are the atoms of the ACS optimisation: each gets
// its own end-time and worst-case workload budget.  Their *total order* —
// sort by segment start, then dispatch rank — is the execution order of the
// worst-case preemptive schedule, and drives both the NLP chain constraints
// and the greedy runtime's slack hand-off.
//
// Equal-period tasks share a priority (paper §2.1): they never cut each
// other, and the task index breaks dispatch ties deterministically.
#ifndef ACS_FPS_EXPANSION_H
#define ACS_FPS_EXPANSION_H

#include <cstdint>
#include <string>
#include <vector>

#include "model/task.h"

namespace dvs::fps {

/// One sub-instance T_{i,j,k}: the k-th preemption segment of instance j of
/// task i.  `order` is its position in the total order.
struct SubInstance {
  std::size_t order = 0;        // position in the total order
  model::TaskIndex task = 0;    // owning task
  std::int64_t instance = 0;    // owning instance number (0-based)
  std::size_t parent = 0;       // index into FullyPreemptiveSchedule::instances()
  int k = 0;                    // sub-instance number within the parent (0-based)
  double seg_begin = 0.0;       // segment start == earliest possible start
  double seg_end = 0.0;         // segment end == next higher-priority release
                                // (or the parent deadline for the last one)
  double deadline = 0.0;        // parent instance's absolute deadline

  double release() const { return seg_begin; }
  double SegLength() const { return seg_end - seg_begin; }
};

/// Parent-instance record with the order-indices of its sub-instances
/// (ascending k; not contiguous in the total order).
struct InstanceRecord {
  model::TaskInstance info;
  std::vector<std::size_t> subs;  // order indices, ascending k
};

class FullyPreemptiveSchedule {
 public:
  /// Expands `set` over one hyper-period.
  explicit FullyPreemptiveSchedule(const model::TaskSet& set);

  const model::TaskSet& task_set() const { return *set_; }

  /// Sub-instances in total order.
  const std::vector<SubInstance>& subs() const { return subs_; }
  std::size_t sub_count() const { return subs_.size(); }
  const SubInstance& sub(std::size_t order) const;

  /// Parent instances (ordered by release, then dispatch rank).
  const std::vector<InstanceRecord>& instances() const { return instances_; }
  std::size_t instance_count() const { return instances_.size(); }
  const InstanceRecord& instance(std::size_t idx) const;

  /// Largest number of sub-instances any single instance was split into.
  int max_subs_per_instance() const { return max_subs_per_instance_; }

  /// Effective upper bound for each sub-instance's end-time:
  /// suffix-minimum of segment ends along the total order.  End-times must
  /// be non-decreasing through the total order (the transitive closure of
  /// the paper's chain constraint (10)), so a sub-instance can never be
  /// scheduled to end later than any *later* sub-instance's segment allows —
  /// e.g. a high-priority segment that stretches past a low-priority
  /// deadline boundary is capped at that boundary.
  const std::vector<double>& effective_end_bounds() const {
    return effective_end_;
  }

  /// Structural self-check (segments partition windows, order sorted, ...).
  /// Throws InternalError on violation.  Cheap; called from tests.
  void Validate() const;

  /// Human-readable total order, e.g. "T1[0].0 T2[0].0 T2[0].1 ..."
  std::string DescribeOrder() const;

 private:
  const model::TaskSet* set_;  // non-owning; callers keep the set alive
  std::vector<SubInstance> subs_;
  std::vector<InstanceRecord> instances_;
  std::vector<double> effective_end_;
  int max_subs_per_instance_ = 0;
};

/// Upper bound on sub-instances used by the paper's generator cap.
std::size_t CountSubInstances(const model::TaskSet& set);

}  // namespace dvs::fps

#endif  // ACS_FPS_EXPANSION_H
