#include "fps/expansion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.h"
#include "util/math.h"

namespace dvs::fps {
namespace {

/// Release times of tasks that can preempt `victim`, strictly inside
/// (window_begin, window_end).
std::vector<double> CutPoints(const model::TaskSet& set,
                              model::TaskIndex victim, double window_begin,
                              double window_end) {
  std::vector<double> cuts;
  for (model::TaskIndex other = 0; other < set.size(); ++other) {
    if (!set.CanPreempt(other, victim)) {
      continue;
    }
    const double period = static_cast<double>(set.task(other).period);
    // First release at or after window_begin (exclusive).
    double first = period * std::ceil(window_begin / period);
    if (first <= window_begin) {
      first += period;
    }
    for (double t = first; t < window_end; t += period) {
      cuts.push_back(t);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end(),
                         [](double a, double b) {
                           return util::AlmostEqual(a, b);
                         }),
             cuts.end());
  return cuts;
}

}  // namespace

FullyPreemptiveSchedule::FullyPreemptiveSchedule(const model::TaskSet& set)
    : set_(&set) {
  const std::vector<model::TaskInstance> raw = model::EnumerateInstances(set);
  instances_.reserve(raw.size());
  for (const model::TaskInstance& inst : raw) {
    instances_.push_back(InstanceRecord{inst, {}});
  }

  // Build all sub-instances, then sort into the total order.
  std::vector<SubInstance> subs;
  for (std::size_t p = 0; p < instances_.size(); ++p) {
    const model::TaskInstance& inst = instances_[p].info;
    const std::vector<double> cuts =
        CutPoints(set, inst.task, inst.release, inst.deadline);
    std::vector<double> bounds;
    bounds.reserve(cuts.size() + 2);
    bounds.push_back(inst.release);
    bounds.insert(bounds.end(), cuts.begin(), cuts.end());
    bounds.push_back(inst.deadline);

    for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
      SubInstance sub;
      sub.task = inst.task;
      sub.instance = inst.instance;
      sub.parent = p;
      sub.k = static_cast<int>(s);
      sub.seg_begin = bounds[s];
      sub.seg_end = bounds[s + 1];
      sub.deadline = inst.deadline;
      subs.push_back(sub);
    }
    max_subs_per_instance_ = std::max(
        max_subs_per_instance_, static_cast<int>(bounds.size()) - 1);
  }

  std::sort(subs.begin(), subs.end(),
            [&set](const SubInstance& a, const SubInstance& b) {
              if (!util::AlmostEqual(a.seg_begin, b.seg_begin)) {
                return a.seg_begin < b.seg_begin;
              }
              if (a.task != b.task) {
                return set.OutranksForDispatch(a.task, b.task);
              }
              return a.k < b.k;
            });

  subs_ = std::move(subs);
  for (std::size_t order = 0; order < subs_.size(); ++order) {
    subs_[order].order = order;
    instances_[subs_[order].parent].subs.push_back(order);
  }
  // Suffix-minimum of segment ends: the monotone end-time cap.
  effective_end_.resize(subs_.size());
  double running = std::numeric_limits<double>::infinity();
  for (std::size_t order = subs_.size(); order-- > 0;) {
    running = std::min(running, subs_[order].seg_end);
    effective_end_[order] = running;
  }
  // `subs` within each parent must be ascending in k; the global sort keeps
  // them in segment order, which coincides with k order.
  Validate();
}

const SubInstance& FullyPreemptiveSchedule::sub(std::size_t order) const {
  ACS_REQUIRE(order < subs_.size(), "sub-instance order index out of range");
  return subs_[order];
}

const InstanceRecord& FullyPreemptiveSchedule::instance(
    std::size_t idx) const {
  ACS_REQUIRE(idx < instances_.size(), "instance index out of range");
  return instances_[idx];
}

void FullyPreemptiveSchedule::Validate() const {
  // Total order sorted by (seg_begin, dispatch rank).
  for (std::size_t u = 1; u < subs_.size(); ++u) {
    const SubInstance& prev = subs_[u - 1];
    const SubInstance& cur = subs_[u];
    ACS_CHECK(prev.seg_begin <= cur.seg_begin + 1e-9,
              "total order not sorted by segment start");
    ACS_CHECK(subs_[u].order == u, "order index mismatch");
  }
  // Per-instance: segments partition [release, deadline].
  for (const InstanceRecord& rec : instances_) {
    ACS_CHECK(!rec.subs.empty(), "instance with no sub-instances");
    double cursor = rec.info.release;
    int expected_k = 0;
    for (std::size_t order : rec.subs) {
      const SubInstance& sub = subs_[order];
      ACS_CHECK(sub.parent < instances_.size(), "bad parent index");
      ACS_CHECK(&instances_[sub.parent] == &rec, "parent back-pointer broken");
      ACS_CHECK(sub.k == expected_k, "sub-instance k not consecutive");
      ACS_CHECK(util::AlmostEqual(sub.seg_begin, cursor),
                "segments do not tile the instance window");
      ACS_CHECK(sub.seg_end > sub.seg_begin, "empty segment");
      cursor = sub.seg_end;
      ++expected_k;
    }
    ACS_CHECK(util::AlmostEqual(cursor, rec.info.deadline),
              "segments do not reach the instance deadline");
  }
}

std::string FullyPreemptiveSchedule::DescribeOrder() const {
  std::ostringstream out;
  for (std::size_t u = 0; u < subs_.size(); ++u) {
    const SubInstance& sub = subs_[u];
    if (u > 0) out << ' ';
    out << set_->task(sub.task).name << '[' << sub.instance << "]." << sub.k;
  }
  return out.str();
}

std::size_t CountSubInstances(const model::TaskSet& set) {
  return FullyPreemptiveSchedule(set).sub_count();
}

}  // namespace dvs::fps
