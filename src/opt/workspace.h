// Reusable solver scratch buffers.
//
// Every solver in the stack (SPG, ALM, L-BFGS) historically allocated its
// working vectors per call — and some per *iteration* — which made redundant
// heap traffic the dominant cost of grid-scale experiments (hundreds of
// thousands of objective evaluations per cell).  The workspace structs here
// own those buffers instead: a caller keeps one workspace per thread, passes
// it to every solve, and after the first solve the steady-state path
// performs no solver allocations at all.  Passing nullptr (the default on
// every entry point) falls back to a call-local workspace, so the workspace
// parameter never changes results — only where the memory lives.
//
// Thread affinity: a workspace is not synchronised; it must be used by one
// thread at a time (one workspace per runner::ThreadPool worker is the
// intended pattern, see core::EvalWorkspace and runner::RunGrid).
#ifndef ACS_OPT_WORKSPACE_H
#define ACS_OPT_WORKSPACE_H

#include <cstdint>
#include <vector>

#include "opt/problem.h"
#include "opt/vec.h"
#include "util/simd.h"

namespace dvs::opt {

/// Scratch for MinimizeSpg: the iterate/gradient/direction vectors plus the
/// GLL nonmonotone window and the projection scratch shared with the
/// feasible set.
struct SpgWorkspace {
  Vector grad;
  Vector trial;
  Vector trial_grad;
  Vector direction;
  std::vector<double> recent;  // nonmonotone reference window
  ProjectionScratch projection;
};

/// One flattened linear constraint system: the same rows as a
/// std::vector<LinearConstraint>, stored contiguously so the augmented-
/// Lagrangian inner loop walks one array instead of chasing a heap vector
/// per constraint.  Term order is preserved exactly, so evaluations are
/// bit-identical to LinearConstraint::Evaluate.
struct FlatLinearSystem {
  std::vector<std::size_t> term_index;   // concatenated term variable indices
  std::vector<double> term_coeff;        // matching coefficients
  std::vector<std::size_t> row_begin;    // row r spans [row_begin[r], row_begin[r+1])
  std::vector<double> constant;          // per-row constant
  std::vector<ConstraintKind> kind;      // per-row sense

  // Padded slot-major mirror for the vectorized batch evaluation: slot t of
  // row r is packed_coeff[t * rows + r] * x[packed_idx[t * rows + r]]; rows
  // with fewer than three terms pad with coeff 0 / index 0.  Built by
  // Assign whenever every row carries <= 3 terms (the ACS chain system
  // always does); `packed3` is false otherwise and the batch path falls
  // back to the per-row loop.
  bool packed3 = false;
  std::vector<double> packed_coeff;       // 3 * rows, slot-major
  std::vector<std::int32_t> packed_idx;   // 3 * rows, slot-major

  std::size_t rows() const { return constant.size(); }

  /// Rebuilds from `constraints`, reusing capacity.
  void Assign(const std::vector<LinearConstraint>& constraints);

  /// Every row value into `out` (resized to rows()).  At scalar dispatch
  /// this is exactly the per-row Evaluate loop in row order; at AVX2
  /// dispatch with a packed3 system it gathers four rows per step.
  void EvaluateAll(const Vector& x, std::vector<double>& out) const {
    out.resize(rows());
    if (packed3 && util::simd::Active() != util::simd::Level::kScalar) {
      util::simd::PackedRows3(constant.data(), packed_coeff.data(),
                              packed_idx.data(), x.data(), out.data(),
                              rows());
      return;
    }
    for (std::size_t c = 0; c < rows(); ++c) {
      out[c] = Evaluate(c, x);
    }
  }

  // Row operations are inline: the augmented-Lagrangian evaluation calls
  // them once per row per objective evaluation — the hottest loop after the
  // objective itself.

  /// Row value: constant + sum coeff * x[index], in stored term order.
  /// Rows of the ACS chain system carry 1-3 terms, so those counts are
  /// unrolled (same accumulation order as the loop).
  double Evaluate(std::size_t row, const Vector& x) const {
    const std::size_t b = row_begin[row];
    const std::size_t e = row_begin[row + 1];
    double acc = constant[row];
    switch (e - b) {
      case 3:
        acc += term_coeff[b] * x[term_index[b]];
        acc += term_coeff[b + 1] * x[term_index[b + 1]];
        acc += term_coeff[b + 2] * x[term_index[b + 2]];
        return acc;
      case 2:
        acc += term_coeff[b] * x[term_index[b]];
        acc += term_coeff[b + 1] * x[term_index[b + 1]];
        return acc;
      case 1:
        acc += term_coeff[b] * x[term_index[b]];
        return acc;
      default:
        for (std::size_t t = b; t < e; ++t) {
          acc += term_coeff[t] * x[term_index[t]];
        }
        return acc;
    }
  }

  /// max(0, -value) for >=, |value| for ==.
  double Violation(std::size_t row, const Vector& x) const {
    const double value = Evaluate(row, x);
    if (kind[row] == ConstraintKind::kGeZero) {
      return value < 0.0 ? -value : 0.0;
    }
    return value < 0.0 ? -value : value;  // |value|
  }

  /// grad[index] += weight * coeff over the row's terms.
  void AccumulateGradient(std::size_t row, double weight, Vector& grad) const {
    const std::size_t b = row_begin[row];
    const std::size_t e = row_begin[row + 1];
    switch (e - b) {
      case 3:
        grad[term_index[b]] += weight * term_coeff[b];
        grad[term_index[b + 1]] += weight * term_coeff[b + 1];
        grad[term_index[b + 2]] += weight * term_coeff[b + 2];
        return;
      case 2:
        grad[term_index[b]] += weight * term_coeff[b];
        grad[term_index[b + 1]] += weight * term_coeff[b + 1];
        return;
      case 1:
        grad[term_index[b]] += weight * term_coeff[b];
        return;
      default:
        for (std::size_t t = b; t < e; ++t) {
          grad[term_index[t]] += weight * term_coeff[t];
        }
        return;
    }
  }
};

/// Scratch for MinimizeAlm: the inner SPG workspace, the multiplier vector
/// and the flattened constraint system of the all-linear overload.
struct AlmWorkspace {
  SpgWorkspace spg;
  std::vector<double> multipliers;
  std::vector<double> penalty_ratio;  // per >=-row: lambda / rho
  std::vector<double> penalty_shift;  // per >=-row: lambda^2 / (2 rho)
  std::vector<double> row_values;     // batched constraint-row values
  FlatLinearSystem flat;
};

/// Scratch for MinimizeLbfgs: iterate vectors plus the (s, y, rho) history
/// rings (reused across solves; cleared, not reallocated).
struct LbfgsWorkspace {
  Vector grad;
  Vector trial;
  Vector trial_grad;
  Vector direction;
  Vector s_candidate;  // curvature pair staging (committed to the ring
  Vector y_candidate;  // only when the curvature condition accepts it)
  std::vector<double> alpha;
  std::vector<Vector> s_history;
  std::vector<Vector> y_history;
  std::vector<double> rho_history;
};

/// The full per-thread solver scratch bundle.
struct SolverWorkspace {
  AlmWorkspace alm;
  LbfgsWorkspace lbfgs;
};

}  // namespace dvs::opt

#endif  // ACS_OPT_WORKSPACE_H
