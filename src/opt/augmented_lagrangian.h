// Augmented-Lagrangian method for linearly constrained minimisation over a
// projectable set:
//
//     minimise  f(x)    s.t.  x in X,   c_i(x) >= 0  /  c_j(x) == 0
//
// with c linear.  X (boxes x simplexes) is handled exactly by the SPG inner
// solver's projection; the linear couplings (the worst-case chain
// constraints of the ACS formulation) get multipliers + quadratic penalty.
// Classic safeguarded scheme: multipliers update on sufficient feasibility
// progress, otherwise the penalty grows.
#ifndef ACS_OPT_AUGMENTED_LAGRANGIAN_H
#define ACS_OPT_AUGMENTED_LAGRANGIAN_H

#include <vector>

#include "opt/problem.h"
#include "opt/spg.h"
#include "opt/vec.h"

namespace dvs::opt {

struct AlmWorkspace;  // opt/workspace.h

struct AlmOptions {
  std::size_t max_outer = 25;
  double feasibility_tol = 1e-7;   // sup-norm of constraint violations
  double initial_penalty = 10.0;
  double penalty_growth = 10.0;
  double max_penalty = 1e12;
  double violation_shrink = 0.25;  // required per-outer improvement factor
  SpgOptions inner;                // inner SPG settings (final tolerance)
  double inner_tol_start = 1e-4;   // loose early, tightens geometrically

  /// Dual warm start (continuation along a solve chain).  Non-null seeds
  /// the multiplier vector from a previous converged solve of a nearby
  /// problem with the SAME constraint system shape (the vector's size must
  /// equal the system's row count — any mismatch falls back to the cold
  /// path), starts the penalty at max(initial_penalty, dual_penalty_seed)
  /// and collapses the loose-to-tight inner-tolerance continuation to the
  /// final tolerance: a near-converged primal/dual pair needs polishing,
  /// not the cold schedule.  Null (the default) keeps the historical cold
  /// solve bit-for-bit.
  const std::vector<double>* dual_seed = nullptr;
  double dual_penalty_seed = 0.0;

  /// Optional solver observer (convergence tracing; see opt/spg.h).  The
  /// driver copies it into every inner solve's SpgOptions, so one observer
  /// sees the full outer/inner event stream.  Observation-only: the solve
  /// trajectory is bit-identical with or without it, and caches comparing
  /// AlmOptions ignore it (core::SameSchedulerOptions).
  SolveObserver* observer = nullptr;
};

struct AlmReport {
  bool feasible = false;
  SolveStatus inner_status = SolveStatus::kMaxIterations;
  std::size_t outer_iterations = 0;
  std::size_t total_inner_iterations = 0;
  std::size_t evaluations = 0;
  double final_value = 0.0;      // objective f (without penalty terms)
  double max_violation = 0.0;
  double final_penalty = 0.0;

  /// Final multipliers in the constraint system's row order — the dual
  /// state a follow-up solve can pass back in as AlmOptions::dual_seed.
  /// Empty when the system has no rows.
  std::vector<double> multipliers;
};

/// Minimises over `x` in place (projected onto `set` first).  Constraints
/// are non-owning pointers; callers keep them alive through the solve.
/// `workspace` (optional) supplies reusable scratch buffers — results are
/// bit-identical with or without it (see opt/workspace.h).
AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<const ConstraintFunction*>& constraints,
                      Vector& x, const AlmOptions& options = {},
                      AlmWorkspace* workspace = nullptr);

/// Overload for all-linear constraint systems (the reduced ACS
/// formulation).  The rows are flattened into one contiguous system
/// (opt::FlatLinearSystem) before the solve, so the inner loop walks a
/// single array — same arithmetic, same order, bit-identical results.
AlmReport MinimizeAlm(const Objective& objective, const FeasibleSet& set,
                      const std::vector<LinearConstraint>& constraints,
                      Vector& x, const AlmOptions& options = {},
                      AlmWorkspace* workspace = nullptr);

}  // namespace dvs::opt

#endif  // ACS_OPT_AUGMENTED_LAGRANGIAN_H
