// Optimisation problem interfaces.
//
// The ACS formulation reduces to:   minimise f(x)
//                                   s.t.  x in X  (box bounds x simplexes)
//                                         A x + b >= 0 / == 0  (linear)
// where f is the piecewise-smooth average-case energy.  The solver stack is
// split accordingly: Objective (f and its gradient), FeasibleSet (projection
// onto X), LinearConstraint (rows of A), and the augmented-Lagrangian driver
// that composes them.
#ifndef ACS_OPT_PROBLEM_H
#define ACS_OPT_PROBLEM_H

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "opt/vec.h"

namespace dvs::opt {

/// Differentiable objective.  Implementations must be deterministic and
/// thread-compatible; Gradient writes the full gradient (no accumulation).
class Objective {
 public:
  virtual ~Objective() = default;

  virtual std::size_t dim() const = 0;
  virtual double Value(const Vector& x) const = 0;
  virtual void Gradient(const Vector& x, Vector& grad) const = 0;

  /// Override when value+gradient share work; default calls both.
  virtual double ValueAndGradient(const Vector& x, Vector& grad) const {
    Gradient(x, grad);
    return Value(x);
  }
};

/// Reusable buffers for FeasibleSet projections (one per solver workspace;
/// see opt/workspace.h).  BoxSimplexSet sorts each simplex group's copy in
/// `sorted`; `values` serves as the probe buffer of the default
/// SpgCriterion.  Other sets may ignore it.
struct ProjectionScratch {
  std::vector<double> values;
  std::vector<double> sorted;
};

/// Closed convex set supporting Euclidean projection.
class FeasibleSet {
 public:
  virtual ~FeasibleSet() = default;
  virtual void Project(Vector& x) const = 0;

  /// Projection with caller-provided scratch — identical results to
  /// Project(x); overriding it (as BoxSimplexSet does) only removes the
  /// per-call allocations on the solver hot path.
  virtual void Project(Vector& x, ProjectionScratch& /*scratch*/) const {
    Project(x);
  }

  /// SPG's convergence measure ||P(x - grad) - x||_inf.  The returned value
  /// is exact whenever it is <= `threshold`; above it, implementations may
  /// return early with any sound lower bound that already exceeds the
  /// threshold (BoxSimplexSet proves "not converged" from the separable box
  /// coordinates alone, skipping the simplex sorts).  Callers comparing the
  /// result against `threshold` therefore get the exact same decision as
  /// projecting in full.
  virtual double SpgCriterion(const Vector& x, const Vector& grad,
                              double threshold,
                              ProjectionScratch& scratch) const;
};

/// The whole space (no projection).
class FreeSet final : public FeasibleSet {
 public:
  void Project(Vector&) const override {}
};

inline constexpr double kNoBound = std::numeric_limits<double>::infinity();

/// Product of per-variable intervals and disjoint probability-simplex-style
/// groups {w_i >= 0, sum w_i = total}.  Variables in a simplex group must
/// not also carry box bounds (the group projection owns them).
class BoxSimplexSet final : public FeasibleSet {
 public:
  explicit BoxSimplexSet(std::size_t dim);

  /// Sets [lo, hi] bounds for variable `i` (use +-kNoBound for one-sided).
  void SetBounds(std::size_t i, double lo, double hi);

  /// Declares {x[idx] >= 0 for idx in indices, sum = total}; indices must be
  /// distinct, unbounded and not reused across groups.
  void AddSimplex(std::vector<std::size_t> indices, double total);

  void Project(Vector& x) const override;
  void Project(Vector& x, ProjectionScratch& scratch) const override;
  double SpgCriterion(const Vector& x, const Vector& grad, double threshold,
                      ProjectionScratch& scratch) const override;

  std::size_t dim() const { return lo_.size(); }
  double lower(std::size_t i) const { return lo_.at(i); }
  double upper(std::size_t i) const { return hi_.at(i); }

 private:
  struct Simplex {
    std::vector<std::size_t> indices;
    double total;
  };

  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<bool> in_simplex_;
  // 1.0 for box coordinates, 0.0 for simplex-owned ones: the multiplicative
  // mask the vectorized SpgCriterion box sweep uses in place of the
  // `in_simplex_` branch.
  std::vector<double> box_mask_;
  std::vector<Simplex> simplexes_;
};

/// Projects `values` (in place) onto {v >= 0, sum v = total}.
/// Classic O(n log n) sort-and-threshold algorithm.
void ProjectOntoSimplex(std::vector<double>& values, double total);

/// Same projection with a caller-provided sort buffer (bit-identical
/// results; avoids the per-call copy allocation on the solver hot path).
void ProjectOntoSimplex(std::vector<double>& values, double total,
                        std::vector<double>& sorted_scratch);

/// Constraint sense shared by all constraint representations.
enum class ConstraintKind { kGeZero, kEqZero };

/// One linear constraint  sum coeff_j * x[index_j] + constant  (>= 0 | == 0).
struct LinearConstraint {
  using Kind = ConstraintKind;

  Kind kind = Kind::kGeZero;
  std::vector<std::pair<std::size_t, double>> terms;  // (index, coefficient)
  double constant = 0.0;
  std::string name;  // for diagnostics

  double Evaluate(const Vector& x) const;

  /// Violation: max(0, -value) for >=, |value| for ==.
  double Violation(const Vector& x) const;
};

/// General differentiable constraint c(x) (>= 0 | == 0) for the augmented
/// Lagrangian.  Implementations accumulate weight * grad c(x) into `grad`.
class ConstraintFunction {
 public:
  virtual ~ConstraintFunction() = default;

  virtual ConstraintKind kind() const = 0;
  virtual double Evaluate(const Vector& x) const = 0;
  virtual void AccumulateGradient(const Vector& x, double weight,
                                  Vector& grad) const = 0;
  virtual std::string name() const { return {}; }

  double Violation(const Vector& x) const;
};

/// Adapter: LinearConstraint as a ConstraintFunction (non-owning view).
class LinearConstraintFn final : public ConstraintFunction {
 public:
  explicit LinearConstraintFn(const LinearConstraint& linear)
      : linear_(&linear) {}

  ConstraintKind kind() const override { return linear_->kind; }
  double Evaluate(const Vector& x) const override {
    return linear_->Evaluate(x);
  }
  void AccumulateGradient(const Vector&, double weight,
                          Vector& grad) const override {
    for (const auto& [index, coeff] : linear_->terms) {
      grad[index] += weight * coeff;
    }
  }
  std::string name() const override { return linear_->name; }

 private:
  const LinearConstraint* linear_;
};

}  // namespace dvs::opt

#endif  // ACS_OPT_PROBLEM_H
